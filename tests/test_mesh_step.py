"""Tests for the composed multi-axis training-step experiment."""

import pytest

from repro.experiments.mesh_step import (
    AXIS_FAMILIES,
    HIDDEN_FLOORS,
    AxisOverlapRow,
    MeshStepCase,
    MeshStepResult,
    as_json,
    check_report,
    format_report,
    run_case,
)
from repro.models.trainstep import CHECK_OUTPUTS, train_step_graph, train_step_mesh

SMALL_2D = MeshStepCase(tp=2, dp=2, batch=64, d_model=32, d_ff=64)
SMALL_3D = MeshStepCase(tp=2, dp=2, pp=2, batch=64, d_model=32, d_ff=64)


def _row(axis, hidden=0.9, transfer=1.0):
    return AxisOverlapRow(
        axis=axis,
        family=AXIS_FAMILIES.get(axis, axis),
        transfer_time=transfer,
        hidden_time=hidden * transfer,
        hidden_fraction=hidden,
    )


def _result(case, axes, bit_identical=True, baseline=2.0, overlapped=1.0):
    return MeshStepResult(
        case=case,
        num_devices=case.tp * case.dp * case.pp,
        baseline_time=baseline,
        overlapped_time=overlapped,
        candidates_decomposed=3,
        standalone_loops=1,
        axes=axes,
        bit_identical=bit_identical,
    )


class TestTrainStepGraph:
    def test_mesh_axes_match_case(self):
        assert train_step_mesh(4, 2).axis_names == ("tp", "dp")
        assert train_step_mesh(2, 2, 2).axis_names == ("tp", "dp", "pp")

    def test_graph_outputs_cover_loss_params_and_norm(self):
        graph = train_step_graph(64, 32, 64)
        for name in CHECK_OUTPUTS:
            assert name in graph.tensors, name

    def test_pipeline_flag_adds_stage_handoff(self):
        without = train_step_graph(64, 32, 64, pipeline=False)
        with_pp = train_step_graph(64, 32, 64, pipeline=True)
        assert "ysend" not in without.tensors
        assert "ysend" in with_pp.tensors


class TestRunCase:
    def test_2d_case_is_bit_identical_with_both_families(self):
        result = run_case(SMALL_2D)
        assert result.bit_identical
        assert result.num_devices == 4
        axes = {row.axis for row in result.axes}
        assert axes == {"tp", "dp"}
        assert all(row.transfer_time > 0 for row in result.axes)
        assert result.candidates_decomposed > 0

    def test_3d_case_adds_the_pipeline_family(self):
        result = run_case(SMALL_3D)
        assert result.bit_identical
        axes = {row.axis for row in result.axes}
        assert axes == {"tp", "dp", "pp"}


class TestCheckReport:
    PASSING = [
        _result(SMALL_2D, [_row("tp"), _row("dp")]),
        _result(SMALL_3D, [_row("tp"), _row("dp"), _row("pp")]),
    ]

    def test_passing_report_has_no_failures(self):
        assert check_report(self.PASSING) == []

    def test_bit_identity_failure_reported(self):
        results = [
            _result(SMALL_2D, [_row("tp"), _row("dp")], bit_identical=False),
            self.PASSING[1],
        ]
        failures = check_report(results)
        assert any("diverges" in f for f in failures)

    def test_hidden_floor_violation_reported(self):
        low = [_row("tp", hidden=0.05), _row("dp"), _row("pp")]
        failures = check_report([_result(SMALL_3D, low)])
        assert any("tensor-parallel" in f and "floor" in f for f in failures)

    def test_missing_family_reported(self):
        failures = check_report([_result(SMALL_2D, [_row("tp"), _row("dp")])])
        assert any("pipeline" in f for f in failures)

    def test_cost_model_case_must_not_be_slower(self):
        case = MeshStepCase(tp=2, dp=2, pp=2, forced=False)
        rows = [_row("tp"), _row("dp"), _row("pp")]
        slower = _result(case, rows, baseline=1.0, overlapped=2.0)
        failures = check_report([slower])
        assert any("slower" in f for f in failures)

    def test_custom_floors_override_defaults(self):
        rows = [_row("tp", hidden=0.4), _row("dp"), _row("pp")]
        result = _result(SMALL_3D, rows)
        assert check_report([result], floors={"tp": 0.3}) == []
        assert check_report([result], floors={"tp": 0.5}) != []


class TestReporting:
    def test_as_json_payload_shape(self):
        payload = as_json(self.results())
        assert payload["benchmark"] == "mesh-step"
        assert payload["floors"] == HIDDEN_FLOORS
        case = payload["cases"][0]
        assert case["label"] == SMALL_2D.label
        assert case["mesh"] == {"tp": 2, "dp": 2, "pp": 1}
        assert case["speedup"] == pytest.approx(2.0)
        assert case["bit_identical"] is True
        assert set(case["axes"]) == {"tp", "dp"}
        assert case["axes"]["tp"]["hidden_fraction"] == pytest.approx(0.9)

    def test_format_report_labels_and_verdict(self):
        text = format_report(self.results())
        assert SMALL_2D.label in text
        assert "exact" in text
        # only two of the three families present -> the check fails
        assert "FAIL" in text

    @staticmethod
    def results():
        return [_result(SMALL_2D, [_row("tp"), _row("dp")])]


class TestCaseLabels:
    def test_labels_encode_mesh_and_gating(self):
        assert MeshStepCase(tp=4, dp=2).label == "4x2/forced"
        assert (
            MeshStepCase(tp=2, dp=4, pp=2, forced=False).label
            == "2x4x2/cost-model"
        )
