"""Additional property and integration tests.

ShardIndex transformation algebra, standalone-pass properties under
random configurations, decoder-stack chaining, and trace validity on a
full compiled model layer.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.core.standalone import decompose_standalone_collectives
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import ShardIndex
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.models.configs import GPT_32B
from repro.models.transformer import decoder_layer_graph, decoder_stack_graph
from repro.perfsim.simulator import simulate_with_trace
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh
from repro.sharding.partitioner import partition


class TestShardIndexAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(
        coeff=st.integers(0, 3), offset=st.integers(0, 7),
        modulus=st.sampled_from([0, 2, 4, 8]), stride=st.integers(1, 8),
        div=st.sampled_from([1, 2, 4]), iter_coeff=st.integers(0, 3),
        pid=st.integers(0, 31), iteration=st.integers(0, 15),
    )
    def test_at_iteration_folds_exactly(
        self, coeff, offset, modulus, stride, div, iter_coeff, pid, iteration
    ):
        index = ShardIndex(coeff, offset, modulus, stride, div, iter_coeff)
        folded = index.at_iteration(iteration)
        assert folded.iter_coeff == 0
        assert folded.evaluate(pid) == index.evaluate(pid, iteration)

    @settings(max_examples=50, deadline=None)
    @given(
        offset=st.integers(0, 7), modulus=st.sampled_from([4, 8, 16]),
        iter_coeff=st.integers(1, 3), factor=st.sampled_from([2, 4]),
        step=st.integers(0, 3), outer=st.integers(0, 7),
        pid=st.integers(0, 15),
    )
    def test_stepped_reindexes_exactly(
        self, offset, modulus, iter_coeff, factor, step, outer, pid
    ):
        """i = factor * t + step must give the same shard."""
        index = ShardIndex(1, offset, modulus, 4, 1, iter_coeff)
        stepped = index.stepped(factor, step)
        original_iteration = factor * outer + step
        assert stepped.evaluate(pid, outer) == index.evaluate(
            pid, original_iteration
        )


class TestStandaloneProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        ring=st.sampled_from([2, 3, 4, 6, 8]),
        per_shard=st.integers(1, 3),
        width=st.integers(1, 4),
        bidirectional=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    def test_multi_user_gather_equivalence(
        self, ring, per_shard, width, bidirectional, seed
    ):
        rng = np.random.default_rng(seed)
        mesh = DeviceMesh.ring(ring)

        def build():
            builder = GraphBuilder("p")
            x = builder.parameter(
                Shape((per_shard, width), F32), name="x"
            )
            gathered = builder.all_gather(x, 0, mesh.rings("x"))
            builder.add(builder.negate(gathered), gathered)
            return builder.module

        full = rng.normal(size=(per_shard * ring, width))
        arguments = {
            "x": [s.copy() for s in np.split(full, ring, axis=0)]
        }
        reference_module = build()
        reference = run_spmd(
            reference_module, arguments, ring
        )[reference_module.root.name]

        module = build()
        config = OverlapConfig(
            use_cost_model=False, bidirectional=bidirectional,
            decompose_standalone=True,
        )
        decompose_standalone_collectives(module, mesh, config)
        assert module.count(Opcode.ALL_GATHER) == 0
        got = run_spmd(module, arguments, ring)[module.root.name]
        worst = max(np.abs(a - b).max() for a, b in zip(reference, got))
        assert worst < 1e-9


TINY = dataclasses.replace(
    GPT_32B, name="tiny", batch_size=8, seq_len=32, d_model=512, d_ff=2048,
    num_layers=2, mesh_x=2, mesh_y=4, num_chips=8,
)


class TestDecoderStack:
    def test_stack_chains_layers(self):
        stack = decoder_stack_graph(TINY, 3)
        # Layer 1's query is layer 0's output: the forward einsums of
        # L1 must reference L0.y_out through the shared re-gather.
        assert "L0.y_out" in stack.tensors
        assert "L2.y_out" in stack.tensors
        assert "L1.self.q_in" in stack.tensors

    def test_stack_einsum_count_scales(self):
        one = decoder_stack_graph(TINY, 1)
        three = decoder_stack_graph(TINY, 3)
        assert len(three.einsums) == 3 * len(one.einsums)

    def test_stack_partitions_and_compiles(self):
        mesh = TINY.mesh()
        module = partition(decoder_stack_graph(TINY, 2), mesh)
        result = compile_module(
            module, mesh, OverlapConfig(use_cost_model=False)
        )
        assert result.decomposed > 0
        module.verify()


class TestTraceOnRealLayer:
    def test_compiled_layer_trace_is_consistent(self):
        mesh = TINY.mesh()
        module = partition(decoder_layer_graph(TINY), mesh)
        compile_module(module, mesh, OverlapConfig(use_cost_model=False))
        report, trace = simulate_with_trace(module, mesh)
        trace.validate()
        assert trace.total_time == pytest.approx(report.total_time)
        # Transfers occupy both ring directions of both mesh axes.
        link_lanes = {r for r in trace.resources() if r.startswith("link:")}
        assert len(link_lanes) >= 2
