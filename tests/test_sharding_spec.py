"""Unit tests for ShardingSpec."""

import pytest

from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh
from repro.sharding.spec import ShardingSpec


class TestShardingSpec:
    def test_replicated(self):
        spec = ShardingSpec.replicated(3)
        assert spec.is_replicated
        assert spec.sharded_dims() == ()

    def test_on_dim(self):
        spec = ShardingSpec.on_dim(3, 1, "x")
        assert spec.axis_of_dim(1) == "x"
        assert spec.axis_of_dim(0) is None
        assert spec.dim_of_axis("x") == 1
        assert spec.dim_of_axis("y") is None

    def test_axis_reuse_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            ShardingSpec(("x", "x"))

    def test_with_dim(self):
        spec = ShardingSpec.replicated(2).with_dim(0, "y")
        assert spec.dim_axes == ("y", None)

    def test_shard_shape_1d(self):
        mesh = DeviceMesh.ring(4)
        spec = ShardingSpec.on_dim(2, 0, "x")
        assert spec.shard_shape(Shape((8, 6), F32), mesh).dims == (2, 6)

    def test_shard_shape_2d(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3})
        spec = ShardingSpec(("y", "x"))
        assert spec.shard_shape(Shape((6, 4), F32), mesh).dims == (2, 2)

    def test_shard_shape_indivisible_rejected(self):
        mesh = DeviceMesh.ring(4)
        spec = ShardingSpec.on_dim(1, 0, "x")
        with pytest.raises(ValueError, match="not divisible"):
            spec.shard_shape(Shape((6,), F32), mesh)

    def test_shard_shape_rank_mismatch_rejected(self):
        mesh = DeviceMesh.ring(2)
        with pytest.raises(ValueError, match="rank"):
            ShardingSpec.replicated(2).shard_shape(Shape((4,), F32), mesh)

    def test_num_shards(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3})
        assert ShardingSpec(("y", "x")).num_shards(mesh) == 6
        assert ShardingSpec((None, "x")).num_shards(mesh) == 2
        assert ShardingSpec.replicated(2).num_shards(mesh) == 1

    def test_repr(self):
        assert repr(ShardingSpec(("y", None, "x"))) == "[y,*,x]"
