"""Unit tests for GraphBuilder shape inference and validation."""

import numpy as np
import pytest

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import ShardIndex
from repro.hlo.module import VerificationError
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape


@pytest.fixture
def builder():
    return GraphBuilder("t")


@pytest.fixture
def param(builder):
    return builder.parameter(Shape((4, 6), F32), name="p")


GROUPS = [(0, 1, 2)]


class TestElementwise:
    def test_add_shape(self, builder, param):
        assert builder.add(param, param).shape.dims == (4, 6)

    def test_add_mismatched_shapes_rejected(self, builder, param):
        other = builder.parameter(Shape((4, 7), F32))
        with pytest.raises(ValueError, match="differ"):
            builder.add(param, other)

    def test_constant_shape_from_value(self, builder):
        constant = builder.constant(np.ones((2, 3)), F32)
        assert constant.shape.dims == (2, 3)
        assert constant.opcode is Opcode.CONSTANT


class TestDataMovement:
    def test_reshape(self, builder, param):
        assert builder.reshape(param, (24,)).shape.dims == (24,)

    def test_reshape_element_count_checked(self, builder, param):
        with pytest.raises(ValueError, match="element count"):
            builder.reshape(param, (23,))

    def test_transpose(self, builder, param):
        assert builder.transpose(param, (1, 0)).shape.dims == (6, 4)

    def test_transpose_bad_permutation(self, builder, param):
        with pytest.raises(ValueError, match="permutation"):
            builder.transpose(param, (0, 0))

    def test_slice(self, builder, param):
        assert builder.slice(param, 1, 2, 3).shape.dims == (4, 3)

    def test_slice_out_of_bounds(self, builder, param):
        with pytest.raises(ValueError, match="out of bounds"):
            builder.slice(param, 1, 5, 3)

    def test_pad(self, builder, param):
        assert builder.pad(param, 0, 1, 2).shape.dims == (7, 6)

    def test_concatenate(self, builder, param):
        other = builder.parameter(Shape((4, 2), F32))
        assert builder.concatenate([param, other], 1).shape.dims == (4, 8)

    def test_concatenate_empty_rejected(self, builder):
        with pytest.raises(ValueError, match="at least one"):
            builder.concatenate([], 0)

    def test_dynamic_slice(self, builder, param):
        ds = builder.dynamic_slice(param, 1, ShardIndex.constant(0), 2)
        assert ds.shape.dims == (4, 2)

    def test_dynamic_update_slice(self, builder, param):
        update = builder.parameter(Shape((4, 2), F32))
        dus = builder.dynamic_update_slice(
            param, update, 1, ShardIndex.constant(0)
        )
        assert dus.shape.dims == (4, 6)

    def test_dynamic_update_slice_oversized_update(self, builder, param):
        update = builder.parameter(Shape((4, 8), F32))
        with pytest.raises(ValueError, match="larger"):
            builder.dynamic_update_slice(param, update, 1, ShardIndex.constant(0))


class TestCollectives:
    def test_all_gather_scales_dim(self, builder, param):
        assert builder.all_gather(param, 0, GROUPS).shape.dims == (12, 6)

    def test_reduce_scatter_divides_dim(self, builder):
        value = builder.parameter(Shape((6, 6), F32))
        assert builder.reduce_scatter(value, 0, GROUPS).shape.dims == (2, 6)

    def test_all_reduce_preserves_shape(self, builder, param):
        assert builder.all_reduce(param, GROUPS).shape.dims == (4, 6)

    def test_all_to_all_shape(self, builder):
        value = builder.parameter(Shape((6, 6), F32))
        result = builder.all_to_all(value, 0, 1, GROUPS)
        assert result.shape.dims == (2, 18)

    def test_uneven_groups_rejected(self, builder, param):
        with pytest.raises(ValueError, match="uniform"):
            builder.all_gather(param, 0, [(0, 1), (2,)])

    def test_empty_groups_rejected(self, builder, param):
        with pytest.raises(ValueError, match="at least one"):
            builder.all_reduce(param, [])

    def test_collective_permute(self, builder, param):
        permute = builder.collective_permute(param, [(0, 1), (1, 0)])
        assert permute.shape.dims == (4, 6)
        assert permute.pairs == [(0, 1), (1, 0)]

    def test_collective_permute_direction_attr(self, builder, param):
        permute = builder.collective_permute(
            param, [(0, 1), (1, 0)], direction="plus"
        )
        assert permute.attrs["direction"] == "plus"

    def test_start_done_pair(self, builder, param):
        start = builder.collective_permute_start(param, [(0, 1), (1, 0)])
        done = builder.collective_permute_done(start)
        assert done.operands == [start]
        builder.module.verify()

    def test_done_requires_start(self, builder, param):
        with pytest.raises(ValueError, match="start"):
            builder.collective_permute_done(param)


class TestInsertionMode:
    def test_into_buffers_until_flush(self, builder, param):
        anchor = builder.add(param, param)
        inserter = GraphBuilder.into(builder.module, anchor)
        copy = inserter.copy(param)
        assert copy not in builder.module
        inserter.flush()
        assert copy in builder.module
        names = [i.name for i in builder.module]
        assert names.index(copy.name) == names.index(anchor.name) - 1

    def test_flush_without_pending_is_noop(self, builder, param):
        anchor = builder.add(param, param)
        GraphBuilder.into(builder.module, anchor).flush()
        assert len(builder.module) == 2
