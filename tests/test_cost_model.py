"""Tests for the latency cost model and the Section 5.5 gate."""

import dataclasses

import pytest

from repro.core.cost_model import OverlapEstimate, estimate_overlap
from repro.core.patterns import find_candidates
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16, F32
from repro.hlo.shapes import Shape
from repro.perfsim.costs import CostModel
from repro.perfsim.efficiency import EfficiencyModel
from repro.perfsim.hardware import SLOW_INTERCONNECT, TPU_V4
from repro.sharding.mesh import DeviceMesh

COST = CostModel(TPU_V4)
MESH = DeviceMesh.ring(4)
RING_PAIRS = [(0, 3), (1, 0), (2, 1), (3, 2)]


def _einsum(m=256, k=512, n=1024):
    builder = GraphBuilder("m")
    lhs = builder.parameter(Shape((m, k), BF16))
    rhs = builder.parameter(Shape((k, n), BF16))
    return builder.einsum("bf,fh->bh", lhs, rhs)


class TestComputeCosts:
    def test_einsum_time_scales_with_flops(self):
        small = COST.einsum_time(_einsum(m=128))
        large = COST.einsum_time(_einsum(m=1024))
        assert large > small

    def test_einsum_time_at_least_kernel_overhead(self):
        assert COST.einsum_time(_einsum(1, 1, 1)) >= TPU_V4.kernel_overhead

    def test_small_extents_lose_efficiency(self):
        """Time per FLOP grows when an extent shrinks below the MXU tile."""
        wide = COST.einsum_time(_einsum(k=4096))
        narrow = COST.einsum_time(_einsum(k=32))
        flops_wide = 2 * 256 * 4096 * 1024
        flops_narrow = 2 * 256 * 32 * 1024
        assert narrow / flops_narrow > wide / flops_wide

    def test_memory_bound_add(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((1024, 1024), F32))
        add = builder.add(a, a)
        expected = 3 * 1024 * 1024 * 4 / TPU_V4.hbm_bandwidth
        assert COST.memory_bound_time(add) == pytest.approx(
            expected + TPU_V4.kernel_overhead
        )

    def test_dynamic_update_slice_charges_update_only(self):
        from repro.hlo.instruction import ShardIndex

        builder = GraphBuilder("m")
        target = builder.parameter(Shape((4096, 4096), F32))
        update = builder.parameter(Shape((4096, 64), F32))
        dus = builder.dynamic_update_slice(
            target, update, 1, ShardIndex.constant(0)
        )
        expected = 2 * update.shape.byte_size / TPU_V4.hbm_bandwidth
        assert COST.memory_bound_time(dus) == pytest.approx(
            expected + TPU_V4.kernel_overhead
        )


class TestCommunicationCosts:
    def _gather(self, shard_elems=1 << 20, ring=4):
        builder = GraphBuilder("m")
        value = builder.parameter(Shape((shard_elems,), BF16))
        mesh = DeviceMesh.ring(ring)
        return builder.all_gather(value, 0, mesh.rings("x"))

    def test_all_gather_uses_both_directions(self):
        gather = self._gather()
        shard_bytes = gather.operands[0].shape.byte_size
        expected = 3 * shard_bytes / (2 * TPU_V4.link_bandwidth)
        assert COST.collective_time(gather) == pytest.approx(expected)

    def test_all_reduce_twice_reduce_scatter(self):
        builder = GraphBuilder("m")
        value = builder.parameter(Shape((1 << 20,), BF16))
        mesh = DeviceMesh.ring(4)
        rs = builder.reduce_scatter(value, 0, mesh.rings("x"))
        ar = builder.all_reduce(value, mesh.rings("x"))
        assert COST.collective_time(ar) == pytest.approx(
            2 * COST.collective_time(rs), rel=0.05
        )

    def test_single_device_collective_is_free(self):
        builder = GraphBuilder("m")
        value = builder.parameter(Shape((1 << 20,), BF16))
        gather = builder.all_gather(value, 0, [(0,)])
        assert COST.collective_time(gather) == 0.0

    def test_permute_time_scales_with_hops(self):
        builder = GraphBuilder("m")
        value = builder.parameter(Shape((1 << 20,), BF16))
        one_hop = builder.collective_permute(
            value, [(0, 3), (1, 0), (2, 1), (3, 2)]
        )
        two_hop = builder.collective_permute(
            value, [(0, 2), (1, 3), (2, 0), (3, 1)]
        )
        assert COST.permute_time(two_hop, MESH) == pytest.approx(
            2 * COST.permute_time(one_hop, MESH)
        )

    def test_non_collective_raises(self):
        with pytest.raises(ValueError, match="not a sync collective"):
            COST.collective_time(_einsum())


class TestGate:
    def _candidate(self, m, shard_elems, ring=4, chip=TPU_V4):
        builder = GraphBuilder("g")
        mesh = DeviceMesh.ring(ring)
        lhs = builder.parameter(Shape((m, 512), BF16))
        rhs = builder.parameter(Shape((512, shard_elems), BF16))
        gathered = builder.all_gather(rhs, 1, mesh.rings("x"))
        builder.einsum("bf,fh->bh", lhs, gathered)
        (candidate,) = find_candidates(builder.module)
        return candidate

    def test_large_compute_enables_overlap(self):
        # Compute dwarfs the ring time while the original collective is
        # still worth hiding.
        candidate = self._candidate(m=16384, shard_elems=32768)
        estimate = estimate_overlap(COST, candidate, bidirectional=True)
        assert estimate.beneficial
        assert estimate.estimated_speedup > 1.0

    def test_tiny_compute_disables_overlap(self):
        cost = CostModel(SLOW_INTERCONNECT)
        candidate = self._candidate(m=8, shard_elems=1 << 16)
        estimate = estimate_overlap(cost, candidate, bidirectional=False)
        assert not estimate.beneficial

    def test_unidirectional_ring_costs_twice_bidirectional(self):
        candidate = self._candidate(m=1024, shard_elems=4096, ring=8)
        uni = estimate_overlap(COST, candidate, bidirectional=False)
        bidi = estimate_overlap(COST, candidate, bidirectional=True)
        # 7 unidirectional steps vs 3 bidirectional steps + 1 prologue.
        assert uni.comm_t_ring == pytest.approx(7 / 3 * bidi.comm_t_ring)
        assert bidi.extra_t > 0.0
        assert uni.extra_t == 0.0

    def test_decomposed_compute_slower_than_original(self):
        """Partial einsums lose matmul efficiency (small extents)."""
        candidate = self._candidate(m=1024, shard_elems=256, ring=8)
        estimate = estimate_overlap(COST, candidate, bidirectional=False)
        assert estimate.comp_t_decomposed > estimate.comp_t

    def test_pair_split_ring2_halves_transfer(self):
        candidate = self._candidate(m=1024, shard_elems=4096, ring=2)
        bidi = estimate_overlap(COST, candidate, bidirectional=True)
        uni = estimate_overlap(COST, candidate, bidirectional=False)
        assert bidi.comm_t_ring == pytest.approx(uni.comm_t_ring / 2)
        assert bidi.extra_t == 0.0

    def test_estimate_speedup_of_zero_overlap(self):
        estimate = OverlapEstimate(
            comp_t=1.0, comp_t_decomposed=1.0, comm_t=0.5,
            comm_t_ring=0.4, extra_t=0.0,
        )
        assert estimate.estimated_speedup == pytest.approx(1.5)


class TestEfficiencyModel:
    def test_monotone_in_every_extent(self):
        model = EfficiencyModel()
        assert model(64, 512, 512) < model(128, 512, 512)
        assert model(512, 64, 512) < model(512, 128, 512)
        assert model(512, 512, 64) < model(512, 512, 128)

    def test_bounded_by_base(self):
        model = EfficiencyModel(base=0.9)
        assert model(10**6, 10**6, 10**6) < 0.9

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            EfficiencyModel()(0, 4, 4)


class TestHardware:
    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            dataclasses.replace(TPU_V4, link_bandwidth=0.0)
