"""Semantic-equivalence tests for the Looped CollectiveEinsum rewrite.

The central claim of the paper: the decomposed loop is semantically
equivalent to the original collective/einsum pair. Every variant (three
AllGather cases, both ReduceScatter orientations, unidirectional /
unrolled / bidirectional / pair-split, ring sizes 2-8, 1D and 2D meshes)
is executed against the untransformed module on the functional executor.
"""

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.decompose import (
    DecompositionError,
    decompose_candidate,
    find_ring_axis,
)
from repro.core.patterns import find_candidates
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh

from helpers import split_shards

VARIANTS = [
    pytest.param(OverlapConfig(unroll=False, bidirectional=False),
                 id="plain"),
    pytest.param(OverlapConfig(unroll=True, bidirectional=False),
                 id="unrolled"),
    pytest.param(OverlapConfig(unroll=False, bidirectional=True),
                 id="bidirectional"),
    pytest.param(OverlapConfig(unroll=True, bidirectional=True),
                 id="unrolled-bidirectional"),
    # Adaptive-rebalancing variants (PR 6): schedule-only edits, so the
    # same bit-exact equivalence must hold.
    pytest.param(OverlapConfig(transfer_granularity=2),
                 id="granularity-2"),
    pytest.param(OverlapConfig(unroll=False, bidirectional=False,
                               transfer_granularity=4),
                 id="plain-granularity-4"),
    pytest.param(OverlapConfig(unroll=False, bidirectional=False,
                               preferred_direction="plus"),
                 id="mirrored-plus"),
    pytest.param(OverlapConfig(unroll=False, bidirectional=False,
                               preferred_direction="minus"),
                 id="explicit-minus"),
    pytest.param(OverlapConfig(pair_split=0.75),
                 id="pair-split-75"),
]

RINGS = [2, 3, 4, 8]


def decompose_only(module, mesh, config):
    """Apply just the decomposition (no fusion/scheduling) to module."""
    (candidate,) = find_candidates(module)
    return decompose_candidate(module, candidate, mesh, config)


def check_equivalence(build, mesh, arguments, config):
    reference_module = build(mesh)
    reference = run_spmd(reference_module, arguments, mesh.num_devices)
    module = build(mesh)
    loop = decompose_only(module, mesh, config)
    result = run_spmd(module, arguments, mesh.num_devices)
    expected = reference[reference_module.root.name]
    got = result[module.root.name]
    worst = max(np.abs(a - b).max() for a, b in zip(expected, got))
    assert worst < 1e-9, f"diverged by {worst:.2e}"
    return loop


class TestAllGatherCase1:
    """LHS partitioned along a non-contracting dimension (Figure 4)."""

    @staticmethod
    def build(mesh):
        # Batch 24 divides every ring size tested.
        n = mesh.num_devices
        builder = GraphBuilder("case1")
        lhs = builder.parameter(Shape((24 // n, 5), F32), name="lhs")
        rhs = builder.parameter(Shape((5, 7), F32), name="rhs")
        gathered = builder.all_gather(lhs, 0, mesh.rings("x"))
        builder.einsum("bf,fh->bh", gathered, rhs)
        return builder.module

    @pytest.mark.parametrize("config", VARIANTS)
    @pytest.mark.parametrize("ring", RINGS)
    def test_equivalence(self, rng, ring, config):
        mesh = DeviceMesh.ring(ring)
        lhs = rng.normal(size=(24, 5))
        rhs = rng.normal(size=(5, 7))
        arguments = {
            "lhs": split_shards(lhs, 0, ring),
            "rhs": [rhs.copy() for _ in range(ring)],
        }
        check_equivalence(self.build, mesh, arguments, config)

    def test_loop_metadata(self, rng):
        mesh = DeviceMesh.ring(4)
        module = self.build(mesh)
        loop = decompose_only(
            module, mesh, OverlapConfig(unroll=True, bidirectional=False)
        )
        assert loop.iterations == 4
        assert len(loop.permutes) == 3        # N-1 permutes for AllGather
        assert len(loop.partial_einsums) == 4
        assert not loop.bidirectional

    def test_bidirectional_halves_iterations(self):
        mesh = DeviceMesh.ring(8)
        module = self.build(mesh)
        loop = decompose_only(
            module, mesh, OverlapConfig(unroll=True, bidirectional=True)
        )
        assert loop.iterations == 4
        assert loop.bidirectional

    def test_plain_variant_inserts_copies(self):
        mesh = DeviceMesh.ring(4)
        module = self.build(mesh)
        decompose_only(
            module, mesh, OverlapConfig(unroll=False, bidirectional=False)
        )
        assert module.count(Opcode.COPY) == 3  # one per loop-carried permute

    def test_unrolled_variant_has_no_copies(self):
        mesh = DeviceMesh.ring(4)
        module = self.build(mesh)
        decompose_only(
            module, mesh, OverlapConfig(unroll=True, bidirectional=False)
        )
        assert module.count(Opcode.COPY) == 0

    def test_original_pair_removed(self):
        mesh = DeviceMesh.ring(4)
        module = self.build(mesh)
        decompose_only(module, mesh, OverlapConfig())
        assert module.count(Opcode.ALL_GATHER) == 0


class TestAllGatherCase2:
    """LHS partitioned along a contracting dimension."""

    @staticmethod
    def build(mesh):
        n = mesh.num_devices
        builder = GraphBuilder("case2")
        lhs = builder.parameter(Shape((6, 24 // n), F32), name="lhs")
        rhs = builder.parameter(Shape((24, 7), F32), name="rhs")
        gathered = builder.all_gather(lhs, 1, mesh.rings("x"))
        builder.einsum("bf,fh->bh", gathered, rhs)
        return builder.module

    @pytest.mark.parametrize("config", VARIANTS)
    @pytest.mark.parametrize("ring", RINGS)
    def test_equivalence(self, rng, ring, config):
        mesh = DeviceMesh.ring(ring)
        lhs = rng.normal(size=(6, 24))
        rhs = rng.normal(size=(24, 7))
        arguments = {
            "lhs": split_shards(lhs, 1, ring),
            "rhs": [rhs.copy() for _ in range(ring)],
        }
        check_equivalence(self.build, mesh, arguments, config)

    def test_emits_dynamic_slices_on_other_operand(self):
        mesh = DeviceMesh.ring(4)
        module = self.build(mesh)
        decompose_only(
            module, mesh, OverlapConfig(unroll=True, bidirectional=False)
        )
        assert module.count(Opcode.DYNAMIC_SLICE) == 4
        # Case 2 accumulates with Add, not DynamicUpdateSlice.
        assert module.count(Opcode.DYNAMIC_UPDATE_SLICE) == 0
        assert module.count(Opcode.ADD) == 4


class TestAllGatherCase3:
    """LHS partitioned along a batch dimension."""

    @staticmethod
    def build(mesh):
        n = mesh.num_devices
        builder = GraphBuilder("case3")
        lhs = builder.parameter(Shape((24 // n, 3, 4), F32), name="lhs")
        rhs = builder.parameter(Shape((24, 4, 5), F32), name="rhs")
        gathered = builder.all_gather(lhs, 0, mesh.rings("x"))
        builder.einsum("gbf,gfh->gbh", gathered, rhs)
        return builder.module

    @pytest.mark.parametrize("config", VARIANTS)
    @pytest.mark.parametrize("ring", RINGS)
    def test_equivalence(self, rng, ring, config):
        mesh = DeviceMesh.ring(ring)
        lhs = rng.normal(size=(24, 3, 4))
        rhs = rng.normal(size=(24, 4, 5))
        arguments = {
            "lhs": split_shards(lhs, 0, ring),
            "rhs": [rhs.copy() for _ in range(ring)],
        }
        check_equivalence(self.build, mesh, arguments, config)

    def test_emits_slice_and_update(self):
        mesh = DeviceMesh.ring(4)
        module = self.build(mesh)
        decompose_only(
            module, mesh, OverlapConfig(unroll=True, bidirectional=False)
        )
        # Case 3 needs both the other-operand slice and the output update.
        assert module.count(Opcode.DYNAMIC_SLICE) == 4
        assert module.count(Opcode.DYNAMIC_UPDATE_SLICE) == 4


class TestAllGatherRhs:
    """The mirrored pattern: the RHS operand is gathered."""

    @staticmethod
    def build(mesh):
        n = mesh.num_devices
        builder = GraphBuilder("rhs")
        lhs = builder.parameter(Shape((6, 5), F32), name="lhs")
        rhs = builder.parameter(Shape((5, 24 // n), F32), name="rhs")
        gathered = builder.all_gather(rhs, 1, mesh.rings("x"))
        builder.einsum("bf,fh->bh", lhs, gathered)
        return builder.module

    @pytest.mark.parametrize("config", VARIANTS)
    @pytest.mark.parametrize("ring", RINGS)
    def test_equivalence(self, rng, ring, config):
        mesh = DeviceMesh.ring(ring)
        lhs = rng.normal(size=(6, 5))
        rhs = rng.normal(size=(5, 24))
        arguments = {
            "lhs": [lhs.copy() for _ in range(ring)],
            "rhs": split_shards(rhs, 1, ring),
        }
        check_equivalence(self.build, mesh, arguments, config)


class TestEinsumReduceScatter:
    """Einsum followed by a ReduceScatter of its result (Figure 5)."""

    @staticmethod
    def build_rhs_scatter(mesh):
        builder = GraphBuilder("rs")
        lhs = builder.parameter(Shape((6, 5), F32), name="lhs")
        rhs = builder.parameter(Shape((5, 24), F32), name="rhs")
        out = builder.einsum("bf,fh->bh", lhs, rhs)
        builder.reduce_scatter(out, 1, mesh.rings("x"))
        return builder.module

    @staticmethod
    def build_lhs_scatter(mesh):
        builder = GraphBuilder("rs-lhs")
        lhs = builder.parameter(Shape((24, 5), F32), name="lhs")
        rhs = builder.parameter(Shape((5, 7), F32), name="rhs")
        out = builder.einsum("bf,fh->bh", lhs, rhs)
        builder.reduce_scatter(out, 0, mesh.rings("x"))
        return builder.module

    @pytest.mark.parametrize("config", VARIANTS)
    @pytest.mark.parametrize("ring", RINGS)
    @pytest.mark.parametrize("orientation", ["rhs", "lhs"])
    def test_equivalence(self, rng, ring, config, orientation):
        mesh = DeviceMesh.ring(ring)
        build = (
            self.build_rhs_scatter if orientation == "rhs"
            else self.build_lhs_scatter
        )
        if orientation == "rhs":
            arguments = {
                "lhs": [rng.normal(size=(6, 5)) for _ in range(ring)],
                "rhs": [rng.normal(size=(5, 24)) for _ in range(ring)],
            }
        else:
            arguments = {
                "lhs": [rng.normal(size=(24, 5)) for _ in range(ring)],
                "rhs": [rng.normal(size=(5, 7)) for _ in range(ring)],
            }
        check_equivalence(build, mesh, arguments, config)

    def test_plain_uses_n_permutes(self):
        """Algorithm 1 sends the accumulator on every iteration."""
        mesh = DeviceMesh.ring(4)
        module = self.build_rhs_scatter(mesh)
        loop = decompose_only(
            module, mesh, OverlapConfig(unroll=False, bidirectional=False)
        )
        assert len(loop.permutes) == 4

    def test_unrolled_dual_chain_epilogue(self):
        """Unrolled RS: N/2 iterations, hop-2 chains, epilogue permute."""
        mesh = DeviceMesh.ring(8)
        module = self.build_rhs_scatter(mesh)
        loop = decompose_only(
            module, mesh, OverlapConfig(unroll=True, bidirectional=False)
        )
        assert loop.iterations == 4
        assert loop.unrolled
        # Chain A: 3 permutes, chain B: 4, epilogue: 1.
        assert len(loop.permutes) == 8


class TestTwoDimensionalMesh:
    @pytest.mark.parametrize("axis", ["x", "y"])
    @pytest.mark.parametrize("config", VARIANTS)
    def test_gather_along_either_axis(self, rng, axis, config):
        mesh = DeviceMesh.grid({"x": 2, "y": 4})
        size = mesh.axis_size(axis)

        def build(mesh):
            builder = GraphBuilder("2d")
            lhs = builder.parameter(Shape((6, 5), F32), name="lhs")
            rhs = builder.parameter(Shape((5, 24 // size), F32), name="rhs")
            gathered = builder.all_gather(rhs, 1, mesh.rings(axis))
            builder.einsum("bf,fh->bh", lhs, gathered)
            return builder.module

        lhs = rng.normal(size=(6, 5))
        rhs = rng.normal(size=(5, 24))
        pieces = np.split(rhs, size, axis=1)
        shards = [
            pieces[mesh.position_in_ring(d, axis)].copy()
            for d in range(mesh.num_devices)
        ]
        arguments = {
            "lhs": [lhs.copy() for _ in range(mesh.num_devices)],
            "rhs": shards,
        }
        check_equivalence(build, mesh, arguments, config)


class TestErrors:
    def test_unknown_ring_axis(self):
        mesh = DeviceMesh.ring(4)
        with pytest.raises(DecompositionError, match="no mesh axis"):
            find_ring_axis(mesh, [(0, 2)])

    def test_ring_below_minimum(self):
        mesh = DeviceMesh.ring(2)
        module = TestAllGatherCase1.build(mesh)
        (candidate,) = find_candidates(module)
        with pytest.raises(DecompositionError, match="minimum"):
            decompose_candidate(
                module, candidate, mesh, OverlapConfig(min_ring_size=4)
            )

    def test_indivisible_scatter_dim_rejected_upstream(self):
        mesh = DeviceMesh.ring(4)
        builder = GraphBuilder("bad")
        lhs = builder.parameter(Shape((6, 5), F32))
        rhs = builder.parameter(Shape((5, 24), F32))
        out = builder.einsum("bf,fh->bh", lhs, rhs)
        with pytest.raises(ValueError, match="not divisible"):
            builder.reduce_scatter(out, 0, mesh.rings("x"))  # 6 % 4 != 0
