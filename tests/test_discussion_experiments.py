"""Tests for the Section 7.2/7.3 studies and the design ablations."""

import dataclasses

import pytest

from repro.experiments import ablations, interconnect_sweep, pipeline_parallel
from repro.experiments.common import clear_cache
from repro.models.configs import GPT_32B
from repro.perfsim.hardware import SLOW_INTERCONNECT

SMALL = dataclasses.replace(
    GPT_32B, name="small", batch_size=64, seq_len=512, d_model=2048,
    d_ff=8192, num_layers=4, mesh_x=4, mesh_y=8, num_chips=32,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestInterconnectSweep:
    def test_comm_fraction_monotone_in_bandwidth(self):
        rows = interconnect_sweep.run(SMALL, bandwidths=(10e9, 45e9, 180e9))
        fractions = [r.baseline_comm_fraction for r in rows]
        assert fractions == sorted(fractions, reverse=True)

    def test_utilization_monotone_in_bandwidth(self):
        rows = interconnect_sweep.run(SMALL, bandwidths=(10e9, 45e9, 180e9))
        utils = [r.overlapped_utilization for r in rows]
        assert utils == sorted(utils)

    def test_benefit_shrinks_at_the_extremes(self):
        """Section 7.2: slow links cannot be covered, fast links leave
        nothing to hide — the benefit peaks in between."""
        rows = interconnect_sweep.run(
            SMALL, bandwidths=(5e9, 45e9, 720e9)
        )
        middle = rows[1].speedup
        assert middle >= rows[0].speedup - 0.02
        assert middle > rows[2].speedup
        assert rows[2].speedup < 1.10  # fast links: little left to hide

    def test_report_renders(self):
        rows = interconnect_sweep.run(SMALL, bandwidths=(45e9, 90e9))
        text = interconnect_sweep.format_report(rows)
        assert "45.0 GB/s" in text


class TestFusionAblation:
    def test_overlap_aware_fusion_wins(self):
        rows = ablations.fusion_priority(blocks=(2, 4))
        for row in rows:
            assert row.gain > 1.1

    def test_gain_independent_of_chain_length(self):
        rows = ablations.fusion_priority(blocks=(2, 8))
        assert rows[0].gain == pytest.approx(rows[1].gain, rel=0.05)


class TestCostGateAblation:
    def test_gate_prevents_regression_on_narrow_model(self):
        (row, _) = ablations.cost_gate(chip=SLOW_INTERCONNECT)
        assert row.gated_time <= row.baseline_time * 1.001
        assert row.gate_saves_regression
        # Without the gate the decomposition is allowed to regress.
        assert row.ungated_time > row.gated_time


class TestMemoryAblation:
    def test_overlap_extends_liveness(self):
        (row,) = ablations.scheduling_memory((SMALL,))
        assert row.overlapped_peak_bytes >= row.baseline_peak_bytes
        assert row.overhead < 3.0  # but not unboundedly

    def test_overhead_property(self):
        row = ablations.MemoryRow("m", 100, 150)
        assert row.overhead == pytest.approx(1.5)


class TestPipelineParallel:
    SPLITS = ((1, 4, 8), (2, 4, 4), (4, 2, 4))

    def test_step_times_positive_and_finite(self):
        rows = pipeline_parallel.run(SMALL, splits=self.SPLITS)
        for row in rows:
            assert row.baseline_step > 0
            assert row.overlapped_step > 0
            assert row.overlapped_step <= row.baseline_step * 1.02

    def test_bubble_fraction_grows_with_stages(self):
        rows = pipeline_parallel.run(SMALL, splits=self.SPLITS)
        bubbles = [r.bubble_fraction for r in rows]
        assert bubbles == sorted(bubbles)
        assert bubbles[0] == 0.0

    def test_overlap_benefit_larger_with_wider_tensor_parallelism(self):
        """Section 7.3: the optimization favors splits that lean on
        intra-layer parallelism (whose communication it can hide)."""
        rows = pipeline_parallel.run(SMALL, splits=self.SPLITS)
        assert rows[0].speedup >= rows[-1].speedup - 0.02

    def test_layer_split_must_divide(self):
        with pytest.raises(ValueError, match="split"):
            pipeline_parallel.run(SMALL, splits=((3, 4, 8),))

    def test_report_renders(self):
        rows = pipeline_parallel.run(SMALL, splits=self.SPLITS)
        text = pipeline_parallel.format_report(rows)
        assert "best split" in text
