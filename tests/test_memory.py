"""Tests for the liveness / peak-memory analysis."""

import pytest

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.runtime.memory import profile_memory


def test_single_chain_peak():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((1024,), F32), name="a")  # 4 KiB
    b = builder.negate(a)
    builder.negate(b)
    profile = profile_memory(builder.module)
    # At most two 4 KiB values live at once (operand + result).
    assert profile.peak_bytes == 2 * 4096


def test_long_lived_value_raises_peak():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((1024,), F32), name="a")
    b = builder.negate(a)
    c = builder.negate(b)
    builder.add(c, a)  # keeps `a` live across the whole chain
    profile = profile_memory(builder.module)
    assert profile.peak_bytes == 3 * 4096


def test_schedule_order_changes_peak():
    """Producing all values up front holds them live simultaneously."""

    def build(interleaved):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((1024,), F32), name="a")
        if interleaved:
            total = builder.negate(a)
            for _ in range(3):
                total = builder.add(total, builder.negate(a))
        else:
            values = [builder.negate(a) for _ in range(4)]
            total = values[0]
            for value in values[1:]:
                total = builder.add(total, value)
        return builder.module

    eager_peak = profile_memory(build(False)).peak_bytes
    interleaved_peak = profile_memory(build(True)).peak_bytes
    assert interleaved_peak < eager_peak


def test_in_flight_transfer_keeps_operand_alive():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((1024,), F32), name="a")
    start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
    b = builder.negate(a)
    c = builder.negate(b)
    done = builder.collective_permute_done(start)
    builder.add(done, c)
    profile = profile_memory(builder.module)
    # `a` must stay live until the done retires even though its last
    # direct compute use is earlier.
    assert profile.peak_bytes >= 3 * 4096


def test_trace_length_matches_instructions():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((8,), F32), name="a")
    builder.negate(a)
    profile = profile_memory(builder.module)
    assert len(profile.live_bytes_trace) == 2


def test_peak_mib_conversion():
    builder = GraphBuilder("m")
    builder.parameter(Shape((1024 * 1024,), F32), name="a")  # 4 MiB
    profile = profile_memory(builder.module)
    assert profile.peak_mib == pytest.approx(4.0)
