"""Unit tests for Instruction, ShardIndex and ring-pair construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hlo.dtypes import F32
from repro.hlo.instruction import (
    Instruction,
    ShardIndex,
    collective_permute_pairs,
)
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape


class TestShardIndex:
    def test_constant_ignores_partition(self):
        index = ShardIndex.constant(5)
        assert index.evaluate(0) == 5
        assert index.evaluate(17) == 5

    def test_shard_selects_ring_offset(self):
        # Shard (pid + 2) mod 4, shard size 8.
        index = ShardIndex.shard(coeff=1, offset=2, num_shards=4, shard_size=8)
        assert index.shard_id(0) == 2
        assert index.shard_id(3) == 1
        assert index.evaluate(3) == 8

    def test_div_extracts_mesh_coordinate(self):
        # Mesh [x=2, y=4] row-major: coordinate along x is pid // 4.
        index = ShardIndex.shard(1, 0, num_shards=2, shard_size=3, div=4)
        assert index.shard_id(0) == 0
        assert index.shard_id(3) == 0
        assert index.shard_id(4) == 1
        assert index.evaluate(7) == 3

    def test_zero_modulus_disables_wraparound(self):
        index = ShardIndex(coeff=2, offset=1, modulus=0, stride=10)
        assert index.evaluate(3) == 70

    @given(st.integers(0, 63), st.integers(0, 15), st.integers(1, 16))
    def test_shard_id_always_in_range(self, pid, offset, num_shards):
        index = ShardIndex.shard(1, offset, num_shards, shard_size=4)
        assert 0 <= index.shard_id(pid) < num_shards


class TestPermutePairs:
    def test_shift_plus_one_sends_left(self):
        # The paper's {0, N-1}, {1, 0}, ... pattern.
        pairs = collective_permute_pairs((0, 1, 2, 3), shift=1)
        assert pairs == [(0, 3), (1, 0), (2, 1), (3, 2)]

    def test_shift_minus_one_sends_right(self):
        pairs = collective_permute_pairs((0, 1, 2, 3), shift=-1)
        assert pairs == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_shift_two_hops(self):
        pairs = collective_permute_pairs((0, 1, 2, 3), shift=2)
        assert pairs == [(0, 2), (1, 3), (2, 0), (3, 1)]

    def test_non_contiguous_group(self):
        pairs = collective_permute_pairs((0, 2, 4), shift=1)
        assert pairs == [(0, 4), (2, 0), (4, 2)]

    @given(st.integers(2, 8), st.integers(-3, 3))
    def test_pairs_form_permutation(self, size, shift):
        group = tuple(range(size))
        pairs = collective_permute_pairs(group, shift)
        assert sorted(s for s, _ in pairs) == list(group)
        assert sorted(d for _, d in pairs) == list(group)


class TestInstruction:
    def _make(self, name="a"):
        return Instruction(name, Opcode.PARAMETER, Shape((2,), F32))

    def test_fresh_names_unique(self):
        assert Instruction.fresh_name("x") != Instruction.fresh_name("x")

    def test_replace_operand(self):
        a, b, c = self._make("a"), self._make("b"), self._make("c")
        add = Instruction("add", Opcode.ADD, Shape((2,), F32), [a, b])
        add.replace_operand(a, c)
        assert add.operands == [c, b]

    def test_replace_operand_all_occurrences(self):
        a, c = self._make("a"), self._make("c")
        add = Instruction("add", Opcode.ADD, Shape((2,), F32), [a, a])
        add.replace_operand(a, c)
        assert add.operands == [c, c]

    def test_identity_equality(self):
        assert self._make("a") != self._make("a")

    def test_is_communication(self):
        start = Instruction(
            "s", Opcode.COLLECTIVE_PERMUTE_START, Shape((2,), F32)
        )
        assert start.is_communication()
        assert not self._make().is_communication()
