"""Tests for the resilient executor: retry/timeout, guardrails, fallback."""

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.faults.errors import (
    DeviceFailureError,
    LinkDownError,
    PayloadCorruptionError,
    ShapeFaultError,
    TransferTimeoutError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.runtime.resilient import (
    ResilientExecutor,
    RetryPolicy,
    run_with_fallback,
)
from repro.sharding.mesh import DeviceMesh

PAIRS = [(0, 1), (1, 0)]


def permute_module():
    """One async permute (start/done) followed by an add."""
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    start = builder.collective_permute_start(a, PAIRS)
    done = builder.collective_permute_done(start)
    builder.add(done, a)
    return builder.module


def run_resilient(plan=None, policy=None, xs=None):
    xs = xs if xs is not None else [np.ones(2), 2 * np.ones(2)]
    module = permute_module()
    executor = ResilientExecutor(
        2,
        injector=FaultInjector(plan) if plan is not None else None,
        policy=policy,
    )
    values = executor.run(module, {"a": xs})[module.root.name]
    return values, executor.stats


def plan_of(*specs, seed=11):
    return FaultPlan(seed=seed, specs=tuple(specs))


def expected_values(xs):
    module = permute_module()
    return run_spmd(module, {"a": xs}, 2)[module.root.name]


class TestCleanPath:
    def test_matches_base_executor(self, rng):
        xs = [rng.normal(size=2), rng.normal(size=2)]
        got, stats = run_resilient(xs=xs)
        for a, b in zip(got, expected_values(xs)):
            np.testing.assert_array_equal(a, b)
        assert stats.transfers == 1
        assert stats.retries == 0

    def test_healthy_plan_injects_nothing(self):
        _, stats = run_resilient(plan=FaultPlan.healthy())
        assert stats.timeouts == 0
        assert stats.virtual_delay == 0.0


class TestRetryAndTimeout:
    def test_short_delay_delivered_first_attempt(self):
        plan = plan_of(
            FaultSpec(kind=FaultKind.DELAY, transfer_index=0, delay=5e-4)
        )
        _, stats = run_resilient(plan=plan)
        assert stats.retries == 0
        assert stats.virtual_delay == pytest.approx(5e-4)

    def test_delay_beyond_timeout_retries(self):
        plan = plan_of(
            FaultSpec(kind=FaultKind.DELAY, transfer_index=0, delay=5e-3)
        )
        _, stats = run_resilient(plan=plan)
        assert stats.timeouts == 1
        assert stats.retries == 1

    def test_drop_recovers_via_retransmission(self, rng):
        xs = [rng.normal(size=2), rng.normal(size=2)]
        plan = plan_of(
            FaultSpec(kind=FaultKind.DROP, transfer_index=0, attempts=2)
        )
        got, stats = run_resilient(plan=plan, xs=xs)
        for a, b in zip(got, expected_values(xs)):
            np.testing.assert_array_equal(a, b)
        assert stats.timeouts == 2
        assert stats.retries == 2

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=1e-4, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(1e-4)
        assert policy.backoff(2) == pytest.approx(4e-4)

    def test_virtual_delay_includes_timeout_and_backoff(self):
        policy = RetryPolicy(
            max_attempts=4, timeout=1e-3, backoff_base=1e-4
        )
        plan = plan_of(
            FaultSpec(kind=FaultKind.DROP, transfer_index=0, attempts=1)
        )
        _, stats = run_resilient(plan=plan, policy=policy)
        assert stats.virtual_delay == pytest.approx(1e-3 + 1e-4)

    def test_exhausted_retries_raise_typed_error_with_seed(self):
        plan = plan_of(
            FaultSpec(kind=FaultKind.DROP, transfer_index=0, attempts=9),
            seed=4242,
        )
        with pytest.raises(TransferTimeoutError, match="seed=4242"):
            run_resilient(plan=plan, policy=RetryPolicy(max_attempts=3))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=-1.0)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=-1e-6)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_policy_boundary_values_accepted(self):
        policy = RetryPolicy(
            max_attempts=1, backoff_base=0.0, backoff_factor=1.0
        )
        assert policy.backoff(0) == 0.0
        assert policy.backoff(3) == 0.0


class TestGuardrails:
    def test_corrupt_nan_repaired_by_retransmission(self, rng):
        xs = [rng.normal(size=2), rng.normal(size=2)]
        plan = plan_of(
            FaultSpec(
                kind=FaultKind.CORRUPT_NAN, transfer_index=0, attempts=1
            )
        )
        got, stats = run_resilient(plan=plan, xs=xs)
        for a, b in zip(got, expected_values(xs)):
            np.testing.assert_array_equal(a, b)
        assert stats.corrupt_deliveries == 1
        assert stats.retries == 1

    def test_finite_bitflip_caught_by_checksum(self, rng):
        """A bit flip that yields a finite value slips past any NaN guard;
        the end-to-end checksum must still catch it."""
        xs = [rng.normal(size=2), rng.normal(size=2)]
        plan = plan_of(
            FaultSpec(
                kind=FaultKind.CORRUPT_BITFLIP, transfer_index=0, attempts=1
            )
        )
        got, stats = run_resilient(plan=plan, xs=xs)
        for a, b in zip(got, expected_values(xs)):
            np.testing.assert_array_equal(a, b)
        assert stats.corrupt_deliveries == 1

    def test_duplicate_delivery_is_idempotent(self, rng):
        xs = [rng.normal(size=2), rng.normal(size=2)]
        plan = plan_of(
            FaultSpec(
                kind=FaultKind.DUPLICATE, transfer_index=0, attempts=1
            )
        )
        got, stats = run_resilient(plan=plan, xs=xs)
        for a, b in zip(got, expected_values(xs)):
            np.testing.assert_array_equal(a, b)
        assert stats.duplicate_deliveries == 1

    def test_nan_at_source_is_unrepairable(self):
        xs = [np.array([np.nan, 1.0]), np.ones(2)]
        with pytest.raises(PayloadCorruptionError, match="source"):
            run_resilient(xs=xs)

    def test_nan_output_raises_instead_of_propagating(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2,), F32), name="a")
        builder.add(a, a)
        module = builder.module
        executor = ResilientExecutor(2)
        with pytest.raises(PayloadCorruptionError, match="non-finite"):
            executor.run(module, {"a": [np.array([np.inf, 0.0])] * 2})

    def test_shape_guardrail(self):
        module = permute_module()
        done = module.find(
            lambda i: i.opcode.value == "collective-permute-done"
        )[0]
        executor = ResilientExecutor(2)
        with pytest.raises(ShapeFaultError, match="expected"):
            executor._check_shapes(done, [np.zeros(3), np.zeros(2)])


class TestHardFaults:
    def test_link_down_raises_typed_error(self):
        plan = plan_of(
            FaultSpec(kind=FaultKind.LINK_DOWN, transfer_index=0), seed=5
        )
        with pytest.raises(LinkDownError, match="seed=5"):
            run_resilient(plan=plan)

    def test_device_failure_raises_typed_error(self):
        plan = plan_of(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, device=1, step=0), seed=6
        )
        with pytest.raises(DeviceFailureError, match="seed=6"):
            run_resilient(plan=plan)

    def test_straggler_only_slows_never_corrupts(self, rng):
        xs = [rng.normal(size=2), rng.normal(size=2)]
        plan = plan_of(
            FaultSpec(kind=FaultKind.STRAGGLER, device=0, magnitude=3.0)
        )
        got, stats = run_resilient(plan=plan, xs=xs)
        for a, b in zip(got, expected_values(xs)):
            np.testing.assert_array_equal(a, b)
        assert stats.compute_slowdown > 0


class TestFallback:
    def build(self, mesh):
        builder = GraphBuilder("layer")
        a = builder.parameter(Shape((2, 3), F32), name="a")
        w = builder.parameter(Shape((3, 5), F32), name="w")
        gathered = builder.all_gather(a, 0, mesh.rings("x"))
        builder.einsum("bf,fh->bh", gathered, w)
        return builder.module

    def arguments(self, mesh, rng):
        n = mesh.num_devices
        w = rng.normal(size=(3, 5))
        return {
            "a": [rng.normal(size=(2, 3)) for _ in range(n)],
            "w": [w.copy() for _ in range(n)],
        }

    def test_link_down_degrades_to_undecomposed_program(self, rng):
        mesh = DeviceMesh.ring(4)
        arguments = self.arguments(mesh, rng)
        oracle_module = self.build(mesh)
        oracle = run_spmd(oracle_module, arguments, 4)[
            oracle_module.root.name
        ]

        primary = self.build(mesh)
        compile_module(primary, mesh, OverlapConfig(use_cost_model=False))
        plan = plan_of(
            FaultSpec(kind=FaultKind.LINK_DOWN, transfer_index=0), seed=8
        )
        result = run_with_fallback(
            primary, self.build(mesh), arguments, 4,
            injector=FaultInjector(plan),
        )
        assert result.used_fallback
        assert isinstance(result.failure, LinkDownError)
        for got, want in zip(result.root, oracle):
            np.testing.assert_allclose(got, want, atol=1e-9)

    def test_no_fault_keeps_primary(self, rng):
        mesh = DeviceMesh.ring(4)
        arguments = self.arguments(mesh, rng)
        primary = self.build(mesh)
        compile_module(primary, mesh, OverlapConfig(use_cost_model=False))
        result = run_with_fallback(
            primary, self.build(mesh), arguments, 4
        )
        assert not result.used_fallback
        assert result.failure is None

    def test_device_failure_is_not_recoverable_by_fallback(self, rng):
        mesh = DeviceMesh.ring(4)
        arguments = self.arguments(mesh, rng)
        primary = self.build(mesh)
        compile_module(primary, mesh, OverlapConfig(use_cost_model=False))
        plan = plan_of(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, device=0, step=1), seed=9
        )
        with pytest.raises(DeviceFailureError):
            run_with_fallback(
                primary, self.build(mesh), arguments, 4,
                injector=FaultInjector(plan),
            )


class TestDirectionScopedFaults:
    """Direction-labelled transfers only trip direction-matching outages
    (PR 6: what the ladder's unidirectional rung routes around)."""

    @staticmethod
    def directed_module(direction):
        builder = GraphBuilder("directed")
        a = builder.parameter(Shape((2,), F32), name="a")
        start = builder.collective_permute_start(
            a, PAIRS, direction=direction
        )
        done = builder.collective_permute_done(start)
        builder.add(done, a)
        return builder.module

    def run_directed(self, direction, plan):
        xs = [np.ones(2), 2 * np.ones(2)]
        module = self.directed_module(direction)
        executor = ResilientExecutor(
            2, injector=FaultInjector(plan), policy=RetryPolicy(max_attempts=2)
        )
        return executor.run(module, {"a": xs})[module.root.name]

    def test_mirror_direction_dodges_scoped_outage(self):
        plan = plan_of(
            FaultSpec(
                kind=FaultKind.LINK_DOWN, transfer_index=0,
                direction="minus",
            )
        )
        values = self.run_directed("plus", plan)
        assert len(values) == 2  # delivered clean, no fault raised

    def test_matching_direction_still_fails_typed(self):
        plan = plan_of(
            FaultSpec(
                kind=FaultKind.LINK_DOWN, transfer_index=0,
                direction="minus",
            ),
            seed=31,
        )
        with pytest.raises(LinkDownError, match="seed=31") as excinfo:
            self.run_directed("minus", plan)
        assert excinfo.value.context.get("direction") == "minus"

    def test_timeout_error_carries_direction_context(self):
        plan = plan_of(
            FaultSpec(kind=FaultKind.DROP, transfer_index=0, attempts=9),
            seed=32,
        )
        xs = [np.ones(2), 2 * np.ones(2)]
        module = self.directed_module("plus")
        executor = ResilientExecutor(
            2, injector=FaultInjector(plan), policy=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(TransferTimeoutError) as excinfo:
            executor.run(module, {"a": xs})
        assert excinfo.value.context.get("direction") == "plus"
        assert excinfo.value.context.get("pairs") == PAIRS
