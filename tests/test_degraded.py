"""Degraded-fabric simulation: ChannelConditions through both simulators
plus the tail-effects experiment."""

import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.experiments import degraded
from repro.faults.conditions import ChannelConditions
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16
from repro.hlo.shapes import Shape
from repro.perfsim.multidevice import simulate_per_device
from repro.perfsim.simulator import simulate
from repro.perfsim.topology import MINUS, PLUS
from repro.sharding.mesh import DeviceMesh


def compiled_layer(mesh, config=None):
    n = mesh.num_devices
    builder = GraphBuilder("m")
    x = builder.parameter(Shape((1024, 2048), BF16), name="x")
    w = builder.parameter(Shape((2048, 4096 // n), BF16), name="w")
    gathered = builder.all_gather(w, 1, mesh.rings("x"))
    builder.einsum("bf,fh->bh", x, gathered)
    module = builder.module
    compile_module(
        module, mesh, config or OverlapConfig(use_cost_model=False)
    )
    return module


class TestSimulatorConditions:
    def test_no_conditions_equals_healthy(self):
        mesh = DeviceMesh.ring(4)
        module = compiled_layer(mesh)
        plain = simulate(module, mesh)
        healthy = simulate(
            module, mesh, conditions=ChannelConditions.healthy()
        )
        assert healthy.total_time == pytest.approx(plain.total_time)
        assert healthy.permute_wait_time == pytest.approx(
            plain.permute_wait_time
        )

    def test_degraded_link_slows_decomposed_program(self):
        mesh = DeviceMesh.ring(4)
        module = compiled_layer(mesh)
        plain = simulate(module, mesh)
        degraded_both = simulate(
            module,
            mesh,
            conditions=ChannelConditions(
                link_scale={("x", MINUS): 0.1, ("x", PLUS): 0.1}
            ),
        )
        assert degraded_both.total_time > plain.total_time
        assert (
            degraded_both.permute_wait_time > plain.permute_wait_time
        )

    def test_one_direction_hurts_less_than_both(self):
        """Degrading only MINUS leaves the PLUS half-ring untouched, so
        the bidirectional decomposition still lands half its transfers at
        full speed — strictly cheaper than a fabric-wide slowdown."""
        mesh = DeviceMesh.ring(8)
        module = compiled_layer(mesh)
        one_direction = simulate(
            module,
            mesh,
            conditions=ChannelConditions.degraded_link("x", MINUS, 0.25),
        )
        both_directions = simulate(
            module,
            mesh,
            conditions=ChannelConditions(
                link_scale={("x", MINUS): 0.25, ("x", PLUS): 0.25}
            ),
        )
        assert one_direction.total_time < both_directions.total_time

    def test_sync_collective_gated_by_slowest_link(self):
        mesh = DeviceMesh.ring(4)
        module = compiled_layer(mesh, OverlapConfig.baseline())
        plain = simulate(module, mesh)
        degraded_one = simulate(
            module,
            mesh,
            conditions=ChannelConditions.degraded_link("x", MINUS, 0.25),
        )
        assert degraded_one.sync_collective_time == pytest.approx(
            4.0 * plain.sync_collective_time
        )

    def test_compute_scale_stretches_kernels(self):
        mesh = DeviceMesh.ring(4)
        module = compiled_layer(mesh)
        plain = simulate(module, mesh)
        slow = simulate(
            module, mesh, conditions=ChannelConditions(compute_scale=0.5)
        )
        assert slow.compute_time == pytest.approx(2.0 * plain.compute_time)


class TestPerDeviceConditions:
    def test_straggler_breaks_symmetry(self):
        mesh = DeviceMesh.ring(4)
        module = compiled_layer(mesh)
        timelines = simulate_per_device(
            module, mesh, conditions=ChannelConditions.straggler(2, 0.5)
        )
        slowest = max(t.total_time for t in timelines)
        assert timelines[2].total_time == pytest.approx(slowest)
        assert timelines[2].total_time > timelines[0].total_time

    def test_flaky_outgoing_link_stalls_the_receiver(self):
        """Device 1's bad serdes delays the transfers it *sends*; the
        stall shows up as permute wait somewhere downstream, not on a
        healthy sender."""
        mesh = DeviceMesh.ring(4)
        module = compiled_layer(mesh)
        healthy = simulate_per_device(module, mesh)
        flaky = simulate_per_device(
            module,
            mesh,
            conditions=ChannelConditions(per_device_link_scale={1: 0.05}),
        )
        assert max(t.total_time for t in flaky) > max(
            t.total_time for t in healthy
        )
        assert sum(t.permute_wait_time for t in flaky) > sum(
            t.permute_wait_time for t in healthy
        )

    def test_healthy_conditions_match_symmetric_walk(self):
        mesh = DeviceMesh.ring(4)
        module = compiled_layer(mesh)
        report = simulate(module, mesh)
        for timeline in simulate_per_device(
            module, mesh, conditions=ChannelConditions.healthy()
        ):
            assert timeline.total_time == pytest.approx(report.total_time)


class TestDegradedExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return degraded.run()

    def test_covers_all_scenarios(self, rows):
        assert [r.scenario for r in rows] == [
            name for name, _ in degraded.SCENARIOS
        ]

    def test_fabric_wide_degradation_exposes_the_permute_chain(self, rows):
        by_name = {r.scenario: r for r in rows}
        healthy = by_name["healthy fabric"]
        worst = by_name["both directions at 1/16 bw"]
        assert worst.overlapped.total_time > healthy.overlapped.total_time
        index = [r.scenario for r in rows].index(
            "both directions at 1/16 bw"
        )
        assert degraded.exposed_penalty(rows, index) > 2.0

    def test_single_direction_mostly_hidden(self, rows):
        index = [r.scenario for r in rows].index("one direction at 1/4 bw")
        both = [r.scenario for r in rows].index("both directions at 1/4 bw")
        assert degraded.exposed_penalty(rows, index) < degraded.exposed_penalty(
            rows, both
        )

    def test_report_renders(self, rows):
        text = degraded.format_report(rows)
        assert "Tail effects" in text
        for name, _ in degraded.SCENARIOS:
            assert name in text
        assert "re-exposes" in text
