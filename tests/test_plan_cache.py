"""Tests for the content-addressed plan cache and its fingerprints.

The cache's whole value rests on two properties: the fingerprint is
*stable* across separately built copies of the same program (instruction
names embed a process-global counter, so printed text would never
match), and it *changes* whenever anything semantically relevant does —
content, mesh, overlap config, chip. Plus the LRU bound: a capacity-K
cache holds at most K plans and reports what it evicted.
"""

import dataclasses

import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import (
    clear_compile_cache,
    compile_cache_stats,
    compile_module,
    compile_module_cached,
)
from repro.faults.chaos import GOLDEN_CASES
from repro.perfsim.hardware import TPU_V4
from repro.runtime.plan_cache import (
    CacheStats,
    PlanCache,
    fingerprint_config,
    fingerprint_mesh,
    fingerprint_module,
    plan_key,
)
from repro.sharding.mesh import DeviceMesh

MLP = next(c for c in GOLDEN_CASES if c.name == "mlp-chain")
AG = next(c for c in GOLDEN_CASES if c.name == "allgather-einsum")


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        mesh = DeviceMesh.ring(4)
        first, second = MLP.build(mesh), MLP.build(mesh)
        # Same content, different auto-generated instruction names.
        assert {i.name for i in first.instructions} != {
            i.name for i in second.instructions
        }
        assert fingerprint_module(first) == fingerprint_module(second)

    def test_differs_across_programs_and_meshes(self):
        ring4 = DeviceMesh.ring(4)
        assert fingerprint_module(MLP.build(ring4)) != fingerprint_module(
            AG.build(ring4)
        )
        assert fingerprint_module(MLP.build(ring4)) != fingerprint_module(
            MLP.build(DeviceMesh.ring(2))
        )

    def test_compilation_changes_the_fingerprint(self):
        mesh = DeviceMesh.ring(4)
        module = MLP.build(mesh)
        before = fingerprint_module(module)
        compile_module(module, mesh, OverlapConfig(use_cost_model=False))
        assert fingerprint_module(module) != before

    def test_memo_survives_repeat_queries(self):
        module = MLP.build(DeviceMesh.ring(4))
        assert fingerprint_module(module) == fingerprint_module(module)

    def test_config_fingerprints_are_distinct(self):
        default = OverlapConfig()
        assert fingerprint_config(default) != fingerprint_config(
            OverlapConfig(unroll=False)
        )
        assert fingerprint_config(default) != fingerprint_config(None)
        assert fingerprint_config(TPU_V4) != fingerprint_config(
            dataclasses.replace(TPU_V4, link_bandwidth=1.0)
        )

    def test_mesh_fingerprint_accepts_bare_counts(self):
        assert fingerprint_mesh(2) != fingerprint_mesh(4)
        assert fingerprint_mesh(DeviceMesh.ring(2)) != fingerprint_mesh(
            DeviceMesh.ring(4)
        )


class TestPlanKey:
    def test_invalidates_on_every_dimension(self):
        mesh = DeviceMesh.ring(4)
        module = MLP.build(mesh)
        base = plan_key(module, num_devices=4)
        assert plan_key(module, num_devices=4) == base
        assert plan_key(module, num_devices=2) != base
        assert plan_key(module, num_devices=4, outputs=("h",)) != base
        assert (
            plan_key(module, num_devices=4, config=OverlapConfig()) != base
        )
        assert (
            plan_key(module, num_devices=4, options=("donate", False)) != base
        )
        rebuilt = MLP.build(mesh)
        assert plan_key(rebuilt, num_devices=4) == base


class TestPlanCache:
    def test_get_or_build_counts_hits_and_misses(self):
        cache = PlanCache(capacity=4)
        calls = []
        value, hit = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_build("k", lambda: calls.append(1) or "w")
        assert (value, hit) == ("v", True)
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_bounded_eviction_drops_least_recent(self):
        cache = PlanCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.get_or_build(key, lambda key=key: key.upper())
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert "a" not in cache and "b" in cache and "c" in cache
        # Touching "b" makes "c" the eviction victim next.
        cache.get_or_build("b", lambda: "never")
        cache.get_or_build("d", lambda: "D")
        assert "b" in cache and "c" not in cache

    def test_clear_resets_contents_and_stats(self):
        cache = PlanCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_stats_json_roundtrip(self):
        stats = CacheStats(hits=3, misses=1, evictions=2)
        payload = stats.to_json()
        assert payload["hits"] == 3
        assert payload["hit_rate"] == pytest.approx(0.75)


class TestCompileCache:
    def test_cached_compile_reuses_result_and_spares_the_argument(self):
        clear_compile_cache()
        try:
            mesh = DeviceMesh.ring(4)
            config = OverlapConfig(use_cost_model=False)
            first_module = MLP.build(mesh)
            first = compile_module_cached(first_module, mesh, config)
            assert first.module is first_module  # miss compiles in place

            second_module = MLP.build(mesh)
            before = list(second_module.instructions)
            second = compile_module_cached(second_module, mesh, config)
            assert second is first
            # On a hit the caller's module is untouched.
            assert list(second_module.instructions) == before
            stats = compile_cache_stats()
            assert stats.hits == 1 and stats.misses == 1
        finally:
            clear_compile_cache()

    def test_config_change_invalidates(self):
        clear_compile_cache()
        try:
            mesh = DeviceMesh.ring(4)
            one = compile_module_cached(
                MLP.build(mesh), mesh, OverlapConfig(use_cost_model=False)
            )
            two = compile_module_cached(
                MLP.build(mesh),
                mesh,
                OverlapConfig(use_cost_model=False, unroll=False),
            )
            assert one is not two
            assert compile_cache_stats().misses == 2
        finally:
            clear_compile_cache()
