"""Tests for the lock-step SPMD executor, including async semantics."""

import numpy as np
import pytest

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import ShardIndex
from repro.hlo.shapes import Shape
from repro.runtime.executor import ExecutionError, Executor, run_spmd
from repro.sharding.mesh import DeviceMesh


def test_parameter_binding_and_add(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    b = builder.parameter(Shape((2,), F32), name="b")
    builder.add(a, b)
    module = builder.module
    xs = [rng.normal(size=2) for _ in range(2)]
    ys = [rng.normal(size=2) for _ in range(2)]
    out = run_spmd(module, {"a": xs, "b": ys}, 2)[module.root.name]
    np.testing.assert_allclose(out[0], xs[0] + ys[0])
    np.testing.assert_allclose(out[1], xs[1] + ys[1])


def test_missing_argument_rejected():
    builder = GraphBuilder("m")
    builder.parameter(Shape((2,), F32), name="a")
    with pytest.raises(ExecutionError, match="missing argument"):
        run_spmd(builder.module, {}, 2)


def test_wrong_shard_count_rejected(rng):
    builder = GraphBuilder("m")
    builder.parameter(Shape((2,), F32), name="a")
    with pytest.raises(ExecutionError, match="shards"):
        run_spmd(builder.module, {"a": [rng.normal(size=2)]}, 2)


def test_wrong_shard_shape_rejected(rng):
    builder = GraphBuilder("m")
    builder.parameter(Shape((2,), F32), name="a")
    with pytest.raises(ExecutionError, match="shape"):
        run_spmd(builder.module, {"a": [rng.normal(size=3)] * 2}, 2)


def test_zeros_and_constant():
    builder = GraphBuilder("m")
    z = builder.zeros(Shape((2, 2), F32))
    c = builder.constant(np.eye(2), F32)
    builder.add(z, c)
    out = run_spmd(builder.module, {}, 3)[builder.module.root.name]
    for device in range(3):
        np.testing.assert_array_equal(out[device], np.eye(2))


def test_einsum_matches_numpy(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((3, 4), F32), name="a")
    b = builder.parameter(Shape((4, 5), F32), name="b")
    builder.einsum("ij,jk->ik", a, b)
    x, y = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
    out = run_spmd(builder.module, {"a": [x], "b": [y]}, 1)
    np.testing.assert_allclose(out[builder.module.root.name][0], x @ y)


def test_dynamic_slice_per_device(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((4, 2), F32), name="a")
    builder.dynamic_slice(
        a, 0, ShardIndex.shard(1, 0, num_shards=2, shard_size=2), 2
    )
    x = rng.normal(size=(4, 2))
    out = run_spmd(builder.module, {"a": [x, x]}, 2)[builder.module.root.name]
    np.testing.assert_allclose(out[0], x[:2])
    np.testing.assert_allclose(out[1], x[2:])


def test_dynamic_update_slice_per_device(rng):
    builder = GraphBuilder("m")
    target = builder.zeros(Shape((4,), F32))
    update = builder.parameter(Shape((2,), F32), name="u")
    builder.dynamic_update_slice(
        target, update, 0, ShardIndex.shard(1, 0, num_shards=2, shard_size=2)
    )
    u = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
    out = run_spmd(builder.module, {"u": u}, 2)[builder.module.root.name]
    np.testing.assert_array_equal(out[0], [1, 2, 0, 0])
    np.testing.assert_array_equal(out[1], [0, 0, 3, 4])


def test_pad_with_value(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    builder.pad(a, 0, 1, 1, value=-1.0)
    x = np.array([5.0, 6.0])
    out = run_spmd(builder.module, {"a": [x]}, 1)[builder.module.root.name]
    np.testing.assert_array_equal(out[0], [-1, 5, 6, -1])


def test_concat_rewrite_equivalence(rng):
    """Max(PadLow(a), PadHigh(b)) == Concat(a, b) on real data."""
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    b = builder.parameter(Shape((3,), F32), name="b")
    padded_a = builder.pad(a, 0, 0, 3, value=float("-inf"))
    padded_b = builder.pad(b, 0, 2, 0, value=float("-inf"))
    builder.maximum(padded_a, padded_b)
    x, y = rng.normal(size=2), rng.normal(size=3)
    out = run_spmd(builder.module, {"a": [x], "b": [y]}, 1)
    np.testing.assert_allclose(
        out[builder.module.root.name][0], np.concatenate([x, y])
    )


class TestAsyncPermute:
    def test_start_snapshots_at_issue_time(self, rng):
        """A write to the operand between start and done must not leak
        into the transfer — the core async-correctness property."""
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2,), F32), name="a")
        start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        # Mutation between start and done: a2 = a + a.
        mutated = builder.add(a, a)
        done = builder.collective_permute_done(start)
        builder.add(done, mutated)
        module = builder.module
        xs = [rng.normal(size=2), rng.normal(size=2)]
        out = run_spmd(module, {"a": xs}, 2)[module.root.name]
        np.testing.assert_allclose(out[0], xs[1] + 2 * xs[0])
        np.testing.assert_allclose(out[1], xs[0] + 2 * xs[1])

    def test_sync_permute_matches_start_done_pair(self, rng):
        def build(asynchronous):
            builder = GraphBuilder("m")
            a = builder.parameter(Shape((2,), F32), name="a")
            if asynchronous:
                start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
                builder.collective_permute_done(start)
            else:
                builder.collective_permute(a, [(0, 1), (1, 0)])
            return builder.module

        xs = [rng.normal(size=2), rng.normal(size=2)]
        sync = build(False)
        asyncm = build(True)
        a_out = run_spmd(sync, {"a": xs}, 2)[sync.root.name]
        b_out = run_spmd(asyncm, {"a": xs}, 2)[asyncm.root.name]
        for x, y in zip(a_out, b_out):
            np.testing.assert_array_equal(x, y)


def test_collectives_through_executor(rng):
    mesh = DeviceMesh.ring(2)
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2, 2), F32), name="a")
    ag = builder.all_gather(a, 0, mesh.rings("x"))
    builder.reduce_scatter(ag, 0, mesh.rings("x"))
    xs = [rng.normal(size=(2, 2)) for _ in range(2)]
    out = run_spmd(builder.module, {"a": xs}, 2)[builder.module.root.name]
    # RS(AG(x)) = 2 * x on each device.
    np.testing.assert_allclose(out[0], 2 * xs[0])
    np.testing.assert_allclose(out[1], 2 * xs[1])


def test_selected_outputs(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    double = builder.add(a, a)
    builder.negate(double)
    xs = [rng.normal(size=2)]
    out = run_spmd(builder.module, {"a": xs}, 1, outputs=[double.name])
    np.testing.assert_allclose(out[double.name][0], 2 * xs[0])


def test_invalid_device_count():
    with pytest.raises(ValueError, match="positive"):
        Executor(0)


def test_unknown_output_typed_error(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    builder.add(a, a, name="total")
    xs = [rng.normal(size=2)]
    with pytest.raises(ExecutionError, match="unknown output 'missing'") as info:
        run_spmd(builder.module, {"a": xs}, 1, outputs=["missing"])
    # The message names the module and lists what *does* exist.
    assert "candidates" in str(info.value)
    assert "total" in str(info.value)


def test_constant_sources_share_one_readonly_buffer():
    builder = GraphBuilder("m")
    builder.zeros(Shape((2, 2), F32))
    out = run_spmd(builder.module, {}, 4)[builder.module.root.name]
    assert all(shard is out[0] for shard in out)
    assert not out[0].flags.writeable


def test_readonly_constant_is_safe_as_dus_target(rng):
    """Ops that write must copy the shared read-only source first."""
    builder = GraphBuilder("m")
    target = builder.zeros(Shape((4,), F32))
    update = builder.parameter(Shape((2,), F32), name="u")
    builder.dynamic_update_slice(
        target, update, 0, ShardIndex.constant(1)
    )
    xs = [rng.normal(size=2) for _ in range(2)]
    out = run_spmd(builder.module, {"u": xs}, 2)[builder.module.root.name]
    for device in range(2):
        np.testing.assert_array_equal(out[device][1:3], xs[device])
        np.testing.assert_array_equal(out[device][[0, 3]], [0.0, 0.0])


def test_param_binding_skips_conversion_when_already_float64(rng):
    builder = GraphBuilder("m")
    builder.parameter(Shape((2,), F32), name="a")
    xs = [np.ascontiguousarray(rng.normal(size=2)) for _ in range(2)]
    out = run_spmd(builder.module, {"a": xs}, 2, outputs=["a"])["a"]
    assert out[0] is xs[0] and out[1] is xs[1]
    mixed = [xs[0], xs[1].astype(np.float32)]
    converted = run_spmd(builder.module, {"a": mixed}, 2, outputs=["a"])["a"]
    assert converted[1].dtype == np.float64
