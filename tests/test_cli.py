"""Tests for the command-line interface."""

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_all_artifacts_described(self):
        from repro.cli import _DESCRIPTIONS

        assert set(ARTIFACTS) == set(_DESCRIPTIONS)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_bad_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "GPT_32B", "--scheduler", "magic"]
            )


class TestCommands:
    def test_experiments_lists_everything(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_run_unknown_artifact(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_multiple(self, capsys):
        assert main(["run", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_simulate_baseline(self, capsys):
        assert main(["simulate", "GPT_32B", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "FLOPS utilization" in out
        assert "hidden transfers:        0.000 s" in out

    def test_simulate_with_timeline(self, capsys):
        assert main(["simulate", "GPT_32B", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "link:" in out

    def test_simulate_unknown_model(self, capsys):
        assert main(["simulate", "GPT_9T"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_dump_shows_hlo(self, capsys):
        assert main(["dump", "GPT_32B", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "HloModule" in out
        assert "all-gather" in out
        assert "einsum" in out


class TestChaosCommand:
    def test_clean_batch_exits_zero(self, capsys):
        assert main(["chaos", "--runs", "5", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "seed=11" in out
        assert "contract held" in out

    def test_report_logs_batch_seed_for_replay(self, capsys):
        main(["chaos", "--runs", "3", "--seed", "987", "--intensity", "0.2"])
        assert "seed=987" in capsys.readouterr().out

    def test_zero_runs_rejected(self, capsys):
        assert main(["chaos", "--runs", "0"]) == 2
        assert "at least 1" in capsys.readouterr().err

    def test_defaults_meet_acceptance_floor(self):
        parser = build_parser()
        args = parser.parse_args(["chaos"])
        assert args.runs >= 200
        assert args.seed == 20230325

    def test_replay_reruns_a_single_seed(self, capsys):
        assert main(["chaos", "--replay", "11"]) == 0
        out = capsys.readouterr().out
        assert "replay seed=11" in out
        assert "outcome:" in out
