"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_all_artifacts_described(self):
        from repro.cli import _DESCRIPTIONS

        assert set(ARTIFACTS) == set(_DESCRIPTIONS)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_bad_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "GPT_32B", "--scheduler", "magic"]
            )


class TestCommands:
    def test_experiments_lists_everything(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_run_unknown_artifact(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_multiple(self, capsys):
        assert main(["run", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_simulate_baseline(self, capsys):
        assert main(["simulate", "GPT_32B", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "FLOPS utilization" in out
        assert "hidden transfers:        0.000 s" in out

    def test_simulate_with_timeline(self, capsys):
        assert main(["simulate", "GPT_32B", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "link:" in out

    def test_simulate_unknown_model(self, capsys):
        assert main(["simulate", "GPT_9T"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_dump_shows_hlo(self, capsys):
        assert main(["dump", "GPT_32B", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "HloModule" in out
        assert "all-gather" in out
        assert "einsum" in out


class TestChaosCommand:
    def test_clean_batch_exits_zero(self, capsys):
        assert main(["chaos", "--runs", "5", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "seed=11" in out
        assert "contract held" in out

    def test_report_logs_batch_seed_for_replay(self, capsys):
        main(["chaos", "--runs", "3", "--seed", "987", "--intensity", "0.2"])
        assert "seed=987" in capsys.readouterr().out

    def test_zero_runs_rejected(self, capsys):
        assert main(["chaos", "--runs", "0"]) == 2
        assert "at least 1" in capsys.readouterr().err

    def test_defaults_meet_acceptance_floor(self):
        parser = build_parser()
        args = parser.parse_args(["chaos"])
        assert args.runs >= 200
        assert args.seed == 20230325

    def test_replay_reruns_a_single_seed(self, capsys):
        assert main(["chaos", "--replay", "11"]) == 0
        out = capsys.readouterr().out
        assert "replay seed=11" in out
        assert "outcome:" in out


def _bench_report(bit_identical=True, speedup=3.0):
    """A minimal, schema-complete bench report for exit-code tests."""
    rows = [
        {
            "case": "mlp-chain", "variant": "decomposed", "devices": n,
            "interpreted_ms": 1.0, "compiled_ms": 1.0 / speedup,
            "speedup": speedup, "bit_identical": bit_identical,
        }
        for n in (4, 8)
    ]
    return {
        "benchmark": "executor", "quick": True, "repeats": 1, "inner": 1,
        "device_counts": [4, 8], "rows": rows,
        "summary": {
            "geomean_speedup": speedup,
            "speedup_at_8plus": speedup,
            "all_bit_identical": bit_identical,
        },
    }


class TestBenchExitCodes:
    """``repro bench`` must fail loudly, not print-and-return-zero."""

    def _patch(self, monkeypatch, report):
        import repro.runtime.bench as bench

        monkeypatch.setattr(bench, "run_bench", lambda **kw: report)

    def test_clean_report_exits_zero(self, monkeypatch, capsys):
        self._patch(monkeypatch, _bench_report())
        assert main(["bench", "--quick", "--output", ""]) == 0

    def test_bit_identity_failure_fails_without_floor(
        self, monkeypatch, capsys
    ):
        self._patch(monkeypatch, _bench_report(bit_identical=False))
        assert main(["bench", "--quick", "--output", ""]) == 1
        assert "diverge" in capsys.readouterr().err

    def test_speedup_floor_gate(self, monkeypatch, capsys):
        self._patch(monkeypatch, _bench_report(speedup=1.5))
        assert main([
            "bench", "--quick", "--output", "", "--min-speedup", "2.0",
        ]) == 1
        assert "below the required" in capsys.readouterr().err

    def test_trend_gate_fails_on_speedup_drop(
        self, monkeypatch, capsys, tmp_path
    ):
        import json

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_bench_report(speedup=4.0)))
        self._patch(monkeypatch, _bench_report(speedup=2.0))
        assert main([
            "bench", "--quick", "--output", "",
            "--baseline", str(baseline),
        ]) == 1
        assert "dropped more than" in capsys.readouterr().err

    def test_trend_gate_passes_within_tolerance(
        self, monkeypatch, capsys, tmp_path
    ):
        import json

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_bench_report(speedup=3.1)))
        self._patch(monkeypatch, _bench_report(speedup=3.0))
        assert main([
            "bench", "--quick", "--output", "",
            "--baseline", str(baseline),
        ]) == 0

    def test_unreadable_baseline_fails(self, monkeypatch, capsys, tmp_path):
        self._patch(monkeypatch, _bench_report())
        assert main([
            "bench", "--quick", "--output", "",
            "--baseline", str(tmp_path / "missing.json"),
        ]) == 1
        assert "cannot read baseline" in capsys.readouterr().err


class TestCompareReports:
    def test_disjoint_grids_fail(self):
        from repro.runtime.bench import compare_reports

        left = _bench_report()
        right = _bench_report()
        for row in right["rows"]:
            row["devices"] += 100
        assert compare_reports(left, right)

    def test_bit_identity_flip_is_reported_per_row(self):
        from repro.runtime.bench import compare_reports

        fresh = _bench_report(bit_identical=False)
        problems = compare_reports(_bench_report(), fresh)
        assert any("bit_identical" in p for p in problems)

    def test_grid_growth_alone_passes(self):
        from repro.runtime.bench import compare_reports

        fresh = _bench_report()
        fresh["rows"].append({
            "case": "new-case", "variant": "reference", "devices": 2,
            "interpreted_ms": 1.0, "compiled_ms": 1.0,
            "speedup": 1.0, "bit_identical": True,
        })
        assert compare_reports(_bench_report(), fresh) == []


class TestTraceCommand:
    def test_unknown_module_exits_two(self, capsys, tmp_path):
        assert main([
            "trace", "--module", "nope",
            "--out", str(tmp_path / "t.json"),
        ]) == 2
        assert "unknown module" in capsys.readouterr().err

    def test_bad_ring_size_exits_two(self, capsys, tmp_path):
        assert main([
            "trace", "--module", "mlp-chain", "--devices", "3",
            "--out", str(tmp_path / "t.json"),
        ]) == 2
        assert "rings" in capsys.readouterr().err

    def test_writes_valid_chrome_trace_and_check_passes(
        self, capsys, tmp_path
    ):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        assert main([
            "trace", "--module", "mlp-chain", "--out", str(out), "--check",
        ]) == 0
        report = capsys.readouterr().out
        assert "check passed" in report
        with open(out) as handle:
            obj = json.load(handle)
        assert validate_chrome_trace(obj) == []
        # Every engine, both variants, plus the simulated streams.
        processes = {
            e["args"]["name"] for e in obj["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert processes == {
            "interpreted/baseline", "interpreted/decomposed",
            "compiled/baseline", "compiled/decomposed",
            "parallel/baseline", "parallel/decomposed",
            "simulated/baseline", "simulated/decomposed",
        }


class TestChaosLadderCli:
    def test_ladder_batch_holds_contract(self, capsys):
        assert main(
            ["chaos", "--ladder", "--runs", "8", "--seed", "11",
             "--intensity", "0.6"]
        ) == 0
        out = capsys.readouterr().out
        assert "contract held" in out

    def test_ladder_replay_reports_rung(self, capsys):
        assert main(["chaos", "--ladder", "--replay", "11"]) == 0
        out = capsys.readouterr().out
        assert "final rung" in out

    def test_tail_gate_passes_and_writes_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "CHAOS_p99.json"
        assert main(
            ["chaos", "--tail", "--tail-runs", "4", "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "gate: decomposed+rebalanced <= undecomposed at p99" in out
        assert out_path.exists()
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True

    def test_tail_baseline_regression_fails(self, capsys, tmp_path):
        good = tmp_path / "baseline.json"
        assert main(
            ["chaos", "--tail", "--tail-runs", "4", "--out", str(good)]
        ) == 0
        capsys.readouterr()
        baseline = json.loads(good.read_text())
        for entry in baseline["scenarios"]:
            entry["rebalanced"]["p99"] *= 1e-6
        tightened = tmp_path / "tightened.json"
        tightened.write_text(json.dumps(baseline))
        assert main(
            ["chaos", "--tail", "--tail-runs", "4",
             "--baseline", str(tightened)]
        ) == 1
        assert "regressed past baseline" in capsys.readouterr().err
