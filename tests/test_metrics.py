"""Tests for StepReport / EnergyReport metrics."""

import pytest

from repro.perfsim.metrics import EnergyReport, StepReport


def make_report(**overrides):
    base = dict(
        total_time=2.0,
        compute_time=1.2,
        sync_collective_time=0.3,
        permute_wait_time=0.5,
        transfer_time_total=1.5,
        flops=1e15,
        link_bytes={("x", "minus"): 1000},
        peak_flops=1e15,
    )
    base.update(overrides)
    return StepReport(**base)


class TestStepReport:
    def test_exposed_communication(self):
        report = make_report()
        assert report.exposed_communication_time == pytest.approx(0.8)

    def test_hidden_transfer_time(self):
        report = make_report()
        assert report.hidden_transfer_time == pytest.approx(1.0)

    def test_hidden_never_negative(self):
        report = make_report(transfer_time_total=0.2, permute_wait_time=0.5)
        assert report.hidden_transfer_time == 0.0

    def test_communication_fraction(self):
        assert make_report().communication_fraction == pytest.approx(0.4)

    def test_communication_fraction_of_empty_report(self):
        assert make_report(total_time=0.0).communication_fraction == 0.0

    def test_utilization(self):
        report = make_report()
        assert report.flops_utilization == pytest.approx(0.5)

    def test_utilization_of_empty_report(self):
        assert make_report(total_time=0.0).flops_utilization == 0.0

    def test_scaled_preserves_ratios(self):
        report = make_report()
        scaled = report.scaled(7)
        assert scaled.total_time == pytest.approx(14.0)
        assert scaled.link_bytes[("x", "minus")] == 7000
        assert scaled.communication_fraction == pytest.approx(
            report.communication_fraction
        )
        assert scaled.flops_utilization == pytest.approx(
            report.flops_utilization
        )

    def test_repr_mentions_utilization(self):
        assert "util=" in repr(make_report())


class TestEnergyReport:
    def test_energy_follows_time(self):
        report = EnergyReport(
            baseline_time=2.0, optimized_time=1.6,
            chip_power_watts=200.0, num_chips=100,
        )
        assert report.baseline_energy_joules == pytest.approx(40000.0)
        assert report.optimized_energy_joules == pytest.approx(32000.0)
        assert report.energy_reduction == pytest.approx(1.25)

    def test_zero_optimized_energy(self):
        report = EnergyReport(1.0, 0.0, 100.0, 1)
        assert report.energy_reduction == 1.0
