"""Tests for the discrete-event performance simulator.

Conservation laws and overlap behavior on hand-built modules where the
expected timeline can be computed by hand.
"""

import pytest

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16
from repro.hlo.shapes import Shape
from repro.perfsim.costs import CostModel
from repro.perfsim.hardware import TPU_V4
from repro.perfsim.simulator import Simulator, simulate
from repro.perfsim.topology import MINUS, PLUS
from repro.sharding.mesh import DeviceMesh

MESH = DeviceMesh.ring(4)
COST = CostModel(TPU_V4)
RING_PAIRS = [(0, 3), (1, 0), (2, 1), (3, 2)]
SHAPE = Shape((4096, 4096), BF16)


def test_compute_only_module():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    einsum = builder.einsum("bf,fh->bh", a, a)
    report = simulate(builder.module, MESH)
    assert report.total_time == pytest.approx(COST.einsum_time(einsum))
    assert report.exposed_communication_time == 0.0
    assert report.flops == 2 * 4096**3


def test_sync_collective_blocks():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    gather = builder.all_gather(a, 0, MESH.rings("x"))
    report = simulate(builder.module, MESH)
    assert report.sync_collective_time == pytest.approx(
        COST.collective_time(gather)
    )
    assert report.total_time == pytest.approx(report.sync_collective_time)


def test_adjacent_start_done_fully_exposed():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    start = builder.collective_permute_start(a, RING_PAIRS)
    builder.collective_permute_done(start)
    report = simulate(builder.module, MESH)
    transfer = COST.permute_time(start, MESH)
    assert report.permute_wait_time == pytest.approx(transfer)
    assert report.hidden_transfer_time == pytest.approx(0.0)


def test_compute_between_start_and_done_hides_transfer():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    start = builder.collective_permute_start(a, RING_PAIRS)
    einsum = builder.einsum("bf,fh->bh", a, a)
    done = builder.collective_permute_done(start)
    builder.add(done, einsum)
    report = simulate(builder.module, MESH)
    transfer = COST.permute_time(start, MESH)
    compute = COST.einsum_time(einsum)
    assert compute > transfer  # premise of the scenario
    assert report.permute_wait_time == pytest.approx(0.0)
    assert report.hidden_transfer_time == pytest.approx(transfer)


def test_partial_overlap_exposes_remainder():
    builder = GraphBuilder("m")
    big = builder.parameter(SHAPE, name="big")
    small = builder.parameter(Shape((64, 64), BF16), name="small")
    start = builder.collective_permute_start(big, RING_PAIRS)
    tiny = builder.einsum("bf,fh->bh", small, small)
    done = builder.collective_permute_done(start)
    builder.module.root = done
    report = simulate(builder.module, MESH)
    transfer = COST.permute_time(start, MESH)
    compute = COST.einsum_time(tiny)
    assert report.permute_wait_time == pytest.approx(
        transfer - compute, rel=1e-6
    )


def test_link_contention_serializes_same_direction():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    s1 = builder.collective_permute_start(a, RING_PAIRS)
    s2 = builder.collective_permute_start(a, RING_PAIRS)
    builder.collective_permute_done(s1)
    done2 = builder.collective_permute_done(s2)
    builder.module.root = done2
    report = simulate(builder.module, MESH)
    transfer = COST.permute_time(s1, MESH)
    assert report.total_time == pytest.approx(2 * transfer)


def test_opposite_directions_run_concurrently():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    s1 = builder.collective_permute_start(a, RING_PAIRS, direction=MINUS)
    reverse = [(d, s) for s, d in RING_PAIRS]
    s2 = builder.collective_permute_start(a, reverse, direction=PLUS)
    builder.collective_permute_done(s1)
    done2 = builder.collective_permute_done(s2)
    builder.module.root = done2
    report = simulate(builder.module, MESH)
    transfer = COST.permute_time(s1, MESH)
    assert report.total_time == pytest.approx(transfer, rel=1e-6)


def test_fused_kernel_waits_for_all_inputs():
    """The Figure 11 effect: fusing the Add into the independent einsum
    serializes it behind the transfer."""

    def build(fuse_with_independent):
        builder = GraphBuilder("m")
        a = builder.parameter(SHAPE, name="a")
        w = builder.parameter(SHAPE, name="w")
        start = builder.collective_permute_start(a, RING_PAIRS)
        independent = builder.einsum("bf,fh->bh", a, w)
        done = builder.collective_permute_done(start)
        dependent = builder.einsum("bf,fh->bh", done, w)
        add = builder.add(independent, dependent)
        host = independent if fuse_with_independent else dependent
        host.fusion_group = 0
        add.fusion_group = 0
        return builder.module

    bad = simulate(build(True), MESH)
    good = simulate(build(False), MESH)
    assert good.total_time < bad.total_time
    assert good.permute_wait_time < bad.permute_wait_time


def test_unconsumed_transfer_rejected():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    start = builder.collective_permute_start(a, RING_PAIRS)
    builder.negate(a)
    with pytest.raises(RuntimeError, match="never completed"):
        simulate(builder.module, MESH)


def test_report_scaling():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    builder.einsum("bf,fh->bh", a, a)
    report = simulate(builder.module, MESH)
    scaled = report.scaled(10)
    assert scaled.total_time == pytest.approx(10 * report.total_time)
    assert scaled.flops == pytest.approx(10 * report.flops)
    assert scaled.flops_utilization == pytest.approx(report.flops_utilization)


def test_utilization_bounded_by_efficiency():
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    builder.einsum("bf,fh->bh", a, a)
    report = simulate(builder.module, MESH)
    assert 0.0 < report.flops_utilization < 1.0


def test_simulator_reuses_cost_model():
    simulator = Simulator(MESH)
    builder = GraphBuilder("m")
    a = builder.parameter(SHAPE, name="a")
    builder.einsum("bf,fh->bh", a, a)
    first = simulator.run(builder.module)
    second = simulator.run(builder.module)
    assert first.total_time == second.total_time
