"""Unit tests for the fault subsystem: plans, injector, errors, conditions."""

import numpy as np
import pytest

from repro.faults.conditions import ChannelConditions, conditions_from_plan
from repro.faults.errors import (
    FaultError,
    InvalidPermuteError,
    LinkDownError,
    ReplicaGroupError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.sharding.mesh import DeviceMesh


class TestFaultError:
    def test_seed_lands_in_message(self):
        error = FaultError("link exploded", seed=1234)
        assert "replay with seed=1234" in str(error)
        assert error.seed == 1234

    def test_context_lands_in_message_and_attrs(self):
        error = FaultError("bad pair", pair=(0, 1), device=3)
        assert error.context == {"pair": (0, 1), "device": 3}
        assert "pair=(0, 1)" in str(error)

    def test_no_seed_no_replay_hint(self):
        assert "replay" not in str(FaultError("oops"))

    def test_typed_errors_are_fault_and_value_errors(self):
        assert issubclass(InvalidPermuteError, ValueError)
        assert issubclass(InvalidPermuteError, FaultError)
        assert issubclass(ReplicaGroupError, ValueError)
        assert issubclass(LinkDownError, FaultError)


class TestFaultSpec:
    def test_transfer_fault_needs_index(self):
        with pytest.raises(ValueError, match="transfer_index"):
            FaultSpec(kind=FaultKind.DROP)

    def test_straggler_needs_device(self):
        with pytest.raises(ValueError, match="device"):
            FaultSpec(kind=FaultKind.STRAGGLER)

    def test_straggler_magnitude_at_least_one(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec(kind=FaultKind.STRAGGLER, device=0, magnitude=0.5)

    def test_attempts_positive(self):
        with pytest.raises(ValueError, match="attempts"):
            FaultSpec(kind=FaultKind.DROP, transfer_index=0, attempts=0)


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(77, num_devices=4)
        b = FaultPlan.random(77, num_devices=4)
        assert a == b

    def test_different_seeds_differ(self):
        plans = {FaultPlan.random(s, num_devices=4) for s in range(20)}
        assert len(plans) > 1

    def test_zero_intensity_is_healthy(self):
        plan = FaultPlan.random(5, num_devices=4, intensity=0.0)
        assert plan.specs == ()

    def test_intensity_out_of_range(self):
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan.random(5, num_devices=4, intensity=1.5)

    def test_link_down_is_persistent(self):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec(kind=FaultKind.LINK_DOWN, transfer_index=3),),
        )
        assert plan.link_down_at(2) is None
        assert plan.link_down_at(3) is not None
        assert plan.link_down_at(100) is not None

    def test_straggler_factors_compound(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(kind=FaultKind.STRAGGLER, device=1, magnitude=2.0),
                FaultSpec(kind=FaultKind.STRAGGLER, device=1, magnitude=3.0),
            ),
        )
        assert plan.straggler_factor(1) == pytest.approx(6.0)
        assert plan.straggler_factor(0) == 1.0

    def test_device_failure_lookup(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(kind=FaultKind.DEVICE_FAIL, device=2, step=7),
            ),
        )
        assert plan.device_failure_at(7).device == 2
        assert plan.device_failure_at(6) is None


class TestFaultInjector:
    def test_transfer_indices_are_sequential(self):
        injector = FaultInjector(FaultPlan.healthy())
        assert [injector.next_transfer_index() for _ in range(3)] == [0, 1, 2]

    def test_fault_clears_after_its_attempts(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    kind=FaultKind.DROP, transfer_index=0, attempts=2
                ),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.transfer_outcome(0, 0).dropped
        assert injector.transfer_outcome(0, 1).dropped
        assert injector.transfer_outcome(0, 2).clean
        assert injector.transfer_outcome(1, 0).clean

    def test_corrupt_nan_leaves_original_untouched(self):
        injector = FaultInjector(FaultPlan.healthy(seed=3))
        payload = np.ones((2, 3))
        corrupted = injector.corrupt_payload(payload, FaultKind.CORRUPT_NAN)
        assert np.isnan(corrupted).sum() == 1
        assert np.all(np.isfinite(payload))

    def test_corrupt_bitflip_changes_exactly_one_element(self):
        injector = FaultInjector(FaultPlan.healthy(seed=3))
        payload = np.full((4,), 1.5)
        corrupted = injector.corrupt_payload(
            payload, FaultKind.CORRUPT_BITFLIP
        )
        assert (corrupted != payload).sum() == 1

    def test_corruption_is_seed_deterministic(self):
        payload = np.arange(12.0).reshape(3, 4)
        a = FaultInjector(FaultPlan.healthy(seed=9)).corrupt_payload(
            payload, FaultKind.CORRUPT_BITFLIP
        )
        b = FaultInjector(FaultPlan.healthy(seed=9)).corrupt_payload(
            payload, FaultKind.CORRUPT_BITFLIP
        )
        np.testing.assert_array_equal(a, b, strict=True)

    def test_on_instruction_triggers_device_failure(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(kind=FaultKind.DEVICE_FAIL, device=1, step=2),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.on_instruction() is None
        assert injector.on_instruction() is None
        assert injector.on_instruction().device == 1


class TestChannelConditions:
    def test_healthy_multipliers_are_one(self):
        conditions = ChannelConditions.healthy()
        assert conditions.is_healthy
        assert conditions.transfer_multiplier(("x", "minus")) == 1.0
        assert conditions.compute_multiplier() == 1.0
        assert conditions.collective_multiplier() == 1.0

    def test_degraded_link_stretches_only_that_resource(self):
        conditions = ChannelConditions.degraded_link("x", "minus", 0.25)
        assert conditions.transfer_multiplier(("x", "minus")) == 4.0
        assert conditions.transfer_multiplier(("x", "plus")) == 1.0
        assert conditions.collective_multiplier() == 4.0

    def test_per_device_link_scale_applies_to_source(self):
        conditions = ChannelConditions(per_device_link_scale={2: 0.5})
        assert conditions.transfer_multiplier(("x", "plus"), source=2) == 2.0
        assert conditions.transfer_multiplier(("x", "plus"), source=0) == 1.0

    def test_straggler_device(self):
        conditions = ChannelConditions.straggler(1, 0.5)
        assert conditions.compute_multiplier(1) == 2.0
        assert conditions.compute_multiplier(0) == 1.0

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError, match="must be > 0"):
            ChannelConditions(link_scale={("x", "plus"): 0.0})
        with pytest.raises(ValueError, match="compute_scale"):
            ChannelConditions(compute_scale=0.0)

    def test_conditions_from_plan_maps_stragglers(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(kind=FaultKind.STRAGGLER, device=3, magnitude=2.0),
            ),
        )
        conditions = conditions_from_plan(plan, DeviceMesh.ring(4))
        assert conditions.compute_multiplier(3) == pytest.approx(2.0)
        assert conditions.compute_multiplier(0) == 1.0


class TestAttachSeed:
    """Recovery wrappers stamp the original replay seed onto late faults."""

    def test_stamps_seed_and_message(self):
        error = FaultError("late fault")
        assert error.attach_seed(42) is error
        assert error.seed == 42
        assert "replay with seed=42" in str(error)

    def test_existing_seed_wins(self):
        error = FaultError("early fault", seed=7)
        error.attach_seed(42)
        assert error.seed == 7
        assert "seed=42" not in str(error)

    def test_none_is_a_no_op(self):
        error = FaultError("no injector")
        error.attach_seed(None)
        assert error.seed is None
        assert "replay" not in str(error)


class TestDirectionScopedLinkDown:
    def test_direction_only_valid_on_link_down(self):
        with pytest.raises(ValueError, match="direction"):
            FaultSpec(
                kind=FaultKind.DROP, transfer_index=0, direction="minus"
            )

    def test_direction_value_validated(self):
        with pytest.raises(ValueError, match="direction"):
            FaultSpec(
                kind=FaultKind.LINK_DOWN,
                transfer_index=0,
                direction="sideways",
            )

    def test_scoped_outage_misses_the_mirror_direction(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    kind=FaultKind.LINK_DOWN,
                    transfer_index=0,
                    direction="minus",
                ),
            ),
        )
        assert plan.link_down_at(0, "minus") is not None
        assert plan.link_down_at(5, "minus") is not None  # persistent
        assert plan.link_down_at(0, "plus") is None

    def test_unscoped_outage_hits_both_directions(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(kind=FaultKind.LINK_DOWN, transfer_index=0),
            ),
        )
        assert plan.link_down_at(0, "minus") is not None
        assert plan.link_down_at(0, "plus") is not None
        assert plan.link_down_at(0, None) is not None


class TestConditionsEdgeCases:
    """ChannelConditions corners (PR 6 satellite)."""

    def test_per_device_zero_scales_rejected(self):
        with pytest.raises(ValueError, match="must be > 0"):
            ChannelConditions(per_device_compute_scale={0: 0.0})
        with pytest.raises(ValueError, match="must be > 0"):
            ChannelConditions(per_device_link_scale={1: -0.5})

    def test_conditions_from_plan_empty_plan_is_healthy(self):
        plan = FaultPlan(seed=0, specs=())
        conditions = conditions_from_plan(plan, DeviceMesh.ring(4))
        assert conditions.is_healthy

    def test_conditions_from_plan_ignores_transfer_faults(self):
        # Drops and corruption have no steady-state timing analogue.
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(kind=FaultKind.DROP, transfer_index=0),
                FaultSpec(
                    kind=FaultKind.CORRUPT_NAN, transfer_index=1
                ),
            ),
        )
        conditions = conditions_from_plan(plan, DeviceMesh.ring(4))
        assert conditions.is_healthy

    def test_absent_channels_run_at_nominal(self):
        # A mesh axis the conditions never mention is untouched.
        conditions = ChannelConditions.degraded_link("x", "minus", 0.5)
        assert conditions.transfer_multiplier(("y", "minus")) == 1.0
        assert conditions.transfer_multiplier(("x", "plus")) == 1.0

    def test_collective_gated_by_slowest_of_link_and_serdes(self):
        conditions = ChannelConditions(
            link_scale={("x", "minus"): 0.5},
            per_device_link_scale={0: 0.25},
        )
        assert conditions.collective_multiplier() == pytest.approx(4.0)
