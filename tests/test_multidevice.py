"""Cross-validation of the symmetric walk against the multi-device mode."""

import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16
from repro.hlo.shapes import Shape
from repro.perfsim.multidevice import simulate_per_device
from repro.perfsim.simulator import simulate
from repro.sharding.mesh import DeviceMesh


def overlap_module(mesh):
    n = mesh.num_devices
    builder = GraphBuilder("m")
    x = builder.parameter(Shape((1024, 2048), BF16), name="x")
    w = builder.parameter(Shape((2048, 4096 // n), BF16), name="w")
    gathered = builder.all_gather(w, 1, mesh.rings("x"))
    hidden = builder.einsum("bf,fh->bh", x, gathered)
    w2 = builder.parameter(Shape((4096 // n, 2048), BF16), name="w2")
    gathered2 = builder.all_gather(w2, 0, mesh.rings("x"))
    builder.einsum("bh,hf->bf", hidden, gathered2)
    return builder.module


@pytest.mark.parametrize("scheduler", ["in_order", "bottom_up", "top_down"])
@pytest.mark.parametrize("ring", [2, 4, 8])
def test_symmetric_walk_matches_per_device(ring, scheduler):
    """SPMD symmetry: every device's timeline equals the representative
    walk, for every scheduler."""
    mesh = DeviceMesh.ring(ring)
    module = overlap_module(mesh)
    compile_module(
        module, mesh, OverlapConfig(use_cost_model=False, scheduler=scheduler)
    )
    report = simulate(module, mesh)
    timelines = simulate_per_device(module, mesh)
    assert len(timelines) == ring
    for timeline in timelines:
        assert timeline.total_time == pytest.approx(report.total_time)
        assert timeline.permute_wait_time == pytest.approx(
            report.permute_wait_time
        )


def test_two_dimensional_mesh_symmetry():
    mesh = DeviceMesh.grid({"x": 2, "y": 4})
    builder = GraphBuilder("m")
    x = builder.parameter(Shape((512, 1024), BF16), name="x")
    w = builder.parameter(Shape((1024, 512), BF16), name="w")
    gathered = builder.all_gather(w, 1, mesh.rings("y"))
    builder.einsum("bf,fh->bh", x, gathered)
    compile_module(builder.module, mesh, OverlapConfig(use_cost_model=False))
    report = simulate(builder.module, mesh)
    for timeline in simulate_per_device(builder.module, mesh):
        assert timeline.total_time == pytest.approx(report.total_time)


def test_sync_collective_acts_as_group_barrier():
    mesh = DeviceMesh.ring(4)
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((1 << 20,), BF16), name="a")
    builder.all_gather(a, 0, mesh.rings("x"))
    timelines = simulate_per_device(builder.module, mesh)
    times = {round(t.total_time, 12) for t in timelines}
    assert len(times) == 1
    assert times.pop() > 0.0


def test_baseline_has_no_waits():
    mesh = DeviceMesh.ring(4)
    module = overlap_module(mesh)
    compile_module(module, mesh, OverlapConfig.baseline())
    for timeline in simulate_per_device(module, mesh):
        assert timeline.permute_wait_time == 0.0


class TestPerDeviceTraceLanes:
    """The multi-device walk emits the per-device lanes the adaptation
    monitor consumes (PR 6)."""

    def trace_of(self, ring=4, conditions=None):
        from repro.perfsim.trace import Trace

        mesh = DeviceMesh.ring(ring)
        module = overlap_module(mesh)
        compile_module(module, mesh, OverlapConfig(use_cost_model=False))
        trace = Trace()
        timelines = simulate_per_device(
            module, mesh, conditions=conditions, trace=trace
        )
        return timelines, trace

    def test_link_lanes_carry_direction_and_source(self):
        from repro.obs.events import TRANSFER

        _, trace = self.trace_of()
        transfers = [e for e in trace.events if e.kind == TRANSFER]
        assert transfers
        for event in transfers:
            parts = event.resource.split(":")
            assert parts[0] == "link"
            assert parts[2] in ("minus", "plus")
            assert parts[3].startswith("dev")
            assert event.bytes > 0

    def test_compute_lanes_are_per_device(self):
        _, trace = self.trace_of(ring=4)
        compute_lanes = {
            e.resource
            for e in trace.events
            if e.resource.startswith("compute:")
        }
        assert compute_lanes == {f"compute:dev{d}" for d in range(4)}

    def test_straggler_shows_up_on_its_own_lanes(self):
        from repro.faults.conditions import ChannelConditions

        healthy, healthy_trace = self.trace_of(ring=4)
        degraded, degraded_trace = self.trace_of(
            ring=4,
            conditions=ChannelConditions(
                per_device_compute_scale={2: 0.5}
            ),
        )
        assert max(t.total_time for t in degraded) > max(
            t.total_time for t in healthy
        )

        from repro.obs.events import COMPUTE

        def compute_busy(trace, device):
            return sum(
                e.duration
                for e in trace.events
                if e.resource == f"compute:dev{device}"
                and e.kind == COMPUTE
            )

        # Device 2's compute lane stretches 2x; device 0's is untouched.
        assert compute_busy(degraded_trace, 2) == pytest.approx(
            2 * compute_busy(healthy_trace, 2)
        )
        assert compute_busy(degraded_trace, 0) == pytest.approx(
            compute_busy(healthy_trace, 0)
        )
