"""Unit tests for einsum sharding resolution (plan_einsum)."""

import pytest

from repro.hlo.einsum_spec import LHS, RHS, EinsumSpec
from repro.sharding.propagation import ShardingError, plan_einsum
from repro.sharding.spec import ShardingSpec

S = ShardingSpec
MATMUL = EinsumSpec.parse("bf,fh->bh")


class TestContracting:
    def test_matched_contracting_becomes_reduce_scatter(self):
        plan = plan_einsum(MATMUL, S((None, "x")), S(("x", None)), S((None, "x")))
        assert not plan.gathers
        assert len(plan.reduces) == 1
        assert plan.reduces[0].axis == "x"
        assert plan.reduces[0].scatter_dim == 1

    def test_matched_contracting_all_reduce_when_output_replicated(self):
        plan = plan_einsum(
            MATMUL, S((None, "x")), S(("x", None)), S.replicated(2)
        )
        assert plan.reduces[0].scatter_dim is None

    def test_one_sided_contracting_gathers(self):
        plan = plan_einsum(
            MATMUL, S((None, "x")), S.replicated(2), S.replicated(2)
        )
        assert len(plan.gathers) == 1
        assert plan.gathers[0].operand == LHS
        assert plan.gathers[0].dim == 1
        assert plan.gathers[0].axis == "x"

    def test_mismatched_contracting_gathers_both(self):
        plan = plan_einsum(
            MATMUL, S((None, "x")), S(("y", None)), S.replicated(2)
        )
        assert len(plan.gathers) == 2
        assert {g.operand for g in plan.gathers} == {LHS, RHS}


class TestFree:
    def test_matching_free_dim_kept_sharded(self):
        plan = plan_einsum(
            MATMUL, S(("y", None)), S.replicated(2), S(("y", None))
        )
        assert not plan.gathers
        assert plan.out_spec.axis_of_dim(0) == "y"

    def test_mismatching_free_dim_gathered(self):
        plan = plan_einsum(
            MATMUL, S(("y", None)), S.replicated(2), S.replicated(2)
        )
        assert len(plan.gathers) == 1
        assert plan.gathers[0] .operand == LHS
        assert plan.gathers[0].dim == 0

    def test_rhs_free_dim_kept(self):
        plan = plan_einsum(
            MATMUL, S.replicated(2), S((None, "x")), S((None, "x"))
        )
        assert not plan.gathers
        assert plan.out_spec.axis_of_dim(1) == "x"


class TestBatch:
    BATCHED = EinsumSpec.parse("gbf,gfh->gbh")

    def test_consistent_batch_kept(self):
        plan = plan_einsum(
            self.BATCHED,
            S(("x", None, None)),
            S(("x", None, None)),
            S(("x", None, None)),
        )
        assert not plan.gathers
        assert not plan.reduces
        assert plan.out_spec.axis_of_dim(0) == "x"

    def test_mismatched_batch_gathered_when_output_replicated(self):
        plan = plan_einsum(
            self.BATCHED,
            S(("x", None, None)),
            S(("y", None, None)),
            S.replicated(3),
        )
        assert len(plan.gathers) == 2

    def test_half_sharded_batch_rejected(self):
        with pytest.raises(ShardingError, match="batch"):
            plan_einsum(
                self.BATCHED,
                S(("x", None, None)),
                S.replicated(3),
                S(("x", None, None)),
            )


class TestFig3Patterns:
    """The exact resolutions behind the Figure 3 two-layer MLP."""

    def test_first_einsum_gathers_both_operands(self):
        # x[B/y, D/x] @ W1[D/y, F/x] -> h[B/y, F/x]
        plan = plan_einsum(
            EinsumSpec.parse("bd,df->bf"),
            S(("y", "x")), S(("y", "x")), S(("y", "x")),
        )
        gathered = {(g.operand, g.axis) for g in plan.gathers}
        assert gathered == {(LHS, "x"), (RHS, "y")}
        assert not plan.reduces

    def test_second_einsum_reduce_scatters_along_x(self):
        # h[B/y, F/x] @ W2[F/x, D/y] -> out[B/y, D/x]
        plan = plan_einsum(
            EinsumSpec.parse("bf,fd->bd"),
            S(("y", "x")), S(("x", "y")), S(("y", "x")),
        )
        assert len(plan.reduces) == 1
        assert plan.reduces[0].axis == "x"
        assert plan.reduces[0].scatter_dim == 1
        gathered = {(g.operand, g.axis) for g in plan.gathers}
        assert gathered == {(RHS, "y")}

    def test_weight_gradient_reduce_scatters_along_y(self):
        # x[B/y, D/x] @ dH[B/y, F/x] -> dW[D/y, F/x]
        plan = plan_einsum(
            EinsumSpec.parse("bd,bf->df"),
            S(("y", "x")), S(("y", "x")), S(("y", "x")),
        )
        assert any(r.axis == "y" and r.scatter_dim == 0 for r in plan.reduces)


class TestConflicts:
    def test_axis_used_twice_in_result_rejected(self):
        # Both free dims want the same axis.
        with pytest.raises(Exception):
            plan_einsum(
                MATMUL, S(("x", None)), S((None, "x")), S(("x", "x"))
            )
