"""Tests for the observability layer: spans, counters, exporters, overlap.

Covers the contract the CI gates consume: deterministic span nesting,
byte counters that match hand-computed fabric payloads, a lossless
Chrome trace_event round-trip, and the overlap-efficiency acceptance
property — a decomposed + async-scheduled program must hide strictly
more communication than its undecomposed baseline on *both* engines.
"""

import json

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.loop import emit_rolled
from repro.core.patterns import find_candidates
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES, run_one
from repro.hlo.opcode import Opcode
from repro.obs import (
    ASYNC_DONE,
    ASYNC_START,
    COLLECTIVE,
    COMPUTE,
    CONTROL,
    RETRY,
    TRANSFER,
    EventLog,
    Tracer,
    diff_timelines,
    events_from_chrome,
    metrics_dict,
    overlap_summary,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.health_feed import lane_costs, retry_fraction
from repro.perfsim.simulator import simulate_with_trace
from repro.perfsim.trace import Trace
from repro.runtime.collectives import payload_bytes
from repro.runtime.compile import CompiledExecutor
from repro.runtime.executor import Executor
from repro.runtime.resilient import run_with_fallback
from repro.sharding.mesh import DeviceMesh


def golden(name):
    return next(case for case in GOLDEN_CASES if case.name == name)


def golden_run(name="mlp-chain", ring=4, config=None, engine="interpreted"):
    """Run one golden module under a tracer; returns (tracer, values)."""
    case = golden(name)
    mesh = DeviceMesh.ring(ring)
    rng = np.random.default_rng([20230325, ring])
    arguments = case.make_arguments(mesh, rng)
    module = case.build(mesh)
    if config is not None:
        compile_module(module, mesh, config)
    tracer = Tracer()
    executor = (
        Executor(ring, tracer=tracer)
        if engine == "interpreted"
        else CompiledExecutor(ring, tracer=tracer)
    )
    values = executor.run(module, arguments)
    return tracer, values


DECOMPOSED = OverlapConfig(use_cost_model=False, scheduler="bottom_up")


class FakeClock:
    """A deterministic clock: each call advances by one tick."""

    def __init__(self, tick=1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


class TestSpanNesting:
    def test_nested_spans_record_increasing_depth(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
        by_name = {e.name: e for e in tracer.events}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2

    def test_nested_spans_are_contained_in_their_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {e.name: e for e in tracer.events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [e.depth for e in tracer.events] == [0, 0]
        tracer.validate()  # siblings are disjoint on the lane

    def test_validate_rejects_overlapping_top_level_spans(self):
        log = EventLog()
        log.add("a", COMPUTE, "compute", 0.0, 2.0)
        log.add("b", COMPUTE, "compute", 1.0, 3.0)
        with pytest.raises(ValueError, match="overlap"):
            log.validate()

    def test_validate_ignores_nested_spans(self):
        log = EventLog()
        log.add("loop", CONTROL, "compute", 0.0, 2.0)
        log.add("body", COMPUTE, "compute", 0.5, 1.5, depth=1)
        log.validate()

    def test_executor_trace_validates(self):
        tracer, _ = golden_run(config=DECOMPOSED)
        tracer.validate()


class TestCounters:
    # mlp-chain on a ring of 4: a is f32[2,3] (24 bytes/shard) gathered
    # over 4 devices; h is f32[8,8] -> f32[2,8] scattered chunks.
    AG_BYTES = 24 * 4
    RS_BYTES = 256 * 4

    @pytest.mark.parametrize("engine", ["interpreted", "compiled"])
    def test_baseline_byte_counters_match_hand_count(self, engine):
        tracer, _ = golden_run(engine=engine)
        assert tracer.counters["bytes.all-gather"] == self.AG_BYTES
        assert tracer.counters["bytes.reduce-scatter"] == self.RS_BYTES

    def test_engines_agree_on_byte_counters(self):
        interp, _ = golden_run(config=DECOMPOSED, engine="interpreted")
        compiled, _ = golden_run(config=DECOMPOSED, engine="compiled")
        keys = [k for k in interp.counters if k.startswith("bytes.")]
        assert keys
        for key in keys:
            assert interp.counters[key] == compiled.counters[key]

    def test_byte_counters_sum_event_bytes(self):
        tracer, _ = golden_run(config=DECOMPOSED)
        started = sum(
            e.bytes for e in tracer.events if e.kind == ASYNC_START
        )
        assert started == tracer.counters["bytes.collective-permute-start"]

    def test_payload_bytes_model(self):
        assert payload_bytes(24, groups=[(0, 1, 2, 3)]) == 96
        assert payload_bytes(8, pairs=[(0, 1), (1, 0)]) == 16
        assert payload_bytes(8) == 0

    def test_compiled_plan_cache_counters(self):
        case = golden("mlp-chain")
        mesh = DeviceMesh.ring(4)
        rng = np.random.default_rng([20230325, 4])
        arguments = case.make_arguments(mesh, rng)
        module = case.build(mesh)
        tracer = Tracer()
        executor = CompiledExecutor(4, tracer=tracer)
        executor.run(module, arguments)
        executor.run(module, arguments)
        assert tracer.counters["plan.cache_misses"] == 1
        assert tracer.counters["plan.cache_hits"] == 1

    def test_resilient_counters_without_faults(self):
        case = golden("mlp-chain")
        mesh = DeviceMesh.ring(4)
        rng = np.random.default_rng([20230325, 4])
        arguments = case.make_arguments(mesh, rng)
        primary = case.build(mesh)
        compile_module(primary, mesh, DECOMPOSED)
        tracer = Tracer()
        result = run_with_fallback(
            primary, case.build(mesh), arguments, 4, tracer=tracer
        )
        assert not result.used_fallback
        assert tracer.counters["transfers"] == result.stats.transfers
        assert "retries" not in tracer.counters
        assert "fallbacks" not in tracer.counters


class TestChromeExport:
    def test_round_trip_preserves_events(self):
        tracer, _ = golden_run(config=DECOMPOSED)
        streams = {"interpreted/decomposed": tracer.events}
        obj = json.loads(json.dumps(
            to_chrome_trace(streams, counters={
                "interpreted/decomposed": tracer.counters,
            })
        ))
        assert validate_chrome_trace(obj) == []
        parsed = events_from_chrome(obj)["interpreted/decomposed"]
        assert len(parsed) == len(tracer.events)
        for original, parsed_event in zip(tracer.events, parsed):
            assert parsed_event.name == original.name
            assert parsed_event.kind == original.kind
            assert parsed_event.resource == original.resource
            assert parsed_event.bytes == original.bytes
            assert parsed_event.depth == original.depth
            assert parsed_event.start == pytest.approx(
                original.start, abs=1e-9
            )
            assert parsed_event.duration == pytest.approx(
                original.duration, abs=1e-9
            )

    def test_validator_rejects_malformed_traces(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
        bad_kind = {
            "traceEvents": [
                {
                    "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
                    "args": {"name": "t"},
                },
                {
                    "ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
                    "args": {"name": "compute"},
                },
                {
                    "ph": "X", "name": "x", "cat": "nonsense", "pid": 0,
                    "tid": 0, "ts": 0, "dur": 1,
                    "args": {"bytes": 0, "depth": 0},
                },
            ],
            "metadata": {"schema_version": 1},
        }
        problems = validate_chrome_trace(bad_kind)
        assert any("kind" in p for p in problems)

    def test_validator_accepts_simulated_trace(self):
        case = golden("mlp-chain")
        mesh = DeviceMesh.ring(4)
        module = case.build(mesh)
        compile_module(module, mesh, DECOMPOSED)
        _, trace = simulate_with_trace(module, mesh)
        assert trace.events  # the simulator filled the shared schema
        assert validate_chrome_trace(to_chrome_trace(trace.events)) == []

    def test_metrics_dict_flattens_counters_and_kinds(self):
        tracer, _ = golden_run()
        metrics = metrics_dict(tracer)
        assert metrics["events"] == len(tracer.events)
        assert metrics["bytes.all-gather"] == TestCounters.AG_BYTES
        assert f"seconds.{COLLECTIVE}" in metrics

    def test_diff_timelines_pairs_by_name_and_kind(self):
        left, right = EventLog(), EventLog()
        left.add("op", COMPUTE, "compute", 0.0, 1.0)
        right.add("op", COMPUTE, "compute", 0.0, 3.0)
        right.add("only-right", COMPUTE, "compute", 3.0, 4.0)
        rows = diff_timelines(left.events, right.events)
        assert ("op", COMPUTE, 1.0, 3.0) in rows
        assert ("only-right", COMPUTE, 0.0, 1.0) in rows


class TestOverlapEfficiency:
    @pytest.mark.parametrize("engine", ["interpreted", "compiled"])
    def test_decomposed_hides_more_than_baseline(self, engine):
        baseline, _ = golden_run(engine=engine)
        decomposed, _ = golden_run(engine=engine, config=DECOMPOSED)
        base = overlap_summary(baseline.events)
        deco = overlap_summary(decomposed.events)
        assert base.transfer_time == 0.0
        assert base.hidden_communication_fraction == 0.0
        assert deco.hidden_transfer_time > 0.0
        assert (
            deco.hidden_communication_fraction
            > base.hidden_communication_fraction
        )

    def test_simulated_timeline_reports_hidden_transfers(self):
        case = golden("mlp-chain")
        mesh = DeviceMesh.ring(4)
        module = case.build(mesh)
        compile_module(module, mesh, DECOMPOSED)
        _, trace = simulate_with_trace(module, mesh)
        summary = overlap_summary(trace.events)
        assert summary.transfer_time > 0.0
        assert summary.hidden_transfer_time > 0.0

    def test_hidden_fraction_handles_empty_timeline(self):
        summary = overlap_summary([])
        assert summary.hidden_fraction == 0.0
        assert summary.hidden_communication_fraction == 0.0

    def test_synthesized_transfer_window_spans_issue_to_delivery(self):
        tracer, _ = golden_run(config=DECOMPOSED)
        transfers = {e.name: e for e in tracer.events if e.kind == TRANSFER}
        starts = {
            e.name: e for e in tracer.events if e.kind == ASYNC_START
        }
        dones = {
            e.name: e for e in tracer.events if e.kind == ASYNC_DONE
        }
        assert transfers and set(transfers) == set(starts)
        for name, window in transfers.items():
            assert window.start == starts[name].start
            assert any(
                window.end == done.end for done in dones.values()
            )


class TestWhileLoopTracing:
    def _rolled_module_and_args(self, ring=4):
        from test_loop import build_gather, gather_arguments

        mesh = DeviceMesh.ring(ring)
        module = build_gather(mesh, "free")
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        assert loop.opcode is Opcode.WHILE
        rng = np.random.default_rng(20230325)
        return module, mesh, gather_arguments(rng, "free", ring)

    @pytest.mark.parametrize("engine", ["interpreted", "compiled"])
    def test_loop_bodies_trace_one_level_deeper(self, engine):
        module, mesh, arguments = self._rolled_module_and_args()
        tracer = Tracer()
        executor = (
            Executor(mesh.num_devices, tracer=tracer)
            if engine == "interpreted"
            else CompiledExecutor(mesh.num_devices, tracer=tracer)
        )
        executor.run(module, arguments)
        controls = [e for e in tracer.events if e.kind == CONTROL]
        assert len(controls) == 1  # the While container itself
        nested = [e for e in tracer.events if e.depth > 0]
        assert nested  # body instructions traced inside the container
        (loop,) = controls
        for event in nested:
            assert loop.start <= event.start and event.end <= loop.end
        # The rolled ring walk permutes once per non-final iteration.
        ring_permutes = [e for e in nested if e.kind == COLLECTIVE]
        assert len(ring_permutes) >= mesh.num_devices - 1
        assert any(e.kind == COMPUTE for e in nested)  # the body einsum
        tracer.validate()


class TestChaosTracing:
    def test_traced_chaos_outcomes_match_untraced(self):
        for seed in range(12):
            untraced = run_one(seed)
            tracer = Tracer()
            traced = run_one(seed, tracer=tracer)
            assert traced.signature == untraced.signature
            assert tracer.counters[f"chaos.{traced.outcome}"] == 1

    def test_chaos_batch_counters_account_every_run(self):
        tracer = Tracer()
        runs = 8
        outcomes = [run_one(seed, tracer=tracer).outcome
                    for seed in range(runs)]
        total = sum(
            value for key, value in tracer.counters.items()
            if key.startswith("chaos.")
        )
        assert total == runs
        for outcome in set(outcomes):
            assert tracer.counters[f"chaos.{outcome}"] == outcomes.count(
                outcome
            )

    def test_retry_events_live_on_their_own_lanes(self):
        # Sweep seeds until a run actually retried; the tracer must have
        # recorded each failed attempt on a retry:<transfer> lane.
        for seed in range(200):
            tracer = Tracer()
            result = run_one(seed, tracer=tracer)
            if result.retries and result.outcome in (
                "recovered", "fallback"
            ):
                retry_events = [
                    e for e in tracer.events if e.kind == RETRY
                ]
                if not retry_events:
                    continue  # retries can come from virtual timeouts only
                assert all(
                    e.resource.startswith("retry:") for e in retry_events
                )
                assert tracer.counters.get("retries", 0) >= 1
                return
        pytest.skip("no seed in range produced a traced retry")


class TestSimulatedTraceSchema:
    def test_trace_is_an_event_log(self):
        trace = Trace()
        assert isinstance(trace, EventLog)
        trace.add("op", COMPUTE, "compute", 0.0, 0.0)  # zero-duration
        assert trace.events == []  # simulated zero spans carry nothing
        trace.add("op", COMPUTE, "compute", 0.0, 1.0)
        assert len(trace.events) == 1

    def test_simulated_transfer_events_carry_bytes(self):
        case = golden("mlp-chain")
        mesh = DeviceMesh.ring(4)
        module = case.build(mesh)
        compile_module(module, mesh, DECOMPOSED)
        report, trace = simulate_with_trace(module, mesh)
        transfers = [e for e in trace.events if e.kind == TRANSFER]
        assert transfers
        assert sum(e.bytes for e in transfers) == sum(
            report.link_bytes.values()
        )


class TestCommVolumeLens:
    """The bytes-on-wire accounting lens (PR 6 satellite)."""

    def synthetic(self):
        log = EventLog()
        log.add("p0", ASYNC_START, "compute", 0.0, 0.1, bytes=100)
        log.add("p0", TRANSFER, "link:x:minus", 0.0, 1.0, bytes=100)
        log.add("p0", ASYNC_DONE, "compute", 1.0, 1.1, bytes=100)
        log.add("p1", TRANSFER, "link:x:plus", 0.0, 2.0, bytes=300)
        log.add("ag", COLLECTIVE, "compute", 1.0, 3.0, bytes=50)
        log.add("mm", COMPUTE, "compute", 0.0, 3.0)
        return log.events

    def test_counts_each_payload_once(self):
        from repro.obs.comm_volume import comm_volume_summary

        summary = comm_volume_summary(self.synthetic())
        # The async start/done spans mirror the transfer windows; only
        # the transfers plus the sync collective land in the total.
        assert summary.transfer_bytes == 400
        assert summary.collective_bytes == 50
        assert summary.total_bytes == 450
        assert summary.total_time == 3.0

    def test_channels_grouped_by_resource_and_kind(self):
        from repro.obs.comm_volume import comm_volume_summary

        summary = comm_volume_summary(self.synthetic())
        lanes = {(c.resource, c.kind): c for c in summary.channels}
        minus = lanes[("link:x:minus", TRANSFER)]
        assert minus.bytes == 100
        assert minus.events == 1
        assert minus.bandwidth == pytest.approx(100.0)
        # Zero-byte compute spans never become channels.
        assert ("compute", COMPUTE) not in lanes

    def test_async_starts_count_when_no_transfer_windows(self):
        from repro.obs.comm_volume import comm_volume_summary

        log = EventLog()
        log.add("p0", ASYNC_START, "compute", 0.0, 0.1, bytes=128)
        summary = comm_volume_summary(log.events)
        assert summary.transfer_bytes == 128
        assert summary.total_bytes == 128

    def test_empty_log_is_all_zero(self):
        from repro.obs.comm_volume import comm_volume_summary

        summary = comm_volume_summary([])
        assert summary.total_bytes == 0
        assert summary.channels == ()

    def test_human_bytes_units(self):
        from repro.obs.comm_volume import human_bytes

        assert human_bytes(0) == "0 B"
        assert human_bytes(96) == "96 B"
        assert human_bytes(1536) == "1.5 KiB"
        assert human_bytes(56 * 1024 * 1024) == "56.0 MiB"

    def test_format_renders_totals(self):
        from repro.obs.comm_volume import (
            comm_volume_summary,
            format_comm_volume,
        )

        text = format_comm_volume(comm_volume_summary(self.synthetic()))
        assert "bytes on wire: 450 B" in text
        assert "link:x:minus" in text

    def test_simulated_baseline_collectives_carry_bytes(self):
        # The symmetric simulator annotates sync-collective spans with
        # the same payload model the executors use, so the lens accounts
        # an undecomposed program's traffic too.
        from repro.obs.comm_volume import comm_volume_summary

        case = golden("mlp-chain")
        mesh = DeviceMesh.ring(4)
        module = case.build(mesh)
        compile_module(module, mesh, OverlapConfig.baseline())
        report, trace = simulate_with_trace(module, mesh)
        summary = comm_volume_summary(trace.events)
        assert summary.collective_bytes > 0
        assert summary.total_bytes == summary.collective_bytes


class TestHealthFeedLens:
    """Per-lane normalized costs feeding the adaptation monitor."""

    def test_byte_lane_cost_is_seconds_per_byte(self):
        log = EventLog()
        log.add("t", TRANSFER, "link:x:minus", 0.0, 2.0, bytes=1000)
        costs = lane_costs(log.events)
        assert costs["link:x:minus"].cost == pytest.approx(0.002)

    def test_compute_lane_cost_is_seconds_per_event(self):
        log = EventLog()
        log.add("a", COMPUTE, "compute:dev0", 0.0, 1.0)
        log.add("b", COMPUTE, "compute:dev0", 1.0, 4.0)
        costs = lane_costs(log.events)
        assert costs["compute:dev0"].cost == pytest.approx(2.0)

    def test_stalls_and_retries_excluded(self):
        log = EventLog()
        log.add("t", TRANSFER, "link:x:minus", 0.0, 1.0, bytes=100)
        log.add("stall", "stall", "link:x:minus", 1.0, 9.0)
        log.add("retry", RETRY, "link:x:minus", 1.0, 1.5)
        costs = lane_costs(log.events)
        assert costs["link:x:minus"].busy_time == pytest.approx(1.0)

    def test_retry_fraction(self):
        log = EventLog()
        log.add("t", TRANSFER, "link:x:minus", 0.0, 1.0, bytes=100)
        log.add("retry", RETRY, "link:x:minus", 1.0, 1.0)
        assert retry_fraction(log.events) == pytest.approx(0.5)
        assert retry_fraction([]) == 0.0
