"""Property-based equivalence tests for the decomposition.

Hypothesis draws random ring sizes, dimension sizes, gather cases and
optimization variants; every draw must execute identically to the
original collective/einsum pair.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OverlapConfig
from repro.core.patterns import find_candidates
from repro.core.decompose import decompose_candidate
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh


def _check(build, mesh, arguments):
    reference_module = build(mesh)
    reference = run_spmd(
        reference_module, arguments, mesh.num_devices
    )[reference_module.root.name]
    module = build(mesh)
    (candidate,) = find_candidates(module)
    return reference, module, candidate


variant = st.builds(
    OverlapConfig,
    unroll=st.booleans(),
    bidirectional=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(
    ring=st.sampled_from([2, 3, 4, 5, 6]),
    per_shard=st.integers(1, 3),
    free=st.integers(1, 4),
    other=st.integers(1, 4),
    case=st.sampled_from(["free", "contracting", "batch"]),
    config=variant,
    seed=st.integers(0, 2**16),
)
def test_all_gather_cases(ring, per_shard, free, other, case, config, seed):
    rng = np.random.default_rng(seed)
    mesh = DeviceMesh.ring(ring)
    gathered_full = ring * per_shard

    def build(mesh):
        builder = GraphBuilder("p")
        if case == "free":
            lhs = builder.parameter(Shape((per_shard, other), F32), name="lhs")
            rhs = builder.parameter(Shape((other, free), F32), name="rhs")
            gathered = builder.all_gather(lhs, 0, mesh.rings("x"))
            builder.einsum("bf,fh->bh", gathered, rhs)
        elif case == "contracting":
            lhs = builder.parameter(Shape((free, per_shard), F32), name="lhs")
            rhs = builder.parameter(Shape((gathered_full, other), F32), name="rhs")
            gathered = builder.all_gather(lhs, 1, mesh.rings("x"))
            builder.einsum("bf,fh->bh", gathered, rhs)
        else:
            lhs = builder.parameter(
                Shape((per_shard, free, other), F32), name="lhs"
            )
            rhs = builder.parameter(
                Shape((gathered_full, other, 2), F32), name="rhs"
            )
            gathered = builder.all_gather(lhs, 0, mesh.rings("x"))
            builder.einsum("gbf,gfh->gbh", gathered, rhs)
        return builder.module

    if case == "free":
        lhs_full = rng.normal(size=(gathered_full, other))
        arguments = {
            "lhs": [s.copy() for s in np.split(lhs_full, ring, 0)],
            "rhs": [rng.normal(size=(other, free))] * ring,
        }
    elif case == "contracting":
        lhs_full = rng.normal(size=(free, gathered_full))
        arguments = {
            "lhs": [s.copy() for s in np.split(lhs_full, ring, 1)],
            "rhs": [rng.normal(size=(gathered_full, other))] * ring,
        }
    else:
        lhs_full = rng.normal(size=(gathered_full, free, other))
        arguments = {
            "lhs": [s.copy() for s in np.split(lhs_full, ring, 0)],
            "rhs": [rng.normal(size=(gathered_full, other, 2))] * ring,
        }

    reference, module, candidate = _check(build, mesh, arguments)
    decompose_candidate(module, candidate, mesh, config)
    got = run_spmd(module, arguments, ring)[module.root.name]
    worst = max(np.abs(a - b).max() for a, b in zip(reference, got))
    assert worst < 1e-9


@settings(max_examples=40, deadline=None)
@given(
    ring=st.sampled_from([2, 3, 4, 6, 8]),
    per_shard=st.integers(1, 3),
    rows=st.integers(1, 4),
    contracting=st.integers(1, 4),
    scatter_lhs=st.booleans(),
    config=variant,
    seed=st.integers(0, 2**16),
)
def test_reduce_scatter(
    ring, per_shard, rows, contracting, scatter_lhs, config, seed
):
    rng = np.random.default_rng(seed)
    mesh = DeviceMesh.ring(ring)
    full = ring * per_shard

    def build(mesh):
        builder = GraphBuilder("p")
        if scatter_lhs:
            lhs = builder.parameter(Shape((full, contracting), F32), name="lhs")
            rhs = builder.parameter(Shape((contracting, rows), F32), name="rhs")
            out = builder.einsum("bf,fh->bh", lhs, rhs)
            builder.reduce_scatter(out, 0, mesh.rings("x"))
        else:
            lhs = builder.parameter(Shape((rows, contracting), F32), name="lhs")
            rhs = builder.parameter(Shape((contracting, full), F32), name="rhs")
            out = builder.einsum("bf,fh->bh", lhs, rhs)
            builder.reduce_scatter(out, 1, mesh.rings("x"))
        return builder.module

    if scatter_lhs:
        arguments = {
            "lhs": [rng.normal(size=(full, contracting)) for _ in range(ring)],
            "rhs": [rng.normal(size=(contracting, rows)) for _ in range(ring)],
        }
    else:
        arguments = {
            "lhs": [rng.normal(size=(rows, contracting)) for _ in range(ring)],
            "rhs": [rng.normal(size=(contracting, full)) for _ in range(ring)],
        }

    reference, module, candidate = _check(build, mesh, arguments)
    decompose_candidate(module, candidate, mesh, config)
    got = run_spmd(module, arguments, ring)[module.root.name]
    worst = max(np.abs(a - b).max() for a, b in zip(reference, got))
    assert worst < 1e-9
