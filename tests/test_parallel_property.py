"""Seeded property suite: parallel vs compiled vs interpreter.

Every test draws a fully seed-determined schedule — golden case, ring
size, overlap config, worker count — runs it through all three engines
and asserts the outputs are bit-identical across the board. Failures
print the seed, so any divergence replays deterministically.
"""

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.loop import emit_rolled, unroll_while
from repro.core.patterns import find_candidates
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES, run_chaos
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.runtime.engine import create_engine
from repro.sharding.mesh import DeviceMesh

SCHEDULERS = ("bottom_up", "top_down", "in_order")


def _draw_schedule(seed):
    """One seed → one (case, mesh, config, workers, arguments) draw."""
    rng = np.random.default_rng([seed, 7])
    case = GOLDEN_CASES[int(rng.integers(len(GOLDEN_CASES)))]
    ring = int(case.rings[int(rng.integers(len(case.rings)))])
    mesh = DeviceMesh.ring(ring)
    config = OverlapConfig(
        use_cost_model=False,
        scheduler=SCHEDULERS[int(rng.integers(len(SCHEDULERS)))],
        unroll=bool(rng.integers(2)),
        bidirectional=bool(rng.integers(2)),
    )
    workers = int(rng.integers(1, 5))
    arguments = case.make_arguments(mesh, rng)
    return case, mesh, config, workers, arguments


def _assert_all_identical(seed, results):
    reference = results["interpreted"]
    for kind, got in results.items():
        assert reference.keys() == got.keys(), f"seed={seed}"
        for name in reference:
            for device, (want, have) in enumerate(
                zip(reference[name], got[name])
            ):
                assert np.array_equal(want, have), (
                    f"seed={seed}: {kind} output {name!r} differs from "
                    f"the interpreter on device {device}"
                )


@pytest.mark.parametrize("seed", range(24))
def test_seeded_schedules_bit_identical_across_engines(seed):
    case, mesh, config, workers, arguments = _draw_schedule(seed)
    module = case.build(mesh)
    compile_module(module, mesh, config)
    results = {
        kind: create_engine(kind, **options).run(
            module, arguments, mesh=mesh
        )
        for kind, options in (
            ("interpreted", {}),
            ("compiled", {}),
            ("parallel", {"workers": workers}),
        )
    }
    _assert_all_identical(seed, results)


@pytest.mark.parametrize("seed", range(8))
def test_seeded_while_bodies_bit_identical(seed):
    """Rolled / partially-unrolled loops at seed-drawn worker counts:
    the nested body plans run on the same pool as the outer plan."""
    rng = np.random.default_rng([seed, 11])
    ring = int(rng.choice([2, 3, 4]))
    workers = int(rng.integers(1, 5))
    unroll_factor = [None, 0, 2][int(rng.integers(3))]
    if unroll_factor == 2 and ring % 2:
        unroll_factor = None
    mesh = DeviceMesh.ring(ring)
    builder = GraphBuilder("ag")
    a = builder.parameter(Shape((24 // ring, 5), F32), name="a")
    w = builder.parameter(Shape((5, 7), F32), name="w")
    gathered = builder.all_gather(a, 0, mesh.rings("x"))
    builder.einsum("bf,fh->bh", gathered, w)
    module = builder.module
    (candidate,) = find_candidates(module)
    loop = emit_rolled(module, candidate, mesh)
    if unroll_factor == 0:
        unroll_while(module, loop)
    elif unroll_factor == 2:
        unroll_while(module, loop, factor=2)
    full_a = rng.normal(size=(24, 5))
    arguments = {
        "a": [s.copy() for s in np.split(full_a, ring, axis=0)],
        "w": [rng.normal(size=(5, 7))] * ring,
    }
    results = {
        "interpreted": create_engine("interpreted").run(
            module, arguments, mesh=mesh
        ),
        "compiled": create_engine("compiled").run(
            module, arguments, mesh=mesh
        ),
        "parallel": create_engine("parallel", workers=workers).run(
            module, arguments, mesh=mesh
        ),
    }
    _assert_all_identical(seed, results)


@pytest.mark.parametrize("seed", range(6))
def test_seeded_determinism_across_repeats(seed):
    """Two runs of the same drawn schedule are byte-identical."""
    case, mesh, config, workers, arguments = _draw_schedule(seed + 1000)
    module = case.build(mesh)
    compile_module(module, mesh, config)
    engine = create_engine("parallel", workers=workers)
    first = engine.run(module, arguments, mesh=mesh)
    second = engine.run(module, arguments, mesh=mesh)
    for name in first:
        for want, have in zip(first[name], second[name]):
            assert want.tobytes() == have.tobytes(), f"seed={seed}"


def test_chaos_contract_holds_with_parallel_oracle():
    """Injected faults audited against the parallel backend as oracle:
    the resilience contract (recover or fail typed) must still hold,
    which also pins the oracle's bit-identity — a diverging oracle
    would flag silent corruption."""
    oracle = create_engine("parallel", workers=2)
    report = run_chaos(20230325, runs=12, oracle=oracle)
    assert report.ok, [str(v) for v in report.violations]
