"""Seeded-defect mutation tests: every analyzer rule catches its defect.

Each mutation from :mod:`repro.analysis.mutations` is applied to every
compiled golden module it is applicable to, and the analyzer must report
the mutation's expected rule id. The dual direction — un-mutated modules
analyze clean — lives in ``tests/test_analysis.py``; together they pin
each rule to a concrete defect class.
"""

import json

import pytest

from repro.analysis import analyze_module
from repro.analysis.mutations import MUTATIONS, MUTATIONS_BY_NAME, Mutation
from repro.cli import main
from repro.core.config import OverlapConfig
from repro.core.loop import emit_rolled
from repro.core.patterns import find_candidates
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES
from repro.sharding.mesh import DeviceMesh

CASES = {case.name: case for case in GOLDEN_CASES}
GRID = [
    (case.name, ring) for case in GOLDEN_CASES for ring in case.rings
]


def _compiled(name, ring):
    case = CASES[name]
    mesh = DeviceMesh.ring(ring)
    module = case.build(mesh)
    compile_module(
        module, mesh, OverlapConfig(use_cost_model=False, unroll=False)
    )
    return module


def _rolled(name, ring):
    case = CASES[name]
    mesh = DeviceMesh.ring(ring)
    module = case.build(mesh)
    emit_rolled(module, find_candidates(module)[0], mesh)
    return module


def _build(mutation: Mutation, name: str, ring: int):
    """The module kind a mutation needs: rolled for While, else compiled."""
    if mutation.expected_rule == "V005":
        return _rolled(name, ring)
    return _compiled(name, ring)


class TestCatalog:
    def test_names_unique(self):
        assert len(MUTATIONS_BY_NAME) == len(MUTATIONS)

    def test_expected_rules_exist(self):
        from repro.analysis import RULES_BY_ID

        for mutation in MUTATIONS:
            assert mutation.expected_rule in RULES_BY_ID, mutation.name

    @pytest.mark.parametrize(
        "mutation", MUTATIONS, ids=[m.name for m in MUTATIONS]
    )
    def test_applicable_somewhere(self, mutation):
        """A mutation no golden module can host tests nothing."""
        assert any(
            mutation.apply(_build(mutation, name, ring)) is not None
            for name, ring in GRID
        ), f"{mutation.name} never applied"


class TestMutationsAreCaught:
    @pytest.mark.parametrize(
        "mutation", MUTATIONS, ids=[m.name for m in MUTATIONS]
    )
    @pytest.mark.parametrize("name,ring", GRID)
    def test_expected_rule_fires(self, mutation, name, ring):
        module = _build(mutation, name, ring)
        extra = mutation.apply(module)
        if extra is None:
            pytest.skip(f"{mutation.name} has no site in {name}/ring{ring}")
        result = analyze_module(module, num_devices=ring, **extra)
        assert mutation.expected_rule in result.rule_ids, (
            f"{mutation.name} expected {mutation.expected_rule}, "
            f"analyzer said: {result.format_text()}"
        )

    @pytest.mark.parametrize(
        "mutation", MUTATIONS, ids=[m.name for m in MUTATIONS]
    )
    def test_error_mutations_fail_verification(self, mutation):
        """Error-severity defects must flip result.ok, warnings must not."""
        from repro.analysis import WARNING

        name, ring = "mlp-chain", 4
        module = _build(mutation, name, ring)
        extra = mutation.apply(module)
        if extra is None:
            pytest.skip(f"{mutation.name} has no site in {name}/ring{ring}")
        result = analyze_module(module, num_devices=ring, **extra)
        # L003 (torn fusion group) is deliberately warning-severity: the
        # schedule still computes the right value, it just misprices.
        expected_warning = mutation.expected_rule == "L003"
        fired = [
            d for d in result.diagnostics
            if d.rule == mutation.expected_rule
        ]
        assert fired
        if expected_warning:
            assert all(d.severity == WARNING for d in fired)
        else:
            assert not result.ok


class TestVerifyCLI:
    def test_golden_sweep_passes(self, capsys, tmp_path):
        artifact = tmp_path / "verify.json"
        assert main(["verify", "--out", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "verify passed" in out
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert len(payload["targets"]) == 24
        for target in payload["targets"]:
            assert target["failed_stage"] is None
            assert len(target["stages"]) == 6

    def test_lints_a_clean_dump(self, capsys, tmp_path):
        from repro.hlo.printer import format_module

        module = _compiled("mlp-chain", 4)
        path = tmp_path / "good.hlo"
        path.write_text(format_module(module) + "\n")
        assert main(["verify", str(path), "--devices", "4"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_flags_a_corrupt_dump(self, capsys, tmp_path):
        from repro.hlo.printer import format_module

        module = _compiled("mlp-chain", 4)
        MUTATIONS_BY_NAME["corrupt-shape-dim"].apply(module)
        path = tmp_path / "bad.hlo"
        path.write_text(format_module(module) + "\n")
        assert main(["verify", str(path), "--devices", "4"]) == 1
        assert "S001" in capsys.readouterr().out

    def test_json_report_on_corrupt_dump(self, capsys, tmp_path):
        from repro.hlo.printer import format_module

        module = _compiled("mlp-chain", 4)
        MUTATIONS_BY_NAME["corrupt-dtype"].apply(module)
        path = tmp_path / "bad.hlo"
        path.write_text(format_module(module) + "\n")
        assert main(["verify", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        rules = {
            d["rule"]
            for target in payload["targets"]
            for stage in target["stages"]
            for d in stage["diagnostics"]
        }
        assert "S002" in rules

    def test_unreadable_path_is_usage_error(self, capsys, tmp_path):
        missing = tmp_path / "missing.hlo"
        assert main(["verify", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unparsable_dump_is_usage_error(self, capsys, tmp_path):
        path = tmp_path / "junk.hlo"
        path.write_text("this is not HLO\n")
        assert main(["verify", str(path)]) == 2
        assert "parse error" in capsys.readouterr().err
