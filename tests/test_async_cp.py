"""Tests for the sync-to-async CollectivePermute conversion."""

import numpy as np

from repro.core.async_cp import split_collective_permutes
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd

PAIRS = [(0, 1), (1, 0)]


def build_module(direction=None):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    permute = builder.collective_permute(a, PAIRS, direction=direction)
    builder.add(permute, a)
    return builder.module


def test_pairs_replace_sync_permutes():
    module = build_module()
    pairs = split_collective_permutes(module)
    assert len(pairs) == 1
    assert module.count(Opcode.COLLECTIVE_PERMUTE) == 0
    assert module.count(Opcode.COLLECTIVE_PERMUTE_START) == 1
    assert module.count(Opcode.COLLECTIVE_PERMUTE_DONE) == 1


def test_start_and_done_adjacent():
    module = build_module()
    start, done = split_collective_permutes(module)[0]
    order = module.instructions
    assert order.index(done) == order.index(start) + 1


def test_users_redirected_to_done():
    module = build_module()
    start, done = split_collective_permutes(module)[0]
    add = module.root
    assert done in add.operands
    assert start not in add.operands


def test_pairs_and_direction_preserved():
    module = build_module(direction="plus")
    start, _ = split_collective_permutes(module)[0]
    assert start.pairs == PAIRS
    assert start.attrs["direction"] == "plus"


def test_root_updated_when_permute_is_root():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    builder.collective_permute(a, PAIRS)
    module = builder.module
    split_collective_permutes(module)
    assert module.root.opcode is Opcode.COLLECTIVE_PERMUTE_DONE


def test_numerics_unchanged(rng):
    xs = [rng.normal(size=2), rng.normal(size=2)]
    sync = build_module()
    expected = run_spmd(sync, {"a": xs}, 2)[sync.root.name]
    split_module = build_module()
    split_collective_permutes(split_module)
    got = run_spmd(split_module, {"a": xs}, 2)[split_module.root.name]
    for a, b in zip(expected, got):
        np.testing.assert_array_equal(a, b)


def test_module_without_permutes_untouched():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    builder.add(a, a)
    before = builder.module.instructions
    assert split_collective_permutes(builder.module) == []
    assert builder.module.instructions == before


def test_custom_attrs_survive_split():
    """Every attribute on the sync permute must carry over to the start
    op — schedulers and fault tooling hang metadata off ``attrs``."""
    module = build_module(direction="minus")
    permute = module.find(lambda i: i.opcode == Opcode.COLLECTIVE_PERMUTE)[0]
    permute.attrs["chunk"] = 3
    permute.attrs["origin"] = "decompose-ag"
    start, _ = split_collective_permutes(module)[0]
    assert start.attrs["chunk"] == 3
    assert start.attrs["origin"] == "decompose-ag"
    assert start.attrs["direction"] == "minus"
    assert start.pairs == PAIRS
