"""Tests for the SPMD partitioner: structure and numerics."""

import numpy as np
import pytest

from repro.hlo.dtypes import F32
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh
from repro.sharding.partitioner import LogicalGraph, partition
from repro.sharding.propagation import ShardingError
from repro.sharding.spec import ShardingSpec

S = ShardingSpec


def fig2_graph(batch=8, feature=6, hidden=12):
    """Figure 2: weights sharded, gathered on demand; batch-sharded acts."""
    graph = LogicalGraph("fig2")
    graph.add_input("x", Shape((batch, feature), F32), S(("x", None)))
    graph.add_input("w1", Shape((feature, hidden), F32), S((None, "x")))
    graph.add_input("w2", Shape((hidden, feature), F32), S(("x", None)))
    graph.add_einsum("bf,fh->bh", "x", "w1", "h", S(("x", None)))
    graph.add_einsum("bh,hf->bf", "h", "w2", "y", S(("x", None)))
    return graph


class TestFig2:
    def test_structure_matches_paper(self):
        mesh = DeviceMesh.ring(4)
        module = partition(fig2_graph(), mesh)
        # One AllGather per einsum, no ReduceScatter in forward.
        assert module.count(Opcode.ALL_GATHER) == 2
        assert module.count(Opcode.REDUCE_SCATTER) == 0
        assert module.count(Opcode.EINSUM) == 2

    def test_numerics(self, rng):
        mesh = DeviceMesh.ring(4)
        module = partition(fig2_graph(), mesh)
        x = rng.normal(size=(8, 6))
        w1 = rng.normal(size=(6, 12))
        w2 = rng.normal(size=(12, 6))
        out = run_spmd(
            module,
            {
                "x": np.split(x, 4, 0),
                "w1": np.split(w1, 4, 1),
                "w2": np.split(w2, 4, 0),
            },
            4,
        )[module.root.name]
        np.testing.assert_allclose(
            np.concatenate(out, axis=0), (x @ w1) @ w2, rtol=1e-10
        )


def fig3_graph(batch=8, feature=8, hidden=16):
    """Figure 3: 2D partitioning; second einsum ReduceScatters along x."""
    graph = LogicalGraph("fig3")
    graph.add_input("x", Shape((batch, feature), F32), S(("y", "x")))
    graph.add_input("w1", Shape((feature, hidden), F32), S(("y", "x")))
    graph.add_input("w2", Shape((hidden, feature), F32), S(("x", "y")))
    graph.add_einsum("bf,fh->bh", "x", "w1", "h", S(("y", "x")))
    graph.add_einsum("bh,hf->bf", "h", "w2", "out", S(("y", "x")))
    return graph


class TestFig3:
    def test_structure_matches_paper(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 2})
        module = partition(fig3_graph(), mesh)
        # Einsum 1: activations gathered along x, weights along y;
        # einsum 2: weights gathered along y, output ReduceScattered on x.
        assert module.count(Opcode.ALL_GATHER) == 3
        assert module.count(Opcode.REDUCE_SCATTER) == 1

    def test_numerics(self, rng):
        mesh = DeviceMesh.grid({"x": 2, "y": 2})
        module = partition(fig3_graph(), mesh)
        x = rng.normal(size=(8, 8))
        w1 = rng.normal(size=(8, 16))
        w2 = rng.normal(size=(16, 8))

        def shard_2d(full, spec):
            shards = []
            for device in range(4):
                view = full
                for dim, axis in enumerate(spec.dim_axes):
                    if axis is None:
                        continue
                    count = mesh.axis_size(axis)
                    pos = mesh.position_in_ring(device, axis)
                    view = np.split(view, count, axis=dim)[pos]
                shards.append(view.copy())
            return shards

        out = run_spmd(
            module,
            {
                "x": shard_2d(x, S(("y", "x"))),
                "w1": shard_2d(w1, S(("y", "x"))),
                "w2": shard_2d(w2, S(("x", "y"))),
            },
            4,
        )[module.root.name]
        expected = (x @ w1) @ w2
        for device in range(4):
            ypos = mesh.position_in_ring(device, "y")
            xpos = mesh.position_in_ring(device, "x")
            block = np.split(np.split(expected, 2, 0)[ypos], 2, 1)[xpos]
            np.testing.assert_allclose(out[device], block, rtol=1e-10)


class TestExplicitNodes:
    def test_reshard_gathers(self):
        mesh = DeviceMesh.ring(2)
        graph = LogicalGraph("g")
        graph.add_input("x", Shape((4, 4), F32), S(("x", None)))
        graph.add_reshard("x", "x_full", S.replicated(2))
        module = partition(graph, mesh)
        assert module.count(Opcode.ALL_GATHER) == 1
        assert module.root.shape.dims == (4, 4)

    def test_reshard_slices_own_shard(self, rng):
        mesh = DeviceMesh.ring(2)
        graph = LogicalGraph("g")
        graph.add_input("x", Shape((4, 4), F32), S.replicated(2))
        graph.add_reshard("x", "x_sharded", S(("x", None)))
        module = partition(graph, mesh)
        assert module.count(Opcode.DYNAMIC_SLICE) == 1
        x = rng.normal(size=(4, 4))
        out = run_spmd(module, {"x": [x, x]}, 2)[module.root.name]
        np.testing.assert_allclose(out[0], x[:2])
        np.testing.assert_allclose(out[1], x[2:])

    def test_reshard_cross_axis_rejected(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 2})
        graph = LogicalGraph("g")
        graph.add_input("x", Shape((4, 4), F32), S(("x", None)))
        graph.add_reshard("x", "bad", S(("y", None)))
        with pytest.raises(ShardingError, match="reshard"):
            partition(graph, mesh)

    def test_all_to_all_with_reshape(self, rng):
        mesh = DeviceMesh.ring(2)
        graph = LogicalGraph("g")
        graph.add_input("x", Shape((4, 6), F32), S(("x", None)))
        graph.add_all_to_all(
            "x", "regrouped", 1, 1, "x",
            out_shape=Shape((2, 2, 6), F32),
            out_spec=S(("x", None, None)),
        )
        module = partition(graph, mesh)
        assert module.count(Opcode.ALL_TO_ALL) == 1
        assert module.count(Opcode.RESHAPE) == 1
        assert module.root.shape.dims == (1, 2, 6)

    def test_all_to_all_bad_reshape_rejected(self):
        mesh = DeviceMesh.ring(2)
        graph = LogicalGraph("g")
        graph.add_input("x", Shape((4, 6), F32), S(("x", None)))
        graph.add_all_to_all(
            "x", "bad", 1, 1, "x",
            out_shape=Shape((5, 6), F32), out_spec=S((None, None)),
        )
        with pytest.raises(ShardingError, match="reshape"):
            partition(graph, mesh)

    def test_all_reduce_node(self):
        mesh = DeviceMesh.grid({"x": 2, "dp": 2})
        graph = LogicalGraph("g")
        graph.add_input("g1", Shape((4,), F32), S((None,)))
        graph.add_all_reduce("g1", "g1.summed", "dp")
        module = partition(graph, mesh)
        assert module.count(Opcode.ALL_REDUCE) == 1
        groups = module.root.groups
        assert groups == [(0, 1), (2, 3)]

    def test_pointwise_node(self):
        mesh = DeviceMesh.ring(2)
        graph = LogicalGraph("g")
        graph.add_input("x", Shape((4,), F32), S(("x",)))
        graph.add_pointwise("x", "x2")
        module = partition(graph, mesh)
        assert module.count(Opcode.ADD) == 1


class TestGraphValidation:
    def test_duplicate_tensor_rejected(self):
        graph = LogicalGraph("g")
        graph.add_input("x", Shape((4,), F32), S((None,)))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add_input("x", Shape((4,), F32), S((None,)))

    def test_rank_mismatch_rejected(self):
        graph = LogicalGraph("g")
        with pytest.raises(ValueError, match="rank"):
            graph.add_input("x", Shape((4, 4), F32), S((None,)))

    def test_einsums_property_filters(self):
        graph = fig2_graph()
        graph.add_pointwise("y", "y2")
        assert len(graph.einsums) == 2
