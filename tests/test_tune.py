"""Tests for the overlap autotuner: search, tuning DB, engine pick-up.

The contract under test:

* **content addressing** — tuning keys are stable across separately
  built modules *and across process restarts* (they seed the persisted
  database, so any instability would orphan every committed record);
* **tuned >= default by construction** — candidate 0 of every search is
  the analytic-gate default, so the winner can never score worse;
* **transparent pick-up** — engines constructed with ``tuned=`` resolve
  raw modules to their tuned compilations by fingerprint (bit-identical
  to the interpreter oracle), pass already-compiled modules through,
  and kinds without tuning support reject ``tuned`` loudly;
* **typed persistence failures** — a corrupted database file raises
  :class:`TuningDBError` from ``load`` and degrades to the default
  configs (never garbage) through ``load_or_default``.
"""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.adapt import run_with_ladder
from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES
from repro.runtime.engine import create_engine, resolve_tuned_module
from repro.serve import ServeConfig, Server
from repro.sharding.mesh import DeviceMesh
from repro.tune import (
    FULL_SPACE,
    TuningDB,
    TuningDBError,
    TuningRecord,
    candidate_space,
    check_tune_report,
    compare_tune_reports,
    config_from_json,
    config_to_json,
    require_tuned_capable,
    resolve_tuning_db,
    tune_golden,
    tune_module,
    tune_report,
    tuning_key,
)

CASE = GOLDEN_CASES[0]          # allgather-einsum
MESH = DeviceMesh.ring(2)


def _tune_one(db=None, **kwargs):
    return tune_module(
        lambda: CASE.build(MESH),
        MESH,
        label="allgather-einsum@2",
        budget=6,
        db=db,
        **kwargs,
    )


def _record(key="a|b|c", label="x", speedup=2.0):
    return TuningRecord(
        key=key,
        label=label,
        config=config_to_json(OverlapConfig()),
        tuned_time=1.0 / speedup,
        default_time=1.0,
        trials=6,
    )


class TestSearchSpace:
    def test_default_is_candidate_zero(self):
        points = candidate_space(8)
        assert points[0].is_default
        assert points[0].config == OverlapConfig()

    def test_budget_bounds_and_validation(self):
        assert len(candidate_space(5)) == 5
        assert len(candidate_space()) == FULL_SPACE
        with pytest.raises(ValueError, match="at least 2"):
            candidate_space(1)

    def test_space_is_deterministic_and_deduplicated(self):
        points = candidate_space()
        configs = [p.config for p in points]
        assert len(set(configs)) == len(configs)
        assert [p.label for p in candidate_space()] == [
            p.label for p in points
        ]

    def test_searched_candidates_disable_the_analytic_gate(self):
        for point in candidate_space()[1:]:
            assert point.config.use_cost_model is False
            assert point.config.enabled is True


class TestPerAxisSpace:
    def test_axis_candidates_append_after_the_flat_grid(self):
        flat = candidate_space()
        with_axes = candidate_space(axes=("tp", "dp"))
        # index-stability: the flat prefix is identical, so TuningDB
        # records and budget prefixes mean the same thing either way
        assert [p.config for p in with_axes[: len(flat)]] == [
            p.config for p in flat
        ]
        tail = with_axes[len(flat):]
        assert tail, "axes must extend the space"
        for point in tail:
            assert point.config.axis_overrides
            assert point.config.use_cost_model is False

    def test_axis_candidates_perturb_one_axis_each(self):
        flat_size = len(candidate_space())
        tail = candidate_space(axes=("tp", "dp"))[flat_size:]
        for point in tail:
            assert len(point.config.axis_overrides) == 1
            axis, override = point.config.axis_overrides[0]
            assert axis in ("tp", "dp")
            assert axis in point.label

    def test_budget_prefix_unchanged_by_axes(self):
        assert [p.config for p in candidate_space(6, axes=("tp",))] == [
            p.config for p in candidate_space(6)
        ]

    def test_axis_override_config_roundtrips_through_db_codec(self):
        flat_size = len(candidate_space())
        point = candidate_space(axes=("dp",))[flat_size]
        payload = json.loads(json.dumps(config_to_json(point.config)))
        assert config_from_json(payload) == point.config

    def test_legacy_payload_without_axis_overrides_loads(self):
        payload = config_to_json(OverlapConfig())
        payload.pop("axis_overrides")
        assert config_from_json(payload) == OverlapConfig()

    def test_unknown_override_field_rejected(self):
        payload = config_to_json(OverlapConfig())
        payload["axis_overrides"] = {"tp": {"warp_speed": 9}}
        with pytest.raises(TuningDBError, match="warp_speed"):
            config_from_json(payload)


class TestTuningKey:
    def test_stable_across_separately_built_modules(self):
        assert tuning_key(CASE.build(MESH), MESH) == tuning_key(
            CASE.build(MESH), MESH
        )

    def test_int_mesh_canonicalizes_to_ring(self):
        assert tuning_key(CASE.build(MESH), 2) == tuning_key(
            CASE.build(MESH), DeviceMesh.ring(2)
        )

    def test_distinguishes_mesh_and_module(self):
        four = DeviceMesh.ring(4)
        assert tuning_key(CASE.build(MESH), MESH) != tuning_key(
            CASE.build(four), four
        )
        assert tuning_key(CASE.build(MESH), MESH) != tuning_key(
            GOLDEN_CASES[1].build(MESH), MESH
        )

    def test_stable_across_process_restarts(self):
        # The committed database is only usable if a fresh interpreter
        # derives the same keys (no id()/hash-seed dependence).
        script = (
            "from repro.faults.chaos import GOLDEN_CASES\n"
            "from repro.sharding.mesh import DeviceMesh\n"
            "from repro.tune import tuning_key\n"
            "mesh = DeviceMesh.ring(2)\n"
            "print(tuning_key(GOLDEN_CASES[0].build(mesh), mesh))\n"
        )
        keys = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(keys) == 1
        assert keys == {tuning_key(CASE.build(MESH), MESH)}


class TestTunedNeverLosesToDefault:
    def test_record_speedup_at_least_one(self):
        record = _tune_one()
        assert record.speedup >= 1.0
        assert record.trials == 6

    def test_golden_sweep_gates_pass(self):
        records = tune_golden(budget=4, rings=(2,))
        report = tune_report(records, budget=4, measured=False)
        assert check_tune_report(report) == []
        assert report["summary"]["tuned_vs_default_geomean"] >= 1.0

    def test_measured_spot_check_is_bit_identical(self):
        record = _tune_one(
            measure=True, make_arguments=CASE.make_arguments
        )
        assert record.bit_identical is True
        assert record.scored_by == "perfsim+measured"
        assert record.measured_speedup is not None

    def test_measure_without_arguments_is_loud(self):
        with pytest.raises(ValueError, match="make_arguments"):
            _tune_one(measure=True)


class TestTuningDB:
    def test_round_trip_persistence(self, tmp_path):
        path = str(tmp_path / "db.json")
        db = TuningDB(path)
        record = _tune_one(db=db)
        db.save()
        loaded = TuningDB.load(path)
        assert len(loaded) == 1
        again = loaded.get(record.key)
        assert again is not None
        assert again.overlap_config() == record.overlap_config()
        assert again.speedup == pytest.approx(record.speedup)

    def test_persisted_record_means_zero_research(self, tmp_path):
        db = TuningDB()
        first = _tune_one(db=db)
        poisoned = db  # tune_module must return the stored record as-is

        def exploding_build():
            raise AssertionError("searched despite a persisted record")

        again = tune_module(
            lambda: CASE.build(MESH), MESH,
            label="allgather-einsum@2", budget=6, db=poisoned,
        )
        assert again is first
        # force=True re-searches.
        forced = _tune_one(db=db, force=True)
        assert forced is not first
        assert forced.key == first.key

    def test_missing_file_is_empty_not_an_error(self, tmp_path):
        db = TuningDB.load(str(tmp_path / "never_written.json"))
        assert len(db) == 0

    def test_corrupted_json_raises_typed_error(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{not json")
        with pytest.raises(TuningDBError, match="corrupted JSON"):
            TuningDB.load(str(path))

    def test_wrong_schema_raises_typed_error(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        with pytest.raises(TuningDBError, match="schema"):
            TuningDB.load(str(path))

    def test_unknown_config_field_raises_typed_error(self, tmp_path):
        entry = _record().to_json()
        entry["config"]["warp_drive"] = True
        path = tmp_path / "db.json"
        path.write_text(json.dumps({"schema": 1, "entries": [entry]}))
        with pytest.raises(TuningDBError, match="warp_drive"):
            TuningDB.load(str(path))

    def test_load_or_default_falls_back_to_defaults(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("]]]")
        db = TuningDB.load_or_default(str(path))
        assert len(db) == 0
        assert isinstance(db.load_error, TuningDBError)
        # Fallback behaviour: every lookup resolves to the default config.
        config = db.config_for(CASE.build(MESH), MESH)
        assert config == OverlapConfig()

    def test_capacity_eviction_is_fifo(self):
        db = TuningDB(capacity=2)
        for index in range(3):
            db.put(_record(key=f"k{index}|m|c", label=f"r{index}"))
        assert len(db) == 2
        assert db.get("k0|m|c") is None
        assert db.get("k2|m|c") is not None
        assert db.stats.evictions == 1

    def test_evict_by_label_and_prefix(self):
        db = TuningDB()
        db.put(_record(key="aaa|m|c", label="one"))
        db.put(_record(key="bbb|m|c", label="two"))
        assert [r.label for r in db.evict("one")] == ["one"]
        assert [r.label for r in db.evict("bbb")] == ["two"]
        assert len(db) == 0

    def test_config_json_round_trip_and_validation(self):
        config = OverlapConfig(unroll=False, max_in_flight=2)
        assert config_from_json(config_to_json(config)) == config
        with pytest.raises(TuningDBError, match="unknown"):
            config_from_json({"no_such_knob": 1})
        with pytest.raises(TuningDBError, match="invalid"):
            config_from_json({"transfer_granularity": -3})

    def test_resolve_tuning_db_spellings(self, tmp_path):
        assert resolve_tuning_db(None) is None
        assert resolve_tuning_db(False) is None
        db = TuningDB()
        assert resolve_tuning_db(db) is db
        path = str(tmp_path / "db.json")
        TuningDB(path).save()
        assert isinstance(resolve_tuning_db(path), TuningDB)
        with pytest.raises(TypeError, match="tuned must be"):
            resolve_tuning_db(3.14)


class TestEnginePickup:
    def _tuned_db(self):
        db = TuningDB()
        _tune_one(db=db)
        return db

    def test_raw_module_resolves_and_matches_oracle(self):
        db = self._tuned_db()
        rng = np.random.default_rng(7)
        arguments = CASE.make_arguments(MESH, rng)
        reference = create_engine("interpreted").run(
            CASE.build(MESH), arguments, mesh=2
        )
        engine = create_engine("compiled", tuned=db)
        values = engine.run(CASE.build(MESH), arguments, mesh=2)
        assert engine.tuning_db.stats.hits >= 1
        assert reference.keys() == values.keys()
        for key in reference:
            for expected, actual in zip(reference[key], values[key]):
                np.testing.assert_array_equal(expected, actual)

    def test_parallel_engine_accepts_tuned(self):
        db = self._tuned_db()
        rng = np.random.default_rng(7)
        arguments = CASE.make_arguments(MESH, rng)
        reference = create_engine("interpreted").run(
            CASE.build(MESH), arguments, mesh=2
        )
        engine = create_engine("parallel", tuned=db, workers=2)
        values = engine.run(CASE.build(MESH), arguments, mesh=2)
        for key in reference:
            for expected, actual in zip(reference[key], values[key]):
                np.testing.assert_array_equal(expected, actual)

    def test_already_compiled_module_passes_through(self):
        db = self._tuned_db()
        module = CASE.build(MESH)
        compile_module(module, MESH, OverlapConfig())
        resolved = resolve_tuned_module(module, 2, db)
        assert resolved is module
        assert db.stats.misses >= 1

    def test_untuned_kind_rejects_tuned_loudly(self):
        with pytest.raises(ValueError, match="tuned does not apply"):
            create_engine("interpreted", tuned=True)
        with pytest.raises(ValueError, match="tuned does not apply"):
            create_engine("resilient", tuned=TuningDB())

    def test_require_tuned_capable(self):
        require_tuned_capable("compiled")
        require_tuned_capable("parallel")
        with pytest.raises(ValueError, match="unknown engine kind"):
            require_tuned_capable("warp")
        with pytest.raises(
            ValueError, match="does not accept tuned configs"
        ):
            require_tuned_capable("interpreted")


class TestServeAndLadderComposition:
    def test_serve_config_rejects_tuned_on_untuned_engine(self):
        with pytest.raises(ValueError, match="tuned does not apply"):
            ServeConfig(engine="interpreted", tuned=True)

    def test_server_picks_up_tuned_configs(self):
        db = TuningDB()
        _tune_one(db=db)
        config = ServeConfig(tuned=db, workers=1)
        with Server(config) as server:
            ticket = server.submit("allgather-einsum@2", seed=3)
            values = ticket.result(timeout=30)
        assert values
        stats = server.stats()
        assert stats.tuning_db is not None
        assert stats.tuning_db["hits"] >= 1

    def test_ladder_composes_on_tuned_base_config(self):
        record = _tune_one()
        tuned_config = record.overlap_config()
        rng = np.random.default_rng(11)
        arguments = CASE.make_arguments(MESH, rng)
        reference = create_engine("interpreted").run(
            CASE.build(MESH), arguments, mesh=2
        )
        result = run_with_ladder(
            lambda: CASE.build(MESH), MESH, arguments,
            base_config=tuned_config,
        )
        # The ladder compiles its own copy of the module, so the root is
        # renamed; compare outputs positionally.
        assert len(reference) == len(result.values)
        for expected_shards, actual_shards in zip(
            reference.values(), result.values.values()
        ):
            for expected, actual in zip(expected_shards, actual_shards):
                np.testing.assert_array_equal(expected, actual)


class TestReport:
    def test_gate_fails_on_regressed_entry(self):
        report = tune_report(
            [_record(speedup=0.5)], budget=6, measured=False
        )
        problems = check_tune_report(report)
        assert any("slower than the default" in p for p in problems)
        assert any("below the required" in p for p in problems)

    def test_gate_fails_on_oracle_divergence(self):
        record = TuningRecord(
            key="a|b|c", label="x",
            config=config_to_json(OverlapConfig()),
            tuned_time=1.0, default_time=1.0, trials=2,
            measured_speedup=1.1, bit_identical=False,
        )
        report = tune_report([record], budget=2, measured=True)
        assert any(
            "diverges" in p for p in check_tune_report(report)
        )
        assert report["summary"]["all_bit_identical"] is False

    def test_trend_gate_matches_by_label(self):
        base = tune_report([_record(speedup=2.0)], budget=6, measured=False)
        fresh = tune_report([_record(speedup=1.0)], budget=6, measured=False)
        problems = compare_tune_reports(base, fresh, max_drop=0.2)
        assert any("dropped more than" in p for p in problems)
        assert compare_tune_reports(base, base) == []

    def test_trend_gate_fails_on_disjoint_labels(self):
        base = tune_report([_record(label="a")], budget=6, measured=False)
        fresh = tune_report([_record(label="b")], budget=6, measured=False)
        assert any(
            "disjoint" in p for p in compare_tune_reports(base, fresh)
        )


class TestCli:
    def test_tune_roundtrip_inspect_evict(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "db.json")
        out = str(tmp_path / "report.json")
        assert main([
            "tune", "--budget", "4", "--db", db, "--out", out,
        ]) == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["summary"]["tuned_vs_default_geomean"] >= 1.0
        assert len(report["entries"]) == 6
        capsys.readouterr()

        # Second run: every record comes from the DB, zero re-search.
        assert main(["tune", "--budget", "4", "--db", db, "--out", ""]) == 0
        capsys.readouterr()

        assert main(["tune", "--inspect", "--db", db]) == 0
        assert "6 record(s)" in capsys.readouterr().out

        assert main(["tune", "--evict", "mlp-chain@2", "--db", db]) == 0
        assert "evicted 1 record(s)" in capsys.readouterr().out

    def test_tune_trend_gate_against_own_report(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "db.json")
        out = str(tmp_path / "report.json")
        assert main(["tune", "--budget", "4", "--db", db, "--out", out]) == 0
        capsys.readouterr()
        assert main([
            "tune", "--budget", "4", "--db", db, "--out", "",
            "--baseline", out,
        ]) == 0

    def test_tune_inspect_corrupted_db_is_loud(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "db.json"
        path.write_text("{broken")
        assert main(["tune", "--inspect", "--db", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_tune_corrupted_db_warns_and_recovers(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "db.json"
        path.write_text("{broken")
        assert main([
            "tune", "--budget", "4", "--db", str(path), "--out", "",
        ]) == 0
        assert "WARN" in capsys.readouterr().err
        # The rewritten database is valid again.
        assert len(TuningDB.load(str(path))) == 6

    def test_tune_measure_rejects_untuned_engine(self, capsys):
        from repro.cli import main

        assert main([
            "tune", "--measure", "--engine", "interpreted",
        ]) == 2
        assert "tuned configs" in capsys.readouterr().err

    def test_bench_tuned_rejects_untuned_engine(self, capsys):
        from repro.cli import main

        assert main([
            "bench", "--quick", "--tuned", "--engine", "interpreted",
            "--output", "",
        ]) == 2
        assert "tuned does not apply" in capsys.readouterr().err
