"""Tests for the model zoo: config invariants, layer graphs, parameters."""

import dataclasses

import pytest

from repro.core.config import OverlapConfig
from repro.core.patterns import AG_EINSUM, EINSUM_RS, find_candidates
from repro.experiments.tables import estimated_parameters
from repro.hlo.opcode import Opcode
from repro.models.configs import (
    BIGSSL_10B,
    GLAM_1T,
    GPT_1T,
    GPT_32B,
    MEENA_500B,
    TABLE1,
    TABLE2,
    ModelConfig,
    by_name,
)
from repro.models.moe import moe_layer_graph
from repro.models.speech import conformer_layer_graph
from repro.models.step import layer_graphs, simulate_step
from repro.models.transformer import decoder_layer_graph
from repro.sharding.partitioner import partition

ALL_CONFIGS = list(dict.fromkeys(TABLE1 + TABLE2))

TINY = dataclasses.replace(
    GPT_32B, batch_size=8, seq_len=32, d_model=512, d_ff=2048,
    num_layers=2, mesh_x=2, mesh_y=4, num_chips=8,
)


class TestConfigs:
    @pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.name)
    def test_mesh_matches_chip_count(self, cfg):
        assert cfg.mesh().num_devices == cfg.num_chips

    @pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.name)
    def test_divisibility_invariants(self, cfg):
        """Every sharded dimension must divide its mesh axis."""
        assert cfg.batch_size % max(cfg.mesh_y, 1) == 0
        assert cfg.d_model % cfg.mesh_x == 0
        assert cfg.d_ff % cfg.mesh_x == 0
        if cfg.mesh_y > 1:
            assert cfg.d_model % cfg.mesh_y == 0
        assert cfg.num_heads % cfg.mesh_x == 0

    @pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.name)
    def test_layer_graphs_partition(self, cfg):
        """Every model's layer graphs lower to valid SPMD modules."""
        mesh = cfg.mesh()
        for _, repeats, graph in layer_graphs(cfg):
            assert repeats > 0
            module = partition(graph, mesh)
            module.verify()
            assert module.count(Opcode.EINSUM) > 0

    def test_bad_mesh_rejected(self):
        with pytest.raises(ValueError, match="chips"):
            dataclasses.replace(GPT_32B, mesh_x=16)

    def test_by_name(self):
        assert by_name("GPT_1T").num_parameters == pytest.approx(1.03e12)
        with pytest.raises(KeyError):
            by_name("GPT_9T")

    def test_tokens_per_step(self):
        assert GPT_1T.tokens_per_step == 4096 * 2048


class TestParameterAudit:
    """The rebuilt parameter counts should track the paper's Table 1/2
    within the slack of unmodelled pieces (embeddings, biases)."""

    @pytest.mark.parametrize(
        "cfg", [c for c in TABLE2] + [GPT_1T, MEENA_500B],
        ids=lambda c: c.name,
    )
    def test_dense_models_within_15_percent(self, cfg):
        rebuilt = estimated_parameters(cfg)
        assert rebuilt == pytest.approx(cfg.num_parameters, rel=0.15)

    def test_mlperf_matches_closely(self):
        cfg = by_name("MLPerf_200B")
        assert estimated_parameters(cfg) == pytest.approx(
            cfg.num_parameters, rel=0.05
        )


class TestDecoderLayer:
    def test_candidate_mix(self):
        mesh = TINY.mesh()
        module = partition(decoder_layer_graph(TINY), mesh)
        candidates = find_candidates(module)
        kinds = {c.kind for c in candidates}
        assert kinds == {AG_EINSUM, EINSUM_RS}
        # Forward + backward of attention + FFN yields a rich candidate set.
        assert len(candidates) >= 15

    def test_multi_user_regather_stays_synchronous(self):
        """The q/k/v shared activation re-gather is not a candidate."""
        mesh = TINY.mesh()
        module = partition(decoder_layer_graph(TINY), mesh)
        result_module = module
        from repro.core.pipeline import compile_module

        compile_module(
            result_module, mesh, OverlapConfig(use_cost_model=False)
        )
        assert result_module.count(Opcode.ALL_GATHER) >= 1

    def test_backward_flag(self):
        forward_only = decoder_layer_graph(TINY, backward=False)
        with_backward = decoder_layer_graph(TINY)
        assert len(with_backward.einsums) > 2 * len(forward_only.einsums) - 5

    def test_cross_attention_adds_einsums(self):
        plain = decoder_layer_graph(TINY)
        crossed = decoder_layer_graph(TINY, cross_attention=True)
        assert len(crossed.einsums) > len(plain.einsums)

    def test_backward_all_to_all_flag(self):
        mesh = TINY.mesh()
        module = partition(
            decoder_layer_graph(TINY, backward_all_to_all=True), mesh
        )
        assert module.count(Opcode.ALL_TO_ALL) == 2


class TestMoELayer:
    TINY_MOE = dataclasses.replace(
        GLAM_1T, batch_size=8, seq_len=32, d_model=512, d_ff=1024,
        num_layers=2, mesh_x=2, mesh_y=4, num_chips=8, num_experts=4,
    )

    def test_dispatch_and_combine(self):
        mesh = self.TINY_MOE.mesh()
        module = partition(moe_layer_graph(self.TINY_MOE), mesh)
        # Forward dispatch + combine, backward dispatch + combine.
        assert module.count(Opcode.ALL_TO_ALL) == 4

    def test_expert_gradients_all_reduce(self):
        mesh = self.TINY_MOE.mesh()
        module = partition(moe_layer_graph(self.TINY_MOE), mesh)
        assert module.count(Opcode.ALL_REDUCE) == 2

    def test_requires_experts(self):
        with pytest.raises(ValueError, match="experts"):
            moe_layer_graph(TINY)

    def test_capacity_must_divide(self):
        bad = dataclasses.replace(self.TINY_MOE, num_experts=3)
        with pytest.raises(ValueError, match="split"):
            moe_layer_graph(bad)


class TestConformerLayer:
    TINY_SPEECH = dataclasses.replace(
        BIGSSL_10B, batch_size=8, seq_len=32, d_model=512, d_ff=1024,
        num_layers=2, mesh_x=2, data_parallel=2, num_chips=4,
    )

    def test_dp_gradient_all_reduces(self):
        mesh = self.TINY_SPEECH.mesh()
        module = partition(conformer_layer_graph(self.TINY_SPEECH), mesh)
        assert module.count(Opcode.ALL_REDUCE) == 8

    def test_weight_gathers_fig2_style(self):
        mesh = self.TINY_SPEECH.mesh()
        module = partition(conformer_layer_graph(self.TINY_SPEECH), mesh)
        # qkv + wo + 2 conv + 2 ffn forward, plus backward re-gathers.
        assert module.count(Opcode.ALL_GATHER) >= 8
        # Weight grads ReduceScatter over the model-parallel axis.
        assert module.count(Opcode.REDUCE_SCATTER) >= 4


class TestStepSimulation:
    def test_step_scales_layers(self):
        sim = simulate_step(TINY)
        (kind, repeats, layer_report), = sim.layer_reports
        assert repeats == TINY.num_layers
        assert sim.report.total_time == pytest.approx(
            layer_report.total_time * repeats
        )

    def test_overlap_beats_baseline_at_realistic_scale(self):
        # Large enough that kernel overheads stop dominating the gate's
        # microsecond-scale margins.
        mid = dataclasses.replace(
            GPT_32B, batch_size=64, seq_len=512, d_model=2048, d_ff=8192,
            num_layers=2, mesh_x=4, mesh_y=8, num_chips=32,
        )
        baseline = simulate_step(mid, OverlapConfig.baseline())
        optimized = simulate_step(mid)
        assert optimized.report.total_time <= baseline.report.total_time * 1.02

    def test_moe_combines_two_layer_kinds(self):
        sim = simulate_step(TestMoELayer.TINY_MOE)
        kinds = [kind for kind, _, _ in sim.layer_reports]
        assert kinds == ["dense", "moe"]
        assert sum(r for _, r, _ in sim.layer_reports) == 2

    def test_link_scale_slows_communication(self):
        fast = simulate_step(
            dataclasses.replace(TestConformerLayer.TINY_SPEECH, link_scale=1.0),
            OverlapConfig.baseline(),
        )
        slow = simulate_step(
            dataclasses.replace(TestConformerLayer.TINY_SPEECH, link_scale=0.25),
            OverlapConfig.baseline(),
        )
        assert (
            slow.report.exposed_communication_time
            > fast.report.exposed_communication_time
        )
