"""End-to-end tests for the compile pipeline (Section 5's pass order)."""

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16, F32
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.perfsim.hardware import SLOW_INTERCONNECT, TPU_V4
from repro.perfsim.simulator import simulate
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh

from helpers import ALL_OVERLAP_CONFIGS, run_and_compare, split_shards


def two_einsums(mesh, dtype=F32, b=8, f=12, h=16):
    n = mesh.num_devices
    builder = GraphBuilder("layer")
    x = builder.parameter(Shape((b // n, f), dtype), name="x")
    w1 = builder.parameter(Shape((f, h // n), dtype), name="w1")
    gathered1 = builder.all_gather(w1, 1, mesh.rings("x"))
    hidden = builder.einsum("bf,fh->bh", x, gathered1)
    w2 = builder.parameter(Shape((h // n, f), dtype), name="w2")
    gathered2 = builder.all_gather(w2, 0, mesh.rings("x"))
    builder.einsum("bh,hf->bf", hidden, gathered2)
    return builder.module


class TestNumericalEquivalence:
    @pytest.mark.parametrize("ring", [2, 4])
    def test_all_configs_preserve_semantics(self, rng, ring):
        mesh = DeviceMesh.ring(ring)
        x = rng.normal(size=(8, 12))
        w1 = rng.normal(size=(12, 16))
        w2 = rng.normal(size=(16, 12))
        arguments = {
            "x": split_shards(x, 0, ring),
            "w1": split_shards(w1, 1, ring),
            "w2": split_shards(w2, 0, ring),
        }
        run_and_compare(lambda: two_einsums(mesh), mesh, arguments)

    def test_with_reduce_scatter(self, rng):
        mesh = DeviceMesh.ring(4)

        def build():
            builder = GraphBuilder("bwd")
            x = builder.parameter(Shape((16, 12), F32), name="x")
            gy = builder.parameter(Shape((16, 8), F32), name="gy")
            out = builder.einsum("bf,bh->fh", x, gy)
            builder.reduce_scatter(out, 1, mesh.rings("x"))
            return builder.module

        arguments = {
            "x": [rng.normal(size=(16, 12)) for _ in range(4)],
            "gy": [rng.normal(size=(16, 8)) for _ in range(4)],
        }
        run_and_compare(build, mesh, arguments)


class TestBaseline:
    def test_baseline_config_leaves_collectives(self):
        mesh = DeviceMesh.ring(4)
        module = two_einsums(mesh)
        result = compile_module(module, mesh, OverlapConfig.baseline())
        assert result.decomposed == 0
        assert module.count(Opcode.ALL_GATHER) == 2
        assert module.count(Opcode.COLLECTIVE_PERMUTE_START) == 0


class TestGateIntegration:
    def test_cost_model_skips_unprofitable(self):
        # Tiny compute on a slow interconnect: nothing should decompose.
        mesh = DeviceMesh.ring(4)
        module = two_einsums(mesh, dtype=BF16)
        result = compile_module(
            module, mesh, OverlapConfig(), chip=SLOW_INTERCONNECT
        )
        assert result.decomposed == 0
        assert any(
            "not beneficial" in reason
            for reason in result.candidates_skipped.values()
        )

    def test_disabling_cost_model_forces_decomposition(self):
        mesh = DeviceMesh.ring(4)
        module = two_einsums(mesh, dtype=BF16)
        result = compile_module(
            module, mesh, OverlapConfig(use_cost_model=False),
            chip=SLOW_INTERCONNECT,
        )
        assert result.decomposed == 2

    def test_overlap_never_hurts_with_gate(self):
        """With the gate on, the optimized schedule is never slower."""
        mesh = DeviceMesh.ring(4)
        for chip in (TPU_V4, SLOW_INTERCONNECT):
            baseline_module = two_einsums(
                mesh, dtype=BF16, b=256, f=2048, h=8192
            )
            compile_module(
                baseline_module, mesh, OverlapConfig.baseline(), chip=chip
            )
            baseline = simulate(baseline_module, mesh, chip=chip)
            optimized_module = two_einsums(
                mesh, dtype=BF16, b=256, f=2048, h=8192
            )
            compile_module(optimized_module, mesh, OverlapConfig(), chip=chip)
            optimized = simulate(optimized_module, mesh, chip=chip)
            assert optimized.total_time <= baseline.total_time * 1.02


class TestTwoCandidateRule:
    def _module_with_both(self, mesh):
        builder = GraphBuilder("m")
        # Large activation gather vs tiny weight gather on the same einsum.
        act = builder.parameter(Shape((4096, 512), BF16), name="act")
        w = builder.parameter(Shape((2048, 64), BF16), name="w")
        gathered_act = builder.all_gather(act, 1, mesh.rings("x"))
        gathered_w = builder.all_gather(w, 1, mesh.rings("x"))
        builder.einsum("bf,fh->bh", gathered_act, gathered_w)
        return builder.module

    def test_exactly_one_candidate_decomposed(self):
        mesh = DeviceMesh.ring(4)
        module = self._module_with_both(mesh)
        result = compile_module(
            module, mesh, OverlapConfig(use_cost_model=False)
        )
        assert result.decomposed == 1
        assert any(
            "two-candidate" in reason
            for reason in result.candidates_skipped.values()
        )
        # The loser stays behind as a synchronous AllGather.
        assert module.count(Opcode.ALL_GATHER) == 1


class TestBookkeeping:
    def test_result_records_estimates_and_groups(self):
        mesh = DeviceMesh.ring(4)
        module = two_einsums(mesh, dtype=BF16, b=256, f=2048, h=8192)
        result = compile_module(module, mesh, OverlapConfig())
        assert result.candidates_found == 2
        assert len(result.estimates) == 2
        assert result.fusion_groups > 0

    def test_module_verifies_after_compilation(self):
        mesh = DeviceMesh.ring(4)
        for config in ALL_OVERLAP_CONFIGS:
            module = two_einsums(mesh)
            compile_module(module, mesh, config)
            module.verify()
