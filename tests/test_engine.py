"""Tests for the unified Engine API (``repro.runtime.create_engine``).

Parity is the contract: the golden modules must produce bit-identical
outputs through all three engines, and (on the raw, straight-line
modules, where the compiled engine has nothing to fold away) identical
traced span-name sequences. Decomposed variants introduce constants the
compiled engine folds, so only bit-identity is asserted there.
"""

import warnings

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES
from repro.obs.tracer import Tracer
from repro.runtime import (
    CompiledExecutor,
    Executor,
    ResilientExecutor,
    run_compiled,
    run_spmd,
    run_with_fallback,
)
from repro.runtime.engine import ENGINE_KINDS, create_engine
from repro.runtime.plan_cache import PlanCache
from repro.sharding.mesh import DeviceMesh

CASES_BY_RING = [
    (case, ring) for case in GOLDEN_CASES for ring in case.rings
]
IDS = [f"{case.name}-ring{ring}" for case, ring in CASES_BY_RING]


def _values_identical(a, b):
    assert a.keys() == b.keys()
    for key in a:
        assert len(a[key]) == len(b[key])
        for x, y in zip(a[key], b[key]):
            assert np.array_equal(x, y)


class TestParity:
    @pytest.mark.parametrize("case,ring", CASES_BY_RING, ids=IDS)
    def test_raw_modules_bit_identical_with_identical_spans(
        self, case, ring, rng
    ):
        mesh = DeviceMesh.ring(ring)
        module = case.build(mesh)
        arguments = case.make_arguments(mesh, rng)
        results, span_names = {}, {}
        for kind in ENGINE_KINDS:
            tracer = Tracer()
            results[kind] = create_engine(kind).run(
                module, arguments, mesh=mesh, tracer=tracer
            )
            span_names[kind] = [event.name for event in tracer.events]
        _values_identical(results["interpreted"], results["compiled"])
        _values_identical(results["interpreted"], results["resilient"])
        _values_identical(results["interpreted"], results["parallel"])
        assert span_names["interpreted"] == span_names["compiled"]
        assert span_names["interpreted"] == span_names["resilient"]
        # The parallel backend's single-worker path inherits the
        # compiled run loop, so its spans match too.
        assert span_names["interpreted"] == span_names["parallel"]

    @pytest.mark.parametrize("case,ring", CASES_BY_RING, ids=IDS)
    def test_decomposed_modules_bit_identical(self, case, ring, rng):
        mesh = DeviceMesh.ring(ring)
        module = case.build(mesh)
        compile_module(module, mesh, OverlapConfig(use_cost_model=False))
        arguments = case.make_arguments(mesh, rng)
        results = {
            kind: create_engine(kind).run(module, arguments, mesh=mesh)
            for kind in ENGINE_KINDS
        }
        _values_identical(results["interpreted"], results["compiled"])
        _values_identical(results["interpreted"], results["resilient"])
        _values_identical(results["interpreted"], results["parallel"])

    def test_mesh_accepts_bare_device_count(self, rng):
        case, ring = GOLDEN_CASES[0], 4
        mesh = DeviceMesh.ring(ring)
        module = case.build(mesh)
        arguments = case.make_arguments(mesh, rng)
        engine = create_engine("compiled")
        _values_identical(
            engine.run(module, arguments, mesh=mesh),
            engine.run(module, arguments, mesh=ring),
        )


class TestCompiledEngineCache:
    def test_rebuilt_module_hits_and_keeps_its_own_root_name(self, rng):
        case = GOLDEN_CASES[0]
        mesh = DeviceMesh.ring(2)
        arguments = case.make_arguments(mesh, rng)
        engine = create_engine("compiled")
        first, second = case.build(mesh), case.build(mesh)
        values_first = engine.run(first, arguments, mesh=mesh)
        values_second = engine.run(second, arguments, mesh=mesh)
        stats = engine.plan_cache.stats
        assert stats.misses == 1 and stats.hits == 1
        # The hit's outputs are keyed by the *caller's* root name even
        # though the plan was lowered from the first module.
        assert set(values_second) == {second.root.name}
        for x, y in zip(
            values_first[first.root.name], values_second[second.root.name]
        ):
            assert np.array_equal(x, y)

    def test_shared_cache_across_engines(self, rng):
        case = GOLDEN_CASES[0]
        mesh = DeviceMesh.ring(2)
        arguments = case.make_arguments(mesh, rng)
        cache = PlanCache()
        one = create_engine("compiled", plan_cache=cache)
        two = create_engine("compiled", plan_cache=cache)
        one.run(case.build(mesh), arguments, mesh=mesh)
        two.run(case.build(mesh), arguments, mesh=mesh)
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_cache_counters_flow_through_tracer(self, rng):
        case = GOLDEN_CASES[0]
        mesh = DeviceMesh.ring(2)
        arguments = case.make_arguments(mesh, rng)
        tracer = Tracer()
        engine = create_engine("compiled", tracer=tracer)
        engine.run(case.build(mesh), arguments, mesh=mesh)
        engine.run(case.build(mesh), arguments, mesh=mesh)
        assert tracer.counters["plan.cache_misses"] == 1
        assert tracer.counters["plan.cache_hits"] == 1


class TestFactory:
    def test_kinds(self):
        for kind in ENGINE_KINDS:
            assert create_engine(kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown engine kind"):
            create_engine("jit")

    def test_inapplicable_options_rejected(self):
        with pytest.raises(ValueError, match="plan_cache"):
            create_engine("interpreted", plan_cache=PlanCache())
        with pytest.raises(ValueError, match="donate_params"):
            create_engine("resilient", donate_params=False)
        with pytest.raises(ValueError, match="injector"):
            create_engine("compiled", injector=object())
        with pytest.raises(ValueError, match="workers"):
            create_engine("compiled", workers=2)

    def test_rejection_names_the_kinds_that_accept_the_option(self):
        with pytest.raises(ValueError, match="parallel"):
            create_engine("compiled", workers=2)

    def test_resilient_engine_exposes_stats(self, rng):
        case = GOLDEN_CASES[0]
        mesh = DeviceMesh.ring(2)
        engine = create_engine("resilient")
        engine.run(
            case.build(mesh), case.make_arguments(mesh, rng), mesh=mesh
        )
        assert engine.last_stats is not None
        assert engine.last_stats.transfers == 0  # raw module, no permutes


class TestDeprecation:
    def test_direct_constructors_warn(self):
        for cls in (Executor, CompiledExecutor, ResilientExecutor):
            with pytest.warns(DeprecationWarning, match="create_engine"):
                cls(2)

    def test_engine_and_helper_paths_do_not_warn(self, rng):
        case = GOLDEN_CASES[0]
        mesh = DeviceMesh.ring(2)
        arguments = case.make_arguments(mesh, rng)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for kind in ENGINE_KINDS:
                create_engine(kind).run(
                    case.build(mesh), arguments, mesh=mesh
                )
            run_spmd(case.build(mesh), arguments, mesh.num_devices)
            run_compiled(case.build(mesh), arguments, mesh.num_devices)
            run_with_fallback(
                case.build(mesh),
                case.build(mesh),
                arguments,
                mesh.num_devices,
            )
