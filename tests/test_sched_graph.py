"""Tests for the scheduling graph (fusion groups as atomic units)."""

import pytest

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.perfsim.costs import CostModel
from repro.perfsim.hardware import TPU_V4
from repro.perfsim.sched_graph import (
    ScheduleGraph,
    max_in_flight,
    validate_unit_order,
)
from repro.sharding.mesh import DeviceMesh

MESH = DeviceMesh.ring(2)


def fused_module():
    builder = GraphBuilder("m")
    lhs = builder.parameter(Shape((4, 8), F32), name="lhs")
    rhs = builder.parameter(Shape((8, 4), F32), name="rhs")
    einsum = builder.einsum("bf,fh->bh", lhs, rhs)
    acc = builder.parameter(Shape((4, 4), F32), name="acc")
    add = builder.add(acc, einsum)
    einsum.fusion_group = 0
    add.fusion_group = 0
    return builder.module, einsum, add


class TestBuild:
    def test_group_members_form_one_unit(self):
        module, einsum, add = fused_module()
        graph = ScheduleGraph.build(module)
        assert graph.unit_of[id(einsum)] is graph.unit_of[id(add)]
        assert len(graph.unit_of[id(einsum)].members) == 2

    def test_unit_positioned_at_last_member(self):
        module, einsum, add = fused_module()
        graph = ScheduleGraph.build(module)
        fused = graph.unit_of[id(add)]
        # acc (a parameter) precedes the fused unit in the unit order.
        acc_unit = graph.unit_of[id(module.get("acc"))]
        assert graph.units.index(acc_unit) < graph.units.index(fused)

    def test_dependencies_cross_units_only(self):
        module, einsum, add = fused_module()
        graph = ScheduleGraph.build(module)
        fused = graph.unit_of[id(add)]
        producer_names = {
            p.head.name for p in graph.predecessors[fused.index]
        }
        assert producer_names == {"lhs", "rhs", "acc"}

    def test_flatten_keeps_members_adjacent(self):
        module, einsum, add = fused_module()
        graph = ScheduleGraph.build(module)
        names = [i.name for i in graph.flatten(graph.units)]
        assert names.index(add.name) == names.index(einsum.name) + 1


class TestCosts:
    def test_fused_unit_costs_only_einsum(self):
        module, einsum, add = fused_module()
        graph = ScheduleGraph.build(module)
        cost_model = CostModel(TPU_V4)
        fused = graph.unit_of[id(add)]
        assert graph.compute_time(fused, cost_model, MESH) == pytest.approx(
            cost_model.einsum_time(einsum)
        )

    def test_permute_units_are_free_on_compute_stream(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((8,), F32), name="a")
        start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        builder.collective_permute_done(start)
        graph = ScheduleGraph.build(builder.module)
        cost_model = CostModel(TPU_V4)
        for unit in graph.units[1:]:
            assert graph.compute_time(unit, cost_model, MESH) == 0.0
            assert graph.transfer_time(unit, cost_model, MESH) > 0.0

    def test_slice_feeding_only_transfers_is_free(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((8,), F32), name="a")
        sliced = builder.slice(a, 0, 0, 4)
        start = builder.collective_permute_start(sliced, [(0, 1), (1, 0)])
        builder.collective_permute_done(start)
        graph = ScheduleGraph.build(builder.module)
        cost_model = CostModel(TPU_V4)
        unit = graph.unit_of[id(sliced)]
        assert graph.compute_time(unit, cost_model, MESH) == 0.0

    def test_slice_feeding_compute_is_charged(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((8,), F32), name="a")
        sliced = builder.slice(a, 0, 0, 4)
        builder.negate(sliced)
        graph = ScheduleGraph.build(builder.module)
        cost_model = CostModel(TPU_V4)
        unit = graph.unit_of[id(sliced)]
        assert graph.compute_time(unit, cost_model, MESH) > 0.0


class TestValidation:
    def test_valid_order_passes(self):
        module, *_ = fused_module()
        graph = ScheduleGraph.build(module)
        validate_unit_order(graph, graph.units)

    def test_producer_after_consumer_rejected(self):
        module, *_ = fused_module()
        graph = ScheduleGraph.build(module)
        reversed_order = list(reversed(graph.units))
        with pytest.raises(ValueError, match="before its producer"):
            validate_unit_order(graph, reversed_order)

    def test_non_permutation_rejected(self):
        module, *_ = fused_module()
        graph = ScheduleGraph.build(module)
        with pytest.raises(ValueError, match="permutation"):
            validate_unit_order(graph, graph.units[:-1])


class TestInFlight:
    def test_counts_overlapping_transfers(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((4,), F32), name="a")
        s1 = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        s2 = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        builder.collective_permute_done(s1)
        builder.collective_permute_done(s2)
        assert max_in_flight(builder.module.instructions) == 2

    def test_sequential_transfers_count_one(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((4,), F32), name="a")
        s1 = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        builder.collective_permute_done(s1)
        s2 = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        builder.collective_permute_done(s2)
        assert max_in_flight(builder.module.instructions) == 1
