"""Tests for the rolled While form of Algorithm 1 and the unroller."""

import numpy as np
import pytest

from repro.core.decompose import DecompositionError
from repro.core.loop import emit_rolled, unroll_while
from repro.core.patterns import find_candidates
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh

from helpers import split_shards


def build_gather(mesh, case):
    n = mesh.num_devices
    builder = GraphBuilder("ag")
    if case == "free":
        a = builder.parameter(Shape((24 // n, 5), F32), name="a")
        w = builder.parameter(Shape((5, 7), F32), name="w")
        gathered = builder.all_gather(a, 0, mesh.rings("x"))
        builder.einsum("bf,fh->bh", gathered, w)
    elif case == "contracting":
        a = builder.parameter(Shape((6, 24 // n), F32), name="a")
        w = builder.parameter(Shape((24, 7), F32), name="w")
        gathered = builder.all_gather(a, 1, mesh.rings("x"))
        builder.einsum("bf,fh->bh", gathered, w)
    else:
        a = builder.parameter(Shape((24 // n, 3, 4), F32), name="a")
        w = builder.parameter(Shape((24, 4, 5), F32), name="w")
        gathered = builder.all_gather(a, 0, mesh.rings("x"))
        builder.einsum("gbf,gfh->gbh", gathered, w)
    return builder.module


def build_scatter(mesh):
    builder = GraphBuilder("rs")
    a = builder.parameter(Shape((6, 5), F32), name="a")
    w = builder.parameter(Shape((5, 24), F32), name="w")
    out = builder.einsum("bf,fh->bh", a, w)
    builder.reduce_scatter(out, 1, mesh.rings("x"))
    return builder.module


def gather_arguments(rng, case, n):
    if case == "free":
        a, w = rng.normal(size=(24, 5)), rng.normal(size=(5, 7))
        return {"a": split_shards(a, 0, n), "w": [w.copy()] * n}
    if case == "contracting":
        a, w = rng.normal(size=(6, 24)), rng.normal(size=(24, 7))
        return {"a": split_shards(a, 1, n), "w": [w.copy()] * n}
    a, w = rng.normal(size=(24, 3, 4)), rng.normal(size=(24, 4, 5))
    return {"a": split_shards(a, 0, n), "w": [w.copy()] * n}


CASES = ["free", "contracting", "batch", "rs"]


def run_reference(build, mesh, arguments):
    module = build()
    return module, run_spmd(module, arguments, mesh.num_devices)[
        module.root.name
    ]


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("ring", [2, 3, 4, 8])
class TestRolledEquivalence:
    def _setup(self, rng, case, ring):
        mesh = DeviceMesh.ring(ring)
        if case == "rs":
            build = lambda: build_scatter(mesh)
            arguments = {
                "a": [rng.normal(size=(6, 5)) for _ in range(ring)],
                "w": [rng.normal(size=(5, 24)) for _ in range(ring)],
            }
        else:
            build = lambda: build_gather(mesh, case)
            arguments = gather_arguments(rng, case, ring)
        _, reference = run_reference(build, mesh, arguments)
        return mesh, build, arguments, reference

    def _check(self, module, mesh, arguments, reference):
        got = run_spmd(module, arguments, mesh.num_devices)[module.root.name]
        worst = max(np.abs(a - b).max() for a, b in zip(reference, got))
        assert worst < 1e-9

    def test_rolled_form(self, rng, case, ring):
        mesh, build, arguments, reference = self._setup(rng, case, ring)
        module = build()
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        assert loop.opcode is Opcode.WHILE
        assert loop.attrs["trip_count"] == ring
        self._check(module, mesh, arguments, reference)

    def test_full_unroll(self, rng, case, ring):
        mesh, build, arguments, reference = self._setup(rng, case, ring)
        module = build()
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        unroll_while(module, loop)
        assert module.count(Opcode.WHILE) == 0
        self._check(module, mesh, arguments, reference)

    def test_degree_two_unroll(self, rng, case, ring):
        if ring % 2:
            pytest.skip("degree-2 unrolling needs an even trip count")
        mesh, build, arguments, reference = self._setup(rng, case, ring)
        module = build()
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        unroll_while(module, loop, factor=2)
        remaining = module.count(Opcode.WHILE)
        assert remaining == (0 if ring == 2 else 1)
        self._check(module, mesh, arguments, reference)


class TestUnrollStructure:
    def test_full_unroll_drops_the_last_permute(self):
        """Algorithm 1 guards the final AllGather transfer with
        ``i < N-1``; the unroller recovers the guard by dead-code
        elimination."""
        mesh = DeviceMesh.ring(4)
        module = build_gather(mesh, "free")
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        unroll_while(module, loop)
        assert module.count(Opcode.COLLECTIVE_PERMUTE) == 3

    def test_reduce_scatter_keeps_all_permutes(self):
        mesh = DeviceMesh.ring(4)
        module = build_scatter(mesh)
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        unroll_while(module, loop)
        assert module.count(Opcode.COLLECTIVE_PERMUTE) == 4

    def test_partial_unroll_halves_trip_count(self):
        mesh = DeviceMesh.ring(8)
        module = build_gather(mesh, "free")
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        (new_loop,) = unroll_while(module, loop, factor=2)
        assert new_loop.attrs["trip_count"] == 4
        body = new_loop.attrs["body"]
        assert len(body.find(lambda i: i.opcode is Opcode.EINSUM)) == 2

    def test_partial_unroll_steps_shard_indices(self):
        mesh = DeviceMesh.ring(8)
        module = build_gather(mesh, "free")
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        (new_loop,) = unroll_while(module, loop, factor=2)
        body = new_loop.attrs["body"]
        updates = body.find(
            lambda i: i.opcode is Opcode.DYNAMIC_UPDATE_SLICE
        )
        starts = [u.attrs["start"] for u in updates]
        assert {s.iter_coeff for s in starts} == {2}
        assert {s.offset for s in starts} == {0, 1}

    def test_factor_must_divide(self):
        mesh = DeviceMesh.ring(8)
        module = build_gather(mesh, "free")
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        with pytest.raises(DecompositionError, match="divide"):
            unroll_while(module, loop, factor=3)

    def test_unroll_requires_while(self):
        mesh = DeviceMesh.ring(4)
        module = build_gather(mesh, "free")
        with pytest.raises(DecompositionError, match="not a while"):
            unroll_while(module, module.root)


class TestWhileExecutor:
    def test_simple_counted_accumulation(self, rng):
        """sum over 5 iterations of (state + x) == state0 + 5x."""
        body = GraphBuilder("body")
        state = body.parameter(Shape((3,), F32), name="state")
        x = body.parameter(Shape((3,), F32), name="x")
        body.add(state, x, name="next")

        builder = GraphBuilder("m")
        init = builder.parameter(Shape((3,), F32), name="init")
        step = builder.parameter(Shape((3,), F32), name="step")
        builder.while_loop(
            trip_count=5, body=body.module,
            body_outputs=["next", "x"],
            initial_state=[init, step], result_index=0,
        )
        init_value = rng.normal(size=3)
        step_value = rng.normal(size=3)
        out = run_spmd(
            builder.module, {"init": [init_value], "step": [step_value]}, 1
        )[builder.module.root.name]
        np.testing.assert_allclose(out[0], init_value + 5 * step_value)

    def test_state_shape_mismatch_rejected(self):
        body = GraphBuilder("body")
        body.parameter(Shape((3,), F32), name="state")
        body.negate(body.module.get("state"))
        builder = GraphBuilder("m")
        wrong = builder.parameter(Shape((4,), F32), name="wrong")
        with pytest.raises(ValueError, match="shape"):
            builder.while_loop(
                trip_count=2, body=body.module,
                body_outputs=[body.module.root.name],
                initial_state=[wrong], result_index=0,
            )

    def test_trip_count_validated(self):
        body = GraphBuilder("body")
        state = body.parameter(Shape((3,), F32), name="state")
        body.negate(state)
        builder = GraphBuilder("m")
        init = builder.parameter(Shape((3,), F32), name="init")
        with pytest.raises(ValueError, match="trip_count"):
            builder.while_loop(
                trip_count=0, body=body.module,
                body_outputs=[body.module.root.name],
                initial_state=[init], result_index=0,
            )