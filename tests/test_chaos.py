"""Chaos harness acceptance tests.

The resilience contract: every randomized seeded fault schedule either
recovers to oracle-exact output (directly or via the undecomposed
fallback) or raises a typed :class:`FaultError` whose message carries
the seed to replay it. Zero silent numerical corruption.
"""

import numpy as np
import pytest

from repro.faults import chaos
from repro.faults.chaos import (
    FALLBACK,
    GOLDEN_CASES,
    RECOVERED,
    TYPED_FAILURE,
    format_report,
    run_chaos,
    run_one,
)
from repro.faults.errors import FaultError

#: The acceptance-criteria batch: at least 200 seeded schedules.
BATCH_SEED = 20230325
BATCH_RUNS = 200


@pytest.fixture(scope="module")
def batch():
    return run_chaos(BATCH_SEED, BATCH_RUNS)


class TestContract:
    def test_two_hundred_runs_zero_silent_corruption(self, batch):
        assert len(batch.runs) == BATCH_RUNS
        assert batch.violations == [], format_report(batch)
        assert batch.ok

    def test_every_outcome_is_recovery_or_typed(self, batch):
        for run in batch.runs:
            assert run.outcome in (RECOVERED, FALLBACK, TYPED_FAILURE)

    def test_every_failure_message_contains_its_seed(self, batch):
        failures = [r for r in batch.runs if r.outcome == TYPED_FAILURE]
        assert failures, "batch exercised no typed failures"
        for run in failures:
            assert f"seed={run.seed}" in run.message

    def test_batch_exercises_all_recovery_paths(self, batch):
        counts = batch.counts
        assert counts.get(RECOVERED, 0) > 0
        assert counts.get(FALLBACK, 0) > 0
        assert sum(run.retries for run in batch.runs) > 0

    def test_batch_covers_every_golden_case(self, batch):
        exercised = {run.case for run in batch.runs}
        assert exercised == {case.name for case in GOLDEN_CASES}


class TestDeterminism:
    def test_same_seed_same_behaviour(self):
        a = run_chaos(99, 20)
        b = run_chaos(99, 20)
        assert [r.signature for r in a.runs] == [r.signature for r in b.runs]

    def test_replaying_a_failure_seed_reproduces_it(self, batch):
        failures = [r for r in batch.runs if r.outcome == TYPED_FAILURE]
        replayed = run_one(failures[0].seed)
        assert replayed.outcome == TYPED_FAILURE
        assert replayed.error_type == failures[0].error_type

    def test_zero_intensity_all_recover_cleanly(self):
        report = run_chaos(3, 25, intensity=0.0)
        assert report.counts == {RECOVERED: 25}
        assert sum(run.retries for run in report.runs) == 0


class TestAuditor:
    def test_wrong_answer_without_error_is_flagged(self, monkeypatch):
        """If the resilient runtime ever returned wrong numbers silently,
        the harness must classify it as corruption, not success."""

        real = chaos.run_with_fallback

        def lying_runtime(*args, **kwargs):
            result = real(*args, **kwargs)
            for shard in result.root:
                shard += 1.0
            return result

        monkeypatch.setattr(chaos, "run_with_fallback", lying_runtime)
        result = run_one(123, intensity=0.0)
        assert result.outcome == chaos.SILENT_CORRUPTION
        assert result.is_violation

    def test_untyped_exception_is_flagged(self, monkeypatch):
        def crashing_runtime(*args, **kwargs):
            raise RuntimeError("segfault-adjacent")

        monkeypatch.setattr(chaos, "run_with_fallback", crashing_runtime)
        result = run_one(123, intensity=0.0)
        assert result.outcome == chaos.UNTYPED_FAILURE
        assert result.is_violation

    def test_fault_error_without_seed_is_flagged(self, monkeypatch):
        def forgetful_runtime(*args, **kwargs):
            raise FaultError("link died, good luck finding out why")

        monkeypatch.setattr(chaos, "run_with_fallback", forgetful_runtime)
        result = run_one(123, intensity=0.0)
        assert result.outcome == chaos.UNSEEDED_FAILURE
        assert result.is_violation


class TestReport:
    def test_format_names_batch_seed_and_contract(self, batch):
        text = format_report(batch)
        assert f"seed={BATCH_SEED}" in text
        assert "contract held" in text

    def test_format_lists_violations(self):
        report = run_chaos(1, 3, intensity=0.0)
        broken = chaos.ChaosReport(
            seed=1,
            intensity=0.0,
            runs=report.runs
            + (
                chaos.ChaosRunResult(
                    seed=77, case="mlp-chain", ring=2,
                    scheduler="in_order", unroll=False, bidirectional=False,
                    plan="FaultPlan(seed=77, [drop])",
                    outcome=chaos.SILENT_CORRUPTION,
                    error_type="FaultError", message="diverged",
                ),
            ),
        )
        text = format_report(broken)
        assert "CONTRACT VIOLATIONS" in text
        assert "seed=77" in text

    def test_oracle_agreement_tolerance_is_tight(self):
        """Sanity: the harness compares at 1e-9, so even tiny corruption
        would be counted."""
        result = run_one(2, intensity=0.0)
        assert result.outcome == RECOVERED
