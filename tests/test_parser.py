"""Round-trip tests for the HLO text parser."""

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import ShardIndex
from repro.hlo.parser import ParseError, parse_module
from repro.hlo.printer import format_module
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh


def assert_round_trip(module):
    text = format_module(module)
    parsed = parse_module(text)
    assert format_module(parsed) == text
    assert len(parsed) == len(module)
    for original, rebuilt in zip(module, parsed):
        assert original.name == rebuilt.name
        assert original.opcode is rebuilt.opcode
        assert original.shape == rebuilt.shape
        assert [o.name for o in original.operands] == [
            o.name for o in rebuilt.operands
        ]
        assert original.fusion_group == rebuilt.fusion_group
    return parsed


class TestRoundTrip:
    def test_simple_chain(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((4, 6), F32), name="a")
        builder.negate(builder.add(a, a))
        assert_round_trip(builder.module)

    def test_collectives_and_attrs(self):
        builder = GraphBuilder("m")
        mesh = DeviceMesh.ring(4)
        a = builder.parameter(Shape((4, 8), F32), name="a")
        gathered = builder.all_gather(a, 0, mesh.rings("x"))
        builder.reduce_scatter(gathered, 1, mesh.rings("x"))
        builder.collective_permute(a, [(0, 1), (1, 0)], direction="plus")
        parsed = assert_round_trip(builder.module)
        gather = parsed.get(gathered.name)
        assert gather.attrs["dim"] == 0
        assert gather.groups == [(0, 1, 2, 3)]

    def test_shard_index_attrs(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((8, 4), F32), name="a")
        builder.dynamic_slice(
            a, 0, ShardIndex.shard(1, 2, num_shards=4, shard_size=2, div=2), 2
        )
        parsed = assert_round_trip(builder.module)
        start = parsed.root.attrs["start"]
        assert isinstance(start, ShardIndex)
        assert (start.coeff, start.offset, start.modulus, start.stride,
                start.div) == (1, 2, 4, 2, 2)

    def test_constant_payload(self):
        builder = GraphBuilder("m")
        builder.constant(np.arange(6.0).reshape(2, 3), F32)
        parsed = assert_round_trip(builder.module)
        value = np.asarray(parsed.root.attrs["value"])
        np.testing.assert_array_equal(value, np.arange(6.0).reshape(2, 3))

    def test_pad_with_infinity(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2,), F32), name="a")
        builder.pad(a, 0, 1, 1, value=float("-inf"))
        parsed = assert_round_trip(builder.module)
        assert parsed.root.attrs["value"] == float("-inf")

    def test_einsum_equation_with_commas(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2, 3), F32), name="a")
        b = builder.parameter(Shape((3, 4), F32), name="b")
        builder.einsum("bf,fh->bh", a, b)
        parsed = assert_round_trip(builder.module)
        assert parsed.root.equation == "bf,fh->bh"

    def test_compiled_module_round_trips(self, rng):
        """A fully compiled (decomposed, fused, scheduled) module survives
        the text format, including fusion groups, and still executes
        identically."""
        mesh = DeviceMesh.ring(4)
        builder = GraphBuilder("m")
        x = builder.parameter(Shape((8, 12), F32), name="x")
        w = builder.parameter(Shape((12, 4), F32), name="w")
        gathered = builder.all_gather(w, 1, mesh.rings("x"))
        builder.einsum("bf,fh->bh", x, gathered)
        module = builder.module
        compile_module(module, mesh, OverlapConfig(use_cost_model=False))
        parsed = assert_round_trip(module)

        arguments = {
            "x": [rng.normal(size=(8, 12)) for _ in range(4)],
            "w": [rng.normal(size=(12, 4)) for _ in range(4)],
        }
        expected = run_spmd(module, arguments, 4)[module.root.name]
        got = run_spmd(parsed, arguments, 4)[parsed.root.name]
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)


class TestErrors:
    def test_empty_text(self):
        with pytest.raises(ParseError, match="empty"):
            parse_module("")

    def test_bad_header(self):
        with pytest.raises(ParseError, match="header"):
            parse_module("NotAModule {\n}  // root = <none>")

    def test_bad_footer(self):
        with pytest.raises(ParseError, match="footer"):
            parse_module("HloModule m {\n}")

    def test_unknown_opcode(self):
        text = (
            "HloModule m {\n"
            "  a = f32[2] warp-drive()\n"
            "}  // root = a"
        )
        with pytest.raises(ParseError, match="unknown opcode"):
            parse_module(text)

    def test_undefined_operand(self):
        text = (
            "HloModule m {\n"
            "  a = f32[2] negate(ghost)\n"
            "}  // root = a"
        )
        with pytest.raises(ParseError, match="before definition"):
            parse_module(text)

    def test_undefined_root(self):
        text = (
            "HloModule m {\n"
            "  a = f32[2] parameter()\n"
            "}  // root = b"
        )
        with pytest.raises(ParseError, match="root"):
            parse_module(text)

    def test_hand_written_program_executes(self, rng):
        text = (
            "HloModule hand {\n"
            "  x = f32[2,3] parameter()\n"
            "  y = f32[2,3] add(x, x)\n"
            "}  // root = y"
        )
        module = parse_module(text)
        value = rng.normal(size=(2, 3))
        out = run_spmd(module, {"x": [value]}, 1)[module.root.name]
        np.testing.assert_allclose(out[0], 2 * value)
