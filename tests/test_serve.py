"""Tests for the serving subsystem: catalog, server, load generator.

The server's contract mirrors the chaos harness's: every request either
completes with engine-exact output or fails with a *typed* error —
queue-full at submission, deadline-exceeded at dequeue, unknown-program
immediately — and the untyped-failure counter stays zero on healthy
runs. Determinism in the threaded tests comes from holding the server's
module-build lock: a worker that has dequeued a batch blocks there,
letting the test shape the queue behind it.
"""

import threading
import time

import numpy as np
import pytest

from repro.models.serving import ServableProgram, default_catalog
from repro.runtime.engine import create_engine
from repro.serve import (
    DeadlineExceededError,
    QueueFullError,
    ServeConfig,
    Server,
    ServerClosedError,
    UnknownProgramError,
    check_report,
    format_report,
    measure_compile_overhead,
    run_loadgen,
    write_report,
)

MLP2 = "mlp-chain@2"


def _wait_until(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        time.sleep(0.001)
    raise AssertionError("condition not reached within timeout")


class TestCatalog:
    def test_default_catalog_covers_cases_rings_and_variants(self):
        catalog = default_catalog()
        assert MLP2 in catalog and "mlp-chain@4+overlap" in catalog
        assert len(catalog) == 12  # 3 cases x 2 rings x {raw, overlap}
        for name, program in catalog.items():
            assert program.name == name
            assert isinstance(program, ServableProgram)

    def test_overlap_variant_decomposes(self):
        program = default_catalog()["mlp-chain@4+overlap"]
        module = program.build_module()
        opcodes = {i.opcode.name for i in module.instructions}
        assert "WHILE" in opcodes or "COLLECTIVE_PERMUTE_START" in opcodes

    def test_seeded_inputs_are_reproducible(self):
        program = default_catalog()[MLP2]
        a = program.make_inputs_seeded(7)
        b = program.make_inputs_seeded(7)
        for key in a:
            for x, y in zip(a[key], b[key]):
                assert np.array_equal(x, y)


class TestServer:
    def test_request_matches_direct_engine_run(self):
        catalog = default_catalog()
        program = catalog[MLP2]
        inputs = program.make_inputs_seeded(3)
        with Server(ServeConfig(workers=1), catalog=catalog) as server:
            values = server.submit(MLP2, inputs).result(timeout=10)
        oracle = create_engine("interpreted").run(
            program.build_module(), inputs, mesh=program.num_devices
        )
        (got,) = values.values()
        (want,) = oracle.values()
        for x, y in zip(got, want):
            assert np.array_equal(x, y)

    def test_unknown_program_rejected_typed(self):
        with Server(ServeConfig(workers=1)) as server:
            with pytest.raises(UnknownProgramError, match="nonesuch"):
                server.submit("nonesuch")
        assert server.stats().counters["serve.rejected_unknown_program"] == 1

    def test_queue_full_rejected_typed(self):
        config = ServeConfig(workers=1, queue_depth=1, max_wait=0.0)
        server = Server(config, catalog=default_catalog())
        accepted = []
        try:
            with server._module_lock:  # first build blocks the worker
                with pytest.raises(QueueFullError):
                    for _ in range(3):
                        accepted.append(server.submit(MLP2))
            for ticket in accepted:
                ticket.result(timeout=10)
        finally:
            server.close()
        assert server.stats().counters["serve.rejected_queue_full"] >= 1

    def test_deadline_checked_at_dequeue(self):
        config = ServeConfig(workers=1, max_wait=0.0)
        server = Server(config, catalog=default_catalog())
        try:
            with server._module_lock:
                first = server.submit(MLP2)
                _wait_until(lambda: not server._queue)  # worker holds it
                late = server.submit(MLP2, deadline=0.005)
                time.sleep(0.05)
            first.result(timeout=10)
            with pytest.raises(DeadlineExceededError, match="deadline"):
                late.result(timeout=10)
        finally:
            server.close()
        counters = server.stats().counters
        assert counters["serve.deadline_exceeded"] == 1
        assert counters["serve.typed_failures"] == 1
        assert counters.get("serve.untyped_failures", 0) == 0

    def test_same_program_requests_batch(self):
        # max_wait=0 turns off the straggler window, so the batch split
        # is deterministic: the worker takes `first` alone (nothing else
        # queued yet), blocks on the module lock, and the four requests
        # queued meanwhile form exactly one follow-up batch.
        config = ServeConfig(workers=1, max_batch_size=8, max_wait=0.0)
        server = Server(config, catalog=default_catalog())
        try:
            with server._module_lock:
                first = server.submit(MLP2)
                _wait_until(lambda: not server._queue)
                rest = [server.submit(MLP2) for _ in range(4)]
            for ticket in [first, *rest]:
                ticket.result(timeout=10)
        finally:
            server.close()
        stats = server.stats()
        assert stats.batches == 2  # the blocked single + one batch of 4
        assert stats.counters["serve.batched_requests"] == 5
        assert stats.mean_batch_size == pytest.approx(2.5)

    def test_bad_inputs_fail_only_their_request_untyped(self):
        with Server(ServeConfig(workers=1)) as server:
            bad = server.submit(MLP2, inputs={})
            good = server.submit(MLP2)
            with pytest.raises(Exception) as excinfo:
                bad.result(timeout=10)
            assert not isinstance(
                excinfo.value, (UnknownProgramError, QueueFullError)
            )
            good.result(timeout=10)
        counters = server.stats().counters
        assert counters["serve.untyped_failures"] == 1
        assert counters["serve.completed"] == 1

    def test_submit_after_close_rejected(self):
        server = Server(ServeConfig(workers=1))
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(MLP2)

    def test_close_without_drain_fails_queued_typed(self):
        server = Server(ServeConfig(workers=1, max_wait=0.0))
        with server._module_lock:
            first = server.submit(MLP2)
            _wait_until(lambda: not server._queue)
            queued = server.submit(MLP2)
            # close() joins the workers, and the worker is blocked on
            # the module lock this test holds — so close from a helper
            # thread and release the lock before joining it.
            closer = threading.Thread(
                target=lambda: server.close(drain=False)
            )
            closer.start()
            _wait_until(lambda: queued.done)  # dropped typed, not run
        first.result(timeout=10)
        closer.join(timeout=10)
        with pytest.raises(ServerClosedError):
            queued.result(timeout=10)

    def test_plan_cache_warm_after_repeat_requests(self):
        with Server(ServeConfig(workers=2)) as server:
            for _ in range(3):
                server.submit(MLP2).result(timeout=10)
        cache = server.stats().plan_cache
        assert cache.misses == 1
        assert cache.hits >= 2

    def test_interpreted_engine_serves_too(self):
        config = ServeConfig(engine="interpreted", workers=1)
        with Server(config) as server:
            values = server.submit(MLP2).result(timeout=10)
        assert values
        assert server.stats().plan_cache is None

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServeConfig(engine="jit")
        with pytest.raises(ValueError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ValueError):
            ServeConfig(max_batch_size=0)


class TestLoadgen:
    def test_selftest_run_passes_the_gates(self, tmp_path):
        report = run_loadgen(
            requests=30,
            config=ServeConfig(workers=2, max_batch_size=4),
            programs=[MLP2, "mlp-chain@2+overlap"],
            seed=7,
        )
        assert report.completed == 30
        assert report.untyped_failures == 0
        assert report.cache_misses == 2  # one per program
        assert check_report(report) == []
        text = format_report(report)
        assert "p50" in text and "hit rate" in text
        path = tmp_path / "report.json"
        write_report(report, str(path))
        assert path.exists()
        payload = report.to_json()
        assert payload["requests"] == 30
        assert payload["compile_overhead"]["speedup"] > 1.0

    def test_unknown_program_rejected(self):
        with pytest.raises(UnknownProgramError):
            run_loadgen(requests=2, programs=["nonesuch"])

    def test_check_report_flags_untyped_failures_and_cold_cache(self):
        report = run_loadgen(
            requests=6,
            config=ServeConfig(workers=1),
            programs=[MLP2],
            measure_compile=False,
        )
        broken = report.__class__(
            **{
                **report.__dict__,
                "untyped_failures": 2,
                "completed": report.completed - 2,
                "cache_hit_rate": 0.0,
            }
        )
        problems = check_report(broken)
        assert any("untyped" in p for p in problems)
        assert any("hit rate" in p for p in problems)

    def test_compile_overhead_measures_real_speedup(self):
        overhead = measure_compile_overhead(repeats=3)
        assert overhead.cold > overhead.warm
        assert overhead.speedup >= 5.0


class TestHealthAwareShedding:
    """Admission control rides the degradation ladder (PR 6)."""

    def test_full_state_is_legacy_behavior(self):
        from repro.adapt import LadderState
        from repro.serve import SHED_FACTOR

        assert SHED_FACTOR[LadderState.FULL] == 1.0
        assert SHED_FACTOR[LadderState.REBALANCED] == 1.0
        with Server(ServeConfig(workers=1)) as server:
            assert server.stats().ladder_state == "full"
            server.submit(MLP2).result(timeout=10)

    def test_degraded_state_shrinks_queue_and_sheds_typed(self):
        from repro.adapt import LadderState
        from repro.serve import DegradedServiceError

        config = ServeConfig(workers=1, queue_depth=4, max_wait=0.0)
        server = Server(config, catalog=default_catalog())
        accepted = []
        try:
            server.report_ladder_state(LadderState.UNIDIRECTIONAL)
            with server._module_lock:  # first build blocks the worker
                with pytest.raises(DegradedServiceError) as excinfo:
                    for _ in range(4):
                        accepted.append(server.submit(MLP2))
            for ticket in accepted:
                ticket.result(timeout=10)
        finally:
            server.close()
        # Depth 4 halves to 2: the worker holds one request, the queue
        # holds two more, the next submission is shed.
        error = excinfo.value
        assert error.ladder_state == "unidirectional"
        assert error.depth == 2
        assert "degraded" in str(error)
        counters = server.stats().counters
        assert counters["serve.shed_degraded"] >= 1
        assert counters["serve.ladder.unidirectional"] == 1
        assert server.stats().ladder_state == "unidirectional"

    def test_recovery_restores_full_depth(self):
        from repro.adapt import LadderState

        config = ServeConfig(workers=1, queue_depth=4, max_wait=0.0)
        with Server(config, catalog=default_catalog()) as server:
            server.report_ladder_state(LadderState.SYNC_FALLBACK)
            server.report_ladder_state(LadderState.FULL)
            assert server.stats().ladder_state == "full"
            for ticket in [server.submit(MLP2) for _ in range(3)]:
                ticket.result(timeout=10)

    def test_repeated_report_counts_only_transitions(self):
        from repro.adapt import LadderState

        with Server(ServeConfig(workers=1)) as server:
            server.report_ladder_state(LadderState.REBALANCED)
            server.report_ladder_state(LadderState.REBALANCED)
            counters = server.stats().counters
        assert counters["serve.ladder.rebalanced"] == 1

    def test_stats_json_reports_ladder_state(self):
        from repro.adapt import LadderState

        with Server(ServeConfig(workers=1)) as server:
            server.report_ladder_state(LadderState.REBALANCED)
            payload = server.stats().to_json()
        assert payload["ladder_state"] == "rebalanced"
