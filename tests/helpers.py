"""Shared helpers for the test suite (fixtures live in conftest)."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.hlo.module import HloModule
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh


#: The full config grid the equivalence tests sweep.
ALL_OVERLAP_CONFIGS = [
    OverlapConfig(use_cost_model=False, scheduler=scheduler,
                  unroll=unroll, bidirectional=bidirectional)
    for scheduler in ("bottom_up", "top_down", "in_order")
    for unroll in (False, True)
    for bidirectional in (False, True)
]


def run_and_compare(
    build: Callable[[], HloModule],
    mesh: DeviceMesh,
    arguments: Dict[str, Sequence[np.ndarray]],
    configs: Optional[Sequence[OverlapConfig]] = None,
    atol: float = 1e-9,
) -> None:
    """Assert every compiled variant matches the uncompiled module.

    ``build`` must return a fresh module each call (compilation mutates
    in place).
    """
    reference_module = build()
    reference = run_spmd(
        reference_module, arguments, mesh.num_devices
    )[reference_module.root.name]

    for config in configs if configs is not None else ALL_OVERLAP_CONFIGS:
        module = build()
        compile_module(module, mesh, config)
        result = run_spmd(module, arguments, mesh.num_devices)
        got = result[module.root.name]
        worst = max(
            np.abs(g - r).max() for g, r in zip(got, reference)
        )
        assert worst < atol, (
            f"config {config} diverges by {worst:.3e}"
        )


def split_shards(array: np.ndarray, axis: int, count: int):
    return [s.copy() for s in np.split(array, count, axis=axis)]
