"""Tests for the HLO text printer."""

import numpy as np

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import ShardIndex
from repro.hlo.printer import (
    format_instruction,
    format_module,
    summarize_opcodes,
)
from repro.hlo.shapes import Shape


def small_module():
    builder = GraphBuilder("demo")
    a = builder.parameter(Shape((2, 3), F32), name="a")
    b = builder.parameter(Shape((3, 4), F32), name="b")
    builder.einsum("bf,fh->bh", a, b)
    return builder.module


class TestFormatInstruction:
    def test_operands_listed(self):
        module = small_module()
        line = format_instruction(module.root)
        assert "einsum(a, b" in line
        assert "equation='bf,fh->bh'" in line

    def test_shape_rendered(self):
        module = small_module()
        assert "f32[2,4]" in format_instruction(module.root)

    def test_fusion_group_annotation(self):
        module = small_module()
        module.root.fusion_group = 3
        assert "#fusion_group=3" in format_instruction(module.root)

    def test_shard_index_attr(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((8,), F32), name="a")
        ds = builder.dynamic_slice(
            a, 0, ShardIndex.shard(1, 1, num_shards=4, shard_size=2), 2
        )
        assert "((1*pid+1) mod 4)*2" in format_instruction(ds)

    def test_numpy_payload_rendered_as_list(self):
        builder = GraphBuilder("m")
        constant = builder.constant(np.eye(2), F32)
        line = format_instruction(constant)
        assert "[[1.0, 0.0], [0.0, 1.0]]" in line


class TestFormatModule:
    def test_header_and_root(self):
        module = small_module()
        text = format_module(module)
        assert text.startswith("HloModule demo {")
        assert text.rstrip().endswith(f"// root = {module.root.name}")

    def test_empty_module(self):
        from repro.hlo.module import HloModule

        text = format_module(HloModule("empty"))
        assert "<none>" in text

    def test_one_line_per_instruction(self):
        module = small_module()
        assert len(format_module(module).splitlines()) == len(module) + 2


class TestSummarize:
    def test_counts_sorted_descending(self):
        summary = summarize_opcodes(small_module())
        lines = summary.splitlines()
        assert "parameter: 2" in lines[0]
        assert "einsum: 1" in lines[1]
