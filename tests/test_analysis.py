"""Tests for the static analyzer: rule catalog, passes, pipeline hook,
donation cross-check, and the parser/printer/verifier round-trip."""

import json

import pytest

from repro.analysis import (
    RULES,
    RULES_BY_ID,
    AnalysisError,
    Diagnostic,
    analyze_module,
    check_async_pairs,
    check_schedule,
    check_shapes,
    check_ssa,
    collective_check,
    merge_results,
    verify_module,
)
from repro.analysis.donation_check import check_donations
from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES
from repro.hlo.dtypes import F32, S32
from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.hlo.parser import parse_module
from repro.hlo.printer import format_module
from repro.hlo.shapes import Shape
from repro.runtime.compile import lower
from repro.runtime.plan import DonationRecord
from repro.sharding.mesh import DeviceMesh

CASES = {case.name: case for case in GOLDEN_CASES}
GRID = [
    (case.name, ring) for case in GOLDEN_CASES for ring in case.rings
]


def _shape(*dims):
    return Shape(tuple(dims), F32)


def _instr(name, opcode, shape, operands=(), **attrs):
    return Instruction(
        name=name, opcode=opcode, shape=shape,
        operands=list(operands), attrs=attrs,
    )


def _compiled(name, ring, **config):
    case = CASES[name]
    mesh = DeviceMesh.ring(ring)
    module = case.build(mesh)
    compile_module(
        module, mesh, OverlapConfig(use_cost_model=False, **config)
    )
    return module, mesh


class TestRuleCatalog:
    def test_ids_unique_and_indexed(self):
        assert len({rule.rule_id for rule in RULES}) == len(RULES)
        assert set(RULES_BY_ID) == {rule.rule_id for rule in RULES}

    def test_every_family_present(self):
        families = {rule.rule_id[0] for rule in RULES}
        assert families == {"S", "V", "A", "C", "D", "L"}

    def test_diagnostic_rejects_unknown_rule(self):
        with pytest.raises(ValueError):
            Diagnostic(rule="X999", severity="error", message="nope")

    def test_diagnostic_formats_location_and_hint(self):
        diagnostic = Diagnostic(
            rule="S001", severity="error", message="bad",
            instruction="add.1", module="m", hint="fix it",
        )
        text = diagnostic.format()
        assert "S001" in text and "m:add.1" in text and "fix it" in text


class TestAnalyzeCleanGolden:
    @pytest.mark.parametrize("name,ring", GRID)
    def test_scheduled_modules_are_error_free(self, name, ring):
        module, mesh = _compiled(name, ring, unroll=False)
        result = analyze_module(module, num_devices=mesh.num_devices)
        assert result.ok, result.format_text()
        assert "donation" in result.passes_run

    @pytest.mark.parametrize("name,ring", GRID)
    def test_unrolled_modules_are_error_free(self, name, ring):
        module, mesh = _compiled(name, ring)
        result = analyze_module(module, num_devices=mesh.num_devices)
        assert result.ok, result.format_text()

    def test_result_serializes(self):
        module, mesh = _compiled("mlp-chain", 4)
        result = analyze_module(module, num_devices=mesh.num_devices)
        payload = json.loads(json.dumps(result.to_json()))
        assert payload["ok"] is True
        assert payload["module"] == module.name
        assert payload["passes"] == list(result.passes_run)


class TestPipelineHook:
    def test_off_by_default(self):
        case = CASES["mlp-chain"]
        mesh = DeviceMesh.ring(4)
        result = compile_module(
            case.build(mesh), mesh, OverlapConfig(use_cost_model=False)
        )
        assert result.verification == []

    def test_every_stage_verified(self):
        case = CASES["mlp-chain"]
        mesh = DeviceMesh.ring(4)
        result = compile_module(
            case.build(mesh), mesh, OverlapConfig(use_cost_model=False),
            verify_after_each_pass=True,
        )
        assert len(result.verification) == 6
        assert all(r.ok for r in result.verification)

    def test_error_pins_the_stage(self):
        case = CASES["mlp-chain"]
        mesh = DeviceMesh.ring(4)
        module = case.build(mesh)
        einsum = next(
            i for i in module if i.opcode is Opcode.EINSUM
        )
        einsum.shape = Shape(
            (einsum.shape.dims[0] + 1,) + einsum.shape.dims[1:], F32
        )
        with pytest.raises(AnalysisError) as info:
            compile_module(
                module, mesh, OverlapConfig(use_cost_model=False),
                verify_after_each_pass=True,
            )
        assert info.value.stage == "input"
        assert "S001" in info.value.result.rule_ids

    def test_verify_module_raises_with_result(self):
        module = HloModule("broken")
        a = _instr("a", Opcode.PARAMETER, _shape(2, 2))
        b = _instr("b", Opcode.NEGATE, _shape(3, 3), [a])
        module.add(a)
        module.add(b)
        with pytest.raises(AnalysisError) as info:
            verify_module(module, stage="test")
        assert not info.value.result.ok
        assert "test" in str(info.value)


class TestShapePass:
    def test_clean_elementwise(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        module.add(_instr("n", Opcode.NEGATE, _shape(2), [a]))
        assert check_shapes(module) == []

    def test_dim_mismatch_is_s001(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        module.add(_instr("n", Opcode.NEGATE, _shape(3), [a]))
        assert [d.rule for d in check_shapes(module)] == ["S001"]

    def test_dtype_mismatch_is_s002(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        module.add(
            _instr("n", Opcode.NEGATE, Shape((2,), S32), [a])
        )
        assert [d.rule for d in check_shapes(module)] == ["S002"]

    def test_missing_attr_is_s003(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2, 2)))
        b = module.add(_instr("b", Opcode.PARAMETER, _shape(2, 2)))
        module.add(_instr("e", Opcode.EINSUM, _shape(2, 2), [a, b]))
        assert [d.rule for d in check_shapes(module)] == ["S003"]


class TestSSAPass:
    def test_use_before_def_is_v001(self):
        module = HloModule("m")
        a = _instr("a", Opcode.PARAMETER, _shape(2))
        n = _instr("n", Opcode.NEGATE, _shape(2), [a])
        module.add(n)  # a never added: dangling operand
        assert "V001" in [d.rule for d in check_ssa(module)]

    def test_orphan_is_a_warning(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        module.add(_instr("n", Opcode.NEGATE, _shape(2), [a]))
        module.add(_instr("b", Opcode.PARAMETER, _shape(2)))
        module.root = module.get("n")
        findings = [d for d in check_ssa(module) if d.rule == "V004"]
        assert findings and all(not d.is_error for d in findings)


class TestAsyncPass:
    def _pair(self, module, name, operand, channel):
        start = module.add(
            _instr(
                f"{name}.start", Opcode.COLLECTIVE_PERMUTE_START,
                operand.shape, [operand],
                pairs=[(0, 1), (1, 0)], channel_id=channel,
            )
        )
        done = module.add(
            _instr(
                f"{name}.done", Opcode.COLLECTIVE_PERMUTE_DONE,
                operand.shape, [start],
            )
        )
        return start, done

    def test_adjacent_pairs_clean(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        self._pair(module, "p1", a, 1)
        self._pair(module, "p2", a, 2)
        assert check_async_pairs(module) == []

    def test_in_flight_budget_is_a004(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        s1 = module.add(
            _instr(
                "s1", Opcode.COLLECTIVE_PERMUTE_START, _shape(2), [a],
                pairs=[(0, 1), (1, 0)], channel_id=1,
            )
        )
        s2 = module.add(
            _instr(
                "s2", Opcode.COLLECTIVE_PERMUTE_START, _shape(2), [a],
                pairs=[(0, 1), (1, 0)], channel_id=2,
            )
        )
        module.add(
            _instr("d1", Opcode.COLLECTIVE_PERMUTE_DONE, _shape(2), [s1])
        )
        module.add(
            _instr("d2", Opcode.COLLECTIVE_PERMUTE_DONE, _shape(2), [s2])
        )
        assert check_async_pairs(module) == []
        rules = [
            d.rule for d in check_async_pairs(module, max_in_flight=1)
        ]
        assert rules == ["A004"]


class TestCollectiveCheck:
    def test_pair_problem_order_matches_runtime(self):
        problems = collective_check.permute_pair_problems(
            [(0, 5)], num_devices=4
        )
        assert problems[0].rule == "C005"
        assert "device 5 out of range" in problems[0].message

    def test_duplicate_destination_before_source(self):
        problems = collective_check.permute_pair_problems(
            [(0, 2), (1, 2)], num_devices=4
        )
        assert problems[0].rule == "C004"
        assert "destination of two pairs" in problems[0].message

    def test_open_chain_is_a_warning(self):
        problems = collective_check.permute_pair_problems(
            [(0, 1), (1, 2)], num_devices=4
        )
        assert [p.rule for p in problems] == ["C006"]
        assert problems[0].severity == "warning"

    def test_ring_is_clean(self):
        assert (
            collective_check.permute_pair_problems(
                [(0, 1), (1, 2), (2, 3), (3, 0)], num_devices=4
            )
            == []
        )

    def test_coverage_gap_is_c001(self):
        problems = collective_check.replica_group_problems(
            [(0, 1)], num_devices=4
        )
        assert {p.rule for p in problems} == {"C001"}

    def test_group_of_raises_on_missing_device(self):
        with pytest.raises(KeyError):
            collective_check.group_of(3, [(0, 1)])


class TestSchedulePass:
    def test_explicit_order_must_be_permutation(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        module.add(_instr("n", Opcode.NEGATE, _shape(2), [a]))
        rules = [d.rule for d in check_schedule(module, order=[a])]
        assert "L004" in rules

    def test_done_before_start_is_l002(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        start = module.add(
            _instr(
                "s", Opcode.COLLECTIVE_PERMUTE_START, _shape(2), [a],
                pairs=[(0, 1), (1, 0)],
            )
        )
        done = module.add(
            _instr("d", Opcode.COLLECTIVE_PERMUTE_DONE, _shape(2), [start])
        )
        rules = [
            d.rule for d in check_schedule(module, order=[a, done, start])
        ]
        assert "L002" in rules


class TestDonationCrossCheck:
    @pytest.mark.parametrize("name,ring", GRID)
    def test_planner_records_audit_clean(self, name, ring):
        module, mesh = _compiled(name, ring)
        plan = lower(module, mesh.num_devices)
        findings = check_donations(
            module, records=plan.donations,
            num_devices=mesh.num_devices,
        )
        assert findings == [], [d.format() for d in findings]

    def test_planner_actually_donates_somewhere(self):
        module, mesh = _compiled("mlp-chain", 4)
        plan = lower(module, mesh.num_devices)
        assert plan.donations, "expected in-place reuse in the plan"
        for record in plan.donations:
            assert isinstance(record, DonationRecord)
            module.get(record.step)  # the step must exist
            module.get(record.value)  # and so must the donated value

    def test_fabricated_race_is_d001(self):
        module, mesh = _compiled("mlp-chain", 4)
        users = module.user_map()
        position = {i.name: p for p, i in enumerate(module)}
        value, readers = next(
            (value, sorted(us, key=lambda u: position[u.name]))
            for value, us in users.items()
            if len(
                [
                    u for u in us
                    if u.opcode is not Opcode.COLLECTIVE_PERMUTE_DONE
                ]
            ) >= 2
        )
        bad = DonationRecord(module.name, readers[0].name, value.name)
        findings = check_donations(
            module, records=[bad], num_devices=mesh.num_devices
        )
        assert "D001" in [d.rule for d in findings]

    def test_unknown_value_is_d002(self):
        module, mesh = _compiled("mlp-chain", 4)
        bad = DonationRecord(module.name, "nope.1", "missing.2")
        findings = check_donations(
            module, records=[bad], num_devices=mesh.num_devices
        )
        assert [d.rule for d in findings] == ["D002"]


class TestRoundTrip:
    @pytest.mark.parametrize("name,ring", GRID)
    def test_compiled_modules_round_trip(self, name, ring):
        module, mesh = _compiled(name, ring)
        text = format_module(module)
        reparsed = parse_module(text)
        assert format_module(reparsed) == text
        original = analyze_module(module, num_devices=mesh.num_devices)
        recovered = analyze_module(
            reparsed, num_devices=mesh.num_devices
        )
        assert recovered.to_json() == original.to_json()

    def test_channel_ids_survive(self):
        module, _ = _compiled("mlp-chain", 4, unroll=False)
        channels = [
            i.attrs["channel_id"]
            for i in module
            if i.opcode is Opcode.COLLECTIVE_PERMUTE_START
        ]
        assert channels and len(set(channels)) == len(channels)
        reparsed = parse_module(format_module(module))
        assert channels == [
            i.attrs["channel_id"]
            for i in reparsed
            if i.opcode is Opcode.COLLECTIVE_PERMUTE_START
        ]

    def test_rolled_while_round_trips(self):
        from repro.core.loop import emit_rolled
        from repro.core.patterns import find_candidates

        case = CASES["allgather-einsum"]
        mesh = DeviceMesh.ring(4)
        module = case.build(mesh)
        emit_rolled(module, find_candidates(module)[0], mesh)
        text = format_module(module)
        reparsed = parse_module(text)
        assert format_module(reparsed) == text
        loop = next(i for i in reparsed if i.opcode is Opcode.WHILE)
        body = loop.attrs["body"]
        assert isinstance(body, HloModule)
        assert loop.attrs["trip_count"] >= 1


class TestMergeResults:
    def test_merge_combines_diagnostics(self):
        module = HloModule("m")
        a = module.add(_instr("a", Opcode.PARAMETER, _shape(2)))
        module.add(_instr("n", Opcode.NEGATE, _shape(3), [a]))
        first = analyze_module(module)
        merged = merge_results("both", [first, first])
        assert merged.module_name == "both"
        assert len(merged.diagnostics) == 2 * len(first.diagnostics)
