"""Golden-structure tests: the compiled form of the paper's examples.

These pin down the *structure* the passes are expected to produce for the
paper's canonical examples — the Figure 4 AllGather-Einsum and the
Figure 5 Einsum-ReduceScatter on two partitions — as exact opcode
sequences. A change in emission order or op choice fails loudly here even
if numerics and performance stay intact, which is the point: the emitted
structure *is* the paper's artifact.
"""

import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.opcode import Opcode
from repro.hlo.parser import parse_module
from repro.hlo.printer import format_module
from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh

MESH2 = DeviceMesh.ring(2)


def figure4_module():
    """Figure 4: A partitioned on a non-contracting dim, 2-way."""
    builder = GraphBuilder("figure4")
    a = builder.parameter(Shape((2, 3), F32), name="A")
    b = builder.parameter(Shape((3, 5), F32), name="B")
    gathered = builder.all_gather(a, 0, MESH2.rings("x"))
    builder.einsum("bf,fh->bh", gathered, b, name="C")
    return builder.module


def figure5_module():
    """Figure 5: Einsum followed by a 2-way ReduceScatter."""
    builder = GraphBuilder("figure5")
    a = builder.parameter(Shape((4, 3), F32), name="A")
    b = builder.parameter(Shape((3, 6), F32), name="B")
    out = builder.einsum("bf,fh->bh", a, b, name="C")
    builder.reduce_scatter(out, 1, MESH2.rings("x"))
    return builder.module


def opcode_sequence(module):
    return [i.opcode for i in module]


class TestFigure4Structure:
    def test_plain_decomposition(self):
        """Two partial einsums, one permute, two result updates — the
        lower half of Figure 4 (without the double-buffering unroll the
        loop also carries a Copy)."""
        module = figure4_module()
        compile_module(
            module, MESH2,
            OverlapConfig(
                use_cost_model=False, unroll=False, bidirectional=False,
                scheduler="in_order",
            ),
        )
        assert opcode_sequence(module) == [
            Opcode.PARAMETER,                      # A (local shard)
            Opcode.PARAMETER,                      # B
            Opcode.ZEROS,                          # result buffer
            Opcode.COLLECTIVE_PERMUTE_START,       # send own shard
            Opcode.COLLECTIVE_PERMUTE_DONE,
            Opcode.EINSUM,                         # partial 0 (own shard)
            Opcode.DYNAMIC_UPDATE_SLICE,
            Opcode.COPY,                           # loop-carried aliasing
            Opcode.EINSUM,                         # partial 1 (received)
            Opcode.DYNAMIC_UPDATE_SLICE,
        ]

    def test_unrolled_drops_the_copy(self):
        module = figure4_module()
        compile_module(
            module, MESH2,
            OverlapConfig(
                use_cost_model=False, unroll=True, bidirectional=False,
                scheduler="in_order",
            ),
        )
        opcodes = opcode_sequence(module)
        assert Opcode.COPY not in opcodes
        assert opcodes.count(Opcode.EINSUM) == 2
        assert opcodes.count(Opcode.COLLECTIVE_PERMUTE_START) == 1

    def test_pair_split_uses_both_directions(self):
        module = figure4_module()
        compile_module(
            module, MESH2,
            OverlapConfig(use_cost_model=False, scheduler="in_order"),
        )
        starts = module.find(
            lambda i: i.opcode is Opcode.COLLECTIVE_PERMUTE_START
        )
        assert len(starts) == 2
        assert {s.attrs["direction"] for s in starts} == {"plus", "minus"}
        # The peer shard arrives as two half-slices.
        assert module.count(Opcode.SLICE) >= 2

    def test_scheduler_places_compute_inside_window(self):
        module = figure4_module()
        compile_module(
            module, MESH2,
            OverlapConfig(
                use_cost_model=False, unroll=True, bidirectional=False,
            ),
        )
        opcodes = opcode_sequence(module)
        start = opcodes.index(Opcode.COLLECTIVE_PERMUTE_START)
        done = opcodes.index(Opcode.COLLECTIVE_PERMUTE_DONE)
        assert Opcode.EINSUM in opcodes[start:done]


class TestFigure5Structure:
    def test_plain_decomposition_permutes_every_iteration(self):
        """Algorithm 1: for ReduceScatter the accumulator travels on
        every iteration — N starts for N partitions."""
        module = figure5_module()
        compile_module(
            module, MESH2,
            OverlapConfig(
                use_cost_model=False, unroll=False, bidirectional=False,
                scheduler="in_order",
            ),
        )
        opcodes = opcode_sequence(module)
        assert opcodes.count(Opcode.COLLECTIVE_PERMUTE_START) == 2
        assert opcodes.count(Opcode.EINSUM) == 2
        assert opcodes.count(Opcode.DYNAMIC_SLICE) == 2
        assert opcodes.count(Opcode.ADD) == 2

    def test_text_form_is_stable(self):
        """The compiled text parses back to an identical module — the
        golden artifact can be regenerated and diffed."""
        module = figure5_module()
        compile_module(
            module, MESH2, OverlapConfig(use_cost_model=False)
        )
        text = format_module(module)
        assert format_module(parse_module(text)) == text