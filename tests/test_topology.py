"""Tests for torus link routing."""

import pytest

from repro.hlo.instruction import collective_permute_pairs
from repro.perfsim.topology import (
    MINUS,
    PLUS,
    TopologyError,
    classify_permute,
    ring_size_of_groups,
)
from repro.sharding.mesh import DeviceMesh

RING8 = DeviceMesh.ring(8)
GRID = DeviceMesh.grid({"x": 2, "y": 4})


class TestClassify:
    def test_shift_left_is_minus(self):
        pairs = collective_permute_pairs(tuple(range(8)), shift=1)
        route = classify_permute(pairs, RING8)
        assert route.direction == MINUS
        assert route.hop_distance == 1
        assert route.axis == "x"

    def test_shift_right_is_plus(self):
        pairs = collective_permute_pairs(tuple(range(8)), shift=-1)
        route = classify_permute(pairs, RING8)
        assert route.direction == PLUS
        assert route.hop_distance == 1

    def test_hop_two(self):
        pairs = collective_permute_pairs(tuple(range(8)), shift=2)
        route = classify_permute(pairs, RING8)
        assert route.hop_distance == 2
        assert route.direction == MINUS

    def test_second_axis(self):
        pairs = []
        for group in GRID.rings("y"):
            pairs.extend(collective_permute_pairs(group, shift=1))
        route = classify_permute(pairs, GRID)
        assert route.axis == "y"

    def test_direction_hint_overrides_tie(self):
        mesh = DeviceMesh.ring(2)
        pairs = [(0, 1), (1, 0)]
        plus = classify_permute(pairs, mesh, direction_hint=PLUS)
        minus = classify_permute(pairs, mesh, direction_hint=MINUS)
        assert plus.direction == PLUS
        assert minus.direction == MINUS
        assert plus.hop_distance == minus.hop_distance == 1
        assert plus.resource != minus.resource

    def test_multi_axis_pair_rejected(self):
        with pytest.raises(TopologyError, match="axes"):
            classify_permute([(0, 5)], GRID)  # changes x and y

    def test_non_uniform_rejected(self):
        with pytest.raises(TopologyError, match="non-uniform"):
            classify_permute([(0, 1), (2, 0)], GRID)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError, match="no source"):
            classify_permute([], RING8)


class TestGroups:
    def test_ring_size(self):
        assert ring_size_of_groups([(0, 1, 2)]) == 3

    def test_empty_groups_rejected(self):
        with pytest.raises(TopologyError):
            ring_size_of_groups([])
