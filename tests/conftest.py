"""Shared fixtures for the test suite (helpers live in helpers.py)."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20230325)  # the conference date
