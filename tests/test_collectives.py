"""Reference-collective semantics (the correctness oracle's own tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import collectives


def make_inputs(num_devices, shape, rng=None):
    rng = rng or np.random.default_rng(7)
    return [rng.normal(size=shape) for _ in range(num_devices)]


class TestAllGather:
    def test_concatenates_in_group_order(self):
        inputs = [np.full((1, 2), float(d)) for d in range(3)]
        out = collectives.all_gather(inputs, 0, [(0, 1, 2)])
        for device in range(3):
            np.testing.assert_array_equal(out[device][:, 0], [0, 1, 2])

    def test_subgroups_stay_separate(self):
        inputs = [np.full((1,), float(d)) for d in range(4)]
        out = collectives.all_gather(inputs, 0, [(0, 1), (2, 3)])
        np.testing.assert_array_equal(out[0], [0, 1])
        np.testing.assert_array_equal(out[3], [2, 3])

    def test_gather_along_second_dim(self):
        inputs = make_inputs(2, (3, 2))
        out = collectives.all_gather(inputs, 1, [(0, 1)])
        assert out[0].shape == (3, 4)
        np.testing.assert_array_equal(out[0][:, :2], inputs[0])
        np.testing.assert_array_equal(out[0][:, 2:], inputs[1])


class TestReduceScatter:
    def test_sum_then_shard(self):
        inputs = make_inputs(2, (4,))
        out = collectives.reduce_scatter(inputs, 0, [(0, 1)])
        total = inputs[0] + inputs[1]
        np.testing.assert_allclose(out[0], total[:2])
        np.testing.assert_allclose(out[1], total[2:])

    def test_inverse_of_all_gather(self):
        """ReduceScatter(AllGather(x)) recovers N * x shards."""
        inputs = make_inputs(3, (2, 2))
        gathered = collectives.all_gather(inputs, 0, [(0, 1, 2)])
        scattered = collectives.reduce_scatter(gathered, 0, [(0, 1, 2)])
        for device in range(3):
            np.testing.assert_allclose(scattered[device], 3 * inputs[device])


class TestAllReduce:
    def test_every_device_gets_sum(self):
        inputs = make_inputs(3, (2,))
        out = collectives.all_reduce(inputs, [(0, 1, 2)])
        total = sum(inputs)
        for device in range(3):
            np.testing.assert_allclose(out[device], total)

    def test_equals_reduce_scatter_plus_all_gather(self):
        """The Section 2.1 identity."""
        inputs = make_inputs(4, (8,))
        groups = [(0, 1, 2, 3)]
        via_identity = collectives.all_gather(
            collectives.reduce_scatter(inputs, 0, groups), 0, groups
        )
        direct = collectives.all_reduce(inputs, groups)
        for a, b in zip(via_identity, direct):
            np.testing.assert_allclose(a, b)


class TestAllToAll:
    def test_transpose_of_splits(self):
        inputs = [np.arange(4, dtype=float) + 10 * d for d in range(2)]
        out = collectives.all_to_all(inputs, 0, 0, [(0, 1)])
        np.testing.assert_array_equal(out[0], [0, 1, 10, 11])
        np.testing.assert_array_equal(out[1], [2, 3, 12, 13])

    def test_involution_on_symmetric_dims(self):
        inputs = make_inputs(4, (8, 3))
        once = collectives.all_to_all(inputs, 0, 0, [(0, 1, 2, 3)])
        twice = collectives.all_to_all(once, 0, 0, [(0, 1, 2, 3)])
        for a, b in zip(inputs, twice):
            np.testing.assert_allclose(a, b)


class TestCollectivePermute:
    def test_ring_shift(self):
        inputs = [np.full((2,), float(d)) for d in range(3)]
        out = collectives.collective_permute(inputs, [(0, 2), (1, 0), (2, 1)])
        np.testing.assert_array_equal(out[2], inputs[0])
        np.testing.assert_array_equal(out[0], inputs[1])

    def test_non_destination_gets_zeros(self):
        inputs = [np.ones(2), np.ones(2)]
        out = collectives.collective_permute(inputs, [(0, 1)])
        np.testing.assert_array_equal(out[0], np.zeros(2))
        np.testing.assert_array_equal(out[1], np.ones(2))

    def test_duplicate_destination_rejected(self):
        inputs = [np.ones(1)] * 3
        with pytest.raises(ValueError, match="destination"):
            collectives.collective_permute(inputs, [(0, 2), (1, 2)])

    def test_duplicate_source_rejected(self):
        inputs = [np.ones(1)] * 3
        with pytest.raises(ValueError, match="source"):
            collectives.collective_permute(inputs, [(0, 1), (0, 2)])


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        num_devices=st.sampled_from([2, 3, 4]),
        rows=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_all_gather_total_content(self, num_devices, rows, seed):
        rng = np.random.default_rng(seed)
        inputs = [rng.normal(size=(rows, 2)) for _ in range(num_devices)]
        out = collectives.all_gather(inputs, 0, [tuple(range(num_devices))])
        expected = np.concatenate(inputs, axis=0)
        for device in range(num_devices):
            np.testing.assert_allclose(out[device], expected)

    @settings(max_examples=25, deadline=None)
    @given(
        num_devices=st.sampled_from([2, 3, 4]),
        rows=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_reduce_scatter_conserves_sum(self, num_devices, rows, seed):
        rng = np.random.default_rng(seed)
        inputs = [
            rng.normal(size=(rows * num_devices, 2))
            for _ in range(num_devices)
        ]
        out = collectives.reduce_scatter(
            inputs, 0, [tuple(range(num_devices))]
        )
        np.testing.assert_allclose(
            np.concatenate(out, axis=0), np.sum(inputs, axis=0)
        )


class TestReplicaGroupShapes:
    """Non-contiguous and singleton replica groups (satellite coverage)."""

    def test_all_gather_non_contiguous_groups(self):
        inputs = [np.full((1,), float(d)) for d in range(4)]
        out = collectives.all_gather(inputs, 0, [(0, 2), (1, 3)])
        np.testing.assert_array_equal(out[0], [0, 2])
        np.testing.assert_array_equal(out[2], [0, 2])
        np.testing.assert_array_equal(out[1], [1, 3])
        np.testing.assert_array_equal(out[3], [1, 3])

    def test_reduce_scatter_non_contiguous_groups(self):
        inputs = [np.full((2,), float(d)) for d in range(4)]
        out = collectives.reduce_scatter(inputs, 0, [(0, 2), (1, 3)])
        np.testing.assert_allclose(out[0], [2.0])  # (0 + 2) first half
        np.testing.assert_allclose(out[2], [2.0])
        np.testing.assert_allclose(out[1], [4.0])  # (1 + 3)
        np.testing.assert_allclose(out[3], [4.0])

    def test_all_reduce_non_contiguous_groups(self):
        inputs = [np.full((2,), float(d)) for d in range(4)]
        out = collectives.all_reduce(inputs, [(0, 2), (1, 3)])
        np.testing.assert_allclose(out[0], [2.0, 2.0])
        np.testing.assert_allclose(out[3], [4.0, 4.0])

    def test_singleton_group_is_identity(self):
        inputs = [np.arange(3.0)]
        gathered = collectives.all_gather(inputs, 0, [(0,)])
        np.testing.assert_array_equal(gathered[0], inputs[0])
        reduced = collectives.all_reduce(inputs, [(0,)])
        np.testing.assert_array_equal(reduced[0], inputs[0])
        scattered = collectives.reduce_scatter(inputs, 0, [(0,)])
        np.testing.assert_array_equal(scattered[0], inputs[0])

    def test_singleton_group_beside_pair(self):
        inputs = [np.full((2,), float(d)) for d in range(3)]
        out = collectives.all_gather(inputs, 0, [(0,), (1, 2)])
        np.testing.assert_array_equal(out[0], [0, 0])
        np.testing.assert_array_equal(out[1], [1, 1, 2, 2])


class TestTypedValidation:
    """Hardened error paths: typed errors naming the offender."""

    def test_missing_device_names_device_and_groups(self):
        from repro.faults.errors import ReplicaGroupError

        inputs = [np.ones(2) for _ in range(3)]
        with pytest.raises(ReplicaGroupError, match=r"device 2.*\(0, 1\)"):
            collectives.all_gather(inputs, 0, [(0, 1)])

    def test_missing_device_error_is_a_value_error(self):
        inputs = [np.ones(2), np.ones(2)]
        with pytest.raises(ValueError, match="device 1"):
            collectives.all_reduce(inputs, [(0,)])

    def test_permute_source_out_of_range(self):
        from repro.faults.errors import InvalidPermuteError

        with pytest.raises(InvalidPermuteError, match="source device 5"):
            collectives.validate_permute_pairs([(5, 0)], num_devices=2)

    def test_permute_destination_out_of_range(self):
        from repro.faults.errors import InvalidPermuteError

        inputs = [np.ones(1), np.ones(1)]
        with pytest.raises(InvalidPermuteError, match="destination"):
            collectives.collective_permute(inputs, [(0, 7)])

    def test_negative_device_rejected(self):
        from repro.faults.errors import InvalidPermuteError

        with pytest.raises(InvalidPermuteError):
            collectives.validate_permute_pairs([(-1, 0)], num_devices=2)

    def test_valid_pairs_accepted(self):
        collectives.validate_permute_pairs(
            [(0, 1), (1, 2), (2, 0)], num_devices=3
        )
