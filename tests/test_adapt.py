"""Tests for the adaptive-rebalancing loop (:mod:`repro.adapt`).

Covers the three halves of the closed loop and their composition:

* the :class:`LinkHealthMonitor` (EWMA scoring, calibration, fault
  localization, healthy-direction inference);
* the :class:`RebalancePolicy` (rung selection, typed schedule edits,
  parameter validation);
* :func:`run_with_ladder` (descent under persistent faults, seeded
  typed transitions, bit-identity against the oracle on every rung);
* the chaos harness's ladder mode and the heterogeneous-fabric p99
  tail gate (``rebalanced.p99 <= undecomposed.p99`` on every scenario).
"""

import json

import numpy as np
import pytest

from repro.adapt import (
    CRITICAL,
    DEAD,
    DEGRADED,
    HEALTHY,
    HealthVerdict,
    LadderState,
    LinkHealthMonitor,
    RebalancePolicy,
    SCENARIOS,
    compare_tail_reports,
    direction_of_channel,
    format_tail_report,
    run_tail,
    run_with_ladder,
    write_tail_report,
)
from repro.adapt.policy import (
    DROP_BIDIRECTIONAL,
    NO_CHANGE,
    REBALANCE_CHUNKS,
    SHRINK_STEP,
    SYNC_FALLBACK_EDIT,
    ScheduleEdit,
)
from repro.core.config import OverlapConfig
from repro.faults.chaos import (
    ADAPTED,
    FALLBACK,
    RECOVERED,
    run_chaos,
    run_one_ladder,
)
from repro.faults.errors import FaultError, LinkDownError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.obs.events import ADAPT, RETRY, TRANSFER, EventLog
from repro.obs.tracer import Tracer
from repro.runtime.executor import run_spmd
from repro.runtime.resilient import RetryPolicy
from repro.sharding.mesh import DeviceMesh

from helpers import split_shards

RING = 4


def build_case(mesh):
    n = mesh.num_devices
    builder = GraphBuilder("adapt_case")
    lhs = builder.parameter(Shape((24 // n, 5), F32), name="lhs")
    rhs = builder.parameter(Shape((5, 7), F32), name="rhs")
    gathered = builder.all_gather(lhs, 0, mesh.rings("x"))
    builder.einsum("bf,fh->bh", gathered, rhs)
    return builder.module


def case_arguments(rng, ring):
    lhs = rng.normal(size=(24, 5))
    rhs = rng.normal(size=(5, 7))
    return {
        "lhs": split_shards(lhs, 0, ring),
        "rhs": [rhs.copy() for _ in range(ring)],
    }


def link_events(resource, busy, payload=1000):
    """A one-transfer timeline with ``busy`` seconds over ``payload``
    bytes on ``resource``."""
    log = EventLog()
    log.add("t0", TRANSFER, resource, 0.0, busy, bytes=payload)
    return log.events


def verdict(channel, status, latency=1.0):
    return HealthVerdict(
        channel=channel,
        status=status,
        latency_score=latency,
        loss_score=0.0,
        samples=1,
    )


RING_PAIRS = [(i, (i + 1) % RING) for i in range(RING)]


class TestDirectionOfChannel:
    def test_simulator_lanes(self):
        assert direction_of_channel("link:x:minus") == "minus"
        assert direction_of_channel("link:x:plus") == "plus"

    def test_per_device_lanes(self):
        assert direction_of_channel("link:x:minus:dev3") == "minus"

    def test_non_link_lanes(self):
        assert direction_of_channel("compute:dev0") is None
        assert direction_of_channel("fabric") is None
        assert direction_of_channel("link:collective-permute-start.3") is None


class TestHealthVerdict:
    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError, match="status"):
            HealthVerdict("link:x:minus", "sluggish", 1.0, 0.0, 1)

    def test_severity_ordering(self):
        severities = [
            verdict("c", status).severity
            for status in (HEALTHY, DEGRADED, CRITICAL, DEAD)
        ]
        assert severities == sorted(severities)
        assert len(set(severities)) == 4

    def test_describe_names_channel_and_status(self):
        text = verdict("link:x:plus", DEGRADED, latency=2.0).describe()
        assert "link:x:plus" in text
        assert "degraded" in text


class TestMonitorValidation:
    def test_alpha_range(self):
        with pytest.raises(ValueError, match="alpha"):
            LinkHealthMonitor(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            LinkHealthMonitor(alpha=1.5)

    def test_threshold_ordering(self):
        with pytest.raises(ValueError, match="threshold"):
            LinkHealthMonitor(degraded_threshold=3.0, critical_threshold=1.5)
        with pytest.raises(ValueError, match="threshold"):
            LinkHealthMonitor(degraded_threshold=0.9)

    def test_loss_threshold_ordering(self):
        with pytest.raises(ValueError, match="loss"):
            LinkHealthMonitor(loss_degraded=0.6, loss_critical=0.5)


class TestMonitorScoring:
    def test_first_sample_defines_nominal(self):
        monitor = LinkHealthMonitor()
        monitor.observe(link_events("link:x:minus", busy=2.0))
        (v,) = monitor.verdicts()
        assert v.status == HEALTHY
        assert v.latency_score == pytest.approx(1.0)

    def test_calibrated_slowdown_detected(self):
        monitor = LinkHealthMonitor()
        monitor.calibrate(link_events("link:x:minus", busy=1.0))
        monitor.observe(link_events("link:x:minus", busy=2.0))
        (v,) = monitor.verdicts()
        assert v.status == DEGRADED
        assert v.latency_score == pytest.approx(2.0)

    def test_ewma_decays_back_to_healthy(self):
        # alpha=0.4: 2.0 -> 0.4*1 + 0.6*2 = 1.6 (degraded) ->
        # 0.4*1 + 0.6*1.6 = 1.36 (healthy again).
        monitor = LinkHealthMonitor(alpha=0.4)
        monitor.calibrate(link_events("link:x:minus", busy=1.0))
        monitor.observe(link_events("link:x:minus", busy=2.0))
        monitor.observe(link_events("link:x:minus", busy=1.0))
        (v,) = monitor.verdicts()
        assert v.status == DEGRADED
        assert v.latency_score == pytest.approx(1.6)
        monitor.observe(link_events("link:x:minus", busy=1.0))
        (v,) = monitor.verdicts()
        assert v.status == HEALTHY
        assert v.latency_score == pytest.approx(1.36)

    def test_critical_threshold(self):
        monitor = LinkHealthMonitor()
        monitor.calibrate(link_events("link:x:minus", busy=1.0))
        monitor.observe(link_events("link:x:minus", busy=4.0))
        (v,) = monitor.verdicts()
        assert v.status == CRITICAL

    def test_retries_raise_loss_score(self):
        monitor = LinkHealthMonitor()
        log = EventLog()
        log.add("t0", TRANSFER, "link:x:minus", 0.0, 1.0, bytes=1000)
        log.add("retry", RETRY, "link:x:minus", 1.0, 1.0)
        monitor.observe(log.events)
        (v,) = monitor.verdicts()
        # one retry / (1 retry + 1 delivery) = 0.5; EWMA from 0 -> 0.2.
        assert v.loss_score == pytest.approx(0.2)
        assert v.status == DEGRADED

    def test_worst_picks_most_severe(self):
        monitor = LinkHealthMonitor()
        monitor.calibrate(link_events("link:x:minus", busy=1.0))
        monitor.calibrate(link_events("link:x:plus", busy=1.0))
        monitor.observe(link_events("link:x:minus", busy=1.0))
        monitor.observe(link_events("link:x:plus", busy=4.0))
        assert monitor.worst().channel == "link:x:plus"


class TestMonitorFaults:
    def test_localizes_pairs_to_channel(self):
        monitor = LinkHealthMonitor()
        error = LinkDownError(
            "link down", pairs=RING_PAIRS, direction="minus"
        )
        channel = monitor.observe_fault(error, DeviceMesh.ring(RING))
        assert channel == "link:x:minus"
        (v,) = monitor.verdicts()
        assert v.status == DEAD
        assert v.latency_score == float("inf")

    def test_direction_only_context_wildcards_axis(self):
        monitor = LinkHealthMonitor()
        channel = monitor.observe_fault(
            LinkDownError("link down", direction="plus")
        )
        assert channel == "link:*:plus"

    def test_wildcard_dead_marks_concrete_lanes(self):
        monitor = LinkHealthMonitor()
        monitor.observe(link_events("link:x:minus", busy=1.0))
        monitor.observe_fault(LinkDownError("down", direction="minus"))
        by_channel = {v.channel: v for v in monitor.verdicts()}
        assert by_channel["link:x:minus"].status == DEAD

    def test_contextless_fault_marks_fabric(self):
        monitor = LinkHealthMonitor()
        assert monitor.observe_fault(FaultError("anonymous")) == "fabric"

    def test_healthy_direction_single_bad_side(self):
        monitor = LinkHealthMonitor()
        monitor.observe_fault(LinkDownError("down", direction="minus"))
        assert monitor.healthy_direction() == "plus"

    def test_healthy_direction_none_when_both_bad(self):
        monitor = LinkHealthMonitor()
        monitor.observe_fault(LinkDownError("down", direction="minus"))
        monitor.observe_fault(LinkDownError("down", direction="plus"))
        assert monitor.healthy_direction() is None

    def test_healthy_direction_none_when_all_healthy(self):
        assert LinkHealthMonitor().healthy_direction() is None


class TestRebalancePolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="max_granularity"):
            RebalancePolicy(max_granularity=0)
        with pytest.raises(ValueError, match="max_granularity"):
            RebalancePolicy(max_granularity=9)
        with pytest.raises(ValueError, match="pair_bias"):
            RebalancePolicy(pair_bias=0.0)
        with pytest.raises(ValueError, match="pair_bias"):
            RebalancePolicy(pair_bias=0.5)

    def test_edit_kind_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ScheduleEdit(kind="defragment", reason="nope")

    def test_next_state_descends_and_saturates(self):
        policy = RebalancePolicy()
        chain = [LadderState.FULL]
        for _ in range(4):
            chain.append(policy.next_state(chain[-1]))
        assert chain == [
            LadderState.FULL,
            LadderState.REBALANCED,
            LadderState.UNIDIRECTIONAL,
            LadderState.SYNC_FALLBACK,
            LadderState.SYNC_FALLBACK,
        ]

    def test_no_verdicts_stays_full(self):
        assert RebalancePolicy().choose_state(()) is LadderState.FULL

    def test_compute_straggler_stays_full(self):
        # Overlap already hides communication under a slow device; a
        # schedule edit would only add per-transfer overhead.
        verdicts = (verdict("compute:dev3", CRITICAL, latency=4.0),)
        assert RebalancePolicy().choose_state(verdicts) is LadderState.FULL

    def test_degraded_link_rebalances(self):
        verdicts = (verdict("link:x:minus", DEGRADED, latency=2.0),)
        assert (
            RebalancePolicy().choose_state(verdicts)
            is LadderState.REBALANCED
        )

    def test_dead_direction_goes_unidirectional(self):
        verdicts = (verdict("link:x:minus", DEAD, latency=9.0),)
        assert (
            RebalancePolicy().choose_state(verdicts)
            is LadderState.UNIDIRECTIONAL
        )

    def test_fabric_wide_critical_rebalances(self):
        # No single direction to route around -> no unidirectional rung.
        verdicts = (verdict("fabric", CRITICAL, latency=5.0),)
        assert (
            RebalancePolicy().choose_state(verdicts)
            is LadderState.REBALANCED
        )

    def test_full_edit_is_identity(self):
        base = OverlapConfig()
        config, edit = RebalancePolicy().config_for(LadderState.FULL, base)
        assert edit.kind == NO_CHANGE
        assert config == base

    def test_rebalanced_edit_doubles_granularity(self):
        base = OverlapConfig(transfer_granularity=1)
        config, edit = RebalancePolicy().config_for(
            LadderState.REBALANCED, base
        )
        assert edit.kind == SHRINK_STEP
        assert config.transfer_granularity == 2
        config2, _ = RebalancePolicy().config_for(
            LadderState.REBALANCED, config
        )
        assert config2.transfer_granularity == 4  # capped at max

    def test_rebalanced_edit_skews_pair_split_off_slow_link(self):
        base = OverlapConfig()
        verdicts = (verdict("link:x:minus", DEGRADED, latency=2.0),)
        config, edit = RebalancePolicy(pair_bias=0.25).config_for(
            LadderState.REBALANCED, base, verdicts
        )
        assert edit.kind == REBALANCE_CHUNKS
        assert config.pair_split == pytest.approx(0.25)  # lean off minus

    def test_unidirectional_edit_picks_healthy_direction(self):
        verdicts = (verdict("link:x:minus", DEAD, latency=9.0),)
        config, edit = RebalancePolicy().config_for(
            LadderState.UNIDIRECTIONAL, OverlapConfig(), verdicts
        )
        assert edit.kind == DROP_BIDIRECTIONAL
        assert config.bidirectional is False
        assert config.preferred_direction == "plus"

    def test_sync_fallback_edit_disables_decomposition(self):
        config, edit = RebalancePolicy().config_for(
            LadderState.SYNC_FALLBACK, OverlapConfig()
        )
        assert edit.kind == SYNC_FALLBACK_EDIT
        assert config.enabled is False


class TestRunWithLadder:
    def oracle(self, rng):
        mesh = DeviceMesh.ring(RING)
        arguments = case_arguments(rng, RING)
        reference_module = build_case(mesh)
        reference = run_spmd(reference_module, arguments, RING)
        return mesh, arguments, reference[reference_module.root.name]

    def run_ladder(self, mesh, arguments, plan=None, tracer=None):
        return run_with_ladder(
            lambda: build_case(mesh),
            mesh,
            arguments,
            base_config=OverlapConfig(use_cost_model=False),
            injector=FaultInjector(plan) if plan is not None else None,
            policy=RetryPolicy(max_attempts=2),
            tracer=tracer,
        )

    def test_fault_free_run_stays_full(self, rng):
        mesh, arguments, expected = self.oracle(rng)
        result = self.run_ladder(mesh, arguments)
        assert result.state is LadderState.FULL
        assert result.transitions == ()
        assert not result.adapted and not result.used_fallback
        for got, want in zip(result.root, expected):
            np.testing.assert_array_equal(got, want)

    def test_directional_outage_recovers_unidirectional(self, rng):
        mesh, arguments, expected = self.oracle(rng)
        plan = FaultPlan(
            seed=777,
            specs=(
                FaultSpec(
                    kind=FaultKind.LINK_DOWN,
                    transfer_index=0,
                    direction="minus",
                ),
            ),
        )
        result = self.run_ladder(mesh, arguments, plan)
        # FULL and REBALANCED both still use the minus links; only the
        # unidirectional rung routes every transfer onto the plus ring.
        assert result.state is LadderState.UNIDIRECTIONAL
        assert len(result.transitions) == 2
        assert result.adapted and not result.used_fallback
        assert all(t.seed == 777 for t in result.transitions)
        final = result.transitions[-1]
        assert final.to_state is LadderState.UNIDIRECTIONAL
        assert final.edit.changes.get("preferred_direction") == "plus"
        for got, want in zip(result.root, expected):
            np.testing.assert_array_equal(got, want)

    def test_fabric_outage_falls_to_sync_fallback(self, rng):
        mesh, arguments, expected = self.oracle(rng)
        plan = FaultPlan(
            seed=778,
            specs=(
                FaultSpec(kind=FaultKind.LINK_DOWN, transfer_index=0),
            ),
        )
        tracer = Tracer()
        result = self.run_ladder(mesh, arguments, plan, tracer=tracer)
        assert result.state is LadderState.SYNC_FALLBACK
        assert result.used_fallback and not result.adapted
        assert len(result.transitions) == 3
        for got, want in zip(result.root, expected):
            np.testing.assert_array_equal(got, want)
        # Every descent is mirrored as a seeded ADAPT trace event.
        adapt_events = [e for e in tracer.events if e.kind == ADAPT]
        assert len(adapt_events) == 3
        assert all("seed=778" in e.name for e in adapt_events)
        assert tracer.counters["fallbacks"] == 1
        assert tracer.counters["ladder.rebalanced"] == 1
        assert tracer.counters["ladder.unidirectional"] == 1
        assert tracer.counters["ladder.sync_fallback"] == 1

    def test_non_link_fault_propagates_seeded(self, rng):
        mesh, arguments, _ = self.oracle(rng)
        plan = FaultPlan(
            seed=779,
            specs=(
                FaultSpec(
                    kind=FaultKind.DEVICE_FAIL, device=1, step=3
                ),
            ),
        )
        with pytest.raises(FaultError, match="seed=779"):
            self.run_ladder(mesh, arguments, plan)


class TestChaosLadder:
    def test_fault_free_run_recovers_on_full(self):
        result = run_one_ladder(11, intensity=0.0)
        assert result.outcome == RECOVERED
        assert result.ladder_state == "full"
        assert result.transitions == 0

    def test_replay_is_deterministic(self):
        first = run_one_ladder(20230325, intensity=0.7)
        second = run_one_ladder(20230325, intensity=0.7)
        assert first.signature == second.signature

    def test_batch_contract_and_adaptation(self):
        report = run_chaos(20230325, runs=30, intensity=0.6, ladder=True)
        violations = [r for r in report.runs if r.is_violation]
        assert violations == []
        adapted = [r for r in report.runs if r.outcome == ADAPTED]
        assert adapted, "no run recovered on an intermediate rung"
        for result in adapted:
            assert result.transitions >= 1
            assert result.ladder_state in ("rebalanced", "unidirectional")
        for result in report.runs:
            if result.outcome == FALLBACK:
                assert result.ladder_state == "sync_fallback"
            if result.outcome == RECOVERED:
                assert result.transitions == 0


class TestScenarios:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_draws_are_degraded_and_deterministic(self, scenario):
        conditions = scenario.conditions(
            np.random.default_rng([1, 2]), RING
        )
        again = scenario.conditions(np.random.default_rng([1, 2]), RING)
        assert conditions == again
        assert not conditions.is_healthy

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_degraded_conditions_round_trip(self, scenario):
        # Satellite: every scenario draw survives ChannelConditions'
        # validation (scales strictly positive) and yields multipliers
        # >= 1 on every channel of a ring mesh.
        conditions = scenario.conditions(
            np.random.default_rng([3, 4]), RING
        )
        for direction in ("minus", "plus"):
            for source in range(RING):
                assert (
                    conditions.transfer_multiplier(
                        ("x", direction), source=source
                    )
                    >= 1.0
                )
        for device in range(RING):
            assert conditions.compute_multiplier(device) >= 1.0
        assert conditions.collective_multiplier() >= 1.0


class TestTailGate:
    @pytest.fixture(scope="class")
    def report(self):
        return run_tail(seed=20230325, runs=8, ring=8)

    def test_p99_gate_holds_on_every_scenario(self, report):
        assert report.ok, format_tail_report(report)
        for scenario in report.scenarios:
            assert scenario.gate_ok, scenario.scenario

    def test_rebalanced_strictly_wins_on_most_scenarios(self, report):
        assert report.wins >= 3, format_tail_report(report)

    def test_ladder_picks_the_right_rung_per_scenario(self, report):
        by_name = {s.scenario: s for s in report.scenarios}
        # Asymmetric link -> route around it; compute stragglers -> the
        # paper schedule is already optimal, no edit.
        assert by_name["asymmetric-ring"].ladder_states == {
            "unidirectional": 8
        }
        assert by_name["mixed-generation"].ladder_states == {"full": 8}
        assert by_name["flaky-straggler"].ladder_states == {"full": 8}
        assert by_name["oversubscribed-host"].ladder_states == {
            "rebalanced": 8
        }

    def test_report_is_seed_deterministic(self, report):
        again = run_tail(seed=20230325, runs=8, ring=8)
        assert again.to_json() == report.to_json()

    def test_bytes_on_wire_accounted(self, report):
        for scenario in report.scenarios:
            assert scenario.bytes_on_wire["decomposed"] > 0
            assert scenario.bytes_on_wire["rebalanced"] > 0

    def test_write_and_compare_round_trip(self, report, tmp_path):
        path = tmp_path / "CHAOS_p99.json"
        write_tail_report(report, str(path))
        baseline = json.loads(path.read_text())
        assert baseline["ok"] is True
        assert compare_tail_reports(report, baseline) == []

    def test_compare_flags_regression(self, report, tmp_path):
        path = tmp_path / "CHAOS_p99.json"
        write_tail_report(report, str(path))
        baseline = json.loads(path.read_text())
        for entry in baseline["scenarios"]:
            entry["rebalanced"]["p99"] *= 0.1
        problems = compare_tail_reports(
            report, baseline, max_regression=0.25
        )
        assert len(problems) == len(report.scenarios)
        assert all("regressed past baseline" in p for p in problems)

    def test_compare_flags_missing_scenario(self, report):
        baseline = {
            "scenarios": [
                {
                    "scenario": "quantum-decoherence",
                    "rebalanced": {"p99": 1.0},
                }
            ]
        }
        (problem,) = compare_tail_reports(report, baseline)
        assert "missing from current report" in problem

    def test_format_names_gate_and_rungs(self, report):
        text = format_tail_report(report)
        assert "gate: decomposed+rebalanced <= undecomposed at p99" in text
        assert "PASS" in text
        assert "unidirectional" in text
