"""Tests for execution traces and the timeline renderer."""

import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16
from repro.hlo.shapes import Shape
from repro.perfsim.simulator import simulate_with_trace
from repro.perfsim.trace import (
    COMPUTE,
    STALL,
    TRANSFER,
    Trace,
    TraceEvent,
    format_timeline,
)
from repro.sharding.mesh import DeviceMesh

MESH = DeviceMesh.ring(4)


def overlap_module():
    builder = GraphBuilder("m")
    x = builder.parameter(Shape((2048, 4096), BF16), name="x")
    w = builder.parameter(Shape((4096, 2048), BF16), name="w")
    gathered = builder.all_gather(w, 1, MESH.rings("x"))
    builder.einsum("bf,fh->bh", x, gathered)
    return builder.module


class TestTrace:
    def test_events_cover_report_times(self):
        module = overlap_module()
        compile_module(module, MESH, OverlapConfig(use_cost_model=False))
        report, trace = simulate_with_trace(module, MESH)
        compute_total = sum(e.duration for e in trace.of_kind(COMPUTE))
        assert compute_total == pytest.approx(report.compute_time)
        transfer_total = sum(e.duration for e in trace.of_kind(TRANSFER))
        assert transfer_total == pytest.approx(report.transfer_time_total)
        stall_total = sum(e.duration for e in trace.of_kind(STALL))
        assert stall_total == pytest.approx(report.permute_wait_time)
        assert trace.total_time == pytest.approx(report.total_time)

    def test_no_resource_overlaps(self):
        module = overlap_module()
        compile_module(module, MESH, OverlapConfig(use_cost_model=False))
        _, trace = simulate_with_trace(module, MESH)
        trace.validate()

    def test_transfers_on_link_resources(self):
        module = overlap_module()
        compile_module(module, MESH, OverlapConfig(use_cost_model=False))
        _, trace = simulate_with_trace(module, MESH)
        for event in trace.of_kind(TRANSFER):
            assert event.resource.startswith("link:x:")

    def test_transfers_overlap_compute_in_time(self):
        """The point of it all: transfer intervals intersect compute
        intervals on the wall clock (different resources)."""
        module = overlap_module()
        compile_module(module, MESH, OverlapConfig(use_cost_model=False))
        _, trace = simulate_with_trace(module, MESH)
        computes = trace.of_kind(COMPUTE)
        overlapped = 0.0
        for transfer in trace.of_kind(TRANSFER):
            for compute in computes:
                lo = max(transfer.start, compute.start)
                hi = min(transfer.end, compute.end)
                overlapped += max(0.0, hi - lo)
        assert overlapped > 0.0

    def test_zero_duration_events_dropped(self):
        trace = Trace()
        trace.add("x", COMPUTE, "compute", 1.0, 1.0)
        assert trace.events == []

    def test_validate_rejects_overlap(self):
        trace = Trace()
        trace.add("a", COMPUTE, "compute", 0.0, 2.0)
        trace.add("b", COMPUTE, "compute", 1.0, 3.0)
        with pytest.raises(ValueError, match="overlap"):
            trace.validate()

    def test_busy_time(self):
        trace = Trace()
        trace.add("a", COMPUTE, "compute", 0.0, 1.0)
        trace.add("b", COMPUTE, "compute", 2.0, 3.0)
        assert trace.busy_time("compute") == pytest.approx(2.0)


class TestTimeline:
    def test_renders_one_lane_per_resource(self):
        module = overlap_module()
        compile_module(module, MESH, OverlapConfig(use_cost_model=False))
        _, trace = simulate_with_trace(module, MESH)
        text = format_timeline(trace, width=40)
        lines = text.splitlines()
        assert len(lines) == len(trace.resources()) + 1
        assert any("#" in line for line in lines)
        assert any("=" in line for line in lines)

    def test_empty_trace(self):
        assert format_timeline(Trace()) == "(empty trace)"

    def test_resource_filter(self):
        trace = Trace()
        trace.add("a", COMPUTE, "compute", 0.0, 1.0)
        trace.add("t", TRANSFER, "link:x:plus", 0.0, 1.0)
        text = format_timeline(trace, resources=["compute"])
        assert "link" not in text
