"""Tests for candidate discovery (AllGather-Einsum / Einsum-ReduceScatter)."""

import pytest

from repro.core.patterns import (
    AG_EINSUM,
    CASE_BATCH,
    CASE_CONTRACTING,
    CASE_FREE,
    EINSUM_RS,
    find_candidates,
    reduce_scatter_blocks_einsum,
)
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh

MESH = DeviceMesh.ring(4)
GROUPS = MESH.rings("x")


def _gather_einsum(gather_dim, equation, lhs_dims, rhs_dims, gather_rhs=False):
    builder = GraphBuilder("m")
    lhs = builder.parameter(Shape(lhs_dims, F32), name="lhs")
    rhs = builder.parameter(Shape(rhs_dims, F32), name="rhs")
    if gather_rhs:
        rhs = builder.all_gather(rhs, gather_dim, GROUPS)
    else:
        lhs = builder.all_gather(lhs, gather_dim, GROUPS)
    builder.einsum(equation, lhs, rhs)
    return builder.module


class TestAllGatherEinsum:
    def test_case1_free_dim(self):
        module = _gather_einsum(0, "bf,fh->bh", (2, 6), (6, 8))
        (candidate,) = find_candidates(module)
        assert candidate.kind == AG_EINSUM
        assert candidate.dim_case == CASE_FREE
        assert candidate.operand_index == 0
        assert candidate.ring_size == 4
        assert candidate.label == "b"

    def test_case2_contracting_dim(self):
        module = _gather_einsum(1, "bf,fh->bh", (8, 2), (8, 8))
        (candidate,) = find_candidates(module)
        assert candidate.dim_case == CASE_CONTRACTING
        assert candidate.label == "f"

    def test_case3_batch_dim(self):
        module = _gather_einsum(0, "gbf,gfh->gbh", (1, 2, 3), (4, 3, 5))
        (candidate,) = find_candidates(module)
        assert candidate.dim_case == CASE_BATCH
        assert candidate.label == "g"

    def test_rhs_operand(self):
        module = _gather_einsum(
            1, "bf,fh->bh", (4, 6), (6, 2), gather_rhs=True
        )
        (candidate,) = find_candidates(module)
        assert candidate.operand_index == 1
        assert candidate.dim_case == CASE_FREE

    def test_multi_user_gather_excluded(self):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((2, 6), F32))
        rhs = builder.parameter(Shape((6, 8), F32))
        gathered = builder.all_gather(lhs, 0, GROUPS)
        builder.einsum("bf,fh->bh", gathered, rhs)
        builder.negate(gathered)  # second user
        assert find_candidates(builder.module) == []

    def test_gather_feeding_non_einsum_excluded(self):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((2, 6), F32))
        gathered = builder.all_gather(lhs, 0, GROUPS)
        builder.negate(gathered)
        assert find_candidates(builder.module) == []

    def test_gather_feeding_both_operands_excluded(self):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((2, 8), F32))
        gathered = builder.all_gather(lhs, 0, GROUPS)
        builder.einsum("bf,fh->bh", gathered, gathered)
        assert find_candidates(builder.module) == []


class TestEinsumReduceScatter:
    def _einsum_rs(self, scatter_dim):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((8, 6), F32))
        rhs = builder.parameter(Shape((6, 8), F32))
        out = builder.einsum("bf,fh->bh", lhs, rhs)
        builder.reduce_scatter(out, scatter_dim, GROUPS)
        return builder.module

    def test_rhs_free_scatter(self):
        (candidate,) = find_candidates(self._einsum_rs(1))
        assert candidate.kind == EINSUM_RS
        assert candidate.operand_index == 1
        assert candidate.label == "h"

    def test_lhs_free_scatter(self):
        (candidate,) = find_candidates(self._einsum_rs(0))
        assert candidate.operand_index == 0
        assert candidate.label == "b"

    def test_batch_dim_scatter_excluded(self):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((4, 2, 3), F32))
        rhs = builder.parameter(Shape((4, 3, 5), F32))
        out = builder.einsum("gbf,gfh->gbh", lhs, rhs)
        builder.reduce_scatter(out, 0, GROUPS)
        assert find_candidates(builder.module) == []

    def test_scatter_of_non_einsum_excluded(self):
        builder = GraphBuilder("m")
        value = builder.parameter(Shape((8, 4), F32))
        doubled = builder.add(value, value)
        builder.reduce_scatter(doubled, 0, GROUPS)
        assert find_candidates(builder.module) == []

    def test_einsum_with_other_users_flagged(self):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((8, 6), F32))
        rhs = builder.parameter(Shape((6, 8), F32))
        out = builder.einsum("bf,fh->bh", lhs, rhs)
        builder.reduce_scatter(out, 1, GROUPS)
        builder.negate(out)
        (candidate,) = find_candidates(builder.module)
        assert reduce_scatter_blocks_einsum(builder.module, candidate)


class TestBothCandidates:
    def test_einsum_with_gather_and_scatter(self):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((8, 2), F32))
        rhs = builder.parameter(Shape((8, 8), F32))
        gathered = builder.all_gather(lhs, 1, GROUPS)
        out = builder.einsum("bf,fh->bh", gathered, rhs)
        builder.reduce_scatter(out, 1, GROUPS)
        candidates = find_candidates(builder.module)
        assert {c.kind for c in candidates} == {AG_EINSUM, EINSUM_RS}
        assert candidates[0].einsum is candidates[1].einsum
