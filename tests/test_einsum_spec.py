"""Unit and property tests for einsum equation parsing."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hlo.dtypes import F32
from repro.hlo.einsum_spec import LHS, RHS, EinsumSpec
from repro.hlo.shapes import Shape


class TestParsing:
    def test_basic_matmul(self):
        spec = EinsumSpec.parse("bf,fh->bh")
        assert spec.lhs_labels == "bf"
        assert spec.rhs_labels == "fh"
        assert spec.out_labels == "bh"

    def test_whitespace_tolerated(self):
        assert EinsumSpec.parse(" bf , fh -> bh ").equation == "bf,fh->bh"

    def test_implicit_equation_rejected(self):
        with pytest.raises(ValueError, match="explicit"):
            EinsumSpec.parse("bf,fh")

    def test_single_operand_rejected(self):
        with pytest.raises(ValueError, match="two operands"):
            EinsumSpec.parse("bf->b")

    def test_three_operands_rejected(self):
        with pytest.raises(ValueError, match="two operands"):
            EinsumSpec.parse("a,b,c->abc")

    def test_repeated_label_rejected(self):
        with pytest.raises(ValueError, match="repeated"):
            EinsumSpec.parse("bb,bh->bh")

    def test_unknown_output_label_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            EinsumSpec.parse("bf,fh->bz")


class TestClassification:
    def test_matmul_labels(self):
        spec = EinsumSpec.parse("bf,fh->bh")
        assert spec.batch_labels == ""
        assert spec.contracting_labels == "f"
        assert spec.lhs_free_labels == "b"
        assert spec.rhs_free_labels == "h"

    def test_batched_matmul_labels(self):
        spec = EinsumSpec.parse("gbf,gfh->gbh")
        assert spec.batch_labels == "g"
        assert spec.contracting_labels == "f"

    def test_attention_scores_labels(self):
        spec = EinsumSpec.parse("nshe,nthe->nhst")
        assert set(spec.batch_labels) == {"n", "h"}
        assert spec.contracting_labels == "e"
        assert spec.lhs_free_labels == "s"
        assert spec.rhs_free_labels == "t"

    def test_classify_per_axis(self):
        spec = EinsumSpec.parse("gbf,gfh->gbh")
        assert spec.classify(LHS, 0) == "batch"
        assert spec.classify(LHS, 1) == "free"
        assert spec.classify(LHS, 2) == "contracting"
        assert spec.classify(RHS, 2) == "free"

    def test_classify_bad_operand_raises(self):
        with pytest.raises(ValueError, match="operand"):
            EinsumSpec.parse("bf,fh->bh").classify(2, 0)

    def test_axis_of(self):
        spec = EinsumSpec.parse("bf,fh->bh")
        assert spec.axis_of(LHS, "f") == 1
        assert spec.axis_of(RHS, "f") == 0
        assert spec.out_axis_of("h") == 1


class TestShapesAndFlops:
    def test_output_shape(self):
        spec = EinsumSpec.parse("bf,fh->bh")
        out = spec.output_shape(Shape((4, 8), F32), Shape((8, 16), F32))
        assert out.dims == (4, 16)
        assert out.dtype is F32

    def test_inconsistent_sizes_raise(self):
        spec = EinsumSpec.parse("bf,fh->bh")
        with pytest.raises(ValueError, match="inconsistent"):
            spec.output_shape(Shape((4, 8), F32), Shape((9, 16), F32))

    def test_rank_mismatch_raises(self):
        spec = EinsumSpec.parse("bf,fh->bh")
        with pytest.raises(ValueError, match="rank"):
            spec.output_shape(Shape((4, 8, 2), F32), Shape((8, 16), F32))

    def test_flop_count_matmul(self):
        spec = EinsumSpec.parse("bf,fh->bh")
        flops = spec.flop_count(Shape((4, 8), F32), Shape((8, 16), F32))
        assert flops == 2 * 4 * 8 * 16

    def test_matmul_dims_collapse(self):
        spec = EinsumSpec.parse("gbf,gfh->gbh")
        m, k, n = spec.matmul_dims(Shape((3, 4, 8), F32), Shape((3, 8, 16), F32))
        assert (m, k, n) == (3 * 4, 8, 16)

    def test_matmul_dims_no_contraction(self):
        spec = EinsumSpec.parse("b,h->bh")
        m, k, n = spec.matmul_dims(Shape((4,), F32), Shape((16,), F32))
        assert (m, k, n) == (4, 1, 16)

    def test_parse_is_cached(self):
        assert EinsumSpec.parse("bf,fh->bh") is EinsumSpec.parse("bf,fh->bh")


@st.composite
def random_equation_and_shapes(draw):
    """Random well-formed two-operand einsums with consistent shapes."""
    alphabet = "abcdefg"
    num_labels = draw(st.integers(min_value=2, max_value=5))
    labels = list(alphabet[:num_labels])
    sizes = {
        label: draw(st.integers(min_value=1, max_value=5)) for label in labels
    }
    lhs = draw(
        st.lists(st.sampled_from(labels), min_size=1, max_size=3, unique=True)
    )
    rhs = draw(
        st.lists(st.sampled_from(labels), min_size=1, max_size=3, unique=True)
    )
    out_pool = sorted(set(lhs) | set(rhs))
    out = draw(
        st.lists(st.sampled_from(out_pool), min_size=0, max_size=len(out_pool),
                 unique=True)
    )
    equation = f"{''.join(lhs)},{''.join(rhs)}->{''.join(out)}"
    lhs_shape = Shape(tuple(sizes[l] for l in lhs), F32)
    rhs_shape = Shape(tuple(sizes[l] for l in rhs), F32)
    return equation, lhs_shape, rhs_shape, sizes


class TestProperties:
    @given(random_equation_and_shapes())
    def test_flops_equal_twice_label_product(self, case):
        equation, lhs, rhs, sizes = case
        spec = EinsumSpec.parse(equation)
        assert spec.flop_count(lhs, rhs) == 2 * math.prod(sizes[l] for l in {
            *spec.lhs_labels, *spec.rhs_labels
        })

    @given(random_equation_and_shapes())
    def test_labels_partition(self, case):
        """Every operand label is exactly one of batch/contracting/free."""
        equation, lhs, rhs, _ = case
        spec = EinsumSpec.parse(equation)
        for labels in (spec.lhs_labels, spec.rhs_labels):
            for label in labels:
                kinds = [
                    label in spec.batch_labels,
                    label in spec.contracting_labels,
                    label in spec.lhs_free_labels + spec.rhs_free_labels,
                ]
                assert sum(kinds) == 1

    @given(random_equation_and_shapes())
    def test_matmul_dims_product_matches_flops(self, case):
        equation, lhs, rhs, _ = case
        spec = EinsumSpec.parse(equation)
        m, k, n = spec.matmul_dims(lhs, rhs)
        assert 2 * m * k * n == spec.flop_count(lhs, rhs)
