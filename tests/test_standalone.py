"""Tests for standalone-collective decomposition (the future-work pass)."""

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.core.standalone import decompose_standalone_collectives
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh


def multi_user_module(mesh, batch=24, width=24):
    """An AllGather with two users plus an unattached ReduceScatter —
    neither is a Looped CollectiveEinsum candidate."""
    n = mesh.num_devices
    builder = GraphBuilder("standalone")
    x = builder.parameter(Shape((batch // n, width), F32), name="x")
    gathered = builder.all_gather(x, 0, mesh.rings("x"))
    left = builder.negate(gathered)
    right = builder.add(gathered, gathered)
    combined = builder.add(left, right)
    doubled = builder.add(combined, combined)
    builder.reduce_scatter(doubled, 0, mesh.rings("x"))
    return builder.module


@pytest.mark.parametrize("ring", [2, 3, 4, 8])
@pytest.mark.parametrize("bidirectional", [False, True])
def test_numerical_equivalence(rng, ring, bidirectional):
    mesh = DeviceMesh.ring(ring)
    x = rng.normal(size=(24, 24))
    arguments = {"x": [s.copy() for s in np.split(x, ring, 0)]}

    reference_module = multi_user_module(mesh)
    reference = run_spmd(
        reference_module, arguments, ring
    )[reference_module.root.name]

    module = multi_user_module(mesh)
    config = OverlapConfig(
        use_cost_model=False, decompose_standalone=True,
        bidirectional=bidirectional,
    )
    result = compile_module(module, mesh, config)
    assert len(result.standalone_loops) == 2
    assert module.count(Opcode.ALL_GATHER) == 0
    assert module.count(Opcode.REDUCE_SCATTER) == 0

    got = run_spmd(module, arguments, ring)[module.root.name]
    worst = max(np.abs(a - b).max() for a, b in zip(reference, got))
    assert worst < 1e-9


def test_disabled_by_default():
    mesh = DeviceMesh.ring(4)
    module = multi_user_module(mesh)
    result = compile_module(module, mesh, OverlapConfig(use_cost_model=False))
    assert result.standalone_loops == []
    assert module.count(Opcode.ALL_GATHER) == 1


def test_permute_counts():
    mesh = DeviceMesh.ring(8)
    module = multi_user_module(mesh)
    config = OverlapConfig(bidirectional=False, min_ring_size=2)
    loops = decompose_standalone_collectives(module, mesh, config)
    gather_loop = next(
        l for l in loops if l.collective.opcode is Opcode.ALL_GATHER
    )
    scatter_loop = next(
        l for l in loops if l.collective.opcode is Opcode.REDUCE_SCATTER
    )
    assert len(gather_loop.permutes) == 7   # N-1 ring steps
    assert len(scatter_loop.permutes) == 8  # accumulator moves every step


def test_bidirectional_uses_both_directions():
    mesh = DeviceMesh.ring(8)
    module = multi_user_module(mesh)
    config = OverlapConfig(bidirectional=True, min_ring_size=2)
    loops = decompose_standalone_collectives(module, mesh, config)
    gather_loop = next(
        l for l in loops if l.collective.opcode is Opcode.ALL_GATHER
    )
    directions = {p.attrs.get("direction") for p in gather_loop.permutes}
    assert directions == {"plus", "minus"}


def test_small_rings_skipped():
    mesh = DeviceMesh.ring(2)
    module = multi_user_module(mesh)
    config = OverlapConfig(min_ring_size=4)
    loops = decompose_standalone_collectives(module, mesh, config)
    assert loops == []
    assert module.count(Opcode.ALL_GATHER) == 1


def test_future_overlap_experiment_runs():
    import dataclasses

    from repro.experiments import future_overlap
    from repro.models.configs import GPT_32B

    small = dataclasses.replace(
        GPT_32B, name="small", batch_size=64, seq_len=256, d_model=2048,
        d_ff=8192, num_layers=2, mesh_x=4, mesh_y=8, num_chips=32,
    )
    (row,) = future_overlap.run(models=[small], stack_depth=2)
    assert row.paper_speedup > 1.0
    assert row.future.sync_collective_time == pytest.approx(0.0)
    # The honest finding: the prototype is ungated and roughly neutral at
    # best — at this small scale the re-exposed transfers can even lose.
    assert 0.75 < row.extra_gain < 1.2
    assert "standalone" in future_overlap.format_report([row])