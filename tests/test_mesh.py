"""Unit and property tests for DeviceMesh."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sharding.mesh import DeviceMesh


class TestConstruction:
    def test_ring(self):
        mesh = DeviceMesh.ring(4)
        assert mesh.num_devices == 4
        assert mesh.axis_names == ("x",)

    def test_grid(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3})
        assert mesh.num_devices == 6
        assert mesh.axis_sizes == (2, 3)

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DeviceMesh(("x", "x"), (2, 2))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            DeviceMesh(("x",), (0,))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="align"):
            DeviceMesh(("x", "y"), (2,))


class TestCoordinates:
    def test_row_major_layout(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3})
        assert mesh.coordinates(0) == (0, 0)
        assert mesh.coordinates(1) == (0, 1)
        assert mesh.coordinates(3) == (1, 0)
        assert mesh.coordinates(5) == (1, 2)

    def test_device_id_roundtrip(self):
        mesh = DeviceMesh.grid({"a": 2, "b": 3, "c": 4})
        for device in range(mesh.num_devices):
            assert mesh.device_id(mesh.coordinates(device)) == device

    def test_out_of_range_rejected(self):
        mesh = DeviceMesh.ring(4)
        with pytest.raises(ValueError, match="out of range"):
            mesh.coordinates(4)
        with pytest.raises(ValueError, match="bounds"):
            mesh.device_id((4,))

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=3))
    def test_roundtrip_property(self, sizes):
        mesh = DeviceMesh(tuple(f"a{i}" for i in range(len(sizes))), tuple(sizes))
        for device in range(mesh.num_devices):
            assert mesh.device_id(mesh.coordinates(device)) == device


class TestRings:
    def test_1d_single_ring(self):
        assert DeviceMesh.ring(4).rings("x") == [(0, 1, 2, 3)]

    def test_2d_rings_along_y(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3})
        assert mesh.rings("y") == [(0, 1, 2), (3, 4, 5)]

    def test_2d_rings_along_x(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3})
        assert mesh.rings("x") == [(0, 3), (1, 4), (2, 5)]

    def test_rings_partition_devices(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3, "z": 2})
        for axis in mesh.axis_names:
            devices = [d for ring in mesh.rings(axis) for d in ring]
            assert sorted(devices) == list(range(mesh.num_devices))

    def test_ring_order_matches_axis_coordinate(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3})
        for ring in mesh.rings("y"):
            positions = [mesh.position_in_ring(d, "y") for d in ring]
            assert positions == [0, 1, 2]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown mesh axis"):
            DeviceMesh.ring(4).rings("z")


class TestStrides:
    def test_axis_stride_row_major(self):
        mesh = DeviceMesh.grid({"x": 2, "y": 3, "z": 4})
        assert mesh.axis_stride("z") == 1
        assert mesh.axis_stride("y") == 4
        assert mesh.axis_stride("x") == 12

    def test_stride_recovers_coordinate(self):
        mesh = DeviceMesh.grid({"x": 3, "y": 4})
        for device in range(mesh.num_devices):
            for axis in ("x", "y"):
                stride = mesh.axis_stride(axis)
                size = mesh.axis_size(axis)
                assert (device // stride) % size == mesh.position_in_ring(
                    device, axis
                )
