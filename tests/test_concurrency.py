"""Tests for the parallel concurrency verifier and runtime sanitizer.

The static half (:mod:`repro.analysis.concurrency`) must pass every
golden plan clean and catch every seeded parallel mutation by its
expected CC rule; the runtime half (``plan.run(..., sanitize=True)``)
must stay bit-identical on clean plans and raise a typed
:class:`ConcurrencyError` on the executable defects.
"""

import json
import time

import numpy as np
import pytest

from repro.analysis.concurrency import analyze_plan
from repro.analysis.mutations import (
    MUTATIONS_BY_NAME,
    PARALLEL_MUTATIONS,
    PARALLEL_MUTATIONS_BY_NAME,
    build_parallel_target,
)
from repro.cli import main
from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.printer import format_module
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd
from repro.runtime.parallel import lower_parallel
from repro.runtime.parallel.errors import (
    ConcurrencyError,
    MailboxOverflowError,
    MailboxTimeoutError,
)
from repro.runtime.parallel.mailbox import TransferMailbox
from repro.runtime.parallel.sync import RunContext
from repro.sharding.mesh import DeviceMesh

CASES = {case.name: case for case in GOLDEN_CASES}

VARIANTS = (
    ("baseline", lambda: OverlapConfig.baseline()),
    (
        "decomposed",
        lambda: OverlapConfig(
            use_cost_model=False, scheduler="in_order", unroll=False
        ),
    ),
    ("scheduled", lambda: OverlapConfig(use_cost_model=False, unroll=False)),
    ("unrolled", lambda: OverlapConfig(use_cost_model=False)),
)


@pytest.fixture
def fast_sanitizer(monkeypatch):
    """Seconds-long defect timeouts would dominate the suite; the
    mutated plans here deadlock within milliseconds."""
    import repro.runtime.parallel.sanitize as sanitize

    monkeypatch.setattr(sanitize, "SANITIZE_MAILBOX_TIMEOUT", 1.0)
    monkeypatch.setattr(sanitize, "SANITIZE_BARRIER_TIMEOUT", 2.0)


def _compiled_plan(case_name, ring, make_config, workers):
    case = CASES[case_name]
    mesh = DeviceMesh.ring(ring)
    module = case.build(mesh)
    compile_module(module, mesh, make_config())
    return module, lower_parallel(module, ring, workers=workers)


def _arguments(case_name, ring, seed=7):
    case = CASES[case_name]
    mesh = DeviceMesh.ring(ring)
    return case.make_arguments(mesh, np.random.default_rng(seed))


class TestCleanPlans:
    @pytest.mark.parametrize("case_name", sorted(CASES))
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_golden_sweep_statically_clean(self, case_name, workers):
        for variant, make_config in VARIANTS:
            _, plan = _compiled_plan(case_name, 4, make_config, workers)
            result = analyze_plan(plan)
            assert result.ok, (
                f"{case_name}/{variant}/w{workers}:\n"
                + result.format_text()
            )
            assert "concurrency" in result.passes_run

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sanitized_run_bit_identical(self, workers):
        for variant, make_config in VARIANTS:
            _, plan = _compiled_plan("mlp-chain", 4, make_config, workers)
            arguments = _arguments("mlp-chain", 4)
            plain = plan.run(arguments)
            sanitized = plan.run(arguments, sanitize=True)
            for name, shards in plain.items():
                for a, b in zip(shards, sanitized[name]):
                    np.testing.assert_array_equal(a, b)

    def test_rolled_while_clean_and_identical(self):
        mutation = PARALLEL_MUTATIONS_BY_NAME["parallel-while-barrier-skew"]
        plan, arguments = build_parallel_target(mutation)
        assert analyze_plan(plan).ok
        plain = plan.run(arguments)
        sanitized = plan.run(arguments, sanitize=True)
        for name, shards in plain.items():
            for a, b in zip(shards, sanitized[name]):
                np.testing.assert_array_equal(a, b)

    def test_sanitize_flag_resets_after_run(self):
        _, plan = _compiled_plan("mlp-chain", 4, VARIANTS[0][1], 2)
        plan.run(_arguments("mlp-chain", 4), sanitize=True)
        assert plan._sanitize is False


class TestNestedWhileParity:
    """An inner ``trip_count=1`` While reuses arena parity 0 on every
    odd outer iteration — the hazard the double-buffered arenas and the
    ``(tid, src, dst, parity)`` mailbox keys exist for."""

    def _build(self, mesh):
        shape = Shape((4, 5), F32)
        inner_b = GraphBuilder("inner_body")
        xi = inner_b.parameter(shape, name="xi")
        doubled = inner_b.add(xi, xi, name="doubled")
        inner_b.all_reduce(doubled, mesh.rings("x"), name="red")

        mid_b = GraphBuilder("outer_body")
        xm = mid_b.parameter(shape, name="xm")
        inner_loop = mid_b.while_loop(
            1, inner_b.module, ["red"], [xm], 0, name="inner_loop"
        )
        mid_b.add(inner_loop, xm, name="next")

        top_b = GraphBuilder("nested_while")
        x = top_b.parameter(shape, name="x")
        top_b.while_loop(
            3, mid_b.module, ["next"], [x], 0, name="outer_loop"
        )
        return top_b.module

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_odd_trip_nested_while(self, rng, workers):
        ring = 4
        mesh = DeviceMesh.ring(ring)
        module = self._build(mesh)
        arguments = {
            "x": [rng.normal(size=(4, 5)) for _ in range(ring)]
        }
        reference = run_spmd(module, arguments, ring)[module.root.name]
        plan = lower_parallel(module, ring, workers=workers)
        result = analyze_plan(plan)
        assert result.ok, result.format_text()
        for values in (
            plan.run(arguments),
            plan.run(arguments, sanitize=True),
        ):
            got = values[module.root.name]
            worst = max(
                np.abs(a - b).max() for a, b in zip(reference, got)
            )
            assert worst < 1e-9


class TestParallelMutations:
    def test_catalog_names_unique(self):
        assert len(PARALLEL_MUTATIONS_BY_NAME) == len(PARALLEL_MUTATIONS)

    def test_expected_rules_exist(self):
        from repro.analysis import RULES_BY_ID

        for mutation in PARALLEL_MUTATIONS:
            assert mutation.expected_rule in RULES_BY_ID
            assert RULES_BY_ID[mutation.expected_rule].owner == "concurrency"

    @pytest.mark.parametrize(
        "name", sorted(PARALLEL_MUTATIONS_BY_NAME)
    )
    def test_static_catch(self, name):
        mutation = PARALLEL_MUTATIONS_BY_NAME[name]
        plan, _ = build_parallel_target(mutation)
        assert analyze_plan(plan).ok, "target must start clean"
        assert mutation.apply(plan), "mutation found no site"
        result = analyze_plan(plan)
        rules = {d.rule for d in result.errors}
        assert mutation.expected_rule in rules, result.format_text()

    @pytest.mark.parametrize(
        "name",
        sorted(
            m.name for m in PARALLEL_MUTATIONS if m.runtime_caught
        ),
    )
    def test_runtime_catch(self, name, fast_sanitizer):
        mutation = PARALLEL_MUTATIONS_BY_NAME[name]
        plan, arguments = build_parallel_target(mutation)
        assert mutation.apply(plan)
        with pytest.raises(ConcurrencyError) as excinfo:
            plan.run(arguments, sanitize=True)
        assert excinfo.value.rule.startswith("CC")

    def test_runtime_coverage_floor(self):
        caught = sum(1 for m in PARALLEL_MUTATIONS if m.runtime_caught)
        assert caught >= 4

    def test_swapped_consume_error_carries_key(self, fast_sanitizer):
        mutation = PARALLEL_MUTATIONS_BY_NAME[
            "parallel-swapped-post-consume"
        ]
        plan, arguments = build_parallel_target(mutation)
        assert mutation.apply(plan)
        with pytest.raises(ConcurrencyError) as excinfo:
            plan.run(arguments, sanitize=True)
        error = excinfo.value
        assert error.rule == "CC004"
        assert len(error.key) == 4
        assert error.worker == 0


class TestMailboxTypedErrors:
    def test_consume_timeout_carries_key_and_worker(self):
        ctx = RunContext(workers=1)
        ctx.mailbox_timeout = 0.2
        mailbox = TransferMailbox(ctx)
        with pytest.raises(MailboxTimeoutError) as excinfo:
            mailbox.consume((3, 0, 1, 0))
        error = excinfo.value
        assert error.rule == "CC004"
        assert error.key == (3, 0, 1, 0)
        assert error.worker == 1
        assert "tid=3" in str(error)

    def test_double_post_overflows_typed(self):
        ctx = RunContext(workers=1)
        ctx.mailbox_timeout = 0.2
        mailbox = TransferMailbox(ctx)
        payload = np.ones((2, 2))
        mailbox.post((5, 1, 0, 1), payload)
        with pytest.raises(MailboxOverflowError) as excinfo:
            mailbox.post((5, 1, 0, 1), payload)
        error = excinfo.value
        assert error.rule == "CC002"
        assert error.key == (5, 1, 0, 1)
        assert error.worker == 1


class TestEngineIntegration:
    def test_create_engine_sanitize(self):
        from repro.runtime.engine import create_engine

        mesh = DeviceMesh.ring(4)
        module = CASES["mlp-chain"].build(mesh)
        arguments = _arguments("mlp-chain", 4)
        reference = run_spmd(module, arguments, 4)[module.root.name]
        engine = create_engine("parallel", workers=2, sanitize=True)
        got = engine.run(module, arguments, mesh=mesh)[module.root.name]
        worst = max(np.abs(a - b).max() for a, b in zip(reference, got))
        assert worst < 1e-9

    def test_sanitize_rejected_off_parallel(self):
        from repro.runtime.engine import create_engine

        with pytest.raises(ValueError, match="sanitize"):
            create_engine("compiled", sanitize=True)

    def test_single_worker_traced_run_emits_sanitize_span(self):
        from repro.obs.events import SANITIZE
        from repro.obs.tracer import Tracer

        _, plan = _compiled_plan("mlp-chain", 4, VARIANTS[3][1], 1)
        tracer = Tracer()
        plan.run(_arguments("mlp-chain", 4), 0, tracer, sanitize=True)
        assert any(e.kind == SANITIZE for e in tracer.events)

    def test_multi_worker_traced_run_counts_sanitizer_work(self):
        from repro.obs.tracer import Tracer

        _, plan = _compiled_plan("mlp-chain", 4, VARIANTS[0][1], 2)
        tracer = Tracer()
        plan.run(_arguments("mlp-chain", 4), 0, tracer, sanitize=True)
        assert tracer.counters.get("sanitize.barriers", 0) > 0

    def test_sanitize_overhead_is_bounded(self):
        """Lenient smoke bound — the real <10% sweep-level gate runs in
        the bench-parallel CI job via ``bench --parallel --sanitize``."""
        _, plan = _compiled_plan("mlp-chain", 4, VARIANTS[3][1], 2)
        arguments = _arguments("mlp-chain", 4)

        def best_of(sanitize):
            times = []
            for _ in range(5):
                start = time.perf_counter()
                plan.run(arguments, sanitize=sanitize)
                times.append(time.perf_counter() - start)
            return min(times)

        best_of(False)  # warm both paths before timing
        best_of(True)
        assert best_of(True) < 4.0 * best_of(False) + 1e-3


class TestVerifyCli:
    def test_verify_parallel_json_clean(self, capsys, tmp_path):
        out = tmp_path / "verify_parallel.json"
        code = main(
            [
                "verify", "--engine", "parallel", "--workers", "2",
                "--mutations", "--json", "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        labels = [t["target"] for t in payload["targets"]]
        assert any(l.startswith("mutation:") for l in labels)
        assert any("/w2" in l for l in labels)
        assert json.loads(out.read_text())["ok"]

    def test_verify_json_exit_code_on_c_rule_failure(
        self, capsys, tmp_path
    ):
        """A dump failing only collective-legality (C-prefix) rules
        must exit 1 and carry the failure in the JSON report."""
        ring = 4
        mesh = DeviceMesh.ring(ring)
        module = CASES["allgather-einsum"].build(mesh)
        compile_module(
            module, mesh, OverlapConfig(use_cost_model=False, unroll=False)
        )
        assert MUTATIONS_BY_NAME["self-send"].apply(module) is not None
        path = tmp_path / "self_send.hlo"
        path.write_text(format_module(module))
        code = main(
            ["verify", str(path), "--json", "--devices", str(ring)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert not payload["ok"]
        (target,) = payload["targets"]
        rules = {
            d["rule"]
            for stage in target["stages"]
            for d in stage["diagnostics"]
            if d["severity"] == "error"
        }
        assert rules
        assert all(r.startswith("C") and not r.startswith("CC") for r in rules)
