"""Unit tests for the OverlappableCollective protocol (as_overlappable)."""

import pytest

from repro.core.collective import (
    ALL_GATHER,
    ALL_REDUCE,
    P2P_SEND,
    PERMUTE,
    REDUCE_SCATTER,
    OverlappableCollective,
    P2PSend,
    RingAllGather,
    RingAllReduce,
    RingPermute,
    RingReduceScatter,
    as_overlappable,
    module_axes,
    pairs_close_ring,
    ring_axis_of_groups,
)
from repro.core.config import AxisOverride, OverlapConfig
from repro.hlo.builder import GraphBuilder
from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh


def mesh_2d(tp=4, dp=2):
    return DeviceMesh.grid({"tp": tp, "dp": dp})


def ring_pairs(group):
    return [(group[i], group[(i + 1) % len(group)]) for i in range(len(group))]


def chain_pairs(group):
    return [(group[i], group[i + 1]) for i in range(len(group) - 1)]


class TestClassification:
    def test_ring_permute_classifies_with_axis(self):
        mesh = mesh_2d()
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        pairs = [pair for ring in mesh.rings("tp") for pair in ring_pairs(ring)]
        cp = b.collective_permute(p, pairs)
        view = as_overlappable(cp, mesh)
        assert isinstance(view, RingPermute)
        assert view.kind == PERMUTE
        assert view.axis == "tp"
        assert view.ring_size == 4
        assert view.payload_bytes == p.shape.byte_size
        assert isinstance(view, OverlappableCollective)

    def test_stamped_axis_attr_wins(self):
        mesh = mesh_2d()
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        pairs = [pair for ring in mesh.rings("dp") for pair in ring_pairs(ring)]
        cp = b.collective_permute(p, pairs)
        cp.attrs["axis"] = "dp"
        view = as_overlappable(cp, mesh)
        assert view.axis == "dp"

    def test_open_chain_is_p2p_send(self):
        mesh = DeviceMesh.grid({"pp": 4})
        b = GraphBuilder("m")
        p = b.parameter(Shape((8,)), name="p")
        cp = b.collective_permute(p, chain_pairs([0, 1, 2, 3]))
        cp.attrs["comm_kind"] = "p2p"
        cp.attrs["axis"] = "pp"
        view = as_overlappable(cp, mesh)
        assert isinstance(view, P2PSend)
        assert view.kind == P2P_SEND
        assert view.axis == "pp"
        assert not view.decomposable

    def test_comm_kind_marker_forces_p2p_even_on_closed_pairs(self):
        mesh = DeviceMesh.ring(4, "x")
        b = GraphBuilder("m")
        p = b.parameter(Shape((8,)), name="p")
        cp = b.collective_permute(p, ring_pairs([0, 1, 2, 3]))
        cp.attrs["comm_kind"] = "p2p"
        view = as_overlappable(cp, mesh)
        assert isinstance(view, P2PSend)

    def test_all_gather_and_reduce_scatter_are_decomposable(self):
        mesh = mesh_2d()
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        ag = b.all_gather(p, 0, mesh.rings("dp"))
        rs = b.reduce_scatter(p, 0, mesh.rings("tp"))
        ag_view = as_overlappable(ag, mesh)
        rs_view = as_overlappable(rs, mesh)
        assert isinstance(ag_view, RingAllGather)
        assert ag_view.kind == ALL_GATHER
        assert ag_view.axis == "dp"
        assert ag_view.decomposable
        # an AllGather's wire payload is its *operand* (per-shard) bytes
        assert ag_view.payload_bytes == p.shape.byte_size
        assert isinstance(rs_view, RingReduceScatter)
        assert rs_view.kind == REDUCE_SCATTER
        assert rs_view.axis == "tp"
        assert rs_view.decomposable
        assert rs_view.payload_bytes == rs.shape.byte_size

    def test_all_reduce_classified_but_not_decomposable(self):
        mesh = mesh_2d()
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        ar = b.all_reduce(p, mesh.rings("tp"))
        view = as_overlappable(ar, mesh)
        assert isinstance(view, RingAllReduce)
        assert view.kind == ALL_REDUCE
        assert not view.decomposable

    def test_cross_axis_groups_return_none(self):
        mesh = mesh_2d()
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        # one group spanning the whole mesh matches no single axis
        ag = b.all_gather(p, 0, [list(range(mesh.num_devices))])
        assert as_overlappable(ag, mesh) is None

    def test_non_collective_returns_none(self):
        mesh = mesh_2d()
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        s = b.add(p, p)
        assert as_overlappable(s, mesh) is None

    def test_pairs_close_ring(self):
        assert pairs_close_ring(ring_pairs([0, 1, 2, 3]))
        assert not pairs_close_ring(chain_pairs([0, 1, 2, 3]))
        assert not pairs_close_ring([])

    def test_ring_axis_of_groups(self):
        mesh = mesh_2d()
        assert ring_axis_of_groups(mesh, mesh.rings("dp")) == "dp"


class TestAxisResolvedConfig:
    def test_axis_override_sets_granularity_and_direction(self):
        mesh = mesh_2d()
        config = OverlapConfig(
            axis_overrides={
                "tp": AxisOverride(
                    transfer_granularity=4, preferred_direction="plus"
                )
            }
        )
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        tp_pairs = [
            pair for ring in mesh.rings("tp") for pair in ring_pairs(ring)
        ]
        dp_pairs = [
            pair for ring in mesh.rings("dp") for pair in ring_pairs(ring)
        ]
        tp_view = as_overlappable(b.collective_permute(p, tp_pairs), mesh, config)
        dp_view = as_overlappable(b.collective_permute(p, dp_pairs), mesh, config)
        assert tp_view.granularity == 4
        assert tp_view.direction_preference == "plus"
        assert dp_view.granularity == 1
        assert dp_view.direction_preference is None

    def test_per_axis_in_flight_budgets(self):
        config = OverlapConfig(
            max_in_flight=8,
            axis_overrides={"dp": AxisOverride(max_in_flight=2)},
        )
        assert config.in_flight_budget("dp") == 2
        assert config.in_flight_budget("tp") == 8
        assert config.total_in_flight_budget(("tp", "dp")) == 10
        assert OverlapConfig(max_in_flight=8).total_in_flight_budget(
            ("tp", "dp")
        ) == 8

    def test_module_axes_lists_every_overlappable_axis(self):
        mesh = mesh_2d()
        b = GraphBuilder("m")
        p = b.parameter(Shape((8, 8)), name="p")
        tp_pairs = [
            pair for ring in mesh.rings("tp") for pair in ring_pairs(ring)
        ]
        cp = b.collective_permute(p, tp_pairs)
        ag = b.all_gather(cp, 0, mesh.rings("dp"))
        b.add(ag, ag)
        assert module_axes(b.module, mesh) == ["tp", "dp"]
