"""Equivalence and unit tests for the compiled vectorized engine.

The contract under test: for every module the repo can produce — golden
chaos modules, every decompose/unroll/bidirectional overlap variant, and
the rolled/partially-unrolled While forms — ``CompiledExecutor`` returns
**bit-identical** outputs to the per-device reference ``Executor``
(``np.array_equal``, not allclose), while its lowering pipeline actually
performs the advertised optimizations (folding, CSE, DCE, copy elision,
buffer donation) without ever mutating caller-owned memory.
"""

import numpy as np
import pytest

from helpers import ALL_OVERLAP_CONFIGS, split_shards

from repro.core.loop import emit_rolled, unroll_while
from repro.core.patterns import find_candidates
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.runtime.compile import CompiledExecutor, lower, run_compiled
from repro.runtime.executor import ExecutionError, Executor
from repro.sharding.mesh import DeviceMesh


def assert_bit_identical(reference, got):
    assert reference.keys() == got.keys()
    for name in reference:
        assert len(reference[name]) == len(got[name])
        for device, (want, have) in enumerate(
            zip(reference[name], got[name])
        ):
            assert np.array_equal(want, have), (
                f"output {name!r} differs on device {device}"
            )


def _run_both(module, arguments, num_devices, outputs=None):
    reference = Executor(num_devices).run(module, arguments, outputs)
    got = CompiledExecutor(num_devices).run(module, arguments, outputs)
    assert_bit_identical(reference, got)
    return reference


def _config_id(config):
    return (
        f"{config.scheduler}-u{int(config.unroll)}-b{int(config.bidirectional)}"
    )


# --- the property suite: every golden module, every variant ------------------


@pytest.mark.parametrize("ring", [2, 4])
@pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.name)
def test_golden_modules_bit_identical(case, ring):
    mesh = DeviceMesh.ring(ring)
    rng = np.random.default_rng([20230325, ring])
    arguments = case.make_arguments(mesh, rng)
    _run_both(case.build(mesh), arguments, ring)


@pytest.mark.parametrize("config", ALL_OVERLAP_CONFIGS, ids=_config_id)
@pytest.mark.parametrize("ring", [2, 4])
@pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.name)
def test_overlap_variants_bit_identical(case, config, ring):
    """Decomposed programs contain async permute start/done chains, so
    this sweep also pins the snapshot-at-issue semantics."""
    mesh = DeviceMesh.ring(ring)
    rng = np.random.default_rng([20230325, ring])
    arguments = case.make_arguments(mesh, rng)
    module = case.build(mesh)
    compile_module(module, mesh, config)
    _run_both(module, arguments, ring)


def _gather_einsum(mesh):
    builder = GraphBuilder("ag")
    n = mesh.num_devices
    a = builder.parameter(Shape((24 // n, 5), F32), name="a")
    w = builder.parameter(Shape((5, 7), F32), name="w")
    gathered = builder.all_gather(a, 0, mesh.rings("x"))
    builder.einsum("bf,fh->bh", gathered, w)
    return builder.module


@pytest.mark.parametrize("ring", [2, 3, 4])
@pytest.mark.parametrize("unroll_factor", [None, 0, 2])
def test_while_forms_bit_identical(rng, ring, unroll_factor):
    """Rolled loops run through a nested body plan; full and partial
    unrolling exercise iteration-dependent DynamicSlice offsets."""
    if unroll_factor == 2 and ring % 2:
        pytest.skip("degree-2 unrolling needs an even trip count")
    mesh = DeviceMesh.ring(ring)
    a, w = rng.normal(size=(24, 5)), rng.normal(size=(5, 7))
    arguments = {"a": split_shards(a, 0, ring), "w": [w.copy()] * ring}
    module = _gather_einsum(mesh)
    (candidate,) = find_candidates(module)
    loop = emit_rolled(module, candidate, mesh)
    if unroll_factor == 0:
        unroll_while(module, loop)
    elif unroll_factor == 2:
        unroll_while(module, loop, factor=2)
    _run_both(module, arguments, ring)


# --- async snapshot semantics ------------------------------------------------


def test_async_snapshot_at_issue_time(rng):
    """A write between start and done must not leak into the transfer."""
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
    mutated = builder.add(a, a)
    done = builder.collective_permute_done(start)
    builder.add(done, mutated)
    module = builder.module
    xs = [rng.normal(size=2), rng.normal(size=2)]
    out = _run_both(module, {"a": xs}, 2)[module.root.name]
    np.testing.assert_allclose(out[0], xs[1] + 2 * xs[0])
    np.testing.assert_allclose(out[1], xs[0] + 2 * xs[1])


def test_start_with_dead_done_skips_transfer(rng):
    """Selecting an output that ignores the done turns the start into a
    pure passthrough: no payload slot, no permute work."""
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
    mutated = builder.add(a, a)
    done = builder.collective_permute_done(start)
    builder.add(done, mutated)
    module = builder.module
    xs = [rng.normal(size=2), rng.normal(size=2)]
    wanted = [mutated.name, start.name]
    out = _run_both(module, {"a": xs}, 2, outputs=wanted)
    np.testing.assert_allclose(out[mutated.name][0], 2 * xs[0])
    np.testing.assert_allclose(out[start.name][0], xs[0])  # passthrough
    plan = lower(module, 2, outputs=wanted)
    assert plan.stats.dce_eliminated >= 1  # the done (and root add) died


# --- lowering-pipeline optimizations -----------------------------------------


def test_constant_folding():
    builder = GraphBuilder("m")
    z = builder.zeros(Shape((2, 2), F32))
    c = builder.constant(np.eye(2), F32)
    builder.add(z, c)
    module = builder.module
    plan = lower(module, 3)
    assert plan.stats.folded == 1            # the add itself
    assert plan.stats.steps == 0             # nothing left to execute
    out = _run_both(module, {}, 3)[module.root.name]
    np.testing.assert_array_equal(out[0], np.eye(2))


def test_cse_deduplicates_identical_einsums(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((3, 4), F32), name="a")
    b = builder.parameter(Shape((4, 5), F32), name="b")
    first = builder.einsum("ij,jk->ik", a, b)
    second = builder.einsum("ij,jk->ik", a, b)
    builder.add(first, second)
    module = builder.module
    plan = lower(module, 2)
    assert plan.stats.cse_eliminated == 1
    arguments = {
        "a": [rng.normal(size=(3, 4)) for _ in range(2)],
        "b": [rng.normal(size=(4, 5)) for _ in range(2)],
    }
    _run_both(module, arguments, 2)


def test_dce_drops_unreachable_ops(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    kept = builder.add(a, a)
    builder.negate(kept)  # root, but not requested below
    module = builder.module
    plan = lower(module, 2, outputs=[kept.name])
    assert plan.stats.dce_eliminated == 1
    xs = [rng.normal(size=2) for _ in range(2)]
    out = _run_both(module, {"a": xs}, 2, outputs=[kept.name])
    np.testing.assert_allclose(out[kept.name][0], 2 * xs[0])


def test_copy_elision_and_donation(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((4,), F32), name="a")
    b = builder.parameter(Shape((4,), F32), name="b")
    total = builder.add(a, b)      # may write into a's (dead) buffer
    copied = builder.copy(total)   # pure alias, no allocation
    builder.negate(copied)         # may negate the buffer in place
    module = builder.module
    plan = lower(module, 2)
    assert plan.stats.copies_elided == 1
    assert plan.stats.donations == 2
    xs = [rng.normal(size=4) for _ in range(2)]
    ys = [rng.normal(size=4) for _ in range(2)]
    out = _run_both(module, {"a": xs, "b": ys}, 2)[module.root.name]
    np.testing.assert_allclose(out[0], -(xs[0] + ys[0]))


def test_donation_never_mutates_arguments(rng):
    """Parameter buffers are donatable, but the donated buffer is the
    plan's freshly stacked copy — the caller's shards stay pristine."""
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((4,), F32), name="a")
    b = builder.parameter(Shape((4,), F32), name="b")
    s = builder.add(a, b)
    t = builder.add(s, b)
    builder.add(t, t)
    module = builder.module
    xs = [rng.normal(size=4) for _ in range(2)]
    ys = [rng.normal(size=4) for _ in range(2)]
    snapshots = [x.copy() for x in xs], [y.copy() for y in ys]
    _run_both(module, {"a": xs, "b": ys}, 2)
    for arrays, saved in zip((xs, ys), snapshots):
        for array, copy in zip(arrays, saved):
            np.testing.assert_array_equal(array, copy)


def test_repeated_runs_are_deterministic(rng):
    """Donation must not let one run's in-place writes poison the next
    (constants are read-only; every run stacks fresh parameters)."""
    mesh = DeviceMesh.ring(4)
    case = GOLDEN_CASES[2]
    arguments = case.make_arguments(mesh, rng)
    module = case.build(mesh)
    compile_module(
        module, mesh, ALL_OVERLAP_CONFIGS[0]
    )
    executor = CompiledExecutor(4)
    first = executor.run(module, arguments)
    second = executor.run(module, arguments)
    assert_bit_identical(first, second)


# --- plan caching ------------------------------------------------------------


def test_plan_cached_until_module_changes(rng):
    mesh = DeviceMesh.ring(2)
    module = _gather_einsum(mesh)
    executor = CompiledExecutor(2)
    plan = executor.plan_for(module)
    assert executor.plan_for(module) is plan
    compile_module(module, mesh, ALL_OVERLAP_CONFIGS[0])  # rewrites the list
    replan = executor.plan_for(module)
    assert replan is not plan
    a, w = rng.normal(size=(24, 5)), rng.normal(size=(5, 7))
    arguments = {"a": split_shards(a, 0, 2), "w": [w.copy()] * 2}
    _run_both(module, arguments, 2)


def test_describe_lists_steps():
    mesh = DeviceMesh.ring(2)
    plan = lower(_gather_einsum(mesh), 2)
    text = plan.describe()
    assert "2 devices" in text
    assert "all-gather" in text and "einsum" in text


# --- error paths -------------------------------------------------------------


def test_unknown_output_typed_error():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    builder.add(a, a)
    module = builder.module
    with pytest.raises(ExecutionError, match="unknown output 'nope'"):
        run_compiled(module, {"a": [np.zeros(2)] * 2}, 2, outputs=["nope"])


def test_argument_validation_matches_interpreter(rng):
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    builder.add(a, a)
    module = builder.module
    bad_arguments = [
        ({}, "missing argument"),
        ({"a": [np.zeros(2)]}, "expected 2 shards"),
        ({"a": [np.zeros(3), np.zeros(3)]}, "shard shape"),
    ]
    for arguments, pattern in bad_arguments:
        for run in (
            Executor(2).run, CompiledExecutor(2).run
        ):
            with pytest.raises(ExecutionError, match=pattern):
                run(module, arguments)


def test_invalid_device_count():
    with pytest.raises(ValueError, match="positive"):
        CompiledExecutor(0)
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((2,), F32), name="a")
    builder.add(a, a)
    with pytest.raises(ValueError, match="positive"):
        lower(builder.module, 0)
