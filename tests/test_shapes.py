"""Unit tests for repro.hlo.shapes and repro.hlo.dtypes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hlo.dtypes import BF16, F32, F64, S32, dtype_from_name
from repro.hlo.shapes import Shape


class TestDtypes:
    def test_byte_widths(self):
        assert BF16.byte_width == 2
        assert F32.byte_width == 4
        assert F64.byte_width == 8
        assert S32.byte_width == 4

    def test_lookup_by_name(self):
        assert dtype_from_name("bf16") is BF16
        assert dtype_from_name("f32") is F32

    def test_lookup_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            dtype_from_name("fp8")

    def test_repr_is_name(self):
        assert repr(BF16) == "bf16"


class TestShape:
    def test_num_elements(self):
        assert Shape((2, 3, 4)).num_elements == 24

    def test_scalar_shape(self):
        assert Shape(()).num_elements == 1
        assert Shape(()).rank == 0

    def test_byte_size_uses_dtype(self):
        assert Shape((10,), BF16).byte_size == 20
        assert Shape((10,), F32).byte_size == 40

    def test_with_dim(self):
        assert Shape((2, 3)).with_dim(1, 7).dims == (2, 7)

    def test_scaled_dim(self):
        assert Shape((2, 3)).scaled_dim(0, 4).dims == (8, 3)

    def test_divided_dim(self):
        assert Shape((8, 3)).divided_dim(0, 4).dims == (2, 3)

    def test_divided_dim_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            Shape((7, 3)).divided_dim(0, 2)

    def test_negative_dim_raises(self):
        with pytest.raises(ValueError, match="negative"):
            Shape((-1, 3))

    def test_with_dtype(self):
        assert Shape((2,), BF16).with_dtype(F32).dtype is F32

    def test_repr(self):
        assert repr(Shape((2, 3), F32)) == "f32[2,3]"

    def test_equality_and_hash(self):
        assert Shape((2, 3), F32) == Shape((2, 3), F32)
        assert hash(Shape((2, 3), F32)) == hash(Shape((2, 3), F32))
        assert Shape((2, 3), F32) != Shape((2, 3), BF16)

    @given(st.lists(st.integers(min_value=0, max_value=64), max_size=4))
    def test_scale_then_divide_roundtrips(self, dims):
        shape = Shape(tuple(d + 1 for d in dims))
        for axis in range(shape.rank):
            assert shape.scaled_dim(axis, 3).divided_dim(axis, 3) == shape
