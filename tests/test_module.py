"""Unit tests for HloModule invariants and transformations."""

import pytest

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule, VerificationError
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape


def small_module():
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((4,), F32), name="a")
    b = builder.parameter(Shape((4,), F32), name="b")
    add = builder.add(a, b)
    out = builder.negate(add)
    return builder.module, (a, b, add, out)


class TestConstruction:
    def test_root_tracks_last_added(self):
        module, (_, _, _, out) = small_module()
        assert module.root is out

    def test_duplicate_name_rejected(self):
        module, _ = small_module()
        with pytest.raises(VerificationError, match="duplicate"):
            module.add(Instruction("a", Opcode.PARAMETER, Shape((4,), F32)))

    def test_get_by_name(self):
        module, (a, *_rest) = small_module()
        assert module.get("a") is a

    def test_contains(self):
        module, (a, *_rest) = small_module()
        assert a in module
        other = Instruction("zz", Opcode.PARAMETER, Shape((4,), F32))
        assert other not in module

    def test_insert_before(self):
        module, (a, b, add, _) = small_module()
        extra = Instruction("extra", Opcode.COPY, Shape((4,), F32), [a])
        module.insert_before(add, extra)
        names = [i.name for i in module]
        assert names.index("extra") == names.index(add.name) - 1
        module.verify()

    def test_splice_before_preserves_order(self):
        module, (a, _, add, _) = small_module()
        extras = [
            Instruction(f"x{i}", Opcode.COPY, Shape((4,), F32), [a])
            for i in range(3)
        ]
        module.splice_before(add, extras)
        names = [i.name for i in module]
        position = names.index(add.name)
        assert names[position - 3:position] == ["x0", "x1", "x2"]
        module.verify()


class TestVerification:
    def test_valid_module_verifies(self):
        module, _ = small_module()
        module.verify()

    def test_use_before_def_rejected(self):
        module, (a, b, add, out) = small_module()
        module.reorder
        with pytest.raises(VerificationError, match="before its definition"):
            module.reorder([add, a, b, out])

    def test_reorder_requires_permutation(self):
        module, (a, b, add, out) = small_module()
        with pytest.raises(VerificationError, match="permutation"):
            module.reorder([a, b, add])

    def test_reorder_valid_permutation(self):
        module, (a, b, add, out) = small_module()
        module.reorder([b, a, add, out])
        assert [i.name for i in module][:2] == ["b", "a"]

    def test_done_requires_start_operand(self):
        module, (a, *_rest) = small_module()
        bogus = Instruction(
            "done", Opcode.COLLECTIVE_PERMUTE_DONE, Shape((4,), F32), [a]
        )
        module.add(bogus)
        with pytest.raises(VerificationError, match="start"):
            module.verify()


class TestMutation:
    def test_replace_all_uses(self):
        module, (a, b, add, out) = small_module()
        builder = GraphBuilder.into(module, add)
        copy = builder.copy(a)
        builder.flush()
        module.replace_all_uses(add, copy)
        assert out.operands == [copy]
        module.remove(add)
        module.verify()

    def test_replace_all_uses_updates_root(self):
        module, (a, _, _, out) = small_module()
        module.replace_all_uses(out, a)
        assert module.root is a

    def test_remove_with_users_rejected(self):
        module, (a, *_rest) = small_module()
        with pytest.raises(VerificationError, match="used by"):
            module.remove(a)

    def test_dead_code_eliminate(self):
        module, (a, b, add, out) = small_module()
        builder = GraphBuilder.into(module, out)
        dead = builder.copy(b)
        builder.flush()
        removed = module.dead_code_eliminate()
        assert removed == 1
        assert dead not in module

    def test_rebuild_swaps_contents(self):
        module, (a, b, add, out) = small_module()
        module.rebuild([a, b, add], root=add)
        assert module.root is add
        assert len(module) == 3

    def test_rebuild_duplicate_names_rejected(self):
        module, (a, b, *_rest) = small_module()
        clone = Instruction("a", Opcode.PARAMETER, Shape((4,), F32))
        with pytest.raises(VerificationError, match="duplicate"):
            module.rebuild([a, b, clone])


class TestQueries:
    def test_users_of(self):
        module, (a, b, add, out) = small_module()
        assert module.users_of(a) == [add]
        assert module.users_of(add) == [out]

    def test_user_map_counts_duplicates_once(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((4,), F32), name="a")
        add = builder.add(a, a)
        users = builder.module.user_map()
        assert users[a] == [add]

    def test_count(self):
        module, _ = small_module()
        assert module.count(Opcode.PARAMETER) == 2
        assert module.count(Opcode.ADD) == 1

    def test_parameters(self):
        module, (a, b, *_rest) = small_module()
        assert module.parameters() == [a, b]
