"""Tests for the bottom-up (Algorithm 2) and top-down schedulers."""

import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.core.schedule_bottom_up import schedule_bottom_up
from repro.core.schedule_top_down import schedule_top_down
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16, F32
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.perfsim.costs import CostModel
from repro.perfsim.hardware import TPU_V4
from repro.perfsim.sched_graph import (
    ScheduleGraph,
    max_in_flight,
    validate_unit_order,
)
from repro.perfsim.simulator import simulate
from repro.sharding.mesh import DeviceMesh

MESH = DeviceMesh.ring(4)
COST = CostModel(TPU_V4)

SCHEDULERS = [
    pytest.param(schedule_bottom_up, id="bottom_up"),
    pytest.param(schedule_top_down, id="top_down"),
]


def overlappable_module():
    """A start/done pair with an independent einsum it should cover."""
    builder = GraphBuilder("m")
    a = builder.parameter(Shape((1024, 1024), BF16), name="a")
    b = builder.parameter(Shape((1024, 1024), BF16), name="b")
    start = builder.collective_permute_start(
        a, [(0, 3), (1, 0), (2, 1), (3, 2)]
    )
    done = builder.collective_permute_done(start)
    independent = builder.einsum("bf,fh->bh", b, b)
    builder.einsum("bf,fh->bh", done, independent)
    return builder.module, start, done, independent


def chained_permutes(count):
    """A chain of permutes, each feeding the next, with einsums between."""
    builder = GraphBuilder("m")
    value = builder.parameter(Shape((512, 512), BF16), name="v")
    weight = builder.parameter(Shape((512, 512), BF16), name="w")
    pairs = [(0, 3), (1, 0), (2, 1), (3, 2)]
    for _ in range(count):
        start = builder.collective_permute_start(value, pairs)
        done = builder.collective_permute_done(start)
        value = builder.einsum("bf,fh->bh", done, weight)
    return builder.module


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestValidity:
    def test_order_is_topological(self, scheduler):
        module, *_ = overlappable_module()
        graph = ScheduleGraph.build(module)
        order = scheduler(graph, COST, MESH, max_in_flight=8)
        validate_unit_order(graph, order)

    def test_chain_order_is_topological(self, scheduler):
        module = chained_permutes(6)
        graph = ScheduleGraph.build(module)
        order = scheduler(graph, COST, MESH, max_in_flight=8)
        validate_unit_order(graph, order)
        graph.apply(order)
        module.verify()

    def test_moves_independent_compute_into_window(self, scheduler):
        module, start, done, independent = overlappable_module()
        graph = ScheduleGraph.build(module)
        order = scheduler(graph, COST, MESH, max_in_flight=8)
        names = [unit.head.name for unit in order]
        assert names.index(start.name) < names.index(independent.name)
        assert names.index(independent.name) < names.index(done.name)

    def test_deterministic(self, scheduler):
        module = chained_permutes(5)
        graph = ScheduleGraph.build(module)
        first = scheduler(graph, COST, MESH, max_in_flight=8)
        second = scheduler(graph, COST, MESH, max_in_flight=8)
        assert [u.index for u in first] == [u.index for u in second]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestBudget:
    def test_in_flight_budget_respected(self, scheduler):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((256, 256), BF16), name="a")
        pairs = [(0, 3), (1, 0), (2, 1), (3, 2)]
        dones = []
        for _ in range(6):
            start = builder.collective_permute_start(a, pairs)
            dones.append(builder.collective_permute_done(start))
        final = dones[0]
        for done in dones[1:]:
            final = builder.add(final, done)
        graph = ScheduleGraph.build(builder.module)
        order = scheduler(graph, COST, MESH, max_in_flight=2)
        validate_unit_order(graph, order)
        assert max_in_flight(graph.flatten(order)) <= 2


class TestSchedulingQuality:
    def test_both_beat_in_order_on_simulated_time(self):
        results = {}
        mesh = DeviceMesh.ring(4)
        for scheduler_name in ("bottom_up", "top_down", "in_order"):
            builder = GraphBuilder("m")
            n = 4
            x = builder.parameter(Shape((512, 2048), BF16), name="x")
            w = builder.parameter(Shape((2048, 2048 // n), BF16), name="w")
            gathered = builder.all_gather(w, 1, mesh.rings("x"))
            builder.einsum("bf,fh->bh", x, gathered)
            module = builder.module
            compile_module(
                module, mesh,
                OverlapConfig(use_cost_model=False, scheduler=scheduler_name),
            )
            results[scheduler_name] = simulate(module, mesh).total_time
        assert results["bottom_up"] <= results["in_order"]
        assert results["top_down"] <= results["in_order"]

    def test_bottom_up_wins_on_transformer_layer(self):
        """The Figure 16 ordering: bottom-up <= top-down on the workloads
        the paper evaluates (transformer layers with many interleavable
        decomposed loops)."""
        import dataclasses

        from repro.models.configs import GPT_32B
        from repro.models.transformer import decoder_layer_graph
        from repro.sharding.partitioner import partition

        cfg = dataclasses.replace(
            GPT_32B, batch_size=16, seq_len=64, d_model=512, d_ff=2048,
            num_layers=1, mesh_x=2, mesh_y=2, num_chips=4,
        )
        mesh = cfg.mesh()
        times = {}
        for scheduler_name in ("bottom_up", "top_down"):
            module = partition(decoder_layer_graph(cfg), mesh)
            compile_module(
                module, mesh,
                OverlapConfig(use_cost_model=False, scheduler=scheduler_name),
            )
            times[scheduler_name] = simulate(module, mesh).total_time
        assert times["bottom_up"] <= times["top_down"] * 1.001
