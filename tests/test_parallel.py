"""Tests for the multi-worker parallel execution backend.

The contract under test: ``create_engine("parallel")`` is **bit
identical** to the per-device reference interpreter on every module the
repo can produce — golden chaos modules, every overlap variant, rolled
and partially-unrolled While forms, async snapshot semantics — at every
worker count, and repeated runs are byte-identical no matter how the
worker threads interleave. On top of correctness, the traced runs must
show *measured* overlap: hidden-communication fraction strictly positive
for decomposed schedules and exactly zero for the undecomposed baseline.
"""

import numpy as np
import pytest

from helpers import ALL_OVERLAP_CONFIGS, split_shards

from repro.core.config import OverlapConfig
from repro.core.loop import emit_rolled, unroll_while
from repro.core.patterns import find_candidates
from repro.core.pipeline import compile_module
from repro.faults.chaos import GOLDEN_CASES
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.shapes import Shape
from repro.obs.events import TRANSFER
from repro.obs.overlap import overlap_summary
from repro.obs.tracer import Tracer
from repro.runtime.engine import ENGINE_KINDS, create_engine
from repro.runtime.parallel import ParallelEngine, lower_parallel
from repro.runtime.parallel.mailbox import TransferMailbox
from repro.runtime.parallel.sync import RunContext
from repro.runtime.plan_cache import PlanCache
from repro.sharding.mesh import DeviceMesh


def assert_bit_identical(reference, got):
    assert reference.keys() == got.keys()
    for name in reference:
        assert len(reference[name]) == len(got[name])
        for device, (want, have) in enumerate(
            zip(reference[name], got[name])
        ):
            assert np.array_equal(want, have), (
                f"output {name!r} differs on device {device}"
            )


def _run_vs_interpreter(module, arguments, mesh, workers):
    reference = create_engine("interpreted").run(
        module, arguments, mesh=mesh
    )
    got = create_engine("parallel", workers=workers).run(
        module, arguments, mesh=mesh
    )
    assert_bit_identical(reference, got)
    return reference


def _config_id(config):
    return (
        f"{config.scheduler}-u{int(config.unroll)}-b{int(config.bidirectional)}"
    )


# --- registry ----------------------------------------------------------------


class TestRegistry:
    def test_parallel_is_a_registered_kind(self):
        assert "parallel" in ENGINE_KINDS
        engine = create_engine("parallel")
        assert engine.kind == "parallel"
        assert isinstance(engine, ParallelEngine)

    def test_workers_option_applies_only_to_parallel(self):
        with pytest.raises(ValueError, match="workers"):
            create_engine("compiled", workers=2)
        with pytest.raises(ValueError, match="workers"):
            create_engine("interpreted", workers=2)

    def test_inapplicable_options_rejected_on_parallel(self):
        with pytest.raises(ValueError, match="injector"):
            create_engine("parallel", injector=object())

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            create_engine("parallel", workers=0)
        with pytest.raises(ValueError, match="workers"):
            create_engine("parallel", workers=-1)

    def test_effective_workers_clamped_to_device_count(self):
        engine = create_engine("parallel", workers=8)
        assert engine.effective_workers(4) == 4
        assert engine.effective_workers(16) == 8

    def test_plan_key_distinguishes_worker_counts(self, rng):
        case = GOLDEN_CASES[0]
        mesh = DeviceMesh.ring(4)
        arguments = case.make_arguments(mesh, rng)
        cache = PlanCache()
        for workers in (1, 2):
            create_engine("parallel", workers=workers, plan_cache=cache).run(
                case.build(mesh), arguments, mesh=mesh
            )
        # Different pool sizes lower to different plans: both must miss.
        assert cache.stats.misses == 2 and cache.stats.hits == 0


# --- the mailbox -------------------------------------------------------------


class TestMailbox:
    def test_post_consume_roundtrip(self):
        ctx = RunContext(2)
        mailbox = TransferMailbox(ctx)
        payload = np.arange(6.0).reshape(2, 3)
        mailbox.post((7, 0, 1, 0), payload)
        got, posted_at = mailbox.consume((7, 0, 1, 0))
        assert np.array_equal(got, payload)
        assert posted_at >= 0.0

    def test_parities_are_independent_cells(self):
        ctx = RunContext(2)
        mailbox = TransferMailbox(ctx)
        even, odd = np.zeros(2), np.ones(2)
        mailbox.post((3, 0, 1, 0), even)
        mailbox.post((3, 0, 1, 1), odd)  # must not block on the even cell
        got_odd, _ = mailbox.consume((3, 0, 1, 1))
        got_even, _ = mailbox.consume((3, 0, 1, 0))
        assert np.array_equal(got_even, even)
        assert np.array_equal(got_odd, odd)

    def test_cell_reusable_after_consume(self):
        ctx = RunContext(2)
        mailbox = TransferMailbox(ctx)
        for round_ in range(3):
            payload = np.full(2, float(round_))
            mailbox.post((1, 1, 0, 0), payload)
            got, _ = mailbox.consume((1, 1, 0, 0))
            assert np.array_equal(got, payload)


# --- bit-identity vs the interpreter -----------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    @pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.name)
    def test_golden_modules(self, case, workers, rng):
        mesh = DeviceMesh.ring(4)
        arguments = case.make_arguments(mesh, rng)
        _run_vs_interpreter(case.build(mesh), arguments, mesh, workers)

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("config", ALL_OVERLAP_CONFIGS, ids=_config_id)
    @pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.name)
    def test_overlap_variants(self, case, config, workers, rng):
        """Decomposed programs contain async permute start/done chains,
        so this sweep pins snapshot-at-issue under real concurrency."""
        mesh = DeviceMesh.ring(4)
        arguments = case.make_arguments(mesh, rng)
        module = case.build(mesh)
        compile_module(module, mesh, config)
        _run_vs_interpreter(module, arguments, mesh, workers)

    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("unroll_factor", [None, 0, 2])
    def test_while_forms(self, rng, unroll_factor, workers):
        """Rolled loops run through nested per-worker body plans with
        parity double-buffered arenas."""
        ring = 4
        mesh = DeviceMesh.ring(ring)
        a, w = rng.normal(size=(24, 5)), rng.normal(size=(5, 7))
        arguments = {
            "a": split_shards(a, 0, ring), "w": [w.copy()] * ring
        }
        builder = GraphBuilder("ag")
        p = builder.parameter(Shape((24 // ring, 5), F32), name="a")
        wp = builder.parameter(Shape((5, 7), F32), name="w")
        gathered = builder.all_gather(p, 0, mesh.rings("x"))
        builder.einsum("bf,fh->bh", gathered, wp)
        module = builder.module
        (candidate,) = find_candidates(module)
        loop = emit_rolled(module, candidate, mesh)
        if unroll_factor == 0:
            unroll_while(module, loop)
        elif unroll_factor == 2:
            unroll_while(module, loop, factor=2)
        _run_vs_interpreter(module, arguments, mesh, workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_async_snapshot_at_issue_time(self, rng, workers):
        """A write between start and done must not leak into the
        transfer — even when the writer and reader race on threads."""
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2,), F32), name="a")
        start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        mutated = builder.add(a, a)
        done = builder.collective_permute_done(start)
        builder.add(done, mutated)
        module = builder.module
        xs = [rng.normal(size=2), rng.normal(size=2)]
        mesh = DeviceMesh.ring(2)
        out = _run_vs_interpreter(module, {"a": xs}, mesh, workers)[
            module.root.name
        ]
        np.testing.assert_allclose(out[0], xs[1] + 2 * xs[0])
        np.testing.assert_allclose(out[1], xs[0] + 2 * xs[1])

    @pytest.mark.parametrize("workers", [1, 2])
    def test_start_with_dead_done_is_pure_passthrough(self, rng, workers):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2,), F32), name="a")
        start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        mutated = builder.add(a, a)
        done = builder.collective_permute_done(start)
        builder.add(done, mutated)
        module = builder.module
        xs = [rng.normal(size=2), rng.normal(size=2)]
        wanted = [mutated.name, start.name]
        reference = create_engine("interpreted").run(
            module, {"a": xs}, mesh=2, outputs=wanted
        )
        plan = lower_parallel(module, 2, outputs=wanted, workers=workers)
        got_stacked = plan.execute([np.stack(xs)])
        got = {
            name: list(stacked)
            for name, stacked in zip(plan.output_order, got_stacked)
        }
        assert_bit_identical(reference, got)
        np.testing.assert_allclose(got[start.name][0], xs[0])

    def test_donation_never_mutates_arguments(self, rng):
        case = GOLDEN_CASES[0]
        mesh = DeviceMesh.ring(4)
        arguments = case.make_arguments(mesh, rng)
        pristine = {
            name: [shard.copy() for shard in shards]
            for name, shards in arguments.items()
        }
        create_engine("parallel", workers=2).run(
            case.build(mesh), arguments, mesh=mesh
        )
        for name in pristine:
            for want, have in zip(pristine[name], arguments[name]):
                assert np.array_equal(want, have)


# --- determinism -------------------------------------------------------------


class TestDeterminism:
    def test_repeated_runs_byte_identical(self, rng):
        """Scheduling must not be observable: every output row is
        written exactly once by its owning worker from values that do
        not depend on thread interleaving."""
        mesh = DeviceMesh.ring(8)
        case = GOLDEN_CASES[-1]
        arguments = case.make_arguments(mesh, rng)
        module = case.build(mesh)
        compile_module(
            module, mesh,
            OverlapConfig(
                use_cost_model=False, scheduler="bottom_up",
                unroll=True, bidirectional=True,
            ),
        )
        engine = create_engine("parallel", workers=4)
        first = engine.run(module, arguments, mesh=mesh)
        baseline = {
            name: [shard.tobytes() for shard in shards]
            for name, shards in first.items()
        }
        for _ in range(5):
            again = engine.run(module, arguments, mesh=mesh)
            for name, shards in again.items():
                for want, have in zip(baseline[name], shards):
                    assert want == have.tobytes()


# --- measured overlap --------------------------------------------------------


class TestMeasuredOverlap:
    def _traced(self, config, workers, rng):
        mesh = DeviceMesh.ring(8)
        case = GOLDEN_CASES[-1]
        arguments = case.make_arguments(mesh, rng)
        module = case.build(mesh)
        if config is not None:
            compile_module(module, mesh, config)
        tracer = Tracer()
        create_engine("parallel", workers=workers).run(
            module, arguments, mesh=mesh, tracer=tracer
        )
        tracer.validate()  # raises if any lane self-overlaps
        return tracer

    def test_decomposed_hides_communication(self, rng):
        config = OverlapConfig(
            use_cost_model=False, scheduler="bottom_up",
            unroll=True, bidirectional=True,
        )
        tracer = self._traced(config, workers=2, rng=rng)
        summary = overlap_summary(tracer.events)
        assert summary.hidden_communication_fraction > 0.0

    def test_reference_hides_nothing(self, rng):
        tracer = self._traced(None, workers=2, rng=rng)
        summary = overlap_summary(tracer.events)
        assert summary.hidden_communication_fraction == 0.0

    def test_worker_lanes_and_transfer_links_present(self, rng):
        config = OverlapConfig(
            use_cost_model=False, scheduler="bottom_up",
            unroll=True, bidirectional=True,
        )
        tracer = self._traced(config, workers=2, rng=rng)
        resources = {event.resource for event in tracer.events}
        assert {"w0", "w1"} <= resources
        links = [
            event for event in tracer.events if event.kind == TRANSFER
        ]
        assert links and all(
            event.resource.startswith("link:") for event in links
        )
        assert all(event.bytes > 0 for event in links)

    def test_byte_counters_not_inflated_by_worker_count(self, rng):
        """Each instruction's bytes are counted once (by worker 0), not
        ``workers`` times, so comm-volume lenses agree with the
        single-threaded engines."""
        mesh = DeviceMesh.ring(8)
        case = GOLDEN_CASES[-1]
        arguments = case.make_arguments(mesh, rng)

        def counters(workers):
            module = case.build(mesh)
            compile_module(
                module, mesh, OverlapConfig(use_cost_model=False)
            )
            tracer = Tracer()
            create_engine("parallel", workers=workers).run(
                module, arguments, mesh=mesh, tracer=tracer
            )
            return {
                key: value
                for key, value in tracer.counters.items()
                if key.startswith("bytes.")
            }

        assert counters(1) == counters(4)


# --- serving integration -----------------------------------------------------


class TestServeIntegration:
    def test_parallel_engine_serves_bit_identical(self):
        from repro.models.serving import default_catalog
        from repro.serve.server import ServeConfig, Server

        catalog = default_catalog()
        name = "mlp-chain@4+overlap"
        program = catalog[name]
        inputs = program.make_inputs_seeded(3)
        config = ServeConfig(
            engine="parallel", engine_workers=2, workers=1
        )
        with Server(config, catalog=catalog) as server:
            values = server.submit(name, inputs).result(timeout=30)
        oracle = create_engine("interpreted").run(
            program.build_module(), inputs, mesh=program.num_devices
        )
        (got,) = values.values()
        (want,) = oracle.values()
        for x, y in zip(got, want):
            assert np.array_equal(x, y)

    def test_engine_workers_rejected_for_non_parallel_engine(self):
        from repro.serve.server import ServeConfig

        with pytest.raises(ValueError, match="engine_workers"):
            ServeConfig(engine="compiled", engine_workers=2)
