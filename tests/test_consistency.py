"""Cross-model consistency: the analytic cost model vs the simulator.

The cost model prices a synchronous collective with closed-form ring
formulas; the decomposed permute program times the same data movement
through the simulator's link model. The two must agree to within the
known structural differences (one direction vs two, the extra
prologue/epilogue shift) — this pins the Section 5.5 gate to the
simulator it is predicting.
"""

import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.core.standalone import decompose_standalone_collectives
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16
from repro.hlo.shapes import Shape
from repro.perfsim.costs import CostModel
from repro.perfsim.hardware import TPU_V4
from repro.perfsim.simulator import simulate
from repro.sharding.mesh import DeviceMesh

COST = CostModel(TPU_V4)


def gather_module(mesh, shard_elems=1 << 22):
    builder = GraphBuilder("m")
    value = builder.parameter(Shape((shard_elems,), BF16), name="v")
    builder.all_gather(value, 0, mesh.rings("x"))
    return builder.module


def _compiled_gather(ring, bidirectional):
    mesh = DeviceMesh.ring(ring)
    module = gather_module(mesh)
    analytic = COST.collective_time(module.root)
    shard_time = module.get("v").shape.byte_size / TPU_V4.link_bandwidth
    compile_module(
        module, mesh,
        OverlapConfig(
            use_cost_model=False, bidirectional=bidirectional,
            decompose_standalone=True,
        ),
    )
    return simulate(module, mesh), analytic, shard_time


@pytest.mark.parametrize("ring", [4, 8, 16])
def test_unidirectional_ring_is_twice_the_analytic_all_gather(ring):
    """The decomposed unidirectional chain uses one link direction: its
    transfer-limited elapsed time is (N-1) shard steps — exactly 2x the
    analytic bidirectional-ring AllGather, the factor behind the paper's
    Section 5.5 concern. (The shard-update kernels add a small
    memory-bound residue on top.)"""
    report, analytic, shard_time = _compiled_gather(ring, bidirectional=False)
    transfer_path = (ring - 1) * shard_time
    assert transfer_path == pytest.approx(2 * analytic, rel=1e-9)
    assert report.total_time >= transfer_path
    assert report.total_time == pytest.approx(transfer_path, rel=0.25)


@pytest.mark.parametrize("ring", [4, 8, 16])
def test_bidirectional_ring_tracks_analytic_all_gather(ring):
    """Both directions active: the critical path is the direction that
    carries the prologue — N/2 shard steps, within one step of the
    analytic (N-1)/2."""
    report, analytic, shard_time = _compiled_gather(ring, bidirectional=True)
    transfer_path = (ring // 2) * shard_time
    assert report.total_time >= transfer_path - 1e-12
    assert report.total_time == pytest.approx(transfer_path, rel=0.3)
    assert transfer_path <= analytic + shard_time + 1e-9


def test_gate_prediction_brackets_simulated_time():
    """The gate's `overlapped_time` estimate must track the simulator on
    the pattern it was designed for (one AllGather-Einsum pair)."""
    from repro.core.cost_model import estimate_overlap
    from repro.core.patterns import find_candidates

    mesh = DeviceMesh.ring(8)
    builder = GraphBuilder("m")
    x = builder.parameter(Shape((8192, 4096), BF16), name="x")
    w = builder.parameter(Shape((4096, 1024), BF16), name="w")
    gathered = builder.all_gather(w, 1, mesh.rings("x"))
    builder.einsum("bf,fh->bh", x, gathered)
    module = builder.module

    (candidate,) = find_candidates(module)
    estimate = estimate_overlap(COST, candidate, bidirectional=True)

    compile_module(module, mesh, OverlapConfig(use_cost_model=False))
    simulated = simulate(module, mesh).total_time
    # The estimate is conservative (it assumes the prologue is exposed),
    # so the simulated time lands at or below it, within a modest band.
    assert simulated <= estimate.overlapped_time * 1.05
    assert simulated >= estimate.overlapped_time * 0.5
