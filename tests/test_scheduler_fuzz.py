"""Property-based fuzzing of the full pipeline on random SPMD programs.

Hypothesis generates random chains of sharded einsums (random shapes,
random gather/scatter placements, random config); the pipeline must
always produce a valid module, both schedulers must produce topological
orders within the async budget, the simulator must accept the result, and
the program must still compute the right value.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import ShardIndex
from repro.hlo.shapes import Shape
from repro.perfsim.sched_graph import max_in_flight
from repro.perfsim.simulator import simulate
from repro.runtime.executor import run_spmd
from repro.sharding.mesh import DeviceMesh


@st.composite
def random_program(draw):
    """A chain of einsums with random collectives between them."""
    ring = draw(st.sampled_from([2, 3, 4]))
    mesh = DeviceMesh.ring(ring)
    depth = draw(st.integers(1, 4))
    batch = draw(st.integers(1, 3)) * ring
    width = draw(st.integers(1, 3)) * ring
    layer_kinds = draw(
        st.lists(
            st.sampled_from(["gather_w", "gather_x", "scatter", "local"]),
            min_size=depth, max_size=depth,
        )
    )
    seed = draw(st.integers(0, 2**16))
    return mesh, batch, width, layer_kinds, seed


def build_program(mesh, batch, width, layer_kinds):
    ring = mesh.num_devices
    builder = GraphBuilder("fuzz")
    value = builder.parameter(Shape((batch, width), F32), name="x")
    arguments = {"x": None}  # filled by caller
    weight_names = []
    for index, kind in enumerate(layer_kinds):
        name = f"w{index}"
        if kind == "gather_w":
            weight = builder.parameter(
                Shape((width, width // ring), F32), name=name
            )
            gathered = builder.all_gather(weight, 1, mesh.rings("x"))
            value = builder.einsum("bf,fh->bh", value, gathered)
            weight_names.append((name, kind))
        elif kind == "gather_x":
            weight = builder.parameter(Shape((width, width), F32), name=name)
            # Re-shard the activation, gather it back inside the einsum.
            shard = builder.dynamic_slice(
                value, 0,
                ShardIndex.shard(1, 0, ring, batch // ring),
                batch // ring,
            )
            gathered = builder.all_gather(shard, 0, mesh.rings("x"))
            value = builder.einsum("bf,fh->bh", gathered, weight)
            weight_names.append((name, kind))
        elif kind == "scatter":
            weight = builder.parameter(Shape((width, width), F32), name=name)
            out = builder.einsum("bf,fh->bh", value, weight)
            scattered = builder.reduce_scatter(out, 1, mesh.rings("x"))
            value = builder.all_gather(scattered, 1, mesh.rings("x"))
            weight_names.append((name, kind))
        else:
            weight = builder.parameter(Shape((width, width), F32), name=name)
            value = builder.einsum("bf,fh->bh", value, weight)
            weight_names.append((name, kind))
    return builder.module, weight_names


def make_arguments(rng, mesh, batch, width, weight_names):
    ring = mesh.num_devices
    arguments = {"x": [rng.normal(size=(batch, width))] * ring}
    for name, kind in weight_names:
        if kind == "gather_w":
            full = rng.normal(size=(width, width))
            arguments[name] = [
                s.copy() for s in np.split(full, ring, axis=1)
            ]
        else:
            arguments[name] = [rng.normal(size=(width, width))] * ring
    return arguments


@settings(max_examples=30, deadline=None)
@given(
    program=random_program(),
    scheduler=st.sampled_from(["bottom_up", "top_down", "in_order"]),
    unroll=st.booleans(),
    bidirectional=st.booleans(),
    budget=st.integers(1, 8),
)
def test_pipeline_on_random_programs(
    program, scheduler, unroll, bidirectional, budget
):
    mesh, batch, width, layer_kinds, seed = program
    rng = np.random.default_rng(seed)

    reference_module, weight_names = build_program(
        mesh, batch, width, layer_kinds
    )
    arguments = make_arguments(rng, mesh, batch, width, weight_names)
    reference = run_spmd(
        reference_module, arguments, mesh.num_devices
    )[reference_module.root.name]

    module, _ = build_program(mesh, batch, width, layer_kinds)
    config = OverlapConfig(
        use_cost_model=False, scheduler=scheduler, unroll=unroll,
        bidirectional=bidirectional, max_in_flight=budget,
    )
    compile_module(module, mesh, config)
    module.verify()
    assert max_in_flight(module.instructions) <= budget

    got = run_spmd(module, arguments, mesh.num_devices)[module.root.name]
    worst = max(np.abs(a - b).max() for a, b in zip(reference, got))
    assert worst < 1e-8

    report = simulate(module, mesh)
    assert report.total_time >= 0.0
    assert report.permute_wait_time >= 0.0
