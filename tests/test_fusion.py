"""Tests for fusion grouping, the concat rewrite, and the Figure 11 rule."""

import numpy as np
import pytest

from repro.core.fusion import (
    clear_fusion,
    rewrite_concat_as_pad_max,
    run_fusion,
)
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.instruction import ShardIndex
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.runtime.executor import run_spmd


class TestConcatRewrite:
    def _concat_into_einsum(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2, 3), F32), name="a")
        b = builder.parameter(Shape((2, 3), F32), name="b")
        combined = builder.concatenate([a, b], 1)
        w = builder.parameter(Shape((6, 4), F32), name="w")
        builder.einsum("bf,fh->bh", combined, w)
        return builder.module

    def test_rewrites_concat_feeding_einsum(self):
        module = self._concat_into_einsum()
        assert rewrite_concat_as_pad_max(module) == 1
        assert module.count(Opcode.CONCATENATE) == 0
        assert module.count(Opcode.PAD) == 2
        assert module.count(Opcode.MAXIMUM) == 1

    def test_rewrite_preserves_numerics(self, rng):
        arguments = {
            "a": [rng.normal(size=(2, 3))],
            "b": [rng.normal(size=(2, 3))],
            "w": [rng.normal(size=(6, 4))],
        }
        original = self._concat_into_einsum()
        expected = run_spmd(original, arguments, 1)[original.root.name]
        rewritten = self._concat_into_einsum()
        rewrite_concat_as_pad_max(rewritten)
        got = run_spmd(rewritten, arguments, 1)[rewritten.root.name]
        np.testing.assert_allclose(got[0], expected[0])

    def test_concat_not_feeding_einsum_untouched(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2,), F32), name="a")
        combined = builder.concatenate([a, a], 0)
        builder.negate(combined)
        assert rewrite_concat_as_pad_max(builder.module) == 0

    def test_three_way_concat_untouched(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((2, 2), F32), name="a")
        combined = builder.concatenate([a, a, a], 1)
        w = builder.parameter(Shape((6, 4), F32), name="w")
        builder.einsum("bf,fh->bh", combined, w)
        assert rewrite_concat_as_pad_max(builder.module) == 0


class TestGrouping:
    def test_preprocessing_chain_absorbed(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((4, 8), F32), name="a")
        sliced = builder.dynamic_slice(a, 1, ShardIndex.constant(0), 4)
        w = builder.parameter(Shape((4, 4), F32), name="w")
        einsum = builder.einsum("bf,fh->bh", sliced, w)
        groups = run_fusion(builder.module)
        assert groups == 1
        assert sliced.fusion_group == einsum.fusion_group

    def test_multi_user_preprocessing_not_absorbed(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((4, 8), F32), name="a")
        sliced = builder.dynamic_slice(a, 1, ShardIndex.constant(0), 4)
        w = builder.parameter(Shape((4, 4), F32), name="w")
        builder.einsum("bf,fh->bh", sliced, w)
        builder.negate(sliced)  # second user
        run_fusion(builder.module)
        assert sliced.fusion_group is None

    def test_combiner_absorbed_into_einsum_group(self):
        builder = GraphBuilder("m")
        acc = builder.parameter(Shape((4, 4), F32), name="acc")
        lhs = builder.parameter(Shape((4, 8), F32), name="lhs")
        rhs = builder.parameter(Shape((8, 4), F32), name="rhs")
        einsum = builder.einsum("bf,fh->bh", lhs, rhs)
        add = builder.add(acc, einsum)
        run_fusion(builder.module)
        assert add.fusion_group == einsum.fusion_group

    def test_combiner_with_independent_late_operand_absorbed(self):
        """A later-defined independent operand does not block fusion: the
        fused kernel runs at the combiner's position."""
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((4, 8), F32), name="lhs")
        rhs = builder.parameter(Shape((8, 4), F32), name="rhs")
        einsum = builder.einsum("bf,fh->bh", lhs, rhs)
        late = builder.einsum("bf,fh->bh", lhs, rhs)
        add = builder.add(einsum, late)
        run_fusion(builder.module, overlap_aware=False)
        assert add.fusion_group == einsum.fusion_group

    def test_combiner_with_dependent_operand_not_absorbed(self):
        """Fusing would create a cycle: the other operand consumes the
        chosen group's result."""
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((4, 8), F32), name="lhs")
        rhs = builder.parameter(Shape((8, 4), F32), name="rhs")
        einsum = builder.einsum("bf,fh->bh", lhs, rhs)
        derived = builder.negate(einsum)  # external user of the group
        add = builder.add(einsum, derived)
        run_fusion(builder.module, overlap_aware=False)
        assert add.fusion_group is None

    def test_clear_fusion(self):
        builder = GraphBuilder("m")
        lhs = builder.parameter(Shape((4, 8), F32))
        rhs = builder.parameter(Shape((8, 4), F32))
        builder.einsum("bf,fh->bh", lhs, rhs)
        run_fusion(builder.module)
        clear_fusion(builder.module)
        assert all(i.fusion_group is None for i in builder.module)


class TestFigure11Priority:
    """The Add must fuse with the einsum consuming the permute done."""

    def _figure11_module(self):
        builder = GraphBuilder("m")
        a = builder.parameter(Shape((4, 8), F32), name="a")
        w = builder.parameter(Shape((8, 4), F32), name="w")
        start = builder.collective_permute_start(a, [(0, 1), (1, 0)])
        einsum_independent = builder.einsum("bf,fh->bh", a, w)
        done = builder.collective_permute_done(start)
        einsum_dependent = builder.einsum("bf,fh->bh", done, w)
        add = builder.add(einsum_independent, einsum_dependent)
        return builder.module, einsum_independent, einsum_dependent, add

    def test_overlap_aware_picks_dependent_einsum(self):
        module, independent, dependent, add = self._figure11_module()
        run_fusion(module, overlap_aware=True)
        assert add.fusion_group == dependent.fusion_group
        assert add.fusion_group != independent.fusion_group

    def test_default_heuristic_picks_first_operand(self):
        module, independent, dependent, add = self._figure11_module()
        run_fusion(module, overlap_aware=False)
        assert add.fusion_group == independent.fusion_group
