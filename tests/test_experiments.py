"""Tests for the experiment harnesses.

Run each figure/table harness on scaled-down model sets and assert the
*shape* properties the paper reports — these are the repository's
regression guard for the reproduction itself. The full-size runs live in
benchmarks/.
"""

import dataclasses

import pytest

from repro.experiments import (
    energy,
    fig01_breakdown,
    fig12_overall,
    fig13_weak_scaling,
    fig14_unrolling,
    fig15_bidirectional,
    fig16_scheduling,
    inference,
    tables,
)
from repro.experiments.common import (
    Comparison,
    cache_stats,
    clear_cache,
    compare,
    format_table,
)
from repro.models.configs import GPT_32B, TABLE1, TABLE2

SMALL = [
    dataclasses.replace(
        GPT_32B, name="small_a", batch_size=64, seq_len=512, d_model=2048,
        d_ff=8192, num_layers=4, mesh_x=4, mesh_y=8, num_chips=32,
    ),
    dataclasses.replace(
        GPT_32B, name="small_b", batch_size=64, seq_len=512, d_model=4096,
        d_ff=16384, num_layers=4, mesh_x=8, mesh_y=8, num_chips=64,
    ),
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFig01:
    def test_breakdown_fractions_sum_to_one(self):
        rows = fig01_breakdown.run(models=SMALL)
        for row in rows:
            assert row.compute_fraction + row.communication_fraction == (
                pytest.approx(1.0)
            )
            assert 0.0 < row.communication_fraction < 1.0

    def test_report_renders(self):
        text = fig01_breakdown.format_report(fig01_breakdown.run(models=SMALL))
        assert "Figure 1" in text
        assert "small_a" in text


class TestFig12:
    def test_speedups_in_paper_band(self):
        rows = fig12_overall.run(models=SMALL)
        for row in rows:
            assert 1.0 <= row.speedup < 1.6
            assert row.overlapped_utilization > row.baseline_utilization
            assert (
                row.overlapped_comm_fraction < row.baseline_comm_fraction
            )

    def test_average_speedup(self):
        rows = fig12_overall.run(models=SMALL)
        avg = fig12_overall.average_speedup(rows)
        assert 1.0 < avg < 1.6


class TestFig13:
    def test_consistent_improvement_across_sizes(self):
        rows = fig13_weak_scaling.run(models=SMALL)
        assert all(r.speedup >= 1.0 for r in rows)


class TestFig14:
    def test_unrolling_never_hurts(self):
        rows = fig14_unrolling.run(models=SMALL)
        for row in rows:
            assert row.unrolling_gain >= 0.999
            assert row.normalized_time_with <= row.normalized_time_without + 1e-9


class TestFig15:
    def test_bidirectional_never_hurts(self):
        rows = fig15_bidirectional.run(models=SMALL)
        for row in rows:
            assert row.bidirectional_gain >= 0.999


class TestFig16:
    def test_bottom_up_at_least_as_fast(self):
        rows = fig16_scheduling.run(models=SMALL)
        for row in rows:
            assert row.bottom_up_advantage >= 0.999
        assert fig16_scheduling.average_advantage(rows) >= 1.0


class TestEnergy:
    def test_energy_reduction_equals_speedup(self):
        rows = energy.run(models=SMALL)
        comparisons = [compare(cfg) for cfg in SMALL]
        for row, comparison in zip(rows, comparisons):
            assert row.reduction == pytest.approx(comparison.speedup)

    def test_energy_scales_with_chips_and_time(self):
        (row, _) = energy.run(models=SMALL)
        expected = (
            row.report.baseline_time
            * energy.CHIP_POWER_WATTS
            * SMALL[0].num_chips
        )
        assert row.report.baseline_energy_joules == pytest.approx(expected)


class TestInference:
    def test_two_way_latency_improvement(self):
        result = inference.run(
            batch=1280, feature=4096, hidden=16384, num_layers=8
        )
        assert result.latency_improvement > 1.3
        assert (
            result.overlapped.communication_fraction
            < result.baseline.communication_fraction
        )

    def test_report_renders(self):
        result = inference.run(
            batch=256, feature=1024, hidden=4096, num_layers=2
        )
        assert "latency improvement" in inference.format_report(result)


class TestTables:
    def test_table1_has_six_models(self):
        assert len(tables.table1_rows()) == 6

    def test_table2_has_six_gpts(self):
        rows = tables.table2_rows()
        assert len(rows) == 6
        assert all(row[0].startswith("GPT") for row in rows)

    def test_rendering(self):
        assert "Table 1" in tables.format_table1()
        assert "Table 2" in tables.format_table2()


class TestCommon:
    def test_comparison_properties(self):
        comparison = compare(SMALL[0])
        assert isinstance(comparison, Comparison)
        assert comparison.speedup == pytest.approx(
            1.0 / comparison.normalized_time
        )

    def test_cache_reuses_simulations(self):
        from repro.experiments.common import cached_step

        first = cached_step(SMALL[0])
        second = cached_step(SMALL[0])
        assert first is second

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")


class TestCompileCacheRouting:
    def test_sweep_recompilations_hit_the_shared_compile_cache(self):
        # Route check for the plan-cache satellite: a sweep that
        # re-simulates a model it has seen (here: the step memo is
        # dropped, the compile cache is not) must *hit* the shared
        # content-addressed compile cache instead of re-lowering.
        clear_cache(compilations=True)
        compare(SMALL[0])
        misses_after_first = cache_stats().misses
        assert misses_after_first > 0
        clear_cache()  # step memo only; compilations survive
        compare(SMALL[0])
        stats = cache_stats()
        assert stats.hits > 0
        assert stats.hit_rate > 0
        assert stats.misses == misses_after_first
