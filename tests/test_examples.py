"""Smoke tests keeping the example scripts runnable.

Each example's ``main()`` is imported and executed (with reduced
workloads where the module exposes knobs); stdout must contain the
example's headline result.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "speedup:" in out
    assert "numerical check" in out
    assert "loops decomposed:      1" in out


def test_train_gpt_step(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["train_gpt_step.py", "GPT_32B"])
    load_example("train_gpt_step").main()
    out = capsys.readouterr().out
    assert "baseline compiler" in out
    assert "speedup:" in out
    assert "decomposed loops per layer type" in out


def test_inference_serving(capsys):
    example = load_example("inference_serving")
    example.main()
    out = capsys.readouterr().out
    assert "latency improvement" in out


def test_algorithm1_loop(capsys):
    load_example("algorithm1_loop").main()
    out = capsys.readouterr().out
    assert "rolled (Algorithm 1)" in out
    assert "+1*i" in out      # the loop-index-dependent shard id
    assert "+2*i" in out      # the degree-2 stepped index
    assert out.count("0.00e+00") == 3


def test_scheduling_deep_dive(capsys):
    load_example("scheduling_deep_dive").main()
    out = capsys.readouterr().out
    for scheduler in ("in_order", "top_down", "bottom_up"):
        assert f"=== {scheduler} ===" in out
    assert "link:" in out  # the timeline lanes rendered
