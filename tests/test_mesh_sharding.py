"""Multi-axis (2D/3D mesh) sharding: propagation, lowering, observability.

Covers the ISSUE-10 satellite surface: 2D sharding-spec propagation
(conflicting axis placements, replicated dims, mesh reshape), the
cross-axis channel-id uniqueness regression in
``split_collective_permutes``, and the per-axis ``overlap_summary``
lenses.
"""

import numpy as np
import pytest

from repro.core.async_cp import split_collective_permutes
from repro.hlo.builder import GraphBuilder
from repro.hlo.einsum_spec import LHS, RHS, EinsumSpec
from repro.hlo.instruction import Instruction
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.obs import (
    UNATTRIBUTED,
    overlap_summary,
    per_axis_overlap_summary,
    transfer_axis,
)
from repro.obs.events import COMPUTE, TRANSFER, TraceEvent
from repro.sharding.mesh import DeviceMesh
from repro.sharding.propagation import ShardingError, plan_einsum
from repro.sharding.sharder import shard_array
from repro.sharding.spec import ShardingSpec, entry_axes

S = ShardingSpec
MATMUL = EinsumSpec.parse("bf,fh->bh")


class TestMultiAxisSpec:
    def test_nested_entry_normalization(self):
        spec = S(((), ("dp",), ("dp2", "tp")))
        assert spec.dim_axes == (None, "dp", ("dp2", "tp"))
        assert spec.axes_of_dim(2) == ("dp2", "tp")
        assert spec.dim_of_axis("tp") == 2

    def test_axis_reuse_across_dims_rejected(self):
        with pytest.raises(ValueError, match="used twice"):
            S((("dp", "tp"), "dp"))

    def test_shard_shape_divides_by_axis_product(self):
        mesh = DeviceMesh.grid({"dp": 2, "tp": 4})
        spec = S((("dp", "tp"), None))
        assert spec.shard_shape(Shape((32, 8)), mesh).dims == (4, 8)
        assert spec.num_shards(mesh) == 8

    def test_shard_array_nested_outermost_first(self):
        mesh = DeviceMesh.grid({"dp": 2, "tp": 2})
        full = np.arange(8, dtype=np.float64)
        shards = shard_array(full, S((("dp", "tp"),)), mesh)
        # outermost-first: dp picks the half, tp the quarter within it
        assert [list(s) for s in shards] == [
            [0, 1], [2, 3], [4, 5], [6, 7]
        ]


class TestPropagation2D:
    def test_nested_contracting_reduces_outermost_first(self):
        plan = plan_einsum(
            MATMUL,
            S((None, ("dp", "tp"))),
            S((("dp", "tp"), None)),
            S((None, ("dp", "tp"))),
        )
        assert not plan.gathers
        assert [r.axis for r in plan.reduces] == ["dp", "tp"]
        assert all(r.scatter_dim == 1 for r in plan.reduces)
        assert plan.out_spec.axes_of_dim(1) == ("dp", "tp")

    def test_nested_gather_peels_innermost_first(self):
        plan = plan_einsum(
            MATMUL,
            S((None, ("dp", "tp"))),
            S.replicated(2),
            S.replicated(2),
        )
        assert [g.axis for g in plan.gathers] == ["tp", "dp"]
        assert all(g.operand == LHS and g.dim == 1 for g in plan.gathers)

    def test_conflicting_batch_placements_gather_both_sides(self):
        # lhs puts the batch dim on "dp", rhs on "tp": conflicting
        # placements of one logical dim. With a replicated output both
        # sides must be reconstructed before the local einsum.
        batched = EinsumSpec.parse("gbf,gfh->gbh")
        plan = plan_einsum(
            batched,
            S(("dp", None, None)),
            S(("tp", None, None)),
            S.replicated(3),
        )
        assert sorted((g.operand, g.axis) for g in plan.gathers) == [
            (LHS, "dp"), (RHS, "tp")
        ]
        assert plan.out_spec.is_replicated

    def test_conflicting_batch_placement_with_kept_side_rejected(self):
        # The output wants the lhs placement kept; the rhs conflict
        # cannot be silently resolved (a batch dim cannot be half
        # sharded), so the plan refuses.
        batched = EinsumSpec.parse("gbf,gfh->gbh")
        with pytest.raises(ShardingError, match="batch label"):
            plan_einsum(
                batched,
                S(("dp", None, None)),
                S(("tp", None, None)),
                S(("dp", None, None)),
            )

    def test_half_sharded_batch_dim_rejected(self):
        batched = EinsumSpec.parse("gbf,gfh->gbh")
        with pytest.raises(ShardingError, match="batch label"):
            plan_einsum(
                batched,
                S(("dp", None, None)),
                S.replicated(3),
                S(("dp", None, None)),
            )

    def test_replicated_dims_plan_no_communication(self):
        plan = plan_einsum(
            MATMUL, S.replicated(2), S.replicated(2), S.replicated(2)
        )
        assert not plan.gathers
        assert not plan.reduces
        assert plan.out_spec.is_replicated

    def test_mismatched_nesting_gathers_the_operand(self):
        # lhs shards the contracting dim ("tp",) vs rhs ("dp", "tp"):
        # not identical, so both sides must be reconstructed.
        plan = plan_einsum(
            MATMUL,
            S((None, "tp")),
            S((("dp", "tp"), None)),
            S.replicated(2),
        )
        assert {g.operand for g in plan.gathers} == {LHS, RHS}
        rhs_axes = [g.axis for g in plan.gathers if g.operand == RHS]
        assert rhs_axes == ["tp", "dp"]


class TestMeshReshape:
    def test_reshape_preserves_device_ids(self):
        ring = DeviceMesh.ring(8, "x")
        grid = ring.reshape({"tp": 4, "dp": 2})
        assert grid.num_devices == 8
        assert grid.rings("dp") == [
            (0, 1), (2, 3), (4, 5), (6, 7)
        ]
        assert grid.rings("tp") == [
            (0, 2, 4, 6), (1, 3, 5, 7)
        ]

    def test_reshape_wrong_count_rejected(self):
        with pytest.raises(ValueError, match="cannot reshape"):
            DeviceMesh.ring(8, "x").reshape({"tp": 4, "dp": 4})

    def test_reshard_across_reshape_by_reslicing(self):
        # A tensor sharded on the 8-ring re-shards on the reshaped 4x2
        # grid's ("tp", "dp") nesting with identical per-device shards —
        # the row-major re-labelling is a no-op on the data.
        ring = DeviceMesh.ring(8, "x")
        grid = ring.reshape({"tp": 4, "dp": 2})
        full = np.arange(16, dtype=np.float64).reshape(8, 2)
        before = shard_array(full, S(("x", None)), ring)
        after = shard_array(full, S((("tp", "dp"), None)), grid)
        assert all(
            np.array_equal(b, a) for b, a in zip(before, after)
        )


class TestChannelIdUniqueness:
    def _ring_permute(self, builder, value, mesh, axis):
        pairs = [
            (group[i], group[(i + 1) % len(group)])
            for group in mesh.rings(axis)
            for i in range(len(group))
        ]
        cp = builder.collective_permute(value, pairs)
        cp.attrs["axis"] = axis
        return cp

    def test_channels_unique_across_multi_pass_splitting(self):
        # Multi-axis lowering splits permutes in several passes (TP
        # rings, then DP buckets, then PP sends). Channel ids must stay
        # module-unique across passes, not merely within one call.
        mesh = DeviceMesh.grid({"tp": 2, "dp": 2})
        b = GraphBuilder("m")
        p = b.parameter(Shape((4, 4)), name="p")
        self._ring_permute(b, p, mesh, "tp")
        module = b.module
        first = split_collective_permutes(module)
        assert len(first) == 1

        tp_done = first[0][1]
        dp_pairs = [
            (group[i], group[(i + 1) % len(group)])
            for group in mesh.rings("dp")
            for i in range(len(group))
        ]
        dp = Instruction(
            name=Instruction.fresh_name("collective-permute"),
            opcode=Opcode.COLLECTIVE_PERMUTE,
            shape=tp_done.shape,
            operands=[tp_done],
            attrs={"pairs": dp_pairs, "axis": "dp"},
        )
        module.rebuild(list(module.instructions) + [dp], dp)
        second = split_collective_permutes(module)
        assert len(second) == 1

        starts = [s for s, _ in first + second]
        channels = [s.attrs["channel_id"] for s in starts]
        assert len(set(channels)) == len(channels), channels

    def test_counter_seeds_past_foreign_channel_ids(self):
        mesh = DeviceMesh.grid({"pp": 2})
        b = GraphBuilder("m")
        p = b.parameter(Shape((4,)), name="p")
        cp = self._ring_permute(b, p, mesh, "pp")
        # a pre-existing instruction already owns channel 7
        p.attrs["channel_id"] = 7
        pairs = split_collective_permutes(b.module)
        assert pairs[0][0].attrs["channel_id"] == 8


def _event(kind, resource, start, end, name="e"):
    return TraceEvent(name, kind, resource, start, end)


class TestPerAxisOverlap:
    def test_transfer_axis_parses_simulated_lanes(self):
        assert transfer_axis(_event(TRANSFER, "link:tp:plus", 0, 1)) == "tp"
        assert transfer_axis(
            _event(TRANSFER, "link:dp:minus:dev3", 0, 1)
        ) == "dp"
        # measured-executor lanes carry no axis
        assert transfer_axis(_event(TRANSFER, "link:permute.3", 0, 1)) is None

    def test_per_axis_summaries_reconcile_with_aggregate(self):
        events = [
            _event(COMPUTE, "compute", 0.0, 4.0),
            _event(TRANSFER, "link:tp:plus", 1.0, 3.0),
            _event(TRANSFER, "link:dp:minus", 2.0, 6.0),
        ]
        total = overlap_summary(events)
        per_axis = per_axis_overlap_summary(events)
        assert set(per_axis) == {"tp", "dp"}
        assert per_axis["tp"].transfer_time == pytest.approx(2.0)
        assert per_axis["tp"].hidden_fraction == pytest.approx(1.0)
        assert per_axis["dp"].transfer_time == pytest.approx(4.0)
        assert per_axis["dp"].hidden_fraction == pytest.approx(0.5)
        assert sum(
            s.transfer_time for s in per_axis.values()
        ) == pytest.approx(total.transfer_time)
        assert sum(
            s.hidden_transfer_time for s in per_axis.values()
        ) == pytest.approx(total.hidden_transfer_time)

    def test_unattributed_lanes_bucket_separately(self):
        events = [
            _event(COMPUTE, "compute", 0.0, 2.0),
            _event(TRANSFER, "link:permute.1", 0.0, 2.0),
        ]
        per_axis = per_axis_overlap_summary(events)
        assert set(per_axis) == {UNATTRIBUTED}
        assert per_axis[UNATTRIBUTED].hidden_fraction == pytest.approx(1.0)

    def test_no_transfers_yields_empty_mapping(self):
        events = [_event(COMPUTE, "compute", 0.0, 1.0)]
        assert per_axis_overlap_summary(events) == {}
