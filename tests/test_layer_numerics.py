"""End-to-end numerical validation of whole model layers.

The strongest integration test in the repository: a complete layer
(attention + FFN forward and backward; MoE; conformer) is partitioned on
a real mesh, pushed through the full overlap pipeline, executed on the
multi-device functional executor, and compared against the same logical
graph partitioned on the unit mesh (where every collective is an
identity). Every named tensor that survives in both programs must match.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.models.configs import BIGSSL_10B, GLAM_1T, GPT_32B
from repro.models.moe import moe_layer_graph
from repro.models.speech import conformer_layer_graph
from repro.models.transformer import decoder_layer_graph
from repro.runtime.executor import run_spmd
from repro.sharding.partitioner import partition
from repro.sharding.sharder import (
    random_arguments,
    shard_array,
    unit_mesh_like,
)

TINY_DECODER = dataclasses.replace(
    GPT_32B, name="tiny", batch_size=4, seq_len=4, d_model=8, d_ff=16,
    num_layers=1, mesh_x=2, mesh_y=2, num_chips=4, head_dim=4,
)

TINY_MOE = dataclasses.replace(
    GLAM_1T, name="tiny-moe", batch_size=4, seq_len=4, d_model=8, d_ff=16,
    num_layers=2, mesh_x=2, mesh_y=2, num_chips=4, head_dim=4,
    num_experts=4,
)

TINY_SPEECH = dataclasses.replace(
    BIGSSL_10B, name="tiny-speech", batch_size=4, seq_len=4, d_model=8,
    d_ff=16, num_layers=1, mesh_x=2, data_parallel=2, num_chips=4,
    head_dim=4,
)


def check_layer(graph_fn, cfg, config, compare, seed=7, scale=1.0):
    """Compare the named logical tensor between the sharded, fully
    compiled program and the unit-mesh reference. ``scale`` adjusts for
    semantics that legitimately depend on the replica count (the
    data-parallel gradient AllReduce sums ``dp`` identical replicas)."""
    mesh = cfg.mesh()
    unit = unit_mesh_like(mesh)

    reference_graph = graph_fn(cfg)
    reference_module = partition(reference_graph, unit)
    reference_arguments = random_arguments(
        reference_graph, unit, np.random.default_rng(seed)
    )
    reference = run_spmd(
        reference_module, reference_arguments, 1, outputs=[compare]
    )

    graph = graph_fn(cfg)
    module = partition(graph, mesh)
    compile_module(module, mesh, config)
    arguments = random_arguments(graph, mesh, np.random.default_rng(seed))
    result = run_spmd(module, arguments, mesh.num_devices, outputs=[compare])

    full = reference[compare][0]
    spec = graph.tensors[compare].spec
    expected_shards = shard_array(full, spec, mesh)
    for device, shard in enumerate(result[compare]):
        np.testing.assert_allclose(
            shard, scale * expected_shards[device], rtol=1e-9, atol=1e-9,
            err_msg=f"device {device} diverged on {compare}",
        )


CONFIGS = [
    pytest.param(OverlapConfig.baseline(), id="baseline"),
    pytest.param(OverlapConfig(use_cost_model=False), id="overlap"),
    pytest.param(
        OverlapConfig(use_cost_model=False, scheduler="top_down"),
        id="overlap-topdown",
    ),
    pytest.param(
        OverlapConfig(use_cost_model=False, unroll=False, bidirectional=False),
        id="overlap-plain",
    ),
]


class TestDecoderLayerNumerics:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_full_layer(self, config):
        # self.d_x is the end of the backward pass: everything upstream
        # (attention + FFN, forward + backward, every collective) feeds it.
        check_layer(decoder_layer_graph, TINY_DECODER, config, "self.d_x")

    @pytest.mark.parametrize("config", CONFIGS)
    def test_forward_output(self, config):
        check_layer(decoder_layer_graph, TINY_DECODER, config, "y_out")

    @pytest.mark.parametrize("config", CONFIGS[:2])
    def test_cross_attention_layer(self, config):
        check_layer(
            lambda cfg: decoder_layer_graph(cfg, cross_attention=True),
            TINY_DECODER, config, "self.d_x",
        )


class TestMoELayerNumerics:
    """Expert dispatch regroups tokens along shard boundaries, so the
    routing — like real learned routing — is mesh-dependent; exact
    comparisons stop at the attention output. The dispatch/combine pair
    itself must still be a per-device involution."""

    @pytest.mark.parametrize("config", CONFIGS[:2])
    def test_attention_path(self, config):
        check_layer(moe_layer_graph, TINY_MOE, config, "self.out")

    def test_full_layer_executes(self):
        mesh = TINY_MOE.mesh()
        graph = moe_layer_graph(TINY_MOE)
        module = partition(graph, mesh)
        compile_module(module, mesh, OverlapConfig(use_cost_model=False))
        arguments = random_arguments(graph, mesh, np.random.default_rng(3))
        result = run_spmd(module, arguments, mesh.num_devices)
        (values,) = result.values(),
        assert all(np.isfinite(v).all() for v in result[module.root.name])

    def test_dispatch_combine_conserves_tokens(self):
        from repro.hlo.dtypes import F32
        from repro.hlo.shapes import Shape
        from repro.models.moe import EXPERT_ACT
        from repro.models.transformer import ACT
        from repro.sharding.partitioner import LogicalGraph

        mesh = TINY_MOE.mesh()
        n, s, d = 4, 4, 8
        graph = LogicalGraph("rt")
        graph.add_input("x", Shape((n, s, d), F32), ACT)
        graph.add_all_to_all(
            "x", "dispatched", 2, 2, "x",
            out_shape=Shape((4, 4, d), F32), out_spec=EXPERT_ACT,
        )
        graph.add_all_to_all(
            "dispatched", "combined", 2, 2, "x",
            out_shape=Shape((n, s, d), F32), out_spec=ACT,
        )
        module = partition(graph, mesh)
        arguments = random_arguments(graph, mesh, np.random.default_rng(5))
        result = run_spmd(
            module, arguments, mesh.num_devices,
            outputs=["dispatched", module.root.name],
        )
        # Dispatch + combine permute token data across devices but must
        # conserve every element globally (nothing dropped or duplicated).
        original = np.sort(np.concatenate([a.ravel() for a in arguments["x"]]))
        for name in ("dispatched", module.root.name):
            moved = np.sort(
                np.concatenate([v.ravel() for v in result[name]])
            )
            np.testing.assert_allclose(moved, original)


class TestMixerLayerNumerics:
    """Section 7.2's MLP-based vision workload."""

    TINY_MIXER = dataclasses.replace(
        GPT_32B, name="tiny-mixer", batch_size=4, seq_len=4, d_model=8,
        d_ff=16, num_layers=1, mesh_x=2, mesh_y=2, num_chips=4, head_dim=4,
    )

    @pytest.mark.parametrize("config", CONFIGS)
    def test_backward_output(self, config):
        from repro.models.vision import mixer_layer_graph

        check_layer(
            lambda cfg: mixer_layer_graph(cfg, num_patches=6),
            self.TINY_MIXER, config, "d_x_out",
        )

    def test_candidate_mix(self):
        from repro.core.patterns import AG_EINSUM, EINSUM_RS, find_candidates
        from repro.models.vision import mixer_layer_graph

        mesh = self.TINY_MIXER.mesh()
        module = partition(
            mixer_layer_graph(self.TINY_MIXER, num_patches=6), mesh
        )
        kinds = {c.kind for c in find_candidates(module)}
        assert kinds == {AG_EINSUM, EINSUM_RS}


class TestConformerLayerNumerics:
    @pytest.mark.parametrize("config", CONFIGS[:2])
    def test_backward_output(self, config):
        check_layer(conformer_layer_graph, TINY_SPEECH, config, "d_x_out")

    @pytest.mark.parametrize("config", CONFIGS[:2])
    def test_forward_output(self, config):
        check_layer(conformer_layer_graph, TINY_SPEECH, config, "y_out")

    def test_dp_all_reduce_sums_replicas(self):
        """With the batch replicated across the dp axis, the gradient
        AllReduce multiplies by the replica count — the scaling law the
        data-parallel substrate must obey."""
        check_layer(
            conformer_layer_graph, TINY_SPEECH, OverlapConfig.baseline(),
            "dwo.dp", scale=TINY_SPEECH.data_parallel,
        )


class TestSharder:
    def test_shard_array_roundtrip(self):
        from repro.sharding.mesh import DeviceMesh
        from repro.sharding.spec import ShardingSpec

        mesh = DeviceMesh.grid({"x": 2, "y": 2})
        full = np.arange(16.0).reshape(4, 4)
        shards = shard_array(full, ShardingSpec(("y", "x")), mesh)
        assert len(shards) == 4
        # Device 3 has coordinates (x=1, y=1): rows 2:4 (y), cols 2:4 (x).
        np.testing.assert_array_equal(shards[3], full[2:, 2:])

    def test_replicated_dims_copy(self):
        from repro.sharding.mesh import DeviceMesh
        from repro.sharding.spec import ShardingSpec

        mesh = DeviceMesh.ring(2)
        full = np.arange(4.0)
        shards = shard_array(full, ShardingSpec((None,)), mesh)
        for shard in shards:
            np.testing.assert_array_equal(shard, full)

    def test_rank_mismatch_rejected(self):
        from repro.sharding.mesh import DeviceMesh
        from repro.sharding.spec import ShardingSpec

        with pytest.raises(ValueError, match="rank"):
            shard_array(
                np.zeros((2, 2)), ShardingSpec((None,)), DeviceMesh.ring(2)
            )

    def test_unit_mesh_preserves_axes(self):
        from repro.sharding.mesh import DeviceMesh

        mesh = DeviceMesh.grid({"x": 4, "dp": 2})
        unit = unit_mesh_like(mesh)
        assert unit.axis_names == ("x", "dp")
        assert unit.num_devices == 1
