"""Composed multi-axis training-step benchmark (the bench-mesh gate).

Simulates the full training step (forward + backward + optimizer) on
2D/3D meshes where the TP ring, DP gradient-bucket and PP stage-handoff
overlap families compose, prints the per-axis hidden-fraction table,
and enforces the same gates as the ``bench-mesh`` CI job: every case
bit-identical to the undecomposed oracle, every family above its
hidden-fraction floor, and no slowdown on the cost-model-gated case.
Writes ``BENCH_mesh.json`` at the repo root for the artifact upload.
"""

import json
import pathlib

from bench_utils import run_once

from repro.experiments.mesh_step import (
    as_json,
    check_report,
    format_report,
    run,
)

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_mesh.json"


def test_mesh_overlap_families_compose(benchmark):
    results = run_once(benchmark, run)
    print()
    print(format_report(results))

    for result in results:
        label = result.case.label
        benchmark.extra_info[f"{label}_speedup"] = f"{result.speedup:.3f}x"
        for row in result.axes:
            benchmark.extra_info[f"{label}_{row.axis}_hidden"] = (
                f"{row.hidden_fraction:.0%}"
            )

    REPORT_PATH.write_text(
        json.dumps(as_json(results), indent=2, sort_keys=True) + "\n"
    )

    assert check_report(results) == []
