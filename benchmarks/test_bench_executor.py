"""Executor engine benchmark: interpreted oracle vs compiled engine.

Unlike the figure/table benchmarks (which reproduce the paper's
simulated numbers), this one measures the repo's *own* hot path: it
times real ``Executor.run`` calls against ``CompiledExecutor.run`` on
the golden modules and their overlap variants, asserts the compiled
engine's outputs stay bit-identical, and writes ``BENCH_executor.json``
at the repo root so the speedup trend is tracked run over run. The
report now also carries the parallel backend's 8/64/256-device sweep
(parallel vs compiled, with measured hidden-communication fractions).
"""

import json
import pathlib

from bench_utils import run_once

from repro.runtime.bench import check_report, format_report, run_bench

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_executor.json"


def test_executor_engine_speedup(benchmark):
    report = run_once(benchmark, lambda: run_bench(quick=False, parallel=True))
    print()
    print(format_report(report))

    summary = report["summary"]
    benchmark.extra_info["geomean_speedup"] = (
        f"{summary['geomean_speedup']:.2f}x"
    )
    benchmark.extra_info["speedup_at_8plus"] = (
        f"{summary['speedup_at_8plus']:.2f}x"
    )
    parallel = report["parallel"]["summary"]
    benchmark.extra_info["parallel_speedup_at_8plus"] = (
        f"{parallel['speedup_at_8plus']:.2f}x"
    )

    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    # Hard gates: never slower than the interpreter, never inexact, the
    # headline claim — >= 3x at 8+ simulated devices — and the parallel
    # backend's own gates (bit-identity on every 8/64/256-device sweep
    # row, zero measured overlap on the undecomposed reference, positive
    # measured overlap on the decomposed schedule, and no loss to the
    # compiled engine at 8+ devices).
    assert not check_report(
        report, min_speedup=1.0, min_parallel_speedup=1.0
    )
    assert summary["all_bit_identical"]
    assert summary["speedup_at_8plus"] >= 3.0
    assert parallel["all_bit_identical"]
