"""Discussion-section studies: Sections 7.2, 7.3 and the design ablations."""

from bench_utils import run_once

from repro.experiments import ablations, interconnect_sweep, pipeline_parallel


def test_interconnect_sensitivity(benchmark):
    """Section 7.2: overlap benefit vs link bandwidth (inverted U)."""
    rows = run_once(benchmark, interconnect_sweep.run)
    print()
    print(interconnect_sweep.format_report(rows))

    for row in rows:
        benchmark.extra_info[f"{row.link_bandwidth / 1e9:.0f}GBps"] = (
            f"speedup={row.speedup:.2f}x"
        )
    peak = interconnect_sweep.peak_bandwidth(rows)
    slowest, fastest = rows[0], rows[-1]
    # The benefit shrinks at both extremes and peaks in between.
    assert slowest.link_bandwidth < peak < fastest.link_bandwidth
    assert fastest.speedup < max(r.speedup for r in rows) - 0.05


def test_pipeline_parallelism_tradeoff(benchmark):
    """Section 7.3: overlap changes the pipeline-vs-tensor trade-off."""
    rows = run_once(benchmark, pipeline_parallel.run)
    print()
    print(pipeline_parallel.format_report(rows))

    for row in rows:
        benchmark.extra_info[f"pp{row.stages}"] = (
            f"speedup={row.speedup:.2f}x bubble={row.bubble_fraction:.1%}"
        )
    # Overlap benefits the wide-tensor-parallel splits the most: its
    # speedup on the widest split beats the narrowest.
    assert rows[0].speedup > rows[-1].speedup
    for row in rows:
        assert row.overlapped_step <= row.baseline_step


def test_future_standalone_overlap(benchmark):
    """Future work (Section 6.1): decomposing the standalone collectives
    eliminates all synchronous communication but re-exposes it as
    critical-path transfer stalls — a near-neutral net, supporting the
    paper's deferral to communication-offload hardware."""
    from repro.experiments import future_overlap

    rows = run_once(benchmark, future_overlap.run)
    print()
    print(future_overlap.format_report(rows))

    for row in rows:
        benchmark.extra_info[row.model] = (
            f"extra_gain={row.extra_gain:.3f}x"
        )
        assert row.future.sync_collective_time == 0.0
        assert 0.9 <= row.extra_gain <= 1.1  # near-neutral at pod scale
        assert row.future.permute_wait_time > row.paper.permute_wait_time


def test_design_ablations(benchmark):
    """Figure 11 fusion priority, the Section 5.5 gate, and the liveness
    cost of the overlap schedule."""

    def run_all():
        return (
            ablations.fusion_priority(),
            ablations.cost_gate(),
            ablations.scheduling_memory(),
        )

    fusion_rows, gate_rows, memory_rows = run_once(benchmark, run_all)
    print()
    print(ablations.format_report())

    for row in fusion_rows:
        assert row.gain > 1.2  # bad fusion serializes the transfers
    benchmark.extra_info["fig11_gain"] = f"{fusion_rows[-1].gain:.2f}x"

    # The gate never regresses below the baseline; skipping it can.
    narrow = gate_rows[0]
    assert narrow.gated_time <= narrow.baseline_time * 1.001
    assert narrow.ungated_time > narrow.gated_time
    benchmark.extra_info["gate_avoids"] = (
        f"{narrow.ungated_time / narrow.gated_time:.3f}x regression"
    )

    (memory_row,) = memory_rows
    assert 1.0 <= memory_row.overhead < 3.0
    benchmark.extra_info["liveness_overhead"] = f"{memory_row.overhead:.2f}x"
