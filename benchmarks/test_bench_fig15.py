"""Figure 15: bidirectional transfer ablation on the scaled GPT family.

Paper: GPT_32B and GPT_128B gain <5% (their overlapped dimension has few
partitions, so unidirectional transfers already hide under computation);
the larger models gain more.
"""

from bench_utils import run_once

from repro.experiments import fig15_bidirectional


def test_figure15_bidirectional(benchmark):
    rows = run_once(benchmark, fig15_bidirectional.run)
    print()
    print(fig15_bidirectional.format_report(rows))

    by_name = {row.model: row for row in rows}
    for row in rows:
        benchmark.extra_info[row.model] = (
            f"gain={row.bidirectional_gain:.3f}x"
        )
        assert row.bidirectional_gain >= 1.0

    # Small-partition models barely gain...
    for small in ("GPT_32B", "GPT_128B"):
        assert by_name[small].bidirectional_gain < 1.10
    # ...while the biggest models gain clearly more.
    for large in ("GPT_512B", "GPT_1T"):
        assert by_name[large].bidirectional_gain > by_name["GPT_32B"].bidirectional_gain
        assert by_name[large].bidirectional_gain > 1.10
