"""Overlap-autotuner benchmark: tuned configs vs the analytic default.

Runs the full budgeted sweep (perfsim-scored, with measured spot checks
against the interpreter oracle) over the golden modules, gates the
headline property — a tuned config never loses to the analytic-gate
default and stays bit-identical — trend-gates against the committed
``BENCH_tune.json``, and rewrites the artifact so the next run compares
against this one.
"""

import json
import pathlib

from bench_utils import run_once

from repro.tune import (
    TuningDB,
    check_tune_report,
    compare_tune_reports,
    format_tune_report,
    tune_golden,
    tune_report,
    write_tune_report,
)

BUDGET = 24
HERE = pathlib.Path(__file__).resolve().parent
REPORT_PATH = HERE / "BENCH_tune.json"
DB_PATH = HERE / "TUNING_DB.json"


def test_tuned_never_loses_to_default(benchmark, tmp_path):
    db = TuningDB(path=str(tmp_path / "tuning_db.json"))
    records = run_once(
        benchmark,
        lambda: tune_golden(budget=BUDGET, db=db, measure=True, force=True),
    )
    report = tune_report(records, budget=BUDGET, measured=True)
    print()
    print(format_tune_report(report))

    summary = report["summary"]
    benchmark.extra_info["tuned_vs_default_geomean"] = (
        f"{summary['tuned_vs_default_geomean']:.3f}x"
    )
    benchmark.extra_info["entries"] = summary["entries"]

    # Trend gate against the committed artifact before overwriting it:
    # deterministic perfsim speedups must not drop, labels must match,
    # and no entry may flip from exact to inexact.
    baseline = json.loads(REPORT_PATH.read_text())
    assert compare_tune_reports(baseline, report, max_drop=0.2) == []

    write_tune_report(report, str(REPORT_PATH))

    # Hard gates: tuned >= default on every golden module (the default
    # is candidate 0 of the search space, so this holds by construction
    # unless scoring regresses) and measured runs match the interpreter
    # oracle bit-for-bit.
    assert check_tune_report(report, min_ratio=1.0) == []
    assert summary["all_bit_identical"] is True

    # The persisted DB round-trips: every record is retrievable by its
    # content-addressed key with zero re-search.
    db.save()
    reloaded = TuningDB.load(db.path)
    assert sorted(r.key for r in reloaded) == sorted(r.key for r in records)
