"""Figure 12: overall performance of the six evaluated applications.

Paper headlines: 1.14-1.38x speedups (average ~1.2x), peak utilization
72% (Meena_500B), GLaM/BigSSL around 40%, 2-3x communication-cost
reduction.
"""

from bench_utils import run_once

from repro.experiments import fig12_overall


def test_figure12_overall(benchmark):
    rows = run_once(benchmark, fig12_overall.run)
    print()
    print(fig12_overall.format_report(rows))

    by_name = {row.model: row for row in rows}
    for row in rows:
        benchmark.extra_info[row.model] = (
            f"util={row.overlapped_utilization:.1%} "
            f"speedup={row.speedup:.2f}x"
        )
        # Paper band: 1.14 - 1.38x (we allow a slightly wider margin).
        assert 1.05 <= row.speedup <= 1.50
        assert row.overlapped_utilization > row.baseline_utilization

    average = fig12_overall.average_speedup(rows)
    benchmark.extra_info["average_speedup"] = f"{average:.3f}"
    assert 1.15 <= average <= 1.35  # paper: ~1.2x

    # Meena is the utilization champion at ~72%.
    peak = max(rows, key=lambda r: r.overlapped_utilization)
    assert peak.model == "Meena_500B"
    assert 0.65 <= peak.overlapped_utilization <= 0.80

    # Three of the four dense 2D models exceed 60% utilization.
    dense = ["GPT_1T", "Meena_500B", "MLPerf_200B", "T5_300B"]
    above_60 = sum(
        1 for model in dense if by_name[model].overlapped_utilization > 0.60
    )
    assert above_60 >= 3

    # GLaM and BigSSL stay around 40%.
    for narrow in ("GLaM_1T", "BigSSL_10B"):
        assert 0.25 <= by_name[narrow].overlapped_utilization <= 0.50

    # Communication cost drops 2-3x.
    for row in rows:
        if row.baseline_comm_fraction > 0.25:
            reduction = (
                row.baseline_comm_fraction / row.overlapped_comm_fraction
            )
            assert reduction > 1.2
