"""Serving benchmark: cold compile vs warm plan-cache acquisition.

The serving subsystem's headline property is that lowering is a
once-per-program cost: the first request for a program pays the full
pipeline-and-lowering price, every later request (from any worker, any
batch) pays a cache lookup. This benchmark measures both sides on the
catalog's decomposed programs and gates the acceptance floor — warm
plan acquisition at least 5x cheaper than a cold compile — plus a full
loadgen pass whose report must clear every serving gate.
"""

from bench_utils import run_once

from repro.models.serving import default_catalog
from repro.serve import (
    ServeConfig,
    check_report,
    format_report,
    measure_compile_overhead,
    run_loadgen,
)


def test_cold_vs_warm_plan_acquisition(benchmark):
    catalog = default_catalog()
    overheads = run_once(
        benchmark,
        lambda: [
            measure_compile_overhead(catalog[name], repeats=5)
            for name in sorted(catalog)
            if name.endswith("+overlap")
        ],
    )
    print()
    for overhead in overheads:
        print(
            f"{overhead.program:<30} cold {overhead.cold * 1e3:8.3f}ms  "
            f"warm {overhead.warm * 1e6:8.1f}µs  ({overhead.speedup:7.1f}x)"
        )
        benchmark.extra_info[overhead.program] = (
            f"{overhead.speedup:.0f}x"
        )

    # Acceptance floor: caching buys >= 5x lower per-request compile
    # overhead on every decomposed program.
    assert all(o.speedup >= 5.0 for o in overheads)


def test_loadgen_sustains_the_serving_gates(benchmark):
    report = run_once(
        benchmark,
        lambda: run_loadgen(
            requests=200, config=ServeConfig(workers=2), seed=20230325
        ),
    )
    print()
    print(format_report(report))
    benchmark.extra_info["throughput"] = f"{report.throughput:.0f} req/s"
    benchmark.extra_info["p99_ms"] = f"{report.p99_ms:.3f}"
    benchmark.extra_info["cache_hit_rate"] = (
        f"{report.cache_hit_rate:.1%}"
    )
    assert check_report(report) == []
    assert report.completed == 200
    assert report.cache_hit_rate >= 0.9
