"""Section 7.1: 2-way intra-layer model-parallel inference latency.

Paper: an in-house recommendation model achieves ~2x latency improvement;
this reproduction's MLP tower reaches ~1.8x (the residual gap is the
partial-einsum efficiency loss and the loop epilogue)."""

from bench_utils import run_once

from repro.experiments import inference


def test_inference_latency(benchmark):
    result = run_once(benchmark, inference.run)
    print()
    print(inference.format_report(result))

    benchmark.extra_info["latency_improvement"] = (
        f"{result.latency_improvement:.2f}x"
    )
    assert result.latency_improvement > 1.6
    # Overlap hides nearly all of the transfer time.
    assert result.overlapped.communication_fraction < 0.10
