"""Section 6.4: energy-consumption reduction equals the speedup band."""

from bench_utils import run_once

from repro.experiments import energy


def test_energy_reduction(benchmark):
    rows = run_once(benchmark, energy.run)
    print()
    print(energy.format_report(rows))

    for row in rows:
        benchmark.extra_info[row.model] = f"reduction={row.reduction:.2f}x"
        # Paper: 1.14 - 1.38x energy reduction, from the execution-time
        # improvement at flat power.
        assert 1.05 <= row.reduction <= 1.50
        assert row.report.optimized_energy_joules < (
            row.report.baseline_energy_joules
        )
