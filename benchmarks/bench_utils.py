"""Shared benchmark helpers (fixtures live in conftest)."""


def run_once(benchmark, fn):
    """Time one deterministic execution of ``fn`` and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
