"""Figure 1: baseline step-time breakdown of the six Table 1 models."""

from bench_utils import run_once

from repro.experiments import fig01_breakdown


def test_figure01_breakdown(benchmark):
    rows = run_once(benchmark, fig01_breakdown.run)
    print()
    print(fig01_breakdown.format_report(rows))

    for row in rows:
        benchmark.extra_info[row.model] = (
            f"comm={row.communication_fraction:.1%}"
        )
        # The paper's point: every model spends a substantial share of
        # the baseline step on communication.
        assert 0.10 < row.communication_fraction < 0.80

    # The sparse/narrow models (GLaM, BigSSL) are the most
    # communication-bound.
    by_name = {row.model: row for row in rows}
    dense = ["GPT_1T", "Meena_500B", "MLPerf_200B", "T5_300B"]
    for narrow in ("GLaM_1T", "BigSSL_10B"):
        assert by_name[narrow].communication_fraction > max(
            by_name[model].communication_fraction for model in dense
        )
