"""Figure 16: bottom-up vs top-down scheduling on the scaled GPT family.

Paper: the bottom-up approach (Algorithm 2) performs better on every
model (~5% on average in the paper; this reproduction's top-down pass is
more local and loses by a somewhat larger margin — see EXPERIMENTS.md).
"""

from bench_utils import run_once

from repro.experiments import fig16_scheduling


def test_figure16_scheduling(benchmark):
    rows = run_once(benchmark, fig16_scheduling.run)
    print()
    print(fig16_scheduling.format_report(rows))

    for row in rows:
        benchmark.extra_info[row.model] = (
            f"bottom_up_advantage={row.bottom_up_advantage:.3f}x"
        )
        # Bottom-up wins on every model...
        assert row.bottom_up_advantage >= 1.0
        # ...and top-down still beats the unoptimized baseline.
        assert row.normalized_time_top_down < 1.0

    average = fig16_scheduling.average_advantage(rows)
    benchmark.extra_info["average_advantage"] = f"{average:.3f}"
    assert 1.02 <= average <= 1.30
