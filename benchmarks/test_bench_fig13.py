"""Figure 13: weak scaling on the GPT family (Table 2).

Paper: the technique consistently improves performance across all sizes,
with 1.1-1.4x speedup.
"""

from bench_utils import run_once

from repro.experiments import fig13_weak_scaling


def test_figure13_weak_scaling(benchmark):
    rows = run_once(benchmark, fig13_weak_scaling.run)
    print()
    print(fig13_weak_scaling.format_report(rows))

    for row in rows:
        benchmark.extra_info[row.model] = f"speedup={row.speedup:.2f}x"
        assert 1.05 <= row.speedup <= 1.45  # paper band 1.1-1.4x
        assert row.overlapped_utilization > row.baseline_utilization

    # Weak scaling covers 64 to 2048 chips.
    assert rows[0].num_chips == 64
    assert rows[-1].num_chips == 2048
