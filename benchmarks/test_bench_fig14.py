"""Figure 14: loop unrolling ablation on the scaled GPT family.

Paper: unrolling achieves similar improvements across model sizes (it
removes the loop-carried copies and unblocks ReduceScatter-accumulation
overlap at every scale).
"""

from bench_utils import run_once

from repro.experiments import fig14_unrolling


def test_figure14_unrolling(benchmark):
    rows = run_once(benchmark, fig14_unrolling.run)
    print()
    print(fig14_unrolling.format_report(rows))

    gains = []
    for row in rows:
        benchmark.extra_info[row.model] = f"gain={row.unrolling_gain:.3f}x"
        assert row.unrolling_gain >= 1.0
        assert row.normalized_time_with < 1.0  # still beats the baseline
        gains.append(row.unrolling_gain)

    # "Similar performance improvements across different model sizes":
    # the spread stays tight around the mean.
    mean = sum(gains) / len(gains)
    assert 1.02 < mean < 1.25
    assert max(gains) - min(gains) < 0.15
