"""Tables 1 and 2: the evaluated model configurations plus a parameter
audit rebuilding each model's size from its layer hyperparameters."""

import pytest

from bench_utils import run_once

from repro.experiments import tables
from repro.models.configs import TABLE1, TABLE2


def test_table1_configurations(benchmark):
    rows = run_once(benchmark, tables.table1_rows)
    print()
    print(tables.format_table1())
    assert len(rows) == 6
    # The dense models' rebuilt parameter counts track the paper's totals.
    audit = {cfg.name: tables.estimated_parameters(cfg) for cfg in TABLE1}
    assert audit["GPT_1T"] == pytest.approx(1.03e12, rel=0.05)
    assert audit["MLPerf_200B"] == pytest.approx(199e9, rel=0.05)
    assert audit["Meena_500B"] == pytest.approx(507e9, rel=0.15)
    for cfg in TABLE1:
        benchmark.extra_info[cfg.name] = f"{audit[cfg.name] / 1e9:.1f}B"


def test_table2_configurations(benchmark):
    rows = run_once(benchmark, tables.table2_rows)
    print()
    print(tables.format_table2())
    assert len(rows) == 6
    for cfg in TABLE2:
        rebuilt = tables.estimated_parameters(cfg)
        benchmark.extra_info[cfg.name] = f"{rebuilt / 1e9:.1f}B"
        assert rebuilt == pytest.approx(cfg.num_parameters, rel=0.05)
    # Weak scaling: chips double (roughly) with parameters.
    chip_counts = [cfg.num_chips for cfg in TABLE2]
    assert chip_counts == sorted(chip_counts)
