"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures at full
scale (Table 1 / Table 2 model configurations on their real mesh sizes),
records the reproduced numbers in ``extra_info``, prints the same
rows/series the paper reports, and asserts the reproduction-shape
properties (who wins, by roughly what factor).

Simulations are deterministic, so each benchmark runs a single round.
"""

import pytest

from repro.experiments.common import clear_cache


@pytest.fixture(autouse=True, scope="session")
def _fresh_cache():
    clear_cache()
    yield
