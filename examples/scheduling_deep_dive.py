"""Deep dive: how instruction scheduling creates (or destroys) overlap.

Takes one decomposed AllGather-Einsum loop and shows the instruction
order produced by the three schedulers — identity (no overlap), top-down
(ASAP starts / ALAP dones with rebalancing), and bottom-up (the paper's
Algorithm 2) — next to their simulated timelines. The printed sequences
make the start ... compute ... done windows visible.

Run:  python examples/scheduling_deep_dive.py
"""

from repro.core import OverlapConfig, compile_module
from repro.hlo import BF16, GraphBuilder, Shape
from repro.hlo.opcode import Opcode
from repro.perfsim import format_timeline, simulate_with_trace
from repro.sharding import DeviceMesh

NUM_DEVICES = 4


def build(mesh):
    builder = GraphBuilder("layer")
    x = builder.parameter(Shape((2048, 4096), BF16), name="x")
    w = builder.parameter(
        Shape((4096, 8192 // NUM_DEVICES), BF16), name="w"
    )
    gathered = builder.all_gather(w, 1, mesh.rings("x"))
    hidden = builder.einsum("bf,fh->bh", x, gathered)
    w2 = builder.parameter(
        Shape((8192 // NUM_DEVICES, 4096), BF16), name="w2"
    )
    gathered2 = builder.all_gather(w2, 0, mesh.rings("x"))
    builder.einsum("bh,hf->bf", hidden, gathered2)
    return builder.module


def shorthand(instruction):
    table = {
        Opcode.COLLECTIVE_PERMUTE_START: "S",
        Opcode.COLLECTIVE_PERMUTE_DONE: "D",
        Opcode.EINSUM: "E",
        Opcode.DYNAMIC_UPDATE_SLICE: "u",
        Opcode.DYNAMIC_SLICE: "s",
        Opcode.SLICE: "s",
        Opcode.CONCATENATE: "c",
        Opcode.MAXIMUM: "m",
        Opcode.PAD: "p",
        Opcode.ADD: "+",
        Opcode.ZEROS: "0",
        Opcode.PARAMETER: "P",
        Opcode.COPY: "y",
    }
    return table.get(instruction.opcode, "?")


def main() -> None:
    mesh = DeviceMesh.ring(NUM_DEVICES, "x")
    for scheduler in ("in_order", "top_down", "bottom_up"):
        module = build(mesh)
        compile_module(
            module, mesh,
            OverlapConfig(use_cost_model=False, scheduler=scheduler),
        )
        report, trace = simulate_with_trace(module, mesh)
        sequence = "".join(shorthand(i) for i in module)
        print(f"=== {scheduler} ===")
        print(f"  order:  {sequence}")
        print(
            f"  time {report.total_time * 1e3:7.3f} ms | "
            f"exposed transfers {report.permute_wait_time * 1e3:7.3f} ms | "
            f"hidden {report.hidden_transfer_time * 1e3:7.3f} ms"
        )
        print(format_timeline(trace, width=64))
        print()
    print("order legend: S=permute-start D=permute-done E=einsum u=update "
          "s=slice +=add P=parameter 0=zeros c/m/p=operand prep")
    print("timeline legend: #=compute C=blocking collective ==transfer "
          ".=stalled compute stream")


if __name__ == "__main__":
    main()
