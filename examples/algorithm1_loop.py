"""Algorithm 1, literally: the rolled Looped CollectiveEinsum.

The paper's pseudocode builds a *loop* whose body performs one shard's
partial einsum and one CollectivePermute, with the shard id computed from
the loop index. This example:

1. rewrites an AllGather-Einsum into that rolled ``while`` form and
   prints it (note the ``+1*i`` term in the dynamic-update-slice index —
   the loop-index-dependent shard id);
2. unrolls it by degree 2 (Section 5.4.1's optimization, as an actual
   compiler pass: trip count halves, the body doubles, shard indices step
   by two);
3. fully unrolls it and shows the guarded final permute disappearing;
4. executes all three forms plus the original on the multi-device
   executor and confirms they agree bit-for-bit.

Run:  python examples/algorithm1_loop.py
"""

import numpy as np

from repro.core import emit_rolled, find_candidates, unroll_while
from repro.hlo import F32, GraphBuilder, Shape, format_module
from repro.runtime import run_spmd
from repro.sharding import DeviceMesh

RING = 4


def build_module(mesh):
    builder = GraphBuilder("allgather-einsum")
    a = builder.parameter(Shape((16 // RING, 6), F32), name="A")
    b = builder.parameter(Shape((6, 8), F32), name="B")
    gathered = builder.all_gather(a, 0, mesh.rings("x"))
    builder.einsum("bf,fh->bh", gathered, b, name="C")
    return builder.module


def main() -> None:
    mesh = DeviceMesh.ring(RING, "x")

    rolled = build_module(mesh)
    (candidate,) = find_candidates(rolled)
    loop = emit_rolled(rolled, candidate, mesh)
    print("=== rolled (Algorithm 1) ===")
    print(format_module(rolled))
    print()
    print(f"--- loop body (trip count {loop.attrs['trip_count']}) ---")
    print(format_module(loop.attrs["body"]))
    print()

    degree2 = build_module(mesh)
    (candidate,) = find_candidates(degree2)
    loop2 = emit_rolled(degree2, candidate, mesh)
    (loop2,) = unroll_while(degree2, loop2, factor=2)
    print(f"=== degree-2 unrolled body (trip count "
          f"{loop2.attrs['trip_count']}) ===")
    print(format_module(loop2.attrs["body"]))
    print()

    unrolled = build_module(mesh)
    (candidate,) = find_candidates(unrolled)
    unroll_while(unrolled, emit_rolled(unrolled, candidate, mesh))
    print("=== fully unrolled ===")
    print(format_module(unrolled))
    print()

    rng = np.random.default_rng(0)
    a = rng.normal(size=(16, 6))
    b = rng.normal(size=(6, 8))
    arguments = {
        "A": [s.copy() for s in np.split(a, RING, axis=0)],
        "B": [b.copy() for _ in range(RING)],
    }
    original = build_module(mesh)
    reference = run_spmd(original, arguments, RING)[original.root.name]
    for tag, module in (
        ("rolled", rolled), ("degree-2", degree2), ("unrolled", unrolled)
    ):
        got = run_spmd(module, arguments, RING)[module.root.name]
        worst = max(np.abs(x - y).max() for x, y in zip(reference, got))
        print(f"{tag:9s} max |Δ| vs original = {worst:.2e}")
        assert worst < 1e-9


if __name__ == "__main__":
    main()
