"""Quickstart: decompose one AllGather-Einsum and see the overlap.

Builds the paper's Figure 4 scenario — a sharded operand AllGathered into
an einsum — then:

1. compiles it with the overlap pipeline (decomposition + async permutes
   + bottom-up scheduling),
2. proves on the multi-device functional executor that the transformed
   program computes exactly the same result,
3. simulates both versions on the TPU-v4-like performance model and
   reports the step time and how much transfer time was hidden.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import OverlapConfig, compile_module
from repro.hlo import BF16, F32, GraphBuilder, Shape, format_module
from repro.perfsim import simulate
from repro.runtime import run_spmd
from repro.sharding import DeviceMesh

NUM_DEVICES = 4
BATCH, FEATURE, HIDDEN = 4096, 8192, 16384


def build_module(mesh: DeviceMesh, dtype=BF16) -> "GraphBuilder.module":
    """x[B, F] @ AllGather(w[F, H/N]) -> y[B, H]."""
    builder = GraphBuilder("quickstart")
    x = builder.parameter(Shape((BATCH, FEATURE), dtype), name="x")
    w_shard = builder.parameter(
        Shape((FEATURE, HIDDEN // NUM_DEVICES), dtype), name="w"
    )
    w_full = builder.all_gather(w_shard, 1, mesh.rings("x"))
    builder.einsum("bf,fh->bh", x, w_full)
    return builder.module


def check_numerics(mesh: DeviceMesh) -> None:
    """Execute original vs compiled at a small size; they must agree."""
    rng = np.random.default_rng(0)
    small_batch, small_f, small_h = 8, 6, 16

    def build_small():
        builder = GraphBuilder("small")
        x = builder.parameter(Shape((small_batch, small_f), F32), name="x")
        w = builder.parameter(
            Shape((small_f, small_h // NUM_DEVICES), F32), name="w"
        )
        gathered = builder.all_gather(w, 1, mesh.rings("x"))
        builder.einsum("bf,fh->bh", x, gathered)
        return builder.module

    x = rng.normal(size=(small_batch, small_f))
    w = rng.normal(size=(small_f, small_h))
    arguments = {
        "x": [x.copy() for _ in range(NUM_DEVICES)],
        "w": [s.copy() for s in np.split(w, NUM_DEVICES, axis=1)],
    }

    reference_module = build_small()
    reference = run_spmd(reference_module, arguments, NUM_DEVICES)
    compiled = build_small()
    compile_module(compiled, mesh, OverlapConfig(use_cost_model=False))
    transformed = run_spmd(compiled, arguments, NUM_DEVICES)

    worst = max(
        np.abs(a - b).max()
        for a, b in zip(
            reference[reference_module.root.name],
            transformed[compiled.root.name],
        )
    )
    print(f"numerical check: max |original - decomposed| = {worst:.2e}")
    assert worst < 1e-9


def main() -> None:
    mesh = DeviceMesh.ring(NUM_DEVICES, "x")

    baseline = build_module(mesh)
    compile_module(baseline, mesh, OverlapConfig.baseline())
    baseline_report = simulate(baseline, mesh)

    overlapped = build_module(mesh)
    result = compile_module(overlapped, mesh, OverlapConfig())
    overlapped_report = simulate(overlapped, mesh)

    print("=== transformed program (first 24 instructions) ===")
    print("\n".join(format_module(overlapped).splitlines()[:25]))
    print("...")
    print()
    print(f"candidates found:      {result.candidates_found}")
    print(f"loops decomposed:      {result.decomposed}")
    loop = result.loops[0]
    print(
        f"loop shape:            {loop.iterations} iterations, "
        f"{len(loop.permutes)} permutes, bidirectional={loop.bidirectional}"
    )
    print()
    print(f"baseline step:         {baseline_report.total_time * 1e3:8.3f} ms "
          f"(exposed comm {baseline_report.exposed_communication_time * 1e3:.3f} ms)")
    print(f"overlapped step:       {overlapped_report.total_time * 1e3:8.3f} ms "
          f"(exposed comm {overlapped_report.exposed_communication_time * 1e3:.3f} ms)")
    print(f"hidden transfer time:  {overlapped_report.hidden_transfer_time * 1e3:8.3f} ms")
    print(f"speedup:               {baseline_report.total_time / overlapped_report.total_time:.2f}x")
    print()
    check_numerics(mesh)


if __name__ == "__main__":
    main()
