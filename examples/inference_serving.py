"""Section 7.1: hiding weight-gather latency in 2-way model-parallel
inference.

A recommendation-style MLP tower is served with its weights split across
two chips. Without overlap, every layer stalls on the AllGather that
reconstructs its weights. With the pair-split bidirectional decomposition
the peer half-shards stream over both link directions while the previous
layer's matmul runs, collapsing latency toward max(compute, transfer) —
the paper reports ~2x on an in-house model.

Run:  python examples/inference_serving.py
"""

from repro.experiments.inference import format_report, run


def main() -> None:
    print("sweeping serving batch size (feature=8192, hidden=32768, 24 layers)")
    print()
    for batch in (512, 1024, 2560, 4096):
        result = run(batch=batch)
        print(
            f"batch {batch:5d}: baseline {result.baseline.total_time * 1e3:7.2f} ms "
            f"-> overlapped {result.overlapped.total_time * 1e3:7.2f} ms "
            f"({result.latency_improvement:.2f}x, baseline comm "
            f"{result.baseline.communication_fraction:.0%})"
        )
    print()
    print("detailed report at the sweet spot:")
    print(format_report(run()))


if __name__ == "__main__":
    main()
