"""Simulate a training step of a Table 2 GPT model, baseline vs overlap.

The paper's headline workload: a weakly scaled GPT with 2D intra-layer
model parallelism (Figure 3 partitioning). The script compiles one layer
with and without the overlap pipeline, scales to the full layer stack,
and prints the step-time breakdown, FLOPS utilization and the list of
decomposed loops — the same quantities behind Figures 12 and 13.

Run:  python examples/train_gpt_step.py [model-name]
      (model-name from Table 1/2, default GPT_32B; e.g. GPT_1T, Meena_500B)
"""

import sys

from repro.core import OverlapConfig
from repro.models import by_name, simulate_step


def describe(tag, simulation):
    report = simulation.report
    print(f"--- {tag} ---")
    print(f"step time:            {report.total_time:9.3f} s")
    print(f"  compute:            {report.compute_time:9.3f} s")
    print(f"  exposed collectives:{report.sync_collective_time:9.3f} s")
    print(f"  exposed transfers:  {report.permute_wait_time:9.3f} s")
    print(f"  hidden transfers:   {report.hidden_transfer_time:9.3f} s")
    print(f"FLOPS utilization:    {report.flops_utilization:9.1%}")
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "GPT_32B"
    cfg = by_name(name)
    print(
        f"{cfg.name}: {cfg.num_parameters / 1e9:.0f}B parameters, "
        f"{cfg.num_layers} layers, {cfg.num_chips} chips "
        f"(mesh {cfg.mesh_x}x{cfg.mesh_y})"
    )
    print()

    baseline = simulate_step(cfg, OverlapConfig.baseline())
    optimized = simulate_step(cfg)
    describe("baseline compiler", baseline)
    describe("with overlap (decompose + async schedule)", optimized)

    speedup = baseline.report.total_time / optimized.report.total_time
    print(f"speedup: {speedup:.2f}x")
    print()
    print("decomposed loops per layer type:")
    for compilation, (kind, repeats, _) in zip(
        optimized.compilations, optimized.layer_reports
    ):
        print(
            f"  {kind} (x{repeats}): {compilation.decomposed} of "
            f"{compilation.candidates_found} candidates decomposed, "
            f"{len(compilation.candidates_skipped)} skipped"
        )
        for loop in compilation.loops[:4]:
            candidate = loop.candidate
            print(
                f"      {candidate.kind:24s} ring={candidate.ring_size:3d} "
                f"iters={loop.iterations:3d} bidirectional={loop.bidirectional}"
            )
        if len(compilation.loops) > 4:
            print(f"      ... and {len(compilation.loops) - 4} more")


if __name__ == "__main__":
    main()
