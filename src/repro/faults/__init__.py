"""Fault injection and resilience for the decomposed-collective runtime.

The paper's looped CollectiveEinsum turns one bulk collective into N
point-to-point ``CollectivePermute`` steps — N chances for a flaky link,
a straggling neighbour or a corrupted payload to surface mid-loop. This
package provides the machinery to *provoke* those faults reproducibly
and to survive them:

* :mod:`repro.faults.errors` — the typed :class:`FaultError` hierarchy;
  every runtime failure is structured and carries the seed to replay it.
* :mod:`repro.faults.plan` — declarative, seeded :class:`FaultPlan`s
  describing which transfers are delayed/dropped/duplicated/corrupted,
  which devices straggle or die, and which links go down.
* :mod:`repro.faults.injector` — the stateful :class:`FaultInjector`
  that applies a plan to a run.
* :mod:`repro.faults.conditions` — :class:`ChannelConditions`, the
  perf-simulator-facing model of degraded bandwidth and stragglers.
* :mod:`repro.faults.chaos` — the randomized chaos harness behind
  ``repro chaos`` and ``tests/test_chaos.py``.
"""

from repro.faults.conditions import ChannelConditions
from repro.faults.errors import (
    DeviceFailureError,
    FaultError,
    InvalidPermuteError,
    LinkDownError,
    PayloadCorruptionError,
    ReplicaGroupError,
    ShapeFaultError,
    TransferTimeoutError,
)
from repro.faults.injector import FaultInjector, TransferOutcome
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "ChannelConditions",
    "DeviceFailureError",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InvalidPermuteError",
    "LinkDownError",
    "PayloadCorruptionError",
    "ReplicaGroupError",
    "ShapeFaultError",
    "TransferOutcome",
    "TransferTimeoutError",
]
