"""Typed fault errors.

Every abnormal condition the resilient runtime can hit maps to exactly
one class here, and every instance is *replayable*: when the failure was
produced under a seeded :class:`repro.faults.plan.FaultPlan` the message
carries the seed, so ``FaultPlan.random(seed, ...)`` regenerates the
schedule that triggered it. Nothing in the runtime is allowed to fail
with a bare ``ValueError``/``RuntimeError`` or — worse — to deliver
corrupted numbers silently: tests assert that every chaos run either
recovers to oracle-exact output or raises one of these.
"""

from __future__ import annotations

from typing import Any, Optional


class FaultError(RuntimeError):
    """Base class of every structured fault raised by the runtime.

    ``seed`` is the fault-plan seed that reproduces the failing schedule
    (``None`` for faults not produced by an injector, e.g. validation
    errors on hand-written programs). Remaining keyword arguments are
    kept in ``context`` for programmatic inspection and appended to the
    message for humans.
    """

    def __init__(
        self, message: str, *, seed: Optional[int] = None, **context: Any
    ) -> None:
        self.seed = seed
        self.context = context
        if context:
            details = ", ".join(f"{k}={v!r}" for k, v in context.items())
            message = f"{message} ({details})"
        if seed is not None:
            message = f"{message} [replay with seed={seed}]"
        super().__init__(message)

    def attach_seed(self, seed: Optional[int]) -> "FaultError":
        """Stamp a replay seed onto an error that lacks one.

        Used by recovery wrappers (fallback, the degradation ladder)
        whose later rungs run without an injector: a fault raised there
        still happened under the original seeded schedule, so the error
        must carry that seed for replay. A seed already present wins;
        returns ``self`` for raise-chaining.
        """
        if seed is None or self.seed is not None:
            return self
        self.seed = seed
        suffix = f"[replay with seed={seed}]"
        if self.args:
            self.args = (f"{self.args[0]} {suffix}",) + self.args[1:]
        else:
            self.args = (suffix,)
        return self


class TransferTimeoutError(FaultError):
    """A CollectivePermute transfer exhausted its retry budget."""


class LinkDownError(FaultError):
    """A link was flagged bad (persistent failure, not a transient)."""


class PayloadCorruptionError(FaultError):
    """A delivered payload failed the NaN/Inf or checksum guardrail and
    could not be repaired by retransmission."""


class ShapeFaultError(FaultError):
    """A delivered payload's shape disagrees with the instruction's
    declared result shape."""


class DeviceFailureError(FaultError):
    """A device died mid-run (unrecoverable by retry or link fallback)."""


class InvalidPermuteError(FaultError, ValueError):
    """Malformed CollectivePermute source→target pairs (duplicate
    source/target or out-of-range device ids)."""


class ReplicaGroupError(FaultError, ValueError):
    """A device is missing from (or misplaced in) the replica groups of a
    collective."""


#: Faults the graceful-degradation wrapper may recover from by falling
#: back to the undecomposed program: a bad link only breaks the
#: point-to-point permute chain, the bulk collective routes around it.
LINK_FAULTS = (TransferTimeoutError, LinkDownError)
