"""The stateful fault injector: applies a :class:`FaultPlan` to a run.

The injector is the only mutable piece of the fault machinery. It hands
out transfer indices in issue order, answers "what happens to attempt
``a`` of transfer ``t``?", corrupts payloads with its own seeded
generator (independent of the payload data), and tracks the instruction
counter that triggers hard device failures. One injector serves exactly
one run; build a fresh one (same plan) to replay.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

#: Entropy stream tag for the corruption generator, so corrupted values
#: are decoupled from the plan-drawing stream but still seed-determined.
_CORRUPT_STREAM = 0xC0


@dataclasses.dataclass(frozen=True)
class TransferOutcome:
    """What the fabric does to one delivery attempt of one transfer."""

    delay: float = 0.0
    dropped: bool = False
    duplicated: bool = False
    corrupt: Optional[FaultKind] = None   # CORRUPT_NAN / CORRUPT_BITFLIP
    link_down: bool = False

    @property
    def clean(self) -> bool:
        return (
            not self.dropped
            and not self.link_down
            and self.corrupt is None
            and self.delay == 0.0
            and not self.duplicated
        )


CLEAN = TransferOutcome()


class FaultInjector:
    """Applies one :class:`FaultPlan` to one run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._next_transfer = 0
        self._instructions_executed = 0
        self._corrupt_rng = np.random.default_rng(
            [plan.seed, _CORRUPT_STREAM]
        )

    @property
    def seed(self) -> int:
        return self.plan.seed

    # --- transfers --------------------------------------------------------------

    def next_transfer_index(self) -> int:
        """Allocate the issue-order index of the next permute transfer."""
        index = self._next_transfer
        self._next_transfer += 1
        return index

    def transfer_outcome(
        self,
        transfer_index: int,
        attempt: int,
        direction: Optional[str] = None,
    ) -> TransferOutcome:
        """The fabric's behaviour for one delivery attempt.

        Transfer-scoped specs fail the first ``spec.attempts`` attempts
        and then let retransmission succeed; a LINK_DOWN spec fails every
        attempt of every transfer at or past its index (scoped to
        ``direction`` when the spec names one and the caller routes the
        transfer).
        """
        if self.plan.link_down_at(transfer_index, direction) is not None:
            return TransferOutcome(link_down=True, dropped=True)
        delay = 0.0
        dropped = False
        duplicated = False
        corrupt: Optional[FaultKind] = None
        for spec in self.plan.transfer_specs(transfer_index):
            if attempt >= spec.attempts:
                continue
            if spec.kind is FaultKind.DELAY:
                delay = max(delay, spec.delay)
            elif spec.kind is FaultKind.DROP:
                dropped = True
            elif spec.kind is FaultKind.DUPLICATE:
                duplicated = True
            else:  # CORRUPT_NAN / CORRUPT_BITFLIP
                corrupt = spec.kind
        return TransferOutcome(
            delay=delay, dropped=dropped, duplicated=duplicated,
            corrupt=corrupt,
        )

    def corrupt_payload(
        self, payload: np.ndarray, mode: FaultKind
    ) -> np.ndarray:
        """Return a corrupted copy of ``payload`` (the input is untouched).

        ``CORRUPT_NAN`` overwrites one element with NaN; ``CORRUPT_BITFLIP``
        flips one random bit of one element — which may yield NaN, Inf or
        a perfectly finite wrong number, exactly the case an NaN guard
        alone would miss (the checksum guardrail catches it).
        """
        corrupted = np.array(payload, dtype=np.float64, copy=True)
        if corrupted.size == 0:
            return corrupted
        flat = corrupted.reshape(-1)
        position = int(self._corrupt_rng.integers(flat.size))
        if mode is FaultKind.CORRUPT_NAN:
            flat[position] = np.nan
        elif mode is FaultKind.CORRUPT_BITFLIP:
            bits = flat[position : position + 1].view(np.uint64)
            bits ^= np.uint64(1) << np.uint64(
                self._corrupt_rng.integers(64)
            )
        else:
            raise ValueError(f"not a corruption mode: {mode}")
        return corrupted

    def pick(self, n: int) -> int:
        """Deterministically choose one of ``n`` alternatives (which pair
        of a permute gets corrupted, etc.)."""
        return int(self._corrupt_rng.integers(n))

    # --- compute ----------------------------------------------------------------

    def compute_factor(self, device: int) -> float:
        """Straggler slowdown factor for ``device``."""
        return self.plan.straggler_factor(device)

    def on_instruction(self) -> Optional[FaultSpec]:
        """Advance the instruction counter; returns a DEVICE_FAIL spec if
        the plan kills a device at this instruction index."""
        spec = self.plan.device_failure_at(self._instructions_executed)
        self._instructions_executed += 1
        return spec
