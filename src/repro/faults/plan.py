"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a pure description of everything that will go
wrong during one run: which transfers are delayed, dropped, duplicated
or corrupted (and for how many retry attempts), which devices straggle
or fail hard at instruction *k*, and which links are permanently down.
Plans are frozen and fully determined by their seed —
``FaultPlan.random(seed, ...)`` always regenerates the same schedule, so
any failure carrying the seed is replayable.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Tuple

import numpy as np


class FaultKind(enum.Enum):
    """The vocabulary of injectable faults."""

    DELAY = "delay"                  # transfer arrives late
    DROP = "drop"                    # transfer never arrives (that attempt)
    DUPLICATE = "duplicate"          # transfer delivered twice
    CORRUPT_NAN = "corrupt-nan"      # payload element overwritten with NaN
    CORRUPT_BITFLIP = "corrupt-bitflip"  # one bit of one element flipped
    STRAGGLER = "straggler"          # device computes slower
    DEVICE_FAIL = "device-fail"      # device dies at instruction k
    LINK_DOWN = "link-down"          # link permanently bad from transfer k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultKind.{self.name}"


#: Kinds that target an individual transfer attempt.
TRANSFER_FAULTS = frozenset(
    {
        FaultKind.DELAY,
        FaultKind.DROP,
        FaultKind.DUPLICATE,
        FaultKind.CORRUPT_NAN,
        FaultKind.CORRUPT_BITFLIP,
    }
)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    * ``transfer_index`` — which CollectivePermute transfer (counted in
      issue order across the run) the fault hits; transfer faults and
      ``LINK_DOWN`` use it.
    * ``attempts`` — how many consecutive delivery attempts the fault
      keeps failing (retransmission recovers afterwards).
    * ``delay`` — injected latency in seconds (``DELAY``).
    * ``magnitude`` — slowdown factor for ``STRAGGLER`` (>= 1).
    * ``device`` — target device for ``STRAGGLER``/``DEVICE_FAIL``.
    * ``step`` — instruction index at which ``DEVICE_FAIL`` strikes.
    * ``direction`` — optionally scope a ``LINK_DOWN`` to one ring
      direction (``"minus"``/``"plus"``); ``None`` (the default, and
      what :meth:`FaultPlan.random` draws) downs both directions.
      Direction-scoped outages are what the degradation ladder's
      unidirectional rung routes around.
    """

    kind: FaultKind
    transfer_index: Optional[int] = None
    attempts: int = 1
    delay: float = 0.0
    magnitude: float = 1.0
    device: Optional[int] = None
    step: int = 0
    direction: Optional[str] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.direction is not None:
            if self.kind is not FaultKind.LINK_DOWN:
                raise ValueError("direction only applies to link-down")
            if self.direction not in ("minus", "plus"):
                raise ValueError(
                    f"direction must be 'minus' or 'plus', got "
                    f"{self.direction!r}"
                )
        if self.kind in TRANSFER_FAULTS or self.kind is FaultKind.LINK_DOWN:
            if self.transfer_index is None:
                raise ValueError(f"{self.kind.value} needs a transfer_index")
        if self.kind in (FaultKind.STRAGGLER, FaultKind.DEVICE_FAIL):
            if self.device is None:
                raise ValueError(f"{self.kind.value} needs a device")
        if self.kind is FaultKind.STRAGGLER and self.magnitude < 1.0:
            raise ValueError("straggler magnitude must be >= 1")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of faults for one run."""

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    @staticmethod
    def healthy(seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing (useful as a control)."""
        return FaultPlan(seed=seed, specs=())

    @staticmethod
    def random(
        seed: int,
        num_devices: int,
        max_transfer_index: int = 24,
        intensity: float = 0.5,
        timeout_hint: float = 1e-3,
    ) -> "FaultPlan":
        """Draw a reproducible random plan.

        ``intensity`` in [0, 1] scales the expected number of faults;
        ``timeout_hint`` should match the runtime's per-attempt timeout
        so injected delays straddle the timeout boundary (some recover,
        some do not). The same ``(seed, num_devices, max_transfer_index,
        intensity)`` always yields the same plan.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        rng = np.random.default_rng(seed)
        specs: List[FaultSpec] = []
        num_faults = int(rng.binomial(6, intensity))
        kinds = list(FaultKind)
        for _ in range(num_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            transfer = int(rng.integers(max_transfer_index))
            attempts = int(rng.integers(1, 4))
            if kind is FaultKind.DELAY:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        transfer_index=transfer,
                        attempts=attempts,
                        delay=float(rng.uniform(0.1, 2.5)) * timeout_hint,
                    )
                )
            elif kind in (
                FaultKind.DROP,
                FaultKind.DUPLICATE,
                FaultKind.CORRUPT_NAN,
                FaultKind.CORRUPT_BITFLIP,
            ):
                specs.append(
                    FaultSpec(
                        kind=kind, transfer_index=transfer, attempts=attempts
                    )
                )
            elif kind is FaultKind.STRAGGLER:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        device=int(rng.integers(num_devices)),
                        magnitude=float(rng.uniform(1.1, 4.0)),
                    )
                )
            elif kind is FaultKind.DEVICE_FAIL:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        device=int(rng.integers(num_devices)),
                        step=int(rng.integers(1, 64)),
                    )
                )
            else:  # LINK_DOWN
                specs.append(
                    FaultSpec(kind=kind, transfer_index=transfer)
                )
        return FaultPlan(seed=seed, specs=tuple(specs))

    # --- queries ----------------------------------------------------------------

    def transfer_specs(self, transfer_index: int) -> List[FaultSpec]:
        """Transfer-scoped faults hitting the given transfer."""
        return [
            spec
            for spec in self.specs
            if spec.kind in TRANSFER_FAULTS
            and spec.transfer_index == transfer_index
        ]

    def link_down_at(
        self, transfer_index: int, direction: Optional[str] = None
    ) -> Optional[FaultSpec]:
        """The LINK_DOWN spec active at ``transfer_index``, if any.

        A downed link stays down: the first transfer at or after the
        spec's index (and every later one) fails permanently.
        ``direction`` is the ring direction the transfer travels; a
        direction-scoped spec only hits transfers in its direction
        (``None`` on either side matches everything — un-routed callers
        keep the legacy both-directions behaviour).
        """
        for spec in self.specs:
            if (
                spec.kind is FaultKind.LINK_DOWN
                and transfer_index >= spec.transfer_index
                and (
                    spec.direction is None
                    or direction is None
                    or spec.direction == direction
                )
            ):
                return spec
        return None

    def straggler_factor(self, device: int) -> float:
        """Compound compute-slowdown factor for ``device`` (1.0 = healthy)."""
        factor = 1.0
        for spec in self.specs:
            if spec.kind is FaultKind.STRAGGLER and spec.device == device:
                factor *= spec.magnitude
        return factor

    def device_failure_at(self, step: int) -> Optional[FaultSpec]:
        """The DEVICE_FAIL spec striking at instruction index ``step``."""
        for spec in self.specs:
            if spec.kind is FaultKind.DEVICE_FAIL and spec.step == step:
                return spec
        return None

    def __repr__(self) -> str:
        kinds = ", ".join(s.kind.value for s in self.specs) or "healthy"
        return f"FaultPlan(seed={self.seed}, [{kinds}])"
