"""Chaos harness: randomized, seeded fault schedules over golden modules.

Every chaos run derives *everything* — golden module, mesh size, overlap
config, retry policy and fault plan — from one integer seed, so the seed
embedded in any :class:`FaultError` replays the exact failing schedule
via :func:`run_one`. The harness's contract, enforced by
``tests/test_chaos.py`` and the ``repro chaos`` CLI: every run either
recovers to oracle-exact output (directly or through the undecomposed
fallback) or fails with a typed, seeded error. Anything else — a wrong
answer without an error, an untyped exception, an error without its
replay seed — is a **violation** and fails the harness.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module
from repro.faults.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import F32
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape
from repro.obs.events import ADAPT
from repro.obs.tracer import Tracer
from repro.runtime.engine import Engine, create_engine
from repro.runtime.resilient import RetryPolicy, run_with_fallback
from repro.sharding.mesh import DeviceMesh

#: One compiled engine shared by every chaos run in the process: the
#: golden modules are rebuilt per run but content-fingerprint to the
#: same plans, so a chaos batch lowers each (case, ring) oracle once.
#: Runs accept an ``oracle`` override (any bit-identical engine — the
#: parallel backend qualifies); it replaces this default, never the
#: seed-determined draw sequence.
_ORACLE_ENGINE = create_engine("compiled")

#: Outcome labels.
RECOVERED = "recovered"            # primary ran through, oracle-exact
ADAPTED = "adapted"                # recovered on an intermediate ladder rung
FALLBACK = "fallback"              # degraded to the sync program, exact
TYPED_FAILURE = "typed-failure"    # a seeded FaultError (acceptable)
SILENT_CORRUPTION = "silent-corruption"      # wrong numbers, no error
UNTYPED_FAILURE = "untyped-failure"          # a non-FaultError exception
UNSEEDED_FAILURE = "unseeded-failure"        # FaultError missing its seed

#: Outcomes that violate the resilience contract.
VIOLATIONS = (SILENT_CORRUPTION, UNTYPED_FAILURE, UNSEEDED_FAILURE)


# --- golden modules --------------------------------------------------------------


def _allgather_einsum(mesh: DeviceMesh) -> HloModule:
    builder = GraphBuilder("ag_einsum")
    a = builder.parameter(Shape((2, 3), F32), name="a")
    w = builder.parameter(Shape((3, 5), F32), name="w")
    gathered = builder.all_gather(a, 0, mesh.rings("x"))
    builder.einsum("bf,fh->bh", gathered, w, name="out")
    return builder.module


def _einsum_reducescatter(mesh: DeviceMesh) -> HloModule:
    builder = GraphBuilder("einsum_rs")
    a = builder.parameter(Shape((4, 3), F32), name="a")
    w = builder.parameter(Shape((3, 8), F32), name="w")
    out = builder.einsum("bf,fh->bh", a, w, name="partial")
    builder.reduce_scatter(out, 1, mesh.rings("x"))
    return builder.module


def _mlp_chain(mesh: DeviceMesh) -> HloModule:
    builder = GraphBuilder("mlp_chain")
    a = builder.parameter(Shape((2, 3), F32), name="a")
    w = builder.parameter(Shape((3, 8), F32), name="w")
    gathered = builder.all_gather(a, 0, mesh.rings("x"))
    out = builder.einsum("bf,fh->bh", gathered, w, name="h")
    builder.reduce_scatter(out, 0, mesh.rings("x"))
    return builder.module


def _shards(rng, n, shape):
    return [rng.normal(size=shape) for _ in range(n)]


def _replicated(rng, n, shape):
    value = rng.normal(size=shape)
    return [value.copy() for _ in range(n)]


def _args_sharded_a(mesh, rng, a_shape, w_shape):
    n = mesh.num_devices
    return {
        "a": _shards(rng, n, a_shape),
        "w": _replicated(rng, n, w_shape),
    }


@dataclasses.dataclass(frozen=True)
class GoldenCase:
    """One golden module family the chaos harness exercises."""

    name: str
    rings: Tuple[int, ...]
    build: Callable[[DeviceMesh], HloModule]
    make_arguments: Callable[
        [DeviceMesh, np.random.Generator], Dict[str, List[np.ndarray]]
    ]


GOLDEN_CASES: Tuple[GoldenCase, ...] = (
    GoldenCase(
        "allgather-einsum", (2, 4), _allgather_einsum,
        lambda mesh, rng: _args_sharded_a(mesh, rng, (2, 3), (3, 5)),
    ),
    GoldenCase(
        "einsum-reducescatter", (2, 4), _einsum_reducescatter,
        lambda mesh, rng: _args_sharded_a(mesh, rng, (4, 3), (3, 8)),
    ),
    GoldenCase(
        "mlp-chain", (2, 4), _mlp_chain,
        lambda mesh, rng: _args_sharded_a(mesh, rng, (2, 3), (3, 8)),
    ),
)

SCHEDULERS = ("bottom_up", "top_down", "in_order")


# --- one run ---------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ChaosRunResult:
    """The audited outcome of one seeded chaos run."""

    seed: int
    case: str
    ring: int
    scheduler: str
    unroll: bool
    bidirectional: bool
    plan: str
    outcome: str
    error_type: Optional[str] = None
    message: Optional[str] = None
    retries: int = 0
    used_fallback: bool = False
    ladder_state: Optional[str] = None  # final rung (ladder mode only)
    transitions: int = 0                # ladder descents taken

    @property
    def is_violation(self) -> bool:
        return self.outcome in VIOLATIONS

    @property
    def signature(self) -> Tuple:
        """Everything seed-determined about the run. Excludes ``message``:
        instruction names embed a process-global counter, so only the
        behavioural fields are reproducible across processes."""
        return (
            self.seed, self.case, self.ring, self.scheduler, self.unroll,
            self.bidirectional, self.plan, self.outcome, self.error_type,
            self.retries, self.used_fallback, self.ladder_state,
            self.transitions,
        )


def run_one(
    seed: int,
    intensity: float = 0.5,
    atol: float = 1e-9,
    tracer: Optional[Tracer] = None,
    oracle: Optional[Engine] = None,
) -> ChaosRunResult:
    """Execute one fully seed-determined chaos schedule.

    ``tracer`` (optional) records the resilient run's spans, retry
    lanes and counters, and tallies the audited outcome under
    ``chaos.<outcome>`` — so a traced chaos batch shows where faulty
    schedules spent their time. ``oracle`` (optional) replaces the
    shared compiled oracle engine; the run's seed-derived draw sequence
    is independent of it, so signatures stay stable across oracles."""
    rng = np.random.default_rng([seed, 1])
    case = GOLDEN_CASES[int(rng.integers(len(GOLDEN_CASES)))]
    ring = int(case.rings[int(rng.integers(len(case.rings)))])
    mesh = DeviceMesh.ring(ring)
    config = OverlapConfig(
        use_cost_model=False,
        scheduler=SCHEDULERS[int(rng.integers(len(SCHEDULERS)))],
        unroll=bool(rng.integers(2)),
        bidirectional=bool(rng.integers(2)),
    )
    policy = RetryPolicy(max_attempts=int(rng.integers(2, 6)))

    arguments = case.make_arguments(mesh, rng)
    # The oracle runs on the compiled engine by default (bit-identical
    # to the interpreter, ~an order of magnitude faster over a batch).
    oracle_engine = oracle if oracle is not None else _ORACLE_ENGINE
    oracle_module = case.build(mesh)
    oracle_values = oracle_engine.run(oracle_module, arguments, mesh=mesh)[
        oracle_module.root.name
    ]

    primary = case.build(mesh)
    compile_module(primary, mesh, config)
    fallback = case.build(mesh)
    num_transfers = primary.count(Opcode.COLLECTIVE_PERMUTE_START)
    plan = FaultPlan.random(
        seed,
        num_devices=mesh.num_devices,
        max_transfer_index=max(1, num_transfers),
        intensity=intensity,
        timeout_hint=policy.timeout,
    )

    def describe(outcome, error=None, retries=0, used_fallback=False):
        if tracer is not None:
            tracer.count(f"chaos.{outcome}")
        return ChaosRunResult(
            seed=seed,
            case=case.name,
            ring=ring,
            scheduler=config.scheduler,
            unroll=config.unroll,
            bidirectional=config.bidirectional,
            plan=repr(plan),
            outcome=outcome,
            error_type=type(error).__name__ if error is not None else None,
            message=str(error) if error is not None else None,
            retries=retries,
            used_fallback=used_fallback,
        )

    try:
        result = run_with_fallback(
            primary,
            fallback,
            arguments,
            mesh.num_devices,
            injector=FaultInjector(plan),
            policy=policy,
            tracer=tracer,
        )
    except FaultError as error:
        if f"seed={seed}" not in str(error):
            return describe(UNSEEDED_FAILURE, error)
        return describe(TYPED_FAILURE, error)
    except Exception as error:  # noqa: BLE001 - the harness audits these
        return describe(UNTYPED_FAILURE, error)

    worst = max(
        float(np.abs(got - want).max())
        for got, want in zip(result.root, oracle_values)
    )
    if worst > atol:
        return describe(
            SILENT_CORRUPTION,
            error=FaultError(
                f"output diverges from oracle by {worst:.3e} without an "
                f"error",
                seed=seed,
            ),
            retries=result.stats.retries,
            used_fallback=result.used_fallback,
        )
    return describe(
        FALLBACK if result.used_fallback else RECOVERED,
        retries=result.stats.retries,
        used_fallback=result.used_fallback,
    )


# --- ladder mode -----------------------------------------------------------------


def _with_directions(plan: FaultPlan, rng: np.random.Generator) -> FaultPlan:
    """Scope each LINK_DOWN spec to a seeded ring direction.

    A third of outages stay fabric-wide (``None``), the rest down only
    one direction — the outages the ladder's unidirectional rung can
    route around. Applied as a post-pass so :meth:`FaultPlan.random`'s
    draw sequence (and thus every non-ladder signature) is untouched.
    """
    specs = []
    for spec in plan.specs:
        if spec.kind is FaultKind.LINK_DOWN:
            choice = (None, "minus", "plus")[int(rng.integers(3))]
            specs.append(dataclasses.replace(spec, direction=choice))
        else:
            specs.append(spec)
    return FaultPlan(seed=plan.seed, specs=tuple(specs))


def run_one_ladder(
    seed: int,
    intensity: float = 0.5,
    atol: float = 1e-9,
    tracer: Optional[Tracer] = None,
    oracle: Optional[Engine] = None,
) -> ChaosRunResult:
    """One seeded chaos schedule through the full degradation ladder.

    Derives the same case/ring/config/policy as :func:`run_one` from the
    same seed, then executes via
    :func:`repro.adapt.ladder.run_with_ladder` instead of the one-cliff
    fallback, with LINK_DOWN faults direction-scoped by a separate
    seeded stream. The audit adds two ladder-specific checks: every
    transition object must carry the replay seed, and every transition
    must appear as an ``ADAPT`` trace event embedding ``seed=<seed>`` —
    a transition without its seed is an :data:`UNSEEDED_FAILURE`
    violation even if the numbers come out right.
    """
    from repro.adapt.ladder import run_with_ladder

    rng = np.random.default_rng([seed, 1])
    case = GOLDEN_CASES[int(rng.integers(len(GOLDEN_CASES)))]
    ring = int(case.rings[int(rng.integers(len(case.rings)))])
    mesh = DeviceMesh.ring(ring)
    config = OverlapConfig(
        use_cost_model=False,
        scheduler=SCHEDULERS[int(rng.integers(len(SCHEDULERS)))],
        unroll=bool(rng.integers(2)),
        bidirectional=bool(rng.integers(2)),
    )
    policy = RetryPolicy(max_attempts=int(rng.integers(2, 6)))

    arguments = case.make_arguments(mesh, rng)
    oracle_engine = oracle if oracle is not None else _ORACLE_ENGINE
    oracle_module = case.build(mesh)
    oracle_values = oracle_engine.run(oracle_module, arguments, mesh=mesh)[
        oracle_module.root.name
    ]

    probe = case.build(mesh)
    compile_module(probe, mesh, config)
    num_transfers = probe.count(Opcode.COLLECTIVE_PERMUTE_START)
    plan = _with_directions(
        FaultPlan.random(
            seed,
            num_devices=mesh.num_devices,
            max_transfer_index=max(1, num_transfers),
            intensity=intensity,
            timeout_hint=policy.timeout,
        ),
        np.random.default_rng([seed, 7]),
    )
    # The ladder's own tracer, so the ADAPT-event audit sees exactly
    # this run's transitions even when the caller shares a tracer.
    audit = Tracer()

    def describe(
        outcome, error=None, retries=0, used_fallback=False,
        ladder_state=None, transitions=0,
    ):
        if tracer is not None:
            tracer.count(f"chaos.{outcome}")
        return ChaosRunResult(
            seed=seed,
            case=case.name,
            ring=ring,
            scheduler=config.scheduler,
            unroll=config.unroll,
            bidirectional=config.bidirectional,
            plan=repr(plan),
            outcome=outcome,
            error_type=type(error).__name__ if error is not None else None,
            message=str(error) if error is not None else None,
            retries=retries,
            used_fallback=used_fallback,
            ladder_state=ladder_state,
            transitions=transitions,
        )

    try:
        result = run_with_ladder(
            lambda: case.build(mesh),
            mesh,
            arguments,
            base_config=config,
            injector=FaultInjector(plan),
            policy=policy,
            tracer=audit,
        )
    except FaultError as error:
        if f"seed={seed}" not in str(error):
            return describe(UNSEEDED_FAILURE, error)
        return describe(TYPED_FAILURE, error)
    except Exception as error:  # noqa: BLE001 - the harness audits these
        return describe(UNTYPED_FAILURE, error)

    state = result.state.name.lower()
    descents = len(result.transitions)
    adapt_events = [e for e in audit.events if e.kind == ADAPT]
    if (
        len(adapt_events) != descents
        or any(f"seed={seed}" not in e.name for e in adapt_events)
        or any(t.seed != seed for t in result.transitions)
    ):
        return describe(
            UNSEEDED_FAILURE,
            error=FaultError(
                "ladder transition missing its typed, seeded trace event",
                seed=seed,
            ),
            retries=result.stats.retries,
            used_fallback=result.used_fallback,
            ladder_state=state,
            transitions=descents,
        )

    worst = max(
        float(np.abs(got - want).max())
        for got, want in zip(result.root, oracle_values)
    )
    if worst > atol:
        return describe(
            SILENT_CORRUPTION,
            error=FaultError(
                f"output diverges from oracle by {worst:.3e} without an "
                f"error",
                seed=seed,
            ),
            retries=result.stats.retries,
            used_fallback=result.used_fallback,
            ladder_state=state,
            transitions=descents,
        )
    if result.used_fallback:
        outcome = FALLBACK
    elif result.transitions:
        outcome = ADAPTED
    else:
        outcome = RECOVERED
    return describe(
        outcome,
        retries=result.stats.retries,
        used_fallback=result.used_fallback,
        ladder_state=state,
        transitions=descents,
    )


# --- batches ---------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """The audited outcome of one seeded chaos batch."""

    seed: int
    intensity: float
    runs: Tuple[ChaosRunResult, ...]

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for run in self.runs:
            counts[run.outcome] = counts.get(run.outcome, 0) + 1
        return counts

    @property
    def violations(self) -> List[ChaosRunResult]:
        return [run for run in self.runs if run.is_violation]

    @property
    def ok(self) -> bool:
        return not self.violations


def run_chaos(
    seed: int,
    runs: int,
    intensity: float = 0.5,
    ladder: bool = False,
    oracle: Optional[Engine] = None,
) -> ChaosReport:
    """Run ``runs`` independent seeded schedules derived from ``seed``.

    ``ladder=True`` executes each schedule through the full degradation
    ladder (:func:`run_one_ladder`) instead of the one-cliff fallback.
    ``oracle`` (optional) replaces the shared compiled oracle engine for
    every run in the batch.
    """
    run_seeds = [
        int(s) for s in
        np.random.SeedSequence(seed).generate_state(runs, dtype=np.uint32)
    ]
    runner = run_one_ladder if ladder else run_one
    results = tuple(
        runner(s, intensity=intensity, oracle=oracle) for s in run_seeds
    )
    return ChaosReport(seed=seed, intensity=intensity, runs=results)


def format_report(report: ChaosReport) -> str:
    """Human-readable summary (always names the batch seed)."""
    lines = [
        f"chaos: {len(report.runs)} runs, batch seed={report.seed}, "
        f"intensity={report.intensity}",
    ]
    for outcome in (
        RECOVERED, ADAPTED, FALLBACK, TYPED_FAILURE, *VIOLATIONS
    ):
        count = report.counts.get(outcome, 0)
        if count or outcome in (RECOVERED, FALLBACK, TYPED_FAILURE):
            lines.append(f"  {outcome:18} {count:4d}")
    retries = sum(run.retries for run in report.runs)
    lines.append(f"  total retransmissions  {retries}")
    if report.ok:
        lines.append("contract held: every run recovered or failed typed")
    else:
        lines.append("CONTRACT VIOLATIONS:")
        for run in report.violations:
            lines.append(
                f"  seed={run.seed} case={run.case} ring={run.ring} "
                f"[{run.outcome}] {run.error_type}: {run.message}"
            )
    return "\n".join(lines)
