"""Degraded-channel model for the performance simulators.

:class:`ChannelConditions` describes a *non-ideal but functioning*
fabric: links running below nominal bandwidth and devices computing
slower than spec. The perf simulators consume it to quantify how much
worse exposed communication gets for decomposed vs. baseline programs
under tail effects — the functional fault injection lives in
:mod:`repro.faults.injector`, this module only reshapes *time*.

Scales are speed fractions in (0, 1]: ``0.25`` means the resource runs
at a quarter of nominal speed (durations multiply by 4). Synchronous
ring collectives traverse every link of the ring, so they are gated by
the *slowest* link — :meth:`collective_multiplier` reflects that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Tuple

#: (axis, direction) — the simulator's per-link bandwidth resource key.
Resource = Tuple[str, str]


def _check_scales(scales, what: str) -> None:
    for key, scale in scales.items():
        if not scale > 0:
            raise ValueError(f"{what} scale for {key!r} must be > 0")


@dataclasses.dataclass(frozen=True)
class ChannelConditions:
    """Bandwidth/compute degradation applied to a simulated run.

    * ``link_scale`` — per-(axis, direction) bandwidth as a fraction of
      nominal; missing resources run at ``1.0``.
    * ``compute_scale`` — the representative device's compute speed
      fraction (used by the symmetric single-device walk).
    * ``per_device_compute_scale`` — per-device overrides for the
      multi-device walk (stragglers); devices not listed use
      ``compute_scale``.
    * ``per_device_link_scale`` — extra scale on a device's *outgoing*
      links (multi-device walk only): one chip with a flaky serdes slows
      every transfer it sources.
    """

    link_scale: Mapping[Resource, float] = dataclasses.field(
        default_factory=dict
    )
    compute_scale: float = 1.0
    per_device_compute_scale: Mapping[int, float] = dataclasses.field(
        default_factory=dict
    )
    per_device_link_scale: Mapping[int, float] = dataclasses.field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.compute_scale > 0:
            raise ValueError("compute_scale must be > 0")
        _check_scales(self.link_scale, "link")
        _check_scales(self.per_device_compute_scale, "compute")
        _check_scales(self.per_device_link_scale, "device link")

    # --- constructors -----------------------------------------------------------

    @staticmethod
    def healthy() -> "ChannelConditions":
        return ChannelConditions()

    @staticmethod
    def degraded_link(
        axis: str, direction: str, scale: float
    ) -> "ChannelConditions":
        """One (axis, direction) channel at ``scale`` of nominal bandwidth."""
        return ChannelConditions(link_scale={(axis, direction): scale})

    @staticmethod
    def straggler(device: int, scale: float) -> "ChannelConditions":
        """One device computing at ``scale`` of nominal speed."""
        return ChannelConditions(per_device_compute_scale={device: scale})

    # --- time multipliers -------------------------------------------------------

    def transfer_multiplier(
        self, resource: Resource, source: Optional[int] = None
    ) -> float:
        """Duration multiplier for a transfer on ``resource`` (>= 1 when
        degraded). ``source`` applies the per-device outgoing-link scale."""
        scale = self.link_scale.get(resource, 1.0)
        if source is not None:
            scale *= self.per_device_link_scale.get(source, 1.0)
        return 1.0 / scale

    def compute_multiplier(self, device: Optional[int] = None) -> float:
        """Duration multiplier for computation on ``device`` (or the
        representative device when ``device`` is None)."""
        if device is None:
            return 1.0 / self.compute_scale
        scale = self.per_device_compute_scale.get(
            device, self.compute_scale
        )
        return 1.0 / scale

    def collective_multiplier(self) -> float:
        """Duration multiplier for synchronous ring collectives: the ring
        is gated by its slowest link (and slowest participant's serdes)."""
        scales = [1.0]
        scales.extend(self.link_scale.values())
        scales.extend(self.per_device_link_scale.values())
        return 1.0 / min(scales)

    @property
    def is_healthy(self) -> bool:
        return (
            not self.link_scale
            and self.compute_scale == 1.0
            and not self.per_device_compute_scale
            and not self.per_device_link_scale
        )


def conditions_from_plan(plan, mesh) -> ChannelConditions:
    """Project a functional :class:`repro.faults.plan.FaultPlan` onto the
    timing model: stragglers become per-device compute scales. (Transfer
    drops/corruption have no steady-state timing analogue beyond the
    retries the resilient executor already accounts for.)
    """
    per_device: Dict[int, float] = {}
    for device in range(mesh.num_devices):
        factor = plan.straggler_factor(device)
        if factor != 1.0:
            per_device[device] = 1.0 / factor
    return ChannelConditions(per_device_compute_scale=per_device)
