"""The SPMD partitioner: logical einsum graphs -> per-device HLO programs.

A :class:`LogicalGraph` describes a layer (or a whole training step) as a
sequence of einsums over named logical tensors, each carrying a
:class:`ShardingSpec`. :func:`partition` lowers it to a single-program
multiple-data :class:`HloModule` whose parameters are the *local shards*
and whose collectives implement the resharding the specs imply — the
AllGather-before-Einsum and Einsum-then-ReduceScatter patterns the paper's
overlap passes consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.hlo.builder import GraphBuilder
from repro.hlo.einsum_spec import LHS, EinsumSpec
from repro.hlo.instruction import Instruction, ShardIndex
from repro.hlo.module import HloModule
from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh
from repro.sharding.propagation import ShardingError, plan_einsum
from repro.sharding.spec import ShardingSpec


@dataclasses.dataclass(frozen=True)
class LogicalTensor:
    """A named logical (unpartitioned) tensor with its sharding."""

    name: str
    shape: Shape
    spec: ShardingSpec

    def __post_init__(self) -> None:
        if self.shape.rank != self.spec.rank:
            raise ValueError(
                f"tensor {self.name!r}: shape rank {self.shape.rank} != "
                f"spec rank {self.spec.rank}"
            )


@dataclasses.dataclass(frozen=True)
class LogicalEinsum:
    """One einsum node of the logical graph."""

    equation: str
    lhs: str
    rhs: str
    out: str


@dataclasses.dataclass(frozen=True)
class LogicalReshard:
    """Change a tensor's sharding (AllGather / own-shard DynamicSlice)."""

    src: str
    out: str


@dataclasses.dataclass(frozen=True)
class LogicalAllToAll:
    """An explicit AllToAll (MoE dispatch/combine, resharding patterns).

    The output may take a different logical shape/spec with the same
    per-device element count (MoE dispatch regroups ``[batch, seq, d]``
    into ``[expert, capacity, d]``); the lowering reshapes the exchanged
    local buffer.
    """

    src: str
    out: str
    split_dim: int
    concat_dim: int
    axis: str


@dataclasses.dataclass(frozen=True)
class LogicalAllReduce:
    """An explicit AllReduce (e.g. data-parallel gradient reduction)."""

    src: str
    out: str
    axis: str


@dataclasses.dataclass(frozen=True)
class LogicalPointwise:
    """A memory-bound element-wise pass over a tensor.

    Stands in for layer norms, activations, softmax and residual adds: one
    read + one write of the tensor at HBM bandwidth. Lowered as a
    self-addition, so the dataflow (and scheduling) is real even though
    the arithmetic is a stand-in.
    """

    src: str
    out: str


@dataclasses.dataclass
class LogicalGraph:
    """An ordered einsum program over logical tensors."""

    name: str
    tensors: Dict[str, LogicalTensor] = dataclasses.field(default_factory=dict)
    nodes: List[object] = dataclasses.field(default_factory=list)
    inputs: List[str] = dataclasses.field(default_factory=list)

    @property
    def einsums(self) -> List[LogicalEinsum]:
        return [n for n in self.nodes if isinstance(n, LogicalEinsum)]

    def _register(self, tensor: LogicalTensor) -> LogicalTensor:
        if tensor.name in self.tensors:
            raise ValueError(f"duplicate tensor {tensor.name!r}")
        self.tensors[tensor.name] = tensor
        return tensor

    def add_input(
        self, name: str, shape: Shape, spec: ShardingSpec
    ) -> LogicalTensor:
        tensor = self._register(LogicalTensor(name, shape, spec))
        self.inputs.append(name)
        return tensor

    def add_einsum(
        self, equation: str, lhs: str, rhs: str, out: str, out_spec: ShardingSpec
    ) -> LogicalTensor:
        spec = EinsumSpec.parse(equation)
        lhs_tensor, rhs_tensor = self.tensors[lhs], self.tensors[rhs]
        out_shape = spec.output_shape(lhs_tensor.shape, rhs_tensor.shape)
        tensor = self._register(LogicalTensor(out, out_shape, out_spec))
        self.nodes.append(LogicalEinsum(equation, lhs, rhs, out))
        return tensor

    def add_reshard(self, src: str, out: str, spec: ShardingSpec) -> LogicalTensor:
        tensor = self._register(LogicalTensor(out, self.tensors[src].shape, spec))
        self.nodes.append(LogicalReshard(src, out))
        return tensor

    def add_all_to_all(
        self,
        src: str,
        out: str,
        split_dim: int,
        concat_dim: int,
        axis: str,
        out_shape: Optional[Shape] = None,
        out_spec: Optional[ShardingSpec] = None,
    ) -> LogicalTensor:
        source = self.tensors[src]
        shape = out_shape if out_shape is not None else source.shape
        spec = out_spec if out_spec is not None else source.spec
        tensor = self._register(LogicalTensor(out, shape, spec))
        self.nodes.append(LogicalAllToAll(src, out, split_dim, concat_dim, axis))
        return tensor

    def add_all_reduce(self, src: str, out: str, axis: str) -> LogicalTensor:
        source = self.tensors[src]
        tensor = self._register(LogicalTensor(out, source.shape, source.spec))
        self.nodes.append(LogicalAllReduce(src, out, axis))
        return tensor

    def add_pointwise(self, src: str, out: str) -> LogicalTensor:
        source = self.tensors[src]
        tensor = self._register(LogicalTensor(out, source.shape, source.spec))
        self.nodes.append(LogicalPointwise(src, out))
        return tensor


@dataclasses.dataclass
class _ShardedValue:
    """A tensor's current local instruction and sharding during lowering."""

    instruction: Instruction
    spec: ShardingSpec
    full_shape: Shape


def partition(graph: LogicalGraph, mesh: DeviceMesh) -> HloModule:
    """Lower a logical graph to an SPMD per-device HLO program."""
    builder = GraphBuilder(graph.name)
    values: Dict[str, _ShardedValue] = {}

    for name in graph.inputs:
        tensor = graph.tensors[name]
        local = tensor.spec.shard_shape(tensor.shape, mesh)
        parameter = builder.parameter(local, name=name)
        values[name] = _ShardedValue(parameter, tensor.spec, tensor.shape)

    for node in graph.nodes:
        if isinstance(node, LogicalEinsum):
            values[node.out] = _lower_einsum(builder, mesh, graph, values, node)
        elif isinstance(node, LogicalReshard):
            out_tensor = graph.tensors[node.out]
            values[node.out] = _reshard(
                builder, mesh, values[node.src], out_tensor.spec
            )
        elif isinstance(node, LogicalAllToAll):
            value = values[node.src]
            out_tensor = graph.tensors[node.out]
            local = out_tensor.spec.shard_shape(out_tensor.shape, mesh)
            needs_reshape = (
                value.instruction.shape.dims != local.dims
            )
            exchanged = builder.all_to_all(
                value.instruction,
                node.split_dim,
                node.concat_dim,
                mesh.rings(node.axis),
                name=None if needs_reshape else node.out,
            )
            if exchanged.shape.dims != local.dims:
                if exchanged.shape.num_elements != local.num_elements:
                    raise ShardingError(
                        f"all-to-all {node.out!r}: local shape {exchanged.shape}"
                        f" cannot reshape to {local}"
                    )
                exchanged = builder.reshape(exchanged, local.dims, name=node.out)
            values[node.out] = _ShardedValue(
                exchanged, out_tensor.spec, out_tensor.shape
            )
        elif isinstance(node, LogicalAllReduce):
            value = values[node.src]
            reduced = builder.all_reduce(
                value.instruction, mesh.rings(node.axis), name=node.out
            )
            values[node.out] = _ShardedValue(reduced, value.spec, value.full_shape)
        elif isinstance(node, LogicalPointwise):
            value = values[node.src]
            touched = builder.add(
                value.instruction, value.instruction, name=node.out
            )
            values[node.out] = _ShardedValue(touched, value.spec, value.full_shape)
        else:
            raise TypeError(f"unknown logical node {node!r}")

    module = builder.module
    module.verify()
    return module


def _lower_einsum(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    graph: LogicalGraph,
    values: Dict[str, "_ShardedValue"],
    node: LogicalEinsum,
) -> "_ShardedValue":
    spec = EinsumSpec.parse(node.equation)
    lhs, rhs = values[node.lhs], values[node.rhs]
    out_tensor = graph.tensors[node.out]
    plan = plan_einsum(spec, lhs.spec, rhs.spec, out_tensor.spec)

    operand_values = [lhs, rhs]
    for gather in plan.gathers:
        value = operand_values[gather.operand]
        operand_values[gather.operand] = _all_gather_dim(
            builder, mesh, value, gather.dim, gather.axis
        )

    local_out = builder.einsum(
        node.equation,
        operand_values[LHS].instruction,
        operand_values[1].instruction,
        name=node.out if not plan.reduces else None,
    )
    result = _ShardedValue(local_out, plan.out_spec, out_tensor.shape)

    for reduce in plan.reduces:
        result = _resolve_partial_sum(builder, mesh, result, reduce)

    return _reshard(builder, mesh, result, out_tensor.spec)


def _all_gather_dim(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    value: _ShardedValue,
    dim: int,
    axis: str,
) -> _ShardedValue:
    if value.spec.axis_of_dim(dim) != axis:
        raise ShardingError(
            f"cannot gather dim {dim} over {axis!r}: value sharded as {value.spec}"
        )
    gathered = builder.all_gather(value.instruction, dim, mesh.rings(axis))
    return _ShardedValue(gathered, value.spec.with_dim(dim, None), value.full_shape)


def _resolve_partial_sum(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    value: _ShardedValue,
    reduce,
) -> _ShardedValue:
    groups = mesh.rings(reduce.axis)
    if reduce.scatter_dim is None:
        summed = builder.all_reduce(value.instruction, groups)
        return _ShardedValue(summed, value.spec, value.full_shape)
    scattered = builder.reduce_scatter(
        value.instruction, reduce.scatter_dim, groups
    )
    spec = value.spec.with_dim(reduce.scatter_dim, reduce.axis)
    return _ShardedValue(scattered, spec, value.full_shape)


def _reshard(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    value: _ShardedValue,
    wanted: ShardingSpec,
) -> _ShardedValue:
    """Fix residual spec mismatches with AllGather / DynamicSlice.

    The einsum plan already handles reductions; what can remain is a free
    dimension the plan kept sharded that the caller wants replicated
    (AllGather) or kept replicated that the caller wants sharded
    (DynamicSlice of the device's own shard — compute was already paid,
    this just drops the remote portions).
    """
    current = value
    for dim in range(wanted.rank):
        have = current.spec.axis_of_dim(dim)
        want = wanted.axis_of_dim(dim)
        if have == want:
            continue
        if have is not None and want is None:
            current = _all_gather_dim(builder, mesh, current, dim, have)
        elif have is None and want is not None:
            size = mesh.axis_size(want)
            shard = current.instruction.shape.dims[dim] // size
            start = ShardIndex.shard(
                coeff=1, offset=0, num_shards=size, shard_size=shard,
                div=mesh.axis_stride(want),
            )
            sliced = builder.dynamic_slice(current.instruction, dim, start, shard)
            current = _ShardedValue(
                sliced, current.spec.with_dim(dim, want), current.full_shape
            )
        else:
            raise ShardingError(
                f"cannot reshard dim {dim} from {have!r} to {want!r} directly"
            )
    return current
