"""The SPMD partitioner: logical einsum graphs -> per-device HLO programs.

A :class:`LogicalGraph` describes a layer (or a whole training step) as a
sequence of einsums over named logical tensors, each carrying a
:class:`ShardingSpec`. :func:`partition` lowers it to a single-program
multiple-data :class:`HloModule` whose parameters are the *local shards*
and whose collectives implement the resharding the specs imply — the
AllGather-before-Einsum and Einsum-then-ReduceScatter patterns the paper's
overlap passes consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.hlo.builder import GraphBuilder
from repro.hlo.einsum_spec import LHS, EinsumSpec
from repro.hlo.instruction import Instruction, ShardIndex
from repro.hlo.module import HloModule
from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh
from repro.sharding.propagation import ShardingError, plan_einsum
from repro.sharding.spec import ShardingSpec


@dataclasses.dataclass(frozen=True)
class LogicalTensor:
    """A named logical (unpartitioned) tensor with its sharding."""

    name: str
    shape: Shape
    spec: ShardingSpec

    def __post_init__(self) -> None:
        if self.shape.rank != self.spec.rank:
            raise ValueError(
                f"tensor {self.name!r}: shape rank {self.shape.rank} != "
                f"spec rank {self.spec.rank}"
            )


@dataclasses.dataclass(frozen=True)
class LogicalEinsum:
    """One einsum node of the logical graph."""

    equation: str
    lhs: str
    rhs: str
    out: str


@dataclasses.dataclass(frozen=True)
class LogicalReshard:
    """Change a tensor's sharding (AllGather / own-shard DynamicSlice)."""

    src: str
    out: str


@dataclasses.dataclass(frozen=True)
class LogicalAllToAll:
    """An explicit AllToAll (MoE dispatch/combine, resharding patterns).

    The output may take a different logical shape/spec with the same
    per-device element count (MoE dispatch regroups ``[batch, seq, d]``
    into ``[expert, capacity, d]``); the lowering reshapes the exchanged
    local buffer.
    """

    src: str
    out: str
    split_dim: int
    concat_dim: int
    axis: str


@dataclasses.dataclass(frozen=True)
class LogicalAllReduce:
    """An explicit AllReduce (e.g. data-parallel gradient reduction)."""

    src: str
    out: str
    axis: str


@dataclasses.dataclass(frozen=True)
class LogicalP2PSend:
    """A point-to-point handoff along one mesh axis (pipeline stages).

    Lowered as an *open-chain* CollectivePermute: stage ``i`` sends its
    local shard to stage ``i + 1``; the first stage receives zeros (XLA's
    non-destination semantics) and the last stage's output leaves the
    chain. The permute carries ``comm_kind="p2p"`` so the collective
    linter knows the open chain is intended, and the async split +
    schedulers overlap it with microbatch compute like any other
    overlappable collective.
    """

    src: str
    out: str
    axis: str


@dataclasses.dataclass(frozen=True)
class LogicalUpdate:
    """An optimizer update: ``out = param - grad`` (shard-wise).

    The simulated training step's SGD stand-in; lowered as
    ``Add(param, Negate(grad))`` so the optimizer is real dataflow the
    scheduler can move into transfer windows.
    """

    param: str
    grad: str
    out: str


@dataclasses.dataclass(frozen=True)
class LogicalPointwise:
    """A memory-bound element-wise pass over a tensor.

    Stands in for layer norms, activations, softmax and residual adds: one
    read + one write of the tensor at HBM bandwidth. Lowered as a
    self-addition, so the dataflow (and scheduling) is real even though
    the arithmetic is a stand-in.
    """

    src: str
    out: str


@dataclasses.dataclass
class LogicalGraph:
    """An ordered einsum program over logical tensors."""

    name: str
    tensors: Dict[str, LogicalTensor] = dataclasses.field(default_factory=dict)
    nodes: List[object] = dataclasses.field(default_factory=list)
    inputs: List[str] = dataclasses.field(default_factory=list)

    @property
    def einsums(self) -> List[LogicalEinsum]:
        return [n for n in self.nodes if isinstance(n, LogicalEinsum)]

    def _register(self, tensor: LogicalTensor) -> LogicalTensor:
        if tensor.name in self.tensors:
            raise ValueError(f"duplicate tensor {tensor.name!r}")
        self.tensors[tensor.name] = tensor
        return tensor

    def add_input(
        self, name: str, shape: Shape, spec: ShardingSpec
    ) -> LogicalTensor:
        tensor = self._register(LogicalTensor(name, shape, spec))
        self.inputs.append(name)
        return tensor

    def add_einsum(
        self, equation: str, lhs: str, rhs: str, out: str, out_spec: ShardingSpec
    ) -> LogicalTensor:
        spec = EinsumSpec.parse(equation)
        lhs_tensor, rhs_tensor = self.tensors[lhs], self.tensors[rhs]
        out_shape = spec.output_shape(lhs_tensor.shape, rhs_tensor.shape)
        tensor = self._register(LogicalTensor(out, out_shape, out_spec))
        self.nodes.append(LogicalEinsum(equation, lhs, rhs, out))
        return tensor

    def add_reshard(self, src: str, out: str, spec: ShardingSpec) -> LogicalTensor:
        tensor = self._register(LogicalTensor(out, self.tensors[src].shape, spec))
        self.nodes.append(LogicalReshard(src, out))
        return tensor

    def add_all_to_all(
        self,
        src: str,
        out: str,
        split_dim: int,
        concat_dim: int,
        axis: str,
        out_shape: Optional[Shape] = None,
        out_spec: Optional[ShardingSpec] = None,
    ) -> LogicalTensor:
        source = self.tensors[src]
        shape = out_shape if out_shape is not None else source.shape
        spec = out_spec if out_spec is not None else source.spec
        tensor = self._register(LogicalTensor(out, shape, spec))
        self.nodes.append(LogicalAllToAll(src, out, split_dim, concat_dim, axis))
        return tensor

    def add_all_reduce(self, src: str, out: str, axis: str) -> LogicalTensor:
        source = self.tensors[src]
        tensor = self._register(LogicalTensor(out, source.shape, source.spec))
        self.nodes.append(LogicalAllReduce(src, out, axis))
        return tensor

    def add_pointwise(self, src: str, out: str) -> LogicalTensor:
        source = self.tensors[src]
        tensor = self._register(LogicalTensor(out, source.shape, source.spec))
        self.nodes.append(LogicalPointwise(src, out))
        return tensor

    def add_p2p_send(self, src: str, out: str, axis: str) -> LogicalTensor:
        source = self.tensors[src]
        tensor = self._register(LogicalTensor(out, source.shape, source.spec))
        self.nodes.append(LogicalP2PSend(src, out, axis))
        return tensor

    def add_update(self, param: str, grad: str, out: str) -> LogicalTensor:
        source = self.tensors[param]
        tensor = self._register(LogicalTensor(out, source.shape, source.spec))
        self.nodes.append(LogicalUpdate(param, grad, out))
        return tensor


@dataclasses.dataclass
class _ShardedValue:
    """A tensor's current local instruction and sharding during lowering."""

    instruction: Instruction
    spec: ShardingSpec
    full_shape: Shape


def partition(graph: LogicalGraph, mesh: DeviceMesh) -> HloModule:
    """Lower a logical graph to an SPMD per-device HLO program."""
    builder = GraphBuilder(graph.name)
    values: Dict[str, _ShardedValue] = {}

    for name in graph.inputs:
        tensor = graph.tensors[name]
        local = tensor.spec.shard_shape(tensor.shape, mesh)
        parameter = builder.parameter(local, name=name)
        values[name] = _ShardedValue(parameter, tensor.spec, tensor.shape)

    for node in graph.nodes:
        if isinstance(node, LogicalEinsum):
            values[node.out] = _lower_einsum(builder, mesh, graph, values, node)
        elif isinstance(node, LogicalReshard):
            out_tensor = graph.tensors[node.out]
            values[node.out] = _reshard(
                builder, mesh, values[node.src], out_tensor.spec,
                name=node.out,
            )
        elif isinstance(node, LogicalAllToAll):
            value = values[node.src]
            out_tensor = graph.tensors[node.out]
            local = out_tensor.spec.shard_shape(out_tensor.shape, mesh)
            needs_reshape = (
                value.instruction.shape.dims != local.dims
            )
            exchanged = builder.all_to_all(
                value.instruction,
                node.split_dim,
                node.concat_dim,
                mesh.rings(node.axis),
                name=None if needs_reshape else node.out,
            )
            if exchanged.shape.dims != local.dims:
                if exchanged.shape.num_elements != local.num_elements:
                    raise ShardingError(
                        f"all-to-all {node.out!r}: local shape {exchanged.shape}"
                        f" cannot reshape to {local}"
                    )
                exchanged = builder.reshape(exchanged, local.dims, name=node.out)
            values[node.out] = _ShardedValue(
                exchanged, out_tensor.spec, out_tensor.shape
            )
        elif isinstance(node, LogicalAllReduce):
            value = values[node.src]
            reduced = builder.all_reduce(
                value.instruction, mesh.rings(node.axis), name=node.out
            )
            values[node.out] = _ShardedValue(reduced, value.spec, value.full_shape)
        elif isinstance(node, LogicalPointwise):
            value = values[node.src]
            touched = builder.add(
                value.instruction, value.instruction, name=node.out
            )
            values[node.out] = _ShardedValue(touched, value.spec, value.full_shape)
        elif isinstance(node, LogicalP2PSend):
            value = values[node.src]
            pairs = []
            for group in mesh.rings(node.axis):
                pairs.extend(
                    (group[i], group[i + 1]) for i in range(len(group) - 1)
                )
            # "plus" mirrors repro.perfsim.topology.PLUS (string literal:
            # sharding must not import perfsim, which imports this package).
            sent = builder.collective_permute(
                value.instruction, pairs, name=node.out, direction="plus"
            )
            sent.attrs["comm_kind"] = "p2p"
            sent.attrs["axis"] = node.axis
            values[node.out] = _ShardedValue(sent, value.spec, value.full_shape)
        elif isinstance(node, LogicalUpdate):
            param, grad = values[node.param], values[node.grad]
            if param.instruction.shape.dims != grad.instruction.shape.dims:
                raise ShardingError(
                    f"update {node.out!r}: param shard "
                    f"{param.instruction.shape} != grad shard "
                    f"{grad.instruction.shape}"
                )
            stepped = builder.add(
                param.instruction,
                builder.negate(grad.instruction),
                name=node.out,
            )
            values[node.out] = _ShardedValue(
                stepped, param.spec, param.full_shape
            )
        else:
            raise TypeError(f"unknown logical node {node!r}")

    module = builder.module
    module.verify()
    return module


def _lower_einsum(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    graph: LogicalGraph,
    values: Dict[str, "_ShardedValue"],
    node: LogicalEinsum,
) -> "_ShardedValue":
    spec = EinsumSpec.parse(node.equation)
    lhs, rhs = values[node.lhs], values[node.rhs]
    out_tensor = graph.tensors[node.out]
    plan = plan_einsum(spec, lhs.spec, rhs.spec, out_tensor.spec)

    operand_values = [lhs, rhs]
    for gather in plan.gathers:
        value = operand_values[gather.operand]
        operand_values[gather.operand] = _all_gather_dim(
            builder, mesh, value, gather.dim, gather.axis
        )

    # The logical tensor's name goes on the *last* instruction of the
    # lowered chain (einsum -> reduces -> residual reshard), so named
    # outputs resolve to the finished value.
    needs_reshard = any(
        plan.out_spec.axes_of_dim(dim) != out_tensor.spec.axes_of_dim(dim)
        for dim in range(out_tensor.spec.rank)
    )
    local_out = builder.einsum(
        node.equation,
        operand_values[LHS].instruction,
        operand_values[1].instruction,
        name=node.out if not plan.reduces and not needs_reshard else None,
    )
    result = _ShardedValue(local_out, plan.out_spec, out_tensor.shape)

    for index, reduce in enumerate(plan.reduces):
        last = index == len(plan.reduces) - 1 and not needs_reshard
        result = _resolve_partial_sum(
            builder, mesh, result, reduce, name=node.out if last else None
        )

    return _reshard(
        builder, mesh, result, out_tensor.spec,
        name=node.out if needs_reshard else None,
    )


def _all_gather_dim(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    value: _ShardedValue,
    dim: int,
    axis: str,
    name: Optional[str] = None,
) -> _ShardedValue:
    axes = value.spec.axes_of_dim(dim)
    if not axes or axes[-1] != axis:
        raise ShardingError(
            f"cannot gather dim {dim} over {axis!r}: value sharded as "
            f"{value.spec} (multi-axis dims gather innermost-first)"
        )
    gathered = builder.all_gather(
        value.instruction, dim, mesh.rings(axis), name=name
    )
    return _ShardedValue(
        gathered, value.spec.with_dim(dim, axes[:-1]), value.full_shape
    )


def _slice_own_shard(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    value: _ShardedValue,
    dim: int,
    axis: str,
    name: Optional[str] = None,
) -> _ShardedValue:
    """Shard one more axis onto ``dim`` by slicing the device's own block."""
    size = mesh.axis_size(axis)
    shard = value.instruction.shape.dims[dim] // size
    start = ShardIndex.shard(
        coeff=1, offset=0, num_shards=size, shard_size=shard,
        div=mesh.axis_stride(axis),
    )
    sliced = builder.dynamic_slice(
        value.instruction, dim, start, shard, name=name
    )
    axes = value.spec.axes_of_dim(dim) + (axis,)
    return _ShardedValue(
        sliced, value.spec.with_dim(dim, axes), value.full_shape
    )


def _resolve_partial_sum(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    value: _ShardedValue,
    reduce,
    name: Optional[str] = None,
) -> _ShardedValue:
    groups = mesh.rings(reduce.axis)
    if reduce.scatter_dim is None:
        summed = builder.all_reduce(value.instruction, groups, name=name)
        return _ShardedValue(summed, value.spec, value.full_shape)
    scattered = builder.reduce_scatter(
        value.instruction, reduce.scatter_dim, groups, name=name
    )
    # Each scatter slices the output dimension one axis deeper. The plan's
    # out_spec already names every scatter axis (in outermost-first
    # order), so this is a no-op for plan-driven reduces and an append
    # only for explicit callers.
    axes = value.spec.axes_of_dim(reduce.scatter_dim)
    if reduce.axis not in axes:
        axes = axes + (reduce.axis,)
    spec = value.spec.with_dim(reduce.scatter_dim, axes)
    return _ShardedValue(scattered, spec, value.full_shape)


def _reshard(
    builder: GraphBuilder,
    mesh: DeviceMesh,
    value: _ShardedValue,
    wanted: ShardingSpec,
    name: Optional[str] = None,
) -> _ShardedValue:
    """Fix residual spec mismatches with AllGather / DynamicSlice.

    The einsum plan already handles reductions; what can remain is a free
    dimension the plan kept sharded that the caller wants replicated
    (AllGather) or kept replicated that the caller wants sharded
    (DynamicSlice of the device's own shard — compute was already paid,
    this just drops the remote portions). Multi-axis dims reshard when
    one placement extends the other: extra held axes are gathered
    innermost-first, missing wanted axes are sliced outermost-first.
    Swapping a dimension *between* axes stays rejected — that is a
    cross-mesh exchange (an all-to-all or permute pattern), not a
    gather/slice residue.
    """
    steps = []
    for dim in range(wanted.rank):
        have = value.spec.axes_of_dim(dim)
        want = wanted.axes_of_dim(dim)
        if have == want:
            continue
        common = 0
        while common < min(len(have), len(want)) and have[common] == want[common]:
            common += 1
        if have[common:] and want[common:]:
            raise ShardingError(
                f"cannot reshard dim {dim} from {have!r} to {want!r} directly"
            )
        for axis in reversed(have[common:]):
            steps.append((_all_gather_dim, dim, axis))
        for axis in want[common:]:
            steps.append((_slice_own_shard, dim, axis))
    current = value
    for index, (lower, dim, axis) in enumerate(steps):
        step_name = name if index == len(steps) - 1 else None
        current = lower(builder, mesh, current, dim, axis, name=step_name)
    return current
