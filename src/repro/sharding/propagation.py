"""Einsum sharding resolution.

Given the sharding specs of an einsum's operands and the desired output
spec, decide which communication the SPMD partitioner must insert:

* operand dimensions that must be **AllGathered** (the "construct the
  weights on demand" pattern of Section 2.2);
* mesh axes over which the local einsum produces **partial sums**
  (contracting dimensions sharded identically on both operands), resolved
  by a ReduceScatter when the output spec shards some dimension on that
  axis, or an AllReduce otherwise;
* dimensions the local einsum keeps sharded without any communication
  (batch dims and free dims whose sharding matches the output spec).

This is the single-axis subset of GSPMD's einsum handling — exactly what
the paper's partitioning strategies (Figures 2 and 3) exercise.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.hlo.einsum_spec import LHS, RHS, EinsumSpec
from repro.sharding.spec import ShardingSpec


class ShardingError(ValueError):
    """Raised when operand shardings are inconsistent with the einsum."""


@dataclasses.dataclass(frozen=True)
class GatherDecision:
    """One AllGather the partitioner must insert on an operand."""

    operand: int          # LHS or RHS
    dim: int              # operand dimension to gather
    axis: str             # mesh axis to gather over


@dataclasses.dataclass(frozen=True)
class ReduceDecision:
    """One partial-sum resolution at the einsum output."""

    axis: str                     # mesh axis the partial sums live on
    scatter_dim: Optional[int]    # output dim for ReduceScatter, or None
                                  # for AllReduce


@dataclasses.dataclass(frozen=True)
class EinsumShardingPlan:
    """The communication plan for one sharded einsum."""

    gathers: Tuple[GatherDecision, ...]
    reduces: Tuple[ReduceDecision, ...]
    out_spec: ShardingSpec        # spec of the einsum result after reduces


def plan_einsum(
    spec: EinsumSpec,
    lhs_spec: ShardingSpec,
    rhs_spec: ShardingSpec,
    out_spec: ShardingSpec,
) -> EinsumShardingPlan:
    """Resolve operand shardings into a gather/reduce plan.

    The returned plan's ``out_spec`` may still differ from the requested
    one on replicated-vs-sharded free dimensions; the partitioner handles
    that residue with an explicit reshard.
    """
    gathers: List[GatherDecision] = []
    reduces: List[ReduceDecision] = []

    def label_axis(operand_spec: ShardingSpec, labels: str, label: str) -> Optional[str]:
        index = labels.find(label)
        return None if index < 0 else operand_spec.axis_of_dim(index)

    result_axes: List[Optional[str]] = [None] * len(spec.out_labels)

    # Contracting labels: matched shardings become partial sums; a label
    # sharded on only one operand forces an AllGather of that operand dim.
    for label in spec.contracting_labels:
        lhs_axis = label_axis(lhs_spec, spec.lhs_labels, label)
        rhs_axis = label_axis(rhs_spec, spec.rhs_labels, label)
        if lhs_axis is not None and lhs_axis == rhs_axis:
            scatter_dim = out_spec.dim_of_axis(lhs_axis)
            reduces.append(ReduceDecision(lhs_axis, scatter_dim))
            if scatter_dim is not None:
                result_axes[scatter_dim] = lhs_axis
            continue
        if lhs_axis is not None:
            gathers.append(
                GatherDecision(LHS, spec.axis_of(LHS, label), lhs_axis)
            )
        if rhs_axis is not None:
            gathers.append(
                GatherDecision(RHS, spec.axis_of(RHS, label), rhs_axis)
            )

    # Batch labels must be sharded consistently on both operands (or
    # gathered when they disagree); a consistent sharding carries through.
    for label in spec.batch_labels:
        lhs_axis = label_axis(lhs_spec, spec.lhs_labels, label)
        rhs_axis = label_axis(rhs_spec, spec.rhs_labels, label)
        if lhs_axis == rhs_axis:
            if lhs_axis is not None:
                result_axes[spec.out_axis_of(label)] = lhs_axis
            continue
        # Disagreement: gather whichever side the output does not want.
        wanted = out_spec.axis_of_dim(spec.out_axis_of(label))
        if lhs_axis is not None and lhs_axis != wanted:
            gathers.append(GatherDecision(LHS, spec.axis_of(LHS, label), lhs_axis))
            lhs_axis = None
        if rhs_axis is not None and rhs_axis != wanted:
            gathers.append(GatherDecision(RHS, spec.axis_of(RHS, label), rhs_axis))
            rhs_axis = None
        surviving = lhs_axis if lhs_axis is not None else rhs_axis
        if surviving is not None and lhs_axis != rhs_axis:
            # One side still sharded: the other side must be gathered too —
            # a batch dim cannot be half sharded.
            operand = LHS if lhs_axis is None else RHS
            raise ShardingError(
                f"batch label {label!r} sharded on one operand only; "
                "pre-shard the other operand or replicate both"
            )

    # Free labels: keep the sharding when the output spec agrees,
    # otherwise gather the operand dimension.
    for operand, labels in ((LHS, spec.lhs_free_labels), (RHS, spec.rhs_free_labels)):
        operand_spec = lhs_spec if operand == LHS else rhs_spec
        for label in labels:
            axis = label_axis(
                operand_spec, spec.operand_labels(operand), label
            )
            if axis is None:
                continue
            out_dim = spec.out_axis_of(label)
            if out_spec.axis_of_dim(out_dim) == axis:
                result_axes[out_dim] = axis
            else:
                gathers.append(
                    GatherDecision(operand, spec.axis_of(operand, label), axis)
                )

    # An axis cannot shard the result twice and cannot be both kept and
    # reduced; detect conflicts early with a clear error.
    used = [a for a in result_axes if a is not None]
    used += [r.axis for r in reduces if r.scatter_dim is None]
    if len(set(used)) != len(used):
        raise ShardingError(
            f"mesh axis used twice in einsum result sharding: {result_axes}"
        )

    return EinsumShardingPlan(
        gathers=tuple(gathers),
        reduces=tuple(reduces),
        out_spec=ShardingSpec(tuple(result_axes)),
    )
