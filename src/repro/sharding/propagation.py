"""Einsum sharding resolution.

Given the sharding specs of an einsum's operands and the desired output
spec, decide which communication the SPMD partitioner must insert:

* operand dimensions that must be **AllGathered** (the "construct the
  weights on demand" pattern of Section 2.2);
* mesh axes over which the local einsum produces **partial sums**
  (contracting dimensions sharded identically on both operands), resolved
  by a ReduceScatter when the output spec shards some dimension on that
  axis, or an AllReduce otherwise;
* dimensions the local einsum keeps sharded without any communication
  (batch dims and free dims whose sharding matches the output spec).

Dimensions may be sharded over *several* mesh axes (outermost first, see
:class:`repro.sharding.spec.ShardingSpec`); the plan then carries one
decision per axis: gathers peel axes innermost-first (each AllGather
reconstructs the blocks of the axis it gathers, so the nested layout
unwinds from the inside out), reductions run outermost-first (each
ReduceScatter slices the output dimension one axis deeper). This is the
per-axis subset of GSPMD's einsum handling — exactly what the paper's
partitioning strategies (Figures 2 and 3) and their 2D/3D mesh
extensions exercise.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.hlo.einsum_spec import LHS, RHS, EinsumSpec
from repro.sharding.spec import ShardingSpec, entry_axes


class ShardingError(ValueError):
    """Raised when operand shardings are inconsistent with the einsum."""


@dataclasses.dataclass(frozen=True)
class GatherDecision:
    """One AllGather the partitioner must insert on an operand.

    For a multi-axis dimension the plan emits one decision per axis,
    ordered innermost-first — the only order in which each AllGather's
    ring-ordered concatenation reassembles the nested block layout.
    """

    operand: int          # LHS or RHS
    dim: int              # operand dimension to gather
    axis: str             # mesh axis to gather over


@dataclasses.dataclass(frozen=True)
class ReduceDecision:
    """One partial-sum resolution at the einsum output."""

    axis: str                     # mesh axis the partial sums live on
    scatter_dim: Optional[int]    # output dim for ReduceScatter, or None
                                  # for AllReduce


@dataclasses.dataclass(frozen=True)
class EinsumShardingPlan:
    """The communication plan for one sharded einsum."""

    gathers: Tuple[GatherDecision, ...]
    reduces: Tuple[ReduceDecision, ...]
    out_spec: ShardingSpec        # spec of the einsum result after reduces


def plan_einsum(
    spec: EinsumSpec,
    lhs_spec: ShardingSpec,
    rhs_spec: ShardingSpec,
    out_spec: ShardingSpec,
) -> EinsumShardingPlan:
    """Resolve operand shardings into a gather/reduce plan.

    The returned plan's ``out_spec`` may still differ from the requested
    one on replicated-vs-sharded free dimensions; the partitioner handles
    that residue with an explicit reshard.
    """
    gathers: List[GatherDecision] = []
    reduces: List[ReduceDecision] = []

    def label_entry(
        operand_spec: ShardingSpec, labels: str, label: str
    ) -> Tuple[str, ...]:
        index = labels.find(label)
        return () if index < 0 else operand_spec.axes_of_dim(index)

    def gather_all(operand: int, label: str, axes: Tuple[str, ...]) -> None:
        # Innermost axis first: each AllGather unwinds one nesting level.
        dim = spec.axis_of(operand, label)
        for axis in reversed(axes):
            gathers.append(GatherDecision(operand, dim, axis))

    result_axes: List[Tuple[str, ...]] = [()] * len(spec.out_labels)

    # Contracting labels: matched shardings become partial sums; any
    # mismatch forces the sharded sides to be gathered.
    for label in spec.contracting_labels:
        lhs_axes = label_entry(lhs_spec, spec.lhs_labels, label)
        rhs_axes = label_entry(rhs_spec, spec.rhs_labels, label)
        if lhs_axes and lhs_axes == rhs_axes:
            # Outermost first: each ReduceScatter slices one axis deeper.
            for axis in lhs_axes:
                scatter_dim = out_spec.dim_of_axis(axis)
                reduces.append(ReduceDecision(axis, scatter_dim))
                if scatter_dim is not None:
                    result_axes[scatter_dim] = result_axes[scatter_dim] + (axis,)
            continue
        if lhs_axes:
            gather_all(LHS, label, lhs_axes)
        if rhs_axes:
            gather_all(RHS, label, rhs_axes)

    # Batch labels must be sharded consistently on both operands (or
    # gathered when they disagree); a consistent sharding carries through.
    for label in spec.batch_labels:
        lhs_axes = label_entry(lhs_spec, spec.lhs_labels, label)
        rhs_axes = label_entry(rhs_spec, spec.rhs_labels, label)
        if lhs_axes == rhs_axes:
            if lhs_axes:
                result_axes[spec.out_axis_of(label)] = lhs_axes
            continue
        # Disagreement: gather whichever side the output does not want.
        wanted = entry_axes(out_spec.axis_of_dim(spec.out_axis_of(label)))
        if lhs_axes and lhs_axes != wanted:
            gather_all(LHS, label, lhs_axes)
            lhs_axes = ()
        if rhs_axes and rhs_axes != wanted:
            gather_all(RHS, label, rhs_axes)
            rhs_axes = ()
        if (lhs_axes or rhs_axes) and lhs_axes != rhs_axes:
            # One side still sharded: the other side must be gathered too —
            # a batch dim cannot be half sharded.
            raise ShardingError(
                f"batch label {label!r} sharded on one operand only; "
                "pre-shard the other operand or replicate both"
            )

    # Free labels: keep the sharding when the output spec agrees,
    # otherwise gather the operand dimension.
    for operand, labels in ((LHS, spec.lhs_free_labels), (RHS, spec.rhs_free_labels)):
        operand_spec = lhs_spec if operand == LHS else rhs_spec
        for label in labels:
            axes = label_entry(
                operand_spec, spec.operand_labels(operand), label
            )
            if not axes:
                continue
            out_dim = spec.out_axis_of(label)
            if entry_axes(out_spec.axis_of_dim(out_dim)) == axes:
                result_axes[out_dim] = axes
            else:
                gather_all(operand, label, axes)

    # An axis cannot shard the result twice and cannot be both kept and
    # reduced; detect conflicts early with a clear error.
    used = [a for axes in result_axes for a in axes]
    used += [r.axis for r in reduces if r.scatter_dim is None]
    if len(set(used)) != len(used):
        raise ShardingError(
            f"mesh axis used twice in einsum result sharding: {result_axes}"
        )

    return EinsumShardingPlan(
        gathers=tuple(gathers),
        reduces=tuple(reduces),
        out_spec=ShardingSpec(tuple(result_axes)),
    )
