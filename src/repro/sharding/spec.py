"""Sharding specifications: how a logical tensor maps onto a device mesh.

A :class:`ShardingSpec` assigns to each tensor dimension either ``None``
(replicated along that dimension) or a mesh axis name (evenly partitioned
over that axis). This is the single-axis-per-dimension subset of GSPMD
sharding, which covers every partitioning strategy in the paper
(Figures 2 and 3).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh


@dataclasses.dataclass(frozen=True)
class ShardingSpec:
    """Per-dimension mesh-axis assignment for one tensor.

    ``dim_axes[i]`` is the mesh axis partitioning tensor dimension ``i``,
    or ``None`` when that dimension is replicated. An axis may appear at
    most once (a tensor dimension set cannot reuse a mesh axis).
    """

    dim_axes: Tuple[Optional[str], ...]

    def __post_init__(self) -> None:
        used = [a for a in self.dim_axes if a is not None]
        if len(set(used)) != len(used):
            raise ValueError(f"mesh axis used twice in sharding {self.dim_axes}")

    @staticmethod
    def replicated(rank: int) -> "ShardingSpec":
        return ShardingSpec((None,) * rank)

    @staticmethod
    def on_dim(rank: int, dim: int, axis: str) -> "ShardingSpec":
        """Partition exactly one dimension over one mesh axis."""
        axes: list = [None] * rank
        axes[dim] = axis
        return ShardingSpec(tuple(axes))

    @property
    def rank(self) -> int:
        return len(self.dim_axes)

    @property
    def is_replicated(self) -> bool:
        return all(a is None for a in self.dim_axes)

    def axis_of_dim(self, dim: int) -> Optional[str]:
        return self.dim_axes[dim]

    def dim_of_axis(self, axis: str) -> Optional[int]:
        for dim, dim_axis in enumerate(self.dim_axes):
            if dim_axis == axis:
                return dim
        return None

    def sharded_dims(self) -> Tuple[int, ...]:
        return tuple(d for d, a in enumerate(self.dim_axes) if a is not None)

    def with_dim(self, dim: int, axis: Optional[str]) -> "ShardingSpec":
        axes = list(self.dim_axes)
        axes[dim] = axis
        return ShardingSpec(tuple(axes))

    def shard_shape(self, full: Shape, mesh: DeviceMesh) -> Shape:
        """The per-device shard shape of a tensor with this sharding."""
        if full.rank != self.rank:
            raise ValueError(
                f"sharding rank {self.rank} does not match shape {full}"
            )
        shape = full
        for dim, axis in enumerate(self.dim_axes):
            if axis is not None:
                shape = shape.divided_dim(dim, mesh.axis_size(axis))
        return shape

    def num_shards(self, mesh: DeviceMesh) -> int:
        count = 1
        for axis in self.dim_axes:
            if axis is not None:
                count *= mesh.axis_size(axis)
        return count

    def __repr__(self) -> str:
        parts = ",".join("*" if a is None else a for a in self.dim_axes)
        return f"[{parts}]"
