"""Sharding specifications: how a logical tensor maps onto a device mesh.

A :class:`ShardingSpec` assigns to each tensor dimension either ``None``
(replicated along that dimension), a mesh axis name (evenly partitioned
over that axis), or a *tuple* of mesh axis names (partitioned over their
product, outermost axis first — GSPMD's multi-axis dim sharding, e.g. a
weight matrix's feature dimension split over ``("dp", "tp")`` for a
fully-sharded-data-parallel layout on a 2D mesh). The single-axis form
covers every partitioning strategy in the paper (Figures 2 and 3); the
multi-axis form is what 2D/3D training meshes add on top.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from repro.hlo.shapes import Shape
from repro.sharding.mesh import DeviceMesh

#: One dimension's placement: replicated, one axis, or nested axes
#: (outermost first — device blocks are ordered by the first axis's
#: coordinate, then the next).
DimEntry = Union[None, str, Tuple[str, ...]]


def _normalize_entry(entry: DimEntry) -> DimEntry:
    """Canonical form: ``()`` -> ``None``, 1-tuples -> the bare axis."""
    if entry is None or isinstance(entry, str):
        return entry
    entry = tuple(entry)
    for axis in entry:
        if not isinstance(axis, str):
            raise ValueError(f"mesh axis names must be strings, got {axis!r}")
    if not entry:
        return None
    if len(entry) == 1:
        return entry[0]
    return entry


def entry_axes(entry: DimEntry) -> Tuple[str, ...]:
    """A dim entry as a (possibly empty) tuple of axis names."""
    if entry is None:
        return ()
    if isinstance(entry, str):
        return (entry,)
    return tuple(entry)


@dataclasses.dataclass(frozen=True)
class ShardingSpec:
    """Per-dimension mesh-axis assignment for one tensor.

    ``dim_axes[i]`` places tensor dimension ``i``: ``None`` (replicated),
    a mesh axis name, or a tuple of axis names partitioning the dimension
    over the axes' product (outermost first). An axis may appear at most
    once across the whole spec (a tensor cannot reuse a mesh axis).
    """

    dim_axes: Tuple[DimEntry, ...]

    def __post_init__(self) -> None:
        normalized = tuple(_normalize_entry(e) for e in self.dim_axes)
        if normalized != tuple(self.dim_axes):
            object.__setattr__(self, "dim_axes", normalized)
        used = [a for e in self.dim_axes for a in entry_axes(e)]
        if len(set(used)) != len(used):
            raise ValueError(f"mesh axis used twice in sharding {self.dim_axes}")

    @staticmethod
    def replicated(rank: int) -> "ShardingSpec":
        return ShardingSpec((None,) * rank)

    @staticmethod
    def on_dim(rank: int, dim: int, axis: str) -> "ShardingSpec":
        """Partition exactly one dimension over one mesh axis."""
        axes: list = [None] * rank
        axes[dim] = axis
        return ShardingSpec(tuple(axes))

    @property
    def rank(self) -> int:
        return len(self.dim_axes)

    @property
    def is_replicated(self) -> bool:
        return all(a is None for a in self.dim_axes)

    def axis_of_dim(self, dim: int) -> DimEntry:
        return self.dim_axes[dim]

    def axes_of_dim(self, dim: int) -> Tuple[str, ...]:
        """The dimension's axes as a tuple (empty when replicated)."""
        return entry_axes(self.dim_axes[dim])

    def dim_of_axis(self, axis: str) -> Optional[int]:
        for dim in range(self.rank):
            if axis in self.axes_of_dim(dim):
                return dim
        return None

    def sharded_dims(self) -> Tuple[int, ...]:
        return tuple(d for d, a in enumerate(self.dim_axes) if a is not None)

    def with_dim(self, dim: int, entry: DimEntry) -> "ShardingSpec":
        axes = list(self.dim_axes)
        axes[dim] = entry
        return ShardingSpec(tuple(axes))

    def shard_shape(self, full: Shape, mesh: DeviceMesh) -> Shape:
        """The per-device shard shape of a tensor with this sharding."""
        if full.rank != self.rank:
            raise ValueError(
                f"sharding rank {self.rank} does not match shape {full}"
            )
        shape = full
        for dim in range(self.rank):
            for axis in self.axes_of_dim(dim):
                shape = shape.divided_dim(dim, mesh.axis_size(axis))
        return shape

    def num_shards(self, mesh: DeviceMesh) -> int:
        count = 1
        for dim in range(self.rank):
            for axis in self.axes_of_dim(dim):
                count *= mesh.axis_size(axis)
        return count

    def __repr__(self) -> str:
        parts = ",".join(
            "*" if a is None else "+".join(entry_axes(a)) for a in self.dim_axes
        )
        return f"[{parts}]"
