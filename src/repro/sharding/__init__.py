"""SPMD sharding substrate: meshes, specs, propagation, partitioner."""

from repro.sharding.mesh import DeviceMesh
from repro.sharding.partitioner import (
    LogicalAllReduce,
    LogicalAllToAll,
    LogicalEinsum,
    LogicalGraph,
    LogicalP2PSend,
    LogicalPointwise,
    LogicalReshard,
    LogicalTensor,
    LogicalUpdate,
    partition,
)
from repro.sharding.propagation import (
    EinsumShardingPlan,
    GatherDecision,
    ReduceDecision,
    ShardingError,
    plan_einsum,
)
from repro.sharding.sharder import random_arguments, shard_array, unit_mesh_like
from repro.sharding.spec import ShardingSpec, entry_axes

__all__ = [
    "DeviceMesh",
    "EinsumShardingPlan",
    "GatherDecision",
    "LogicalAllReduce",
    "LogicalAllToAll",
    "LogicalEinsum",
    "LogicalGraph",
    "LogicalP2PSend",
    "LogicalPointwise",
    "LogicalReshard",
    "LogicalTensor",
    "LogicalUpdate",
    "ReduceDecision",
    "ShardingError",
    "ShardingSpec",
    "entry_axes",
    "partition",
    "plan_einsum",
    "random_arguments",
    "shard_array",
    "unit_mesh_like",
]
