"""Logical device meshes.

Devices form a logical mesh (1D ring, 2D mesh/torus, or higher). Sharding
specs map tensor dimensions onto mesh axes; collectives operate on the
*rings* of one axis — the subgroups of devices that differ only in that
axis's coordinate (Section 2.2 of the paper).
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class DeviceMesh:
    """An N-dimensional logical mesh of devices.

    ``axis_names`` name the mesh dimensions (the paper uses ``x`` and ``y``
    for its [M, N] torus); ``axis_sizes`` give the device count along each.
    Device ids are assigned in row-major order over the coordinates.
    """

    axis_names: Tuple[str, ...]
    axis_sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.axis_names) != len(self.axis_sizes):
            raise ValueError("axis_names and axis_sizes must align")
        if len(set(self.axis_names)) != len(self.axis_names):
            raise ValueError(f"duplicate axis names: {self.axis_names}")
        if any(s <= 0 for s in self.axis_sizes):
            raise ValueError(f"axis sizes must be positive: {self.axis_sizes}")

    @staticmethod
    def ring(num_devices: int, axis_name: str = "x") -> "DeviceMesh":
        """A 1D mesh (logical ring) of ``num_devices`` devices."""
        return DeviceMesh((axis_name,), (num_devices,))

    @staticmethod
    def grid(shape: Dict[str, int]) -> "DeviceMesh":
        """A mesh from an ordered ``{axis_name: size}`` mapping."""
        return DeviceMesh(tuple(shape.keys()), tuple(shape.values()))

    @property
    def num_devices(self) -> int:
        return math.prod(self.axis_sizes)

    @property
    def rank(self) -> int:
        return len(self.axis_sizes)

    def axis_size(self, axis_name: str) -> int:
        return self.axis_sizes[self.axis_index(axis_name)]

    def axis_index(self, axis_name: str) -> int:
        try:
            return self.axis_names.index(axis_name)
        except ValueError:
            raise ValueError(
                f"unknown mesh axis {axis_name!r}; have {self.axis_names}"
            ) from None

    def coordinates(self, device_id: int) -> Tuple[int, ...]:
        """Mesh coordinates of a device id (row-major order)."""
        if not 0 <= device_id < self.num_devices:
            raise ValueError(f"device id {device_id} out of range")
        coords = []
        remaining = device_id
        for size in reversed(self.axis_sizes):
            coords.append(remaining % size)
            remaining //= size
        return tuple(reversed(coords))

    def device_id(self, coords: Tuple[int, ...]) -> int:
        if len(coords) != self.rank:
            raise ValueError(f"expected {self.rank} coordinates, got {coords}")
        device = 0
        for coord, size in zip(coords, self.axis_sizes):
            if not 0 <= coord < size:
                raise ValueError(f"coordinate {coords} out of mesh bounds")
            device = device * size + coord
        return device

    def rings(self, axis_name: str) -> List[Tuple[int, ...]]:
        """All device groups along ``axis_name``.

        Each group holds the devices whose coordinates agree on every other
        axis, ordered by the ``axis_name`` coordinate — the logical ring a
        subgroup collective (and the decomposed CollectivePermute chain)
        runs over.
        """
        axis = self.axis_index(axis_name)
        other_axes = [i for i in range(self.rank) if i != axis]
        groups: List[Tuple[int, ...]] = []
        other_ranges = [range(self.axis_sizes[i]) for i in other_axes]
        for other_coords in itertools.product(*other_ranges):
            group = []
            for k in range(self.axis_sizes[axis]):
                coords = [0] * self.rank
                for other_axis, coord in zip(other_axes, other_coords):
                    coords[other_axis] = coord
                coords[axis] = k
                group.append(self.device_id(tuple(coords)))
            groups.append(tuple(group))
        return groups

    def axis_stride(self, axis_name: str) -> int:
        """Row-major device-id stride of one step along ``axis_name``.

        A device's coordinate along the axis is
        ``(device_id // stride) mod axis_size`` — the ``div`` field of
        :class:`repro.hlo.instruction.ShardIndex`.
        """
        axis = self.axis_index(axis_name)
        return math.prod(self.axis_sizes[axis + 1:]) if axis + 1 < self.rank else 1

    def reshape(self, shape: Dict[str, int]) -> "DeviceMesh":
        """The same devices re-factored into a new named-axis grid.

        Device ids are row-major in both meshes, so a reshape is a pure
        re-labelling — device ``d`` keeps id ``d`` and only its
        coordinates change (e.g. an 8-ring becomes a ``tp=4, dp=2``
        mesh). The device count must match exactly.
        """
        new = DeviceMesh.grid(shape)
        if new.num_devices != self.num_devices:
            raise ValueError(
                f"cannot reshape {self} ({self.num_devices} devices) "
                f"to {new} ({new.num_devices} devices)"
            )
        return new

    def position_in_ring(self, device_id: int, axis_name: str) -> int:
        """The device's coordinate along ``axis_name`` (its ring index)."""
        return self.coordinates(device_id)[self.axis_index(axis_name)]

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{name}={size}" for name, size in zip(self.axis_names, self.axis_sizes)
        )
        return f"DeviceMesh({dims})"
