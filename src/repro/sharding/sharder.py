"""Shard real arrays according to sharding specs.

Utilities for running SPMD programs on the functional executor: slice a
full array into per-device shards (the inverse of what the collectives
reassemble), generate random sharded arguments for a whole logical graph,
and build the unit mesh (all axes of size one) on which the same graph
partitions to a trivially correct single-device reference program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.sharding.mesh import DeviceMesh
from repro.sharding.partitioner import LogicalGraph
from repro.sharding.spec import ShardingSpec


def shard_array(
    full: np.ndarray, spec: ShardingSpec, mesh: DeviceMesh
) -> List[np.ndarray]:
    """Per-device shards of ``full`` under ``spec`` (replicated dims copy)."""
    if full.ndim != spec.rank:
        raise ValueError(
            f"array rank {full.ndim} does not match spec rank {spec.rank}"
        )
    shards: List[np.ndarray] = []
    for device in range(mesh.num_devices):
        view = full
        for dim in range(spec.rank):
            # Outermost axis first: each split picks the device's block one
            # nesting level deeper — the layout multi-axis AllGathers
            # (innermost-first) reassemble.
            for axis in spec.axes_of_dim(dim):
                count = mesh.axis_size(axis)
                position = mesh.position_in_ring(device, axis)
                view = np.split(view, count, axis=dim)[position]
        shards.append(view.copy())
    return shards


def random_arguments(
    graph: LogicalGraph,
    mesh: DeviceMesh,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, List[np.ndarray]]:
    """Random full tensors for every graph input, sharded per its spec.

    Returns per-device shard lists keyed by input name, suitable for
    :func:`repro.runtime.executor.run_spmd`. The same ``rng`` seed
    produces the same logical tensors on any mesh, so a run on the unit
    mesh serves as the reference for a sharded run.
    """
    rng = rng or np.random.default_rng(0)
    arguments: Dict[str, List[np.ndarray]] = {}
    for name in graph.inputs:
        tensor = graph.tensors[name]
        full = rng.normal(size=tensor.shape.dims)
        arguments[name] = shard_array(full, tensor.spec, mesh)
    return arguments


def unit_mesh_like(mesh: DeviceMesh) -> DeviceMesh:
    """A mesh with the same axis names and every size one.

    Partitioning a logical graph on the unit mesh yields a single-device
    program whose collectives are identities — the numerical reference
    for the sharded program.
    """
    return DeviceMesh(mesh.axis_names, (1,) * mesh.rank)
