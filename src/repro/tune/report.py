"""The ``BENCH_tune.json`` artifact: build, render, gate, trend-compare.

The report is the tuner's machine-readable trail, mirroring the shape of
``BENCH_executor.json``: per-entry rows plus a summary block CI gates
on. Two gates apply:

* the **tuned-vs-default floor** (:func:`check_tune_report`): the
  geomean perfsim speedup of tuned configs over the analytic-gate
  defaults must be at least 1.0 — by construction the search can never
  lose to the default, so any entry below 1.0 means the scoring or
  persistence path corrupted a config; bit-identity may never be false
  on a measured entry.
* the **trend gate** (:func:`compare_tune_reports`): against a
  committed baseline report, no entry's tuned speedup may drop by more
  than ``max_drop`` (relative), matched by entry label; disjoint label
  sets fail outright — a gate that compares nothing protects nothing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

import numpy as np

from repro.tune.db import TuningRecord

#: Tolerance on the per-entry >= 1.0 speedup invariant (pure float noise;
#: the default config's time is compared against itself through two
#: different code paths).
_EPSILON = 1e-9


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))


def tune_report(
    records: Sequence[TuningRecord],
    *,
    budget: int,
    measured: bool,
) -> Dict:
    """The JSON-ready report over one tuning sweep's records."""
    entries = []
    for record in records:
        entries.append(
            {
                "label": record.label,
                "key": record.key,
                "config": dict(record.config),
                "default_ms": record.default_time * 1e3,
                "tuned_ms": record.tuned_time * 1e3,
                "speedup": record.speedup,
                "trials": record.trials,
                "sites": record.sites,
                "scored_by": record.scored_by,
                "measured_speedup": record.measured_speedup,
                "bit_identical": record.bit_identical,
            }
        )
    speedups = [e["speedup"] for e in entries]
    checked = [
        e["bit_identical"] for e in entries if e["bit_identical"] is not None
    ]
    return {
        "benchmark": "tune",
        "budget": budget,
        "measured": measured,
        "entries": entries,
        "summary": {
            "entries": len(entries),
            "default_geomean_ms": _geomean([e["default_ms"] for e in entries]),
            "tuned_geomean_ms": _geomean([e["tuned_ms"] for e in entries]),
            "tuned_vs_default_geomean": _geomean(speedups),
            "all_bit_identical": all(checked) if checked else None,
        },
    }


def write_tune_report(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_tune_report(report: Dict) -> str:
    lines = [
        f"{'program':<26} {'default ms':>11} {'tuned ms':>10} "
        f"{'speedup':>8} {'trials':>6}  winning config"
    ]
    for entry in report["entries"]:
        config = entry["config"]
        if config.get("use_cost_model", True):
            knobs = "default (analytic gate)"
        else:
            knobs = (
                f"{config['scheduler']}"
                f"{'+unroll' if config['unroll'] else ''}"
                f"{'+bidir' if config['bidirectional'] else ''}"
                f" inflight={config['max_in_flight']}"
                f" gran={config['transfer_granularity']}"
            )
        measured = (
            f" (measured {entry['measured_speedup']:.2f}x, "
            f"{'exact' if entry['bit_identical'] else 'INEXACT'})"
            if entry["measured_speedup"] is not None
            else ""
        )
        lines.append(
            f"{entry['label']:<26} {entry['default_ms']:>11.3f} "
            f"{entry['tuned_ms']:>10.3f} {entry['speedup']:>7.2f}x "
            f"{entry['trials']:>6}  {knobs}{measured}"
        )
    summary = report["summary"]
    exact = summary["all_bit_identical"]
    lines.append(
        f"tuned vs default geomean "
        f"{summary['tuned_vs_default_geomean']:.3f}x over "
        f"{summary['entries']} program(s)"
        + (
            ""
            if exact is None
            else f", measured runs bit-identical: {'yes' if exact else 'NO'}"
        )
    )
    return "\n".join(lines)


def check_tune_report(report: Dict, min_ratio: float = 1.0) -> List[str]:
    """Gate failures (empty list == pass) for CI and the CLI."""
    problems: List[str] = []
    summary = report["summary"]
    if not report["entries"]:
        problems.append("tuning sweep produced no entries")
        return problems
    ratio = summary["tuned_vs_default_geomean"]
    if ratio < min_ratio:
        problems.append(
            f"tuned geomean is {ratio:.3f}x the default geomean, below the "
            f"required {min_ratio:.2f}x (tuned must never lose to the "
            f"analytic gate)"
        )
    for entry in report["entries"]:
        if entry["speedup"] < 1.0 - _EPSILON:
            problems.append(
                f"{entry['label']}: tuned config is slower than the default "
                f"({entry['speedup']:.3f}x) — the default candidate should "
                f"have won"
            )
        if entry["bit_identical"] is False:
            problems.append(
                f"{entry['label']}: tuned plan diverges from the "
                f"interpreter oracle"
            )
    return problems


def compare_tune_reports(
    baseline: Dict, fresh: Dict, max_drop: float = 0.2
) -> List[str]:
    """Trend-gate failures of ``fresh`` against a committed baseline."""
    problems: List[str] = []
    base = {e["label"]: e for e in baseline.get("entries", ())}
    new = {e["label"]: e for e in fresh.get("entries", ())}
    shared = sorted(base.keys() & new.keys())
    if not shared:
        problems.append(
            "no comparable entries between baseline and fresh tuning "
            "reports (label sets are disjoint)"
        )
        return problems
    for label in shared:
        before, after = base[label], new[label]
        if after["speedup"] < before["speedup"] * (1.0 - max_drop):
            problems.append(
                f"{label}: tuned speedup {after['speedup']:.3f}x dropped "
                f"more than {max_drop:.0%} below the baseline "
                f"{before['speedup']:.3f}x"
            )
        if before["bit_identical"] is True and after["bit_identical"] is False:
            problems.append(f"{label}: bit_identical flipped to false")
    return problems
