"""Budgeted search over overlap configs, scored by perfsim (and,
optionally, by measured engine runs).

``tune_module`` is the core loop: enumerate
:func:`~repro.tune.space.candidate_space`, compile each candidate
through the shared content-addressed pipeline cache
(:func:`repro.core.pipeline.compile_module_cached` — so re-tuning, the
experiment sweeps and the serving catalog all share lowerings), score
every compilation with one perfsim pass, and keep the winner. Because
candidate 0 *is* the default analytic-gate config, the winner is never
worse than the paper's one-shot gate under the scoring model.

With ``measure=True`` the perfsim winner is cross-checked against the
default config on a real engine: both programs execute end-to-end
(best-of-``repeats`` wall clock) and the tuned outputs are verified
**bit-identical to the interpreter oracle** — the tuner may change the
schedule, never the numbers.

``tune_golden`` sweeps the chaos harness's golden module families (the
programs the serving catalog, bench and chaos all share) and persists
every record into a :class:`~repro.tune.db.TuningDB`, which is how the
rest of the system picks tuned configs up by fingerprint with zero
re-search.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module_cached
from repro.hlo.module import HloModule
from repro.perfsim.hardware import TPU_V4, ChipSpec
from repro.perfsim.simulator import simulate
from repro.sharding.mesh import DeviceMesh
from repro.tune.db import TuningDB, TuningRecord, config_to_json, tuning_key
from repro.tune.space import SearchPoint, candidate_space, default_config


def require_tuned_capable(kind: str) -> None:
    """Fail loudly unless engine ``kind`` accepts tuned configs.

    Mirrors :func:`repro.runtime.engine.create_engine`'s dynamic
    error-message pattern: unknown kinds report the live registry,
    known-but-incapable kinds report which kinds do accept tuning.
    """
    from repro.runtime.engine import ENGINE_KINDS

    if kind not in ENGINE_KINDS:
        raise ValueError(
            f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}"
        )
    if "tuned" not in ENGINE_KINDS.options_for(kind):
        takers = ENGINE_KINDS.accepting("tuned")
        raise ValueError(
            f"engine kind {kind!r} does not accept tuned configs"
            + (f" (only {takers} do)" if takers else "")
        )


def score_config(
    build: Callable[[], HloModule],
    mesh: DeviceMesh,
    config: OverlapConfig,
    chip: ChipSpec = TPU_V4,
):
    """Compile one candidate (cached) and simulate it; returns
    ``(compilation, step_report)``."""
    compiled = compile_module_cached(build(), mesh, config, chip=chip)
    return compiled, simulate(compiled.module, mesh, chip=chip)


def _best_seconds(fn: Callable[[], Any], repeats: int, inner: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _bit_identical(a: Dict[str, list], b: Dict[str, list]) -> bool:
    """Positional output comparison: the pipeline renames auto-generated
    roots when it compiles, so keys differ while values must not."""
    if len(a) != len(b):
        return False
    return all(
        len(x) == len(y)
        and all(np.array_equal(p, q) for p, q in zip(x, y))
        for x, y in zip(a.values(), b.values())
    )


def _spot_check(
    build: Callable[[], HloModule],
    mesh: DeviceMesh,
    tuned: OverlapConfig,
    arguments: Dict[str, List[np.ndarray]],
    chip: ChipSpec,
    engine_kind: str,
    workers: Optional[int],
    repeats: int,
    inner: int,
) -> Tuple[float, bool]:
    """Measured default-vs-tuned wall clock plus the oracle check."""
    from repro.runtime.engine import ENGINE_KINDS, create_engine

    require_tuned_capable(engine_kind)
    options: Dict[str, Any] = {}
    if workers is not None and "workers" in ENGINE_KINDS.options_for(
        engine_kind
    ):
        options["workers"] = workers
    engine = create_engine(engine_kind, **options)
    oracle = create_engine("interpreted")

    n = mesh.num_devices
    reference = oracle.run(build(), arguments, mesh=n)
    default_module = compile_module_cached(
        build(), mesh, default_config(), chip=chip
    ).module
    tuned_module = compile_module_cached(build(), mesh, tuned, chip=chip).module

    identical = _bit_identical(
        reference, engine.run(tuned_module, arguments, mesh=n)
    )
    default_s = _best_seconds(
        lambda: engine.run(default_module, arguments, mesh=n), repeats, inner
    )
    tuned_s = _best_seconds(
        lambda: engine.run(tuned_module, arguments, mesh=n), repeats, inner
    )
    return default_s / tuned_s, identical


def tune_module(
    build: Callable[[], HloModule],
    mesh: DeviceMesh,
    *,
    label: str,
    chip: ChipSpec = TPU_V4,
    budget: Optional[int] = 24,
    base: Optional[OverlapConfig] = None,
    axes: Sequence[str] = (),
    db: Optional[TuningDB] = None,
    force: bool = False,
    measure: bool = False,
    make_arguments: Optional[
        Callable[[DeviceMesh, np.random.Generator], Dict[str, List[np.ndarray]]]
    ] = None,
    engine: str = "compiled",
    workers: Optional[int] = None,
    repeats: int = 2,
    inner: int = 3,
    seed: int = 20230325,
) -> TuningRecord:
    """Search the candidate space for ``build()``'s program on ``mesh``.

    ``build`` must return a fresh, uncompiled module per call (the
    pipeline rewrites in place — same contract as
    :func:`repro.adapt.ladder.run_with_ladder`). When ``db`` already
    holds a record for this program's tuning key and ``force`` is off,
    that record is returned untouched: persisted results mean zero
    re-search. ``axes`` appends per-mesh-axis override candidates to
    the end of the space (see :func:`candidate_space`); the tuning key
    and the flat-grid indices are unchanged, so per-axis wins persist
    into the same DB slots the single-axis search used.
    """
    key = tuning_key(build(), mesh, chip)
    if db is not None and not force:
        existing = db.get(key)
        if existing is not None:
            return existing

    points = candidate_space(budget, base=base, axes=axes)
    best: Optional[Tuple[float, SearchPoint, Any]] = None
    default_time = math.inf
    for point in points:
        compiled, report = score_config(build, mesh, point.config, chip=chip)
        elapsed = report.total_time
        if point.is_default:
            default_time = elapsed
        if best is None or (elapsed, point.index) < (best[0], best[1].index):
            best = (elapsed, point, compiled)
    assert best is not None  # candidate_space never returns empty
    tuned_time, winner, best_compiled = best

    measured_speedup: Optional[float] = None
    identical: Optional[bool] = None
    scored_by = "perfsim"
    if measure:
        if make_arguments is None:
            raise ValueError(
                "measure=True needs make_arguments to generate inputs"
            )
        rng = np.random.default_rng([seed, mesh.num_devices])
        measured_speedup, identical = _spot_check(
            build, mesh, winner.config, make_arguments(mesh, rng),
            chip, engine, workers, repeats, inner,
        )
        scored_by = "perfsim+measured"

    record = TuningRecord(
        key=key,
        label=label,
        config=config_to_json(winner.config),
        tuned_time=tuned_time,
        default_time=default_time,
        trials=len(points),
        scored_by=scored_by,
        sites=best_compiled.candidates_found,
        measured_speedup=measured_speedup,
        bit_identical=identical,
    )
    if db is not None:
        db.put(record)
    return record


def tune_golden(
    *,
    budget: Optional[int] = 24,
    db: Optional[TuningDB] = None,
    measure: bool = False,
    engine: str = "compiled",
    workers: Optional[int] = None,
    chip: ChipSpec = TPU_V4,
    force: bool = False,
    rings: Optional[Sequence[int]] = None,
    cases: Optional[Sequence[str]] = None,
    seed: int = 20230325,
) -> List[TuningRecord]:
    """Tune every golden module family at every ring size.

    These are exactly the programs the serving catalog
    (:func:`repro.models.serving.default_catalog`), ``repro bench`` and
    the chaos harness execute, so persisting their records is what makes
    ``--tuned`` runs a pure DB lookup.
    """
    from repro.faults.chaos import GOLDEN_CASES

    records: List[TuningRecord] = []
    for case in GOLDEN_CASES:
        if cases is not None and case.name not in cases:
            continue
        for ring in case.rings:
            if rings is not None and ring not in rings:
                continue
            mesh = DeviceMesh.ring(ring)
            records.append(
                tune_module(
                    lambda case=case, mesh=mesh: case.build(mesh),
                    mesh,
                    label=f"{case.name}@{ring}",
                    chip=chip,
                    budget=budget,
                    db=db,
                    force=force,
                    measure=measure,
                    make_arguments=case.make_arguments,
                    engine=engine,
                    workers=workers,
                    seed=seed,
                )
            )
    return records
