"""Content-addressed tuning database: persisted overlap configurations.

The autotuner (:mod:`repro.tune.search`) replaces the paper's one-shot
analytic gate with search; this module is where its results live. Each
:class:`TuningRecord` binds one *tuning key* — the module's
content fingerprint (:func:`repro.runtime.plan_cache.fingerprint_module`)
plus the mesh and chip fingerprints, the exact coordinates the PR-5 plan
cache already keys compilations on — to the winning
:class:`~repro.core.config.OverlapConfig` and its scores. Because the
key is content-addressed, a tuned config found once is picked up for
free by every later process that builds a structurally identical program
on the same mesh: the serving catalog, ``repro bench --tuned`` and the
experiments all resolve configs through :meth:`TuningDB.config_for`
with zero re-search.

Persistence is one JSON file (schema-versioned, atomically replaced on
save). Failure handling is typed: a corrupted or schema-incompatible
file raises :class:`TuningDBError` from :meth:`TuningDB.load`, and
:meth:`TuningDB.load_or_default` converts that into an *empty* database
(recording the error on ``load_error``) so every caller falls back to
the default analytic-gate configs instead of crashing or — worse —
trusting garbage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.core.config import AxisOverride, OverlapConfig
from repro.hlo.module import HloModule
from repro.perfsim.hardware import TPU_V4, ChipSpec
from repro.runtime.plan_cache import (
    fingerprint_config,
    fingerprint_mesh,
    fingerprint_module,
)

#: On-disk schema version; bumped on incompatible record changes.
SCHEMA_VERSION = 1

#: Where the committed tuning database lives (the ``repro tune`` CLI,
#: the engines' ``tuned=True`` shorthand and CI all default to it).
#: Override with the ``REPRO_TUNING_DB`` environment variable.
DEFAULT_DB_PATH = "benchmarks/TUNING_DB.json"


def default_db_path() -> str:
    return os.environ.get("REPRO_TUNING_DB", DEFAULT_DB_PATH)


class TuningError(Exception):
    """Base class of every typed autotuner error."""


class TuningDBError(TuningError):
    """The tuning database file is unreadable, corrupted, or
    schema-incompatible. Carries ``path`` for operator triage."""

    def __init__(self, message: str, path: Optional[str] = None) -> None:
        super().__init__(
            message if path is None else f"{path}: {message}"
        )
        self.path = path


_CONFIG_FIELDS = {f.name for f in dataclasses.fields(OverlapConfig)}
_OVERRIDE_FIELDS = {f.name for f in dataclasses.fields(AxisOverride)}


def config_to_json(config: OverlapConfig) -> Dict[str, Any]:
    """The JSON-safe field dict of an :class:`OverlapConfig`.

    ``axis_overrides`` is flattened to ``{axis: {knob: value}}`` with
    unset (``None``) knobs dropped, so single-axis records — the entire
    pre-multi-axis database — serialize exactly as before (``{}``).
    """
    payload = {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(OverlapConfig)
    }
    payload["axis_overrides"] = {
        axis: {
            name: getattr(override, name)
            for name in sorted(_OVERRIDE_FIELDS)
            if getattr(override, name) is not None
        }
        for axis, override in config.axis_overrides
    }
    return payload


def _overrides_from_json(overrides: Any) -> Dict[str, AxisOverride]:
    """Rebuild ``axis_overrides`` from its JSON form (or legacy ``[]``)."""
    if isinstance(overrides, Mapping):
        items = list(overrides.items())
    elif isinstance(overrides, (list, tuple)):
        items = [tuple(item) for item in overrides]
    else:
        raise TuningDBError(
            f"axis_overrides must be an object, got "
            f"{type(overrides).__name__}"
        )
    rebuilt: Dict[str, AxisOverride] = {}
    for axis, fields in items:
        if isinstance(fields, AxisOverride):
            rebuilt[axis] = fields
            continue
        if not isinstance(fields, Mapping):
            raise TuningDBError(
                f"axis_overrides[{axis!r}] must be an object, got "
                f"{type(fields).__name__}"
            )
        unknown = sorted(set(fields) - _OVERRIDE_FIELDS)
        if unknown:
            raise TuningDBError(
                f"axis_overrides[{axis!r}] carries unknown AxisOverride "
                f"fields: {unknown}"
            )
        rebuilt[axis] = AxisOverride(**dict(fields))
    return rebuilt


def config_from_json(payload: Mapping[str, Any]) -> OverlapConfig:
    """Rebuild an :class:`OverlapConfig`; typed error on bad payloads.

    Unknown fields and out-of-range values both raise
    :class:`TuningDBError` — a database written by a future schema (or
    corrupted in place) must never silently half-apply. Records written
    before ``axis_overrides`` existed carry no such key and load
    unchanged.
    """
    if not isinstance(payload, Mapping):
        raise TuningDBError(
            f"tuned config must be an object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _CONFIG_FIELDS)
    if unknown:
        raise TuningDBError(
            f"tuned config carries unknown OverlapConfig fields: {unknown}"
        )
    fields = dict(payload)
    if "axis_overrides" in fields:
        fields["axis_overrides"] = _overrides_from_json(
            fields["axis_overrides"]
        )
    try:
        return OverlapConfig(**fields)
    except (TypeError, ValueError) as error:
        raise TuningDBError(f"invalid tuned config: {error}") from error


def chip_fingerprint(chip: ChipSpec) -> str:
    """Short, stable digest of a chip spec (full reprs are unwieldy keys)."""
    digest = hashlib.sha256(fingerprint_config(chip).encode()).hexdigest()
    return f"chip:{digest[:12]}"


def tuning_key(
    module: HloModule,
    mesh: Any,
    chip: ChipSpec = TPU_V4,
) -> str:
    """The content-addressed coordinate of one tuned program.

    ``mesh`` is a :class:`~repro.sharding.mesh.DeviceMesh` or a bare
    ring device count — the same convention as the plan cache, except
    bare counts are canonicalized to the 1D ring mesh so a record tuned
    on ``DeviceMesh.ring(4)`` is found by an engine called with
    ``mesh=4`` and vice versa.
    """
    if isinstance(mesh, int):
        from repro.sharding.mesh import DeviceMesh

        mesh = DeviceMesh.ring(mesh)
    return "|".join(
        (fingerprint_module(module), fingerprint_mesh(mesh),
         chip_fingerprint(chip))
    )


@dataclasses.dataclass(frozen=True)
class TuningRecord:
    """One tuned program: its key, winning config, and the evidence.

    Times are perfsim seconds (the search's primary score);
    ``measured_speedup`` is the optional compiled-engine wall-clock
    cross-check (default config time / tuned config time), and
    ``bit_identical`` records whether the tuned plan's outputs matched
    the interpreter oracle during that spot check (``None`` when the
    search was perfsim-only).
    """

    key: str
    label: str
    config: Mapping[str, Any]
    tuned_time: float
    default_time: float
    trials: int
    scored_by: str = "perfsim"
    sites: int = 0
    measured_speedup: Optional[float] = None
    bit_identical: Optional[bool] = None

    @property
    def speedup(self) -> float:
        """Perfsim speedup of the tuned config over the analytic default."""
        if self.tuned_time <= 0:
            return float("nan")
        return self.default_time / self.tuned_time

    def overlap_config(self) -> OverlapConfig:
        return config_from_json(self.config)

    def to_json(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "TuningRecord":
        if not isinstance(payload, Mapping):
            raise TuningDBError(
                f"tuning record must be an object, got "
                f"{type(payload).__name__}"
            )
        fields = {f.name for f in dataclasses.fields(TuningRecord)}
        unknown = sorted(set(payload) - fields)
        if unknown:
            raise TuningDBError(
                f"tuning record carries unknown fields: {unknown}"
            )
        missing = sorted(
            f.name
            for f in dataclasses.fields(TuningRecord)
            if f.default is dataclasses.MISSING and f.name not in payload
        )
        if missing:
            raise TuningDBError(
                f"tuning record is missing required fields: {missing}"
            )
        record = TuningRecord(**dict(payload))
        config_from_json(record.config)  # validate eagerly, fail typed
        if not isinstance(record.key, str) or record.key.count("|") != 2:
            raise TuningDBError(
                f"malformed tuning key {record.key!r} (expected "
                f"module|mesh|chip fingerprints)"
            )
        for name in ("tuned_time", "default_time"):
            value = getattr(record, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise TuningDBError(
                    f"tuning record field {name} must be a non-negative "
                    f"number, got {value!r}"
                )
        return record


@dataclasses.dataclass
class TuningDBStats:
    """Lookup counters of one :class:`TuningDB` (mirrors CacheStats)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def to_json(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class TuningDB:
    """Bounded, persistable map from tuning keys to winning configs.

    Entries keep insertion/update order; beyond ``capacity`` the oldest
    entry is evicted on :meth:`put` (a tuning DB is an accelerator, not
    an archive). The database never mutates its file implicitly — call
    :meth:`save` explicitly (atomic tmp-file + ``os.replace``).
    """

    def __init__(
        self, path: Optional[str] = None, capacity: int = 512
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.path = path
        self.capacity = capacity
        self._records: "OrderedDict[str, TuningRecord]" = OrderedDict()
        self.stats = TuningDBStats()
        self.load_error: Optional[TuningDBError] = None

    # -- container surface --------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[TuningRecord]:
        return iter(list(self._records.values()))

    def get(self, key: str) -> Optional[TuningRecord]:
        return self._records.get(key)

    def put(self, record: TuningRecord) -> None:
        self._records[record.key] = record
        self._records.move_to_end(record.key)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
            self.stats.evictions += 1

    def evict(self, needle: str) -> List[TuningRecord]:
        """Remove every record whose key or label starts with ``needle``
        (so ``mlp-chain`` evicts ``mlp-chain@2`` and ``mlp-chain@4``);
        returns the evicted records."""
        evicted = [
            record
            for key, record in self._records.items()
            if key.startswith(needle) or record.label.startswith(needle)
        ]
        for record in evicted:
            del self._records[record.key]
            self.stats.evictions += 1
        return evicted

    def clear(self) -> None:
        self._records.clear()

    # -- content-addressed lookup -------------------------------------

    def lookup(
        self,
        module: HloModule,
        mesh: Any,
        chip: ChipSpec = TPU_V4,
    ) -> Optional[TuningRecord]:
        """The record for ``module`` on ``mesh``, if one was ever tuned."""
        record = self._records.get(tuning_key(module, mesh, chip))
        if record is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return record

    def config_for(
        self,
        module: HloModule,
        mesh: Any,
        chip: ChipSpec = TPU_V4,
        default: Optional[OverlapConfig] = None,
    ) -> OverlapConfig:
        """The tuned config for ``module`` on ``mesh``, or ``default``
        (the analytic-gate :class:`OverlapConfig`) when never tuned."""
        record = self.lookup(module, mesh, chip)
        if record is None:
            return default if default is not None else OverlapConfig()
        return record.overlap_config()

    # -- persistence ---------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "entries": [record.to_json() for record in self],
        }

    def save(self, path: Optional[str] = None) -> str:
        """Atomically write the database; returns the path written."""
        target = path or self.path
        if not target:
            raise ValueError("TuningDB.save needs a path")
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=".tuning_db.", suffix=".json", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_json(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.path = target
        return target

    @classmethod
    def load(
        cls, path: str, capacity: int = 512
    ) -> "TuningDB":
        """Load a database file; a missing file is an *empty* database
        (first run), anything unreadable raises :class:`TuningDBError`."""
        db = cls(path=path, capacity=capacity)
        if not os.path.exists(path):
            return db
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as error:
            raise TuningDBError(f"cannot read: {error}", path=path)
        except json.JSONDecodeError as error:
            raise TuningDBError(
                f"corrupted JSON: {error}", path=path
            ) from error
        if not isinstance(payload, dict):
            raise TuningDBError(
                f"expected a JSON object, got {type(payload).__name__}",
                path=path,
            )
        if payload.get("schema") != SCHEMA_VERSION:
            raise TuningDBError(
                f"schema {payload.get('schema')!r} is not the supported "
                f"{SCHEMA_VERSION}",
                path=path,
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise TuningDBError("entries must be a list", path=path)
        for entry in entries:
            try:
                db.put(TuningRecord.from_json(entry))
            except TuningDBError as error:
                raise TuningDBError(str(error), path=path) from error
        return db

    @classmethod
    def load_or_default(
        cls, path: Optional[str] = None, capacity: int = 512
    ) -> "TuningDB":
        """Load ``path`` (default: :func:`default_db_path`), falling back
        to an empty database — i.e. to the default analytic-gate configs
        everywhere — when the file is corrupted. The typed error is kept
        on ``load_error`` so callers can surface the degradation."""
        target = path if path is not None else default_db_path()
        try:
            return cls.load(target, capacity=capacity)
        except TuningDBError as error:
            db = cls(path=target, capacity=capacity)
            db.load_error = error
            return db


def resolve_tuning_db(
    tuned: Union[None, bool, str, "TuningDB"]
) -> Optional["TuningDB"]:
    """Normalize every accepted ``tuned=`` spelling to a database.

    ``None``/``False`` → no tuning; ``True`` → the default committed
    database path; a string → that path (both loaded gracefully via
    :meth:`TuningDB.load_or_default`); a :class:`TuningDB` → itself.
    """
    if tuned is None or tuned is False:
        return None
    if tuned is True:
        return TuningDB.load_or_default()
    if isinstance(tuned, str):
        return TuningDB.load_or_default(tuned)
    if isinstance(tuned, TuningDB):
        return tuned
    raise TypeError(
        f"tuned must be a bool, a path, or a TuningDB, got "
        f"{type(tuned).__name__}"
    )
