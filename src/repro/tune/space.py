"""The autotuner's search space over overlap-pipeline knobs.

The paper gates decomposition with one analytic inequality per
collective and then always compiles its single default schedule. The
tuner instead enumerates :class:`~repro.core.config.OverlapConfig`
candidates over the knobs that actually change the compiled schedule:

* ``scheduler`` — bottom-up (Algorithm 2) vs top-down;
* ``unroll`` — degree-2 loop unrolling on/off (Section 5.4.1);
* ``bidirectional`` — bidirectional ring transfer on/off (Section 5.4.2);
* ``max_in_flight`` — the asynchronous-collective budget (Section 5.2);
* ``transfer_granularity`` — decomposition granularity: how many
  sub-permutes each ring transfer splits into (the PR-6 rebalancing
  knob, here searched proactively instead of reactively);
* ``axis_overrides`` — per-mesh-axis granularity / in-flight overrides
  (multi-axis meshes only, via ``candidate_space(axes=...)``).

Candidate 0 is always the **default analytic-gate config** —
``OverlapConfig()`` with the cost model on — so a budgeted search can
never return something worse than the paper's gate: the minimum over a
set containing the default is bounded by the default. Every other
candidate turns the analytic gate off (``use_cost_model=False``):
search *replaces* the inequality, it does not stack on top of it.

The enumeration order is deterministic and most-promising-first (the
paper's defaults vary before the long tail of granularity/in-flight
tweaks), so a small ``budget`` still explores the axes that matter.
Per-axis candidates are appended strictly *after* the flat grid:
existing TuningDB records and budgeted searches keep seeing the same
candidate at the same index whether or not ``axes`` is passed.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.config import BOTTOM_UP, TOP_DOWN, AxisOverride, OverlapConfig

#: Knob grids, in exploration-priority order.
SCHEDULERS: Tuple[str, ...] = (BOTTOM_UP, TOP_DOWN)
UNROLL: Tuple[bool, ...] = (True, False)
BIDIRECTIONAL: Tuple[bool, ...] = (True, False)
MAX_IN_FLIGHT: Tuple[int, ...] = (8, 4, 2)
TRANSFER_GRANULARITY: Tuple[int, ...] = (1, 2, 4)

#: Per-axis override grids (multi-axis meshes; see ``candidate_space``).
AXIS_GRANULARITY: Tuple[int, ...] = (2, 4)
AXIS_IN_FLIGHT: Tuple[int, ...] = (4, 2)


@dataclasses.dataclass(frozen=True)
class SearchPoint:
    """One scored candidate: its index, config, and provenance label."""

    index: int
    config: OverlapConfig
    label: str

    @property
    def is_default(self) -> bool:
        return self.index == 0


def default_config() -> OverlapConfig:
    """The paper's configuration: analytic cost gate, default schedule."""
    return OverlapConfig()


def _grid(base: OverlapConfig) -> Iterator[Tuple[OverlapConfig, str]]:
    for in_flight in MAX_IN_FLIGHT:
        for granularity in TRANSFER_GRANULARITY:
            for scheduler in SCHEDULERS:
                for unroll in UNROLL:
                    for bidirectional in BIDIRECTIONAL:
                        config = base.replace(
                            enabled=True,
                            use_cost_model=False,
                            scheduler=scheduler,
                            unroll=unroll,
                            bidirectional=bidirectional,
                            max_in_flight=in_flight,
                            transfer_granularity=granularity,
                        )
                        label = (
                            f"{scheduler}"
                            f"{'+unroll' if unroll else ''}"
                            f"{'+bidir' if bidirectional else ''}"
                            f" inflight={in_flight} gran={granularity}"
                        )
                        yield config, label


def _axis_grid(
    base: OverlapConfig, axes: Sequence[str]
) -> Iterator[Tuple[OverlapConfig, str]]:
    """Per-axis override candidates, one knob and one axis at a time.

    Each candidate perturbs exactly one mesh axis away from the flat
    default — the smallest step that can beat a flat config when one
    axis's ring (say a congested DP axis) wants different treatment
    than the others.
    """
    flat = base.replace(enabled=True, use_cost_model=False)
    for granularity in AXIS_GRANULARITY:
        for axis in axes:
            override = AxisOverride(transfer_granularity=granularity)
            yield (
                flat.replace(axis_overrides={axis: override}),
                f"axis {axis} gran={granularity}",
            )
    for in_flight in AXIS_IN_FLIGHT:
        for axis in axes:
            override = AxisOverride(max_in_flight=in_flight)
            yield (
                flat.replace(axis_overrides={axis: override}),
                f"axis {axis} inflight={in_flight}",
            )


def candidate_space(
    budget: Optional[int] = None,
    base: Optional[OverlapConfig] = None,
    axes: Sequence[str] = (),
) -> List[SearchPoint]:
    """The first ``budget`` candidates (all of them when ``None``).

    ``base`` seeds non-searched fields (e.g. ``min_ring_size``,
    ``pair_split``) so a caller with site-specific constraints keeps
    them across the whole space; the searched knobs are overwritten.
    ``budget`` counts *scored candidates* including the default, and
    must be at least 2 — a search that can only afford the default is
    not a search.

    ``axes`` names the mesh axes of a multi-axis program; when given,
    per-axis :class:`AxisOverride` candidates are appended **after**
    the flat grid. The flat prefix is byte-for-byte the axes-free
    space, so TuningDB records and budget prefixes stay index-stable;
    reaching the per-axis tail takes a budget above the flat-grid size
    (or ``budget=None``).
    """
    if budget is not None and budget < 2:
        raise ValueError(f"search budget must be at least 2, got {budget}")
    base = base if base is not None else OverlapConfig()
    points = [SearchPoint(0, default_config(), "default (analytic gate)")]
    seen = {points[0].config}
    for grid in (_grid(base), _axis_grid(base, axes)):
        for config, label in grid:
            if budget is not None and len(points) >= budget:
                break
            if config in seen:
                continue
            seen.add(config)
            points.append(SearchPoint(len(points), config, label))
    return points


#: Size of the full space (for reports and ``repro tune`` help text).
FULL_SPACE = len(candidate_space())
