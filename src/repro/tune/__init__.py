"""``repro.tune``: the overlap autotuner and its persisted tuning DB.

Replaces the paper's one-shot analytic decomposition gate with a
budgeted per-program search over schedulers, unrolling, bidirectional
transfers, in-flight budgets and decomposition granularity, persisting
winners in a content-addressed database the engines, server, bench
harness and experiments all pick up by fingerprint.
"""

from repro.tune.db import (
    DEFAULT_DB_PATH,
    SCHEMA_VERSION,
    TuningDB,
    TuningDBError,
    TuningError,
    TuningRecord,
    config_from_json,
    config_to_json,
    default_db_path,
    resolve_tuning_db,
    tuning_key,
)
from repro.tune.report import (
    check_tune_report,
    compare_tune_reports,
    format_tune_report,
    tune_report,
    write_tune_report,
)
from repro.tune.search import (
    require_tuned_capable,
    score_config,
    tune_golden,
    tune_module,
)
from repro.tune.space import FULL_SPACE, SearchPoint, candidate_space, default_config

__all__ = [
    "DEFAULT_DB_PATH",
    "FULL_SPACE",
    "SCHEMA_VERSION",
    "SearchPoint",
    "TuningDB",
    "TuningDBError",
    "TuningError",
    "TuningRecord",
    "candidate_space",
    "check_tune_report",
    "compare_tune_reports",
    "config_from_json",
    "config_to_json",
    "default_config",
    "default_db_path",
    "format_tune_report",
    "require_tuned_capable",
    "resolve_tuning_db",
    "score_config",
    "tune_golden",
    "tune_module",
    "tune_report",
    "write_tune_report",
]
