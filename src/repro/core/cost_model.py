"""The Section 5.5 benefit estimate: when is overlap worth enabling?

Decomposition replaces a bidirectional-ring collective with a chain of
unidirectional CollectivePermutes, which uses only half of the
interconnect bandwidth; enabling it blindly can *lose* performance when
the computation is too small to cover the stretched transfer. The gate is

    comp_t + comm_t >= max(comp_t, comm_t_ring) + extra_t

with ``extra_t`` the prologue/epilogue permutes, conservatively assumed
not to overlap anything. The latency primitives live in
:class:`repro.perfsim.costs.CostModel`; re-exported here because the gate
is part of the paper's contribution.
"""

from __future__ import annotations

import dataclasses

from repro.core.patterns import AG_EINSUM, CASE_CONTRACTING, Candidate
from repro.hlo.einsum_spec import LHS, EinsumSpec
from repro.hlo.opcode import Opcode
from repro.perfsim.costs import CostModel

__all__ = ["CostModel", "OverlapEstimate", "estimate_overlap"]


@dataclasses.dataclass(frozen=True)
class OverlapEstimate:
    """The Section 5.5 benefit estimate for one candidate.

    ``comp_t`` is the original einsum's time; ``comp_t_decomposed`` the
    total time of the per-shard partial einsums, which is *larger*: each
    partial works on a 1/N slice of one extent and loses matmul
    efficiency (the effect bidirectional transfer halves by doubling the
    per-iteration operand, Section 5.4.2). The paper's production gate
    estimates "simply against the peak FLOPS"; we include the efficiency
    term because this reproduction's efficiency model is explicit and the
    gate would otherwise approve decompositions that our own simulator
    shows regressing.
    """

    comp_t: float
    comp_t_decomposed: float
    comm_t: float
    comm_t_ring: float
    extra_t: float

    @property
    def original_time(self) -> float:
        return self.comp_t + self.comm_t

    @property
    def overlapped_time(self) -> float:
        return max(self.comp_t_decomposed, self.comm_t_ring) + self.extra_t

    @property
    def beneficial(self) -> bool:
        return self.original_time >= self.overlapped_time

    @property
    def estimated_speedup(self) -> float:
        if self.overlapped_time <= 0:
            return 1.0
        return self.original_time / self.overlapped_time


def estimate_overlap(
    cost_model: CostModel,
    candidate: Candidate,
    bidirectional: bool,
) -> OverlapEstimate:
    """Evaluate the gating inequality for one candidate."""
    einsum = candidate.einsum
    collective = candidate.collective
    ring_size = candidate.ring_size
    bidirectional = bidirectional and ring_size % 2 == 0

    comp_t = cost_model.einsum_time(einsum)
    comm_t = cost_model.collective_time(collective)
    iterations = ring_size // 2 if bidirectional else ring_size
    comp_t_decomposed = _decomposed_compute_time(
        cost_model, candidate, iterations
    )

    if collective.opcode is Opcode.ALL_GATHER:
        shard_bytes = collective.operands[0].shape.byte_size
    else:
        shard_bytes = collective.shape.byte_size

    link = cost_model.chip.link_bandwidth
    if (
        bidirectional
        and ring_size == 2
        and collective.opcode is Opcode.ALL_GATHER
    ):
        # Pair-split transfer: the peer shard travels as two concurrent
        # halves on opposite link directions (Section 7.1's 2-way case).
        comm_t_ring = shard_bytes / (2 * link)
        extra_t = 0.0
    elif bidirectional:
        # Both directions carry half the shards; one extra prologue or
        # epilogue shift happens outside the loop.
        steps = ring_size // 2 - 1
        if collective.opcode is Opcode.REDUCE_SCATTER:
            steps = ring_size // 2
        comm_t_ring = steps * shard_bytes / link
        extra_t = shard_bytes / link
    else:
        steps = ring_size - 1
        if collective.opcode is Opcode.REDUCE_SCATTER:
            steps = ring_size
        comm_t_ring = steps * shard_bytes / link
        extra_t = 0.0
    return OverlapEstimate(comp_t, comp_t_decomposed, comm_t, comm_t_ring, extra_t)


def _decomposed_compute_time(
    cost_model: CostModel, candidate: Candidate, iterations: int
) -> float:
    """Total time of the partial einsums the decomposition will emit.

    Each partial shrinks the decomposed label's extent by the iteration
    count; the label maps onto the (m, k, n) collapse as: contracting ->
    k, LHS free or batch -> m, RHS free -> n.
    """
    spec = EinsumSpec.parse(candidate.einsum.equation)
    lhs, rhs = (
        candidate.einsum.operands[0].shape,
        candidate.einsum.operands[1].shape,
    )
    flops = spec.flop_count(lhs, rhs)
    m, k, n = spec.matmul_dims(lhs, rhs)
    label = candidate.label
    if candidate.kind == AG_EINSUM and candidate.dim_case == CASE_CONTRACTING:
        k = max(1, k // iterations)
    elif candidate.operand_index == LHS or label in spec.batch_labels:
        m = max(1, m // iterations)
    else:
        n = max(1, n // iterations)
    achieved = cost_model.chip.peak_flops * cost_model.efficiency(m, k, n)
    return flops / achieved + iterations * cost_model.chip.kernel_overhead
