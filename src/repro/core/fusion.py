"""Operation fusion (Section 5.4.3).

Fusion assigns ``fusion_group`` ids; a group is costed and scheduled as a
single kernel (see :mod:`repro.core.sched_graph`). Two ingredients from
the paper:

* **Fusion-friendly rewrites** — with bidirectional transfer the einsum's
  local operand is built by DynamicSlices feeding a Concatenate, which the
  XLA fusion heuristics cannot absorb into the einsum. The paper rewrites
  ``Concatenate(a, b)`` into ``Max(PadLow(a), PadHigh(b))`` on an extended
  dimension. :func:`rewrite_concat_as_pad_max` performs the equivalent
  rewrite here, after which the pre-processing chain fuses.
* **Overlap-aware fusion priority** (Figure 11) — an ``Add`` combining two
  einsum results must fuse with the einsum *that consumes an asynchronous
  CollectivePermuteDone*; fusing it with the independent einsum makes the
  fused kernel transitively depend on the done and serializes the very
  computation that should hide the transfer.

The pass groups producer/consumer chains around each einsum: single-user
data-movement pre-processing on the input side, and a single elementwise
combiner (``Add`` / ``Maximum`` / ``DynamicUpdateSlice``) on the output
side. Absorption is conservative: a consumer joins a group only when its
other operands are defined before the group's first member, which keeps
every group contiguous-izable without cycles.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from repro.hlo.builder import GraphBuilder
from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode

_PRE_FUSIBLE = frozenset(
    {
        Opcode.DYNAMIC_SLICE,
        Opcode.SLICE,
        Opcode.CONCATENATE,
        Opcode.PAD,
        Opcode.MAXIMUM,
        Opcode.RESHAPE,
        Opcode.TRANSPOSE,
        Opcode.COPY,
    }
)

_POST_FUSIBLE = frozenset(
    {Opcode.ADD, Opcode.MAXIMUM, Opcode.DYNAMIC_UPDATE_SLICE, Opcode.SLICE}
)


def rewrite_concat_as_pad_max(module: HloModule) -> int:
    """Replace two-operand Concatenates with ``Max(PadLow, PadHigh)``.

    Only concatenates that feed an einsum are rewritten (that is where
    fusibility matters); returns the number of rewrites.
    """
    users = module.user_map()
    rewritten = 0
    for concat in module.find(lambda i: i.opcode is Opcode.CONCATENATE):
        if len(concat.operands) != 2:
            continue
        concat_users = users.get(concat, [])
        if not concat_users or any(
            u.opcode is not Opcode.EINSUM for u in concat_users
        ):
            continue
        low_op, high_op = concat.operands
        dim = concat.attrs["dim"]
        builder = GraphBuilder.into(module, concat)
        padded_low = builder.pad(
            low_op, dim, low=0, high=high_op.shape.dims[dim], value=float("-inf")
        )
        padded_high = builder.pad(
            high_op, dim, low=low_op.shape.dims[dim], high=0, value=float("-inf")
        )
        merged = builder.maximum(padded_low, padded_high)
        builder.flush()
        module.replace_all_uses(concat, merged)
        module.remove(concat)
        rewritten += 1
    return rewritten


def run_fusion(module: HloModule, overlap_aware: bool = True) -> int:
    """Assign fusion groups; returns the number of groups created."""
    users = module.user_map()
    position = {id(i): p for p, i in enumerate(module.instructions)}
    group_ids = itertools.count()
    group_first: Dict[int, int] = {}  # group id -> position of first member

    def assign(instruction: Instruction, group: int) -> None:
        instruction.fusion_group = group
        first = group_first.get(group, position[id(instruction)])
        group_first[group] = min(first, position[id(instruction)])

    def absorb_inputs(group: int, root: Instruction) -> None:
        stack = list(root.operands)
        while stack:
            operand = stack.pop()
            if operand.fusion_group is not None:
                continue
            if operand.opcode not in _PRE_FUSIBLE:
                continue
            operand_users = users.get(operand, [])
            if len(operand_users) != 1:
                continue
            assign(operand, group)
            stack.extend(operand.operands)

    groups_created = 0
    for einsum in module.find(lambda i: i.opcode is Opcode.EINSUM):
        if einsum.fusion_group is not None:
            continue
        group = next(group_ids)
        groups_created += 1
        assign(einsum, group)
        absorb_inputs(group, einsum)

    # Output-side combiners: each eligible combiner picks one producer
    # group to join, steered by the Figure 11 priority. A fused kernel is
    # scheduled at its last member, so joining is safe when (a) no other
    # operand of the combiner transitively depends on a group member (no
    # cycle through the kernel) and (b) no group member has an external
    # user that must run before the combiner.
    members_of: Dict[int, List[Instruction]] = {}
    for instruction in module:
        if instruction.fusion_group is not None:
            members_of.setdefault(instruction.fusion_group, []).append(
                instruction
            )
    for combiner in module.find(lambda i: i.opcode in _POST_FUSIBLE):
        if combiner.fusion_group is not None:
            continue
        if combiner.opcode is Opcode.DYNAMIC_UPDATE_SLICE:
            # A result update fuses with the kernel producing the update
            # value (operand 1); fusing along the accumulator chain would
            # weld successive loop iterations into one serial kernel.
            eligible = combiner.operands[1:2]
        else:
            eligible = combiner.operands
        candidates = [
            op for op in eligible
            if op.fusion_group is not None and _is_einsum_group_tail(op)
        ]
        if not candidates:
            continue
        chosen = _pick_combiner_home(candidates, overlap_aware)
        group = chosen.fusion_group
        group_members = members_of[group]
        if _safe_to_absorb(combiner, group_members, users, position):
            assign(combiner, group)
            group_members.append(combiner)
    return groups_created


def _safe_to_absorb(
    combiner: Instruction,
    group_members: List[Instruction],
    users: Dict[Instruction, List[Instruction]],
    position: Dict[int, int],
) -> bool:
    member_ids = {id(m) for m in group_members}
    # (b) Every member's users are inside the group or are the combiner
    # itself (or come after it — but an earlier external user would have
    # to run before the fused kernel completes).
    combiner_position = position[id(combiner)]
    for member in group_members:
        for user in users.get(member, []):
            if id(user) in member_ids or user is combiner:
                continue
            if position[id(user)] < combiner_position:
                return False
    # (a) No other operand may transitively depend on a group member.
    stack = [op for op in combiner.operands if id(op) not in member_ids]
    visited = set()
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        if id(node) in member_ids:
            return False
        stack.extend(node.operands)
    return True


def _is_einsum_group_tail(instruction: Instruction) -> bool:
    return instruction.opcode in (
        Opcode.EINSUM,
        Opcode.ADD,
        Opcode.MAXIMUM,
        Opcode.DYNAMIC_UPDATE_SLICE,
        Opcode.SLICE,
    )


def _pick_combiner_home(
    candidates: List[Instruction], overlap_aware: bool
) -> Instruction:
    """Pick which producer group a combiner fuses into.

    With ``overlap_aware`` the einsum whose operands include an
    asynchronous CollectivePermuteDone wins (Figure 11 (b)); otherwise the
    default heuristic keeps the first producer in operand order — which is
    the independent einsum in the Figure 11 (a) pattern and serializes the
    overlap.
    """
    if overlap_aware:
        for candidate in candidates:
            if _consumes_permute_done(candidate):
                return candidate
    return candidates[0]


def _consumes_permute_done(instruction: Instruction) -> bool:
    return any(
        op.opcode is Opcode.COLLECTIVE_PERMUTE_DONE
        for op in instruction.operands
    )


def clear_fusion(module: HloModule) -> None:
    """Remove all fusion-group assignments (used by ablations)."""
    for instruction in module:
        instruction.fusion_group = None
