"""Instruction scheduling over overlappable collectives (Section 5.2).

Both of the paper's schedulers live here, rewritten against the
:mod:`repro.core.collective` protocol instead of hard-coded permute
opcodes. The entry point is :func:`schedule_module`, which dispatches on
``config.scheduler`` and resolves the per-axis in-flight budgets of
``config.axis_overrides`` — on a multi-axis mesh each axis's transfers
are budgeted independently (the TP ring's sync-flag pool is not the DP
fabric's), which is what lets a DP gradient bucket stay in flight under
backward compute while the TP permute chain runs at its own depth.

* :func:`schedule_bottom_up` — Algorithm 2. Instructions are scheduled
  in *reverse*, starting from the roots of the dataflow graph. A
  ``ready`` queue holds units whose consumers are all scheduled and
  whose estimated ready time has been reached; async dones are
  prioritized (early in reverse order = late in the final program,
  maximizing the overlap window), subject to the axis's in-flight
  budget. A ``pending`` queue holds units whose ready time is still in
  the future — crucially the starts, whose ready time is pushed a
  transfer-time past their done, forcing computation between the pair.
  Picking from pending (earliest ready time first) only happens when
  nothing is ready: the reverse-time jump is an exposed transfer the
  schedule could not cover. Ties follow reverse program order
  (footnote 10 of the paper).

* :func:`schedule_top_down` — the local rule: hoist every async start
  as early as its producers allow (bounded by 1.5x its transfer time so
  transfers don't queue behind each other), sink every done as late as
  its first consumer allows, rebalance compute into under-filled
  windows, then enforce the in-flight budgets by emitting the oldest
  outstanding done early (footnote 11). Computation outside a window in
  the original order is never pulled in from afar — the source of the
  ~5% average gap in Figure 16.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro.core.collective import (
    CollectiveClassificationError,
    permute_axis,
)
from repro.core.config import BOTTOM_UP, TOP_DOWN, OverlapConfig
from repro.perfsim.costs import CostModel
from repro.perfsim.sched_graph import (
    ScheduleGraph,
    ScheduleUnit,
    validate_unit_order,
)
from repro.sharding.mesh import DeviceMesh


class _InFlightBudget:
    """Per-axis accounting of outstanding asynchronous transfers.

    Without ``axis_overrides`` this degenerates to the single counter of
    the original permute-only schedulers (every unit maps to axis
    ``None`` and shares the flat ``max_in_flight``) — bit-identical
    schedules for every pre-redesign config.
    """

    def __init__(
        self,
        mesh: DeviceMesh,
        max_in_flight: int,
        config: Optional[OverlapConfig] = None,
    ):
        self.mesh = mesh
        self.flat = max_in_flight
        self.config = config
        self.per_axis = bool(config is not None and config.axis_overrides)
        self.counts: Dict[Optional[str], int] = {}
        self._axis_cache: Dict[int, Optional[str]] = {}

    def axis_of(self, unit: ScheduleUnit) -> Optional[str]:
        if not self.per_axis:
            return None
        if unit.index not in self._axis_cache:
            try:
                axis: Optional[str] = permute_axis(unit.head, self.mesh)
            except CollectiveClassificationError:
                axis = None
            self._axis_cache[unit.index] = axis
        return self._axis_cache[unit.index]

    def limit(self, axis: Optional[str]) -> int:
        if not self.per_axis or axis is None:
            return self.flat
        assert self.config is not None
        return self.config.in_flight_budget(axis)

    def at_limit(self, unit: ScheduleUnit) -> bool:
        axis = self.axis_of(unit)
        return self.counts.get(axis, 0) >= self.limit(axis)

    def acquire(self, unit: ScheduleUnit) -> None:
        axis = self.axis_of(unit)
        self.counts[axis] = self.counts.get(axis, 0) + 1

    def release(self, unit: ScheduleUnit) -> None:
        axis = self.axis_of(unit)
        self.counts[axis] = self.counts.get(axis, 0) - 1


def schedule_module(
    graph: ScheduleGraph,
    cost_model: CostModel,
    mesh: DeviceMesh,
    config: OverlapConfig,
) -> List[ScheduleUnit]:
    """Dispatch on ``config.scheduler`` with per-axis budgets resolved."""
    if config.scheduler == BOTTOM_UP:
        order = schedule_bottom_up(
            graph, cost_model, mesh, config.max_in_flight, config=config
        )
    elif config.scheduler == TOP_DOWN:
        order = schedule_top_down(
            graph, cost_model, mesh, config.max_in_flight, config=config
        )
    else:
        order = list(graph.units)
    validate_unit_order(graph, order)
    return order


# --- bottom-up (Algorithm 2) -------------------------------------------------


def schedule_bottom_up(
    graph: ScheduleGraph,
    cost_model: CostModel,
    mesh: DeviceMesh,
    max_in_flight: int,
    config: Optional[OverlapConfig] = None,
) -> List[ScheduleUnit]:
    """Return a unit order maximizing start->done overlap windows."""
    units = graph.units
    original_position = {unit.index: i for i, unit in enumerate(units)}
    unscheduled_users: Dict[int, int] = {
        unit.index: len(graph.successors[unit.index]) for unit in units
    }
    budget = _InFlightBudget(mesh, max_in_flight, config)

    # Priority queues hold (sort_key, unit_index); ready prefers dones and
    # then later program positions (we are scheduling from the back).
    ready: List[tuple] = []
    pending: List[tuple] = []  # (ready_time, sort_key, unit_index)
    ready_time: Dict[int, float] = {unit.index: 0.0 for unit in units}

    def sort_key(unit: ScheduleUnit) -> tuple:
        priority = 0 if unit.is_async_done else 1
        return (priority, -original_position[unit.index])

    current_time = 0.0
    scheduled_reverse: List[ScheduleUnit] = []

    def push(unit: ScheduleUnit) -> None:
        if ready_time[unit.index] <= current_time:
            heapq.heappush(ready, (sort_key(unit), unit.index))
        else:
            heapq.heappush(
                pending, (ready_time[unit.index], sort_key(unit), unit.index)
            )

    for unit in units:
        if unscheduled_users[unit.index] == 0:
            push(unit)

    def pop_ready() -> Optional[ScheduleUnit]:
        """Best ready unit, skipping dones that would bust their budget."""
        skipped: List[tuple] = []
        chosen: Optional[ScheduleUnit] = None
        while ready:
            key, index = heapq.heappop(ready)
            unit = units[index]
            if unit.is_async_done and budget.at_limit(unit):
                skipped.append((key, index))
                continue
            chosen = unit
            break
        for item in skipped:
            heapq.heappush(ready, item)
        return chosen

    while len(scheduled_reverse) < len(units):
        # Promote pending units whose time has come.
        while pending and pending[0][0] <= current_time:
            _, key, index = heapq.heappop(pending)
            heapq.heappush(ready, (key, index))

        candidate = pop_ready()
        if candidate is None:
            if not pending:
                raise RuntimeError("scheduler deadlock: no candidates left")
            # Nothing ready: jump time to the earliest pending unit. This
            # is an exposed-transfer gap (SelectNodeFromPendingQ).
            current_time = pending[0][0]
            continue

        scheduled_reverse.append(candidate)

        if candidate.is_async_done:
            budget.acquire(candidate)
            start = candidate.head.operands[0]
            start_unit = graph.unit_of[id(start)]
            transfer = graph.transfer_time(candidate, cost_model, mesh)
            ready_time[start_unit.index] = current_time + transfer
        elif candidate.is_async_start:
            budget.release(candidate)

        current_time += graph.compute_time(candidate, cost_model, mesh)

        for producer in graph.predecessors[candidate.index]:
            unscheduled_users[producer.index] -= 1
            if unscheduled_users[producer.index] == 0:
                push(producer)

    scheduled_reverse.reverse()
    return scheduled_reverse


# --- top-down (Section 5.2, second approach) ---------------------------------


def schedule_top_down(
    graph: ScheduleGraph,
    cost_model: CostModel,
    mesh: DeviceMesh,
    max_in_flight: int,
    config: Optional[OverlapConfig] = None,
) -> List[ScheduleUnit]:
    """ASAP starts, ALAP dones, original order otherwise."""
    order = _hoist_chain_feeders(graph, list(graph.units))

    predecessor_sets = {
        unit.index: {p.index for p in graph.predecessors[unit.index]}
        for unit in graph.units
    }
    successor_sets = {
        unit.index: {s.index for s in graph.successors[unit.index]}
        for unit in graph.units
    }

    # Sink dones first: walk backward, bubbling each done down past every
    # unit that does not depend on it. In a permute chain this stops just
    # before the next start (which consumes the done), leaving that
    # iteration's computation inside the transfer window.
    for index in range(len(order) - 1, -1, -1):
        if order[index].is_async_done:
            _bubble_down(order, index, successor_sets)

    # Then hoist starts past everything they do not depend on — but no
    # further than the transfer needs: pushing every start maximally early
    # just queues transfers behind each other on the link. Order matters:
    # hoisting first would park each chain's next start directly behind
    # the previous done and the dones could never sink.
    for index in range(len(order)):
        if order[index].is_async_start:
            budget = 1.5 * graph.transfer_time(order[index], cost_model, mesh)
            _bubble_up(
                order, index, predecessor_sets,
                graph, cost_model, mesh, budget,
            )

    order = _rebalance_windows(graph, order, cost_model, mesh)
    return _enforce_budget(
        graph, order, _InFlightBudget(mesh, max_in_flight, config)
    )


def _bubble_up(
    order: List[ScheduleUnit],
    index: int,
    predecessor_sets,
    graph: ScheduleGraph,
    cost_model: CostModel,
    mesh: DeviceMesh,
    compute_budget: float,
) -> None:
    unit = order[index]
    wanted: Set[int] = predecessor_sets[unit.index]
    hoisted_past = 0.0
    while index > 0 and order[index - 1].index not in wanted:
        if hoisted_past >= compute_budget:
            break
        hoisted_past += graph.compute_time(order[index - 1], cost_model, mesh)
        order[index], order[index - 1] = order[index - 1], order[index]
        index -= 1


def _bubble_down(
    order: List[ScheduleUnit], index: int, successor_sets
) -> None:
    unit = order[index]
    blocking: Set[int] = successor_sets[unit.index]
    while index + 1 < len(order) and order[index + 1].index not in blocking:
        order[index], order[index + 1] = order[index + 1], order[index]
        index += 1


def _rebalance_windows(
    graph: ScheduleGraph,
    order: List[ScheduleUnit],
    cost_model: CostModel,
    mesh: DeviceMesh,
    lookahead: int = 400,
) -> List[ScheduleUnit]:
    """Redistribute compute into under-filled transfer windows.

    The paper's top-down pass "rebalances the instructions among each
    CollectivePermute interval based on the runtime cost": when the
    computation sitting between a start and its done is shorter than the
    transfer, later units that do not (transitively) depend on the done
    are pulled into the window — bounded by a lookahead so the pass stays
    local (which is also why it remains weaker than the global bottom-up
    scheduler on heavily unbalanced programs).
    """
    order = list(order)
    index = 0
    while index < len(order):
        unit = order[index]
        if not unit.is_async_done:
            index += 1
            continue
        transfer = graph.transfer_time(unit, cost_model, mesh)
        start_unit = graph.unit_of[id(unit.head.operands[0])]
        window_compute = 0.0
        for other in order[:index]:
            if other is start_unit:
                window_compute = 0.0  # reset at the window's start
            elif not (other.is_async_start or other.is_async_done):
                window_compute += graph.compute_time(other, cost_model, mesh)
        deficit = transfer - window_compute

        scan = index + 1
        position = {u.index: i for i, u in enumerate(order)}
        while deficit > 0 and scan < min(len(order), index + 1 + lookahead):
            candidate = order[scan]
            if candidate.is_async_start or candidate.is_async_done:
                scan += 1
                continue
            producers_before = all(
                position[p.index] < index
                for p in graph.predecessors[candidate.index]
            )
            if producers_before:
                order.pop(scan)
                order.insert(index, candidate)
                index += 1  # the done moved one slot right
                deficit -= graph.compute_time(candidate, cost_model, mesh)
                position = {u.index: i for i, u in enumerate(order)}
            scan += 1
        index += 1
    return order


def _hoist_chain_feeders(
    graph: ScheduleGraph, order: List[ScheduleUnit]
) -> List[ScheduleUnit]:
    """Move units feeding a permute-chain's first start as early as legal.

    The top-down approach "moves certain instruction that feeds into a
    CollectivePermute chain start to an earlier position" so the first
    transfer can begin sooner. A chain's first start is an async start
    with no async-done producer; each of its non-permute producers is
    hoisted to just after its own last producer.
    """
    for unit in graph.units:
        if not unit.is_async_start:
            continue
        if any(p.is_async_done for p in graph.predecessors[unit.index]):
            continue
        for producer in graph.predecessors[unit.index]:
            current_slot = order.index(producer)
            own_producer_slots = [
                order.index(p) for p in graph.predecessors[producer.index]
            ]
            earliest = (max(own_producer_slots) + 1) if own_producer_slots else 0
            if earliest < current_slot:
                order.pop(current_slot)
                order.insert(earliest, producer)
    return order


def _enforce_budget(
    graph: ScheduleGraph,
    order: List[ScheduleUnit],
    budget: _InFlightBudget,
) -> List[ScheduleUnit]:
    """Pull dones earlier when too many transfers are in flight at once.

    Walking the order, when a start would push its axis's outstanding
    count past the budget, the oldest outstanding done *on that axis* is
    emitted immediately before it — shrinking that transfer's window
    instead of reordering computation (footnote 11 of the paper).
    """
    result: List[ScheduleUnit] = []
    # Dones of in-flight transfers, keyed by mesh axis (one shared queue
    # when budgets are flat).
    outstanding: Dict[Optional[str], List[ScheduleUnit]] = {}
    emitted_early = set()
    for unit in order:
        if unit.is_async_done:
            if unit.index in emitted_early:
                continue
            axis = budget.axis_of(unit)
            queue = outstanding.get(axis, [])
            outstanding[axis] = [d for d in queue if d.index != unit.index]
            result.append(unit)
            continue
        if unit.is_async_start:
            axis = budget.axis_of(unit)
            queue = outstanding.setdefault(axis, [])
            if len(queue) >= budget.limit(axis):
                oldest = queue.pop(0)
                result.append(oldest)
                emitted_early.add(oldest.index)
            result.append(unit)
            queue.append(graph.successors[unit.index][0])
            continue
        result.append(unit)
    return result
