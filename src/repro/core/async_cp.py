"""Asynchronous CollectivePermute conversion (Section 5.2, first half).

Splits every synchronous ``collective-permute`` into a
``collective-permute-start`` / ``collective-permute-done`` pair. The start
merely launches the transfer and costs (almost) nothing on the compute
stream; the done blocks until the data has arrived. The pair is emitted
adjacently — with no instructions in between the pair behaves exactly like
the original blocking permute, and it is the *scheduler's* job to move
computation into the gap.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode


def split_collective_permutes(
    module: HloModule,
) -> List[Tuple[Instruction, Instruction]]:
    """Replace sync permutes with start/done pairs; returns the pairs."""
    pairs: List[Tuple[Instruction, Instruction]] = []
    replacement: dict = {}
    new_order: List[Instruction] = []
    # Each pair gets a module-unique channel id (as in XLA, where every
    # async collective owns a channel): the static analyzer's async-pair
    # linter keys interleaved-reuse detection on it, and the text format
    # round-trips it. The counter seeds past every channel id anywhere in
    # the module — not just permute starts — so multi-axis lowering that
    # splits permutes in several passes (TP rings, then DP buckets, then
    # PP sends) can never hand two axes the same channel.
    next_channel = 1 + max(
        (i.attrs.get("channel_id", 0) for i in module),
        default=0,
    )
    for instruction in module.instructions:
        if instruction.opcode is not Opcode.COLLECTIVE_PERMUTE:
            instruction.operands = [
                replacement.get(id(op), op) for op in instruction.operands
            ]
            new_order.append(instruction)
            continue
        # Carry over *every* attribute of the original permute (pairs,
        # direction, and any custom annotation a pass attached) — the
        # start instruction is the original transfer, just asynchronous.
        attrs = dict(instruction.attrs)
        attrs["pairs"] = list(instruction.pairs)
        attrs["channel_id"] = next_channel
        next_channel += 1
        start = Instruction(
            name=Instruction.fresh_name("collective-permute-start"),
            opcode=Opcode.COLLECTIVE_PERMUTE_START,
            shape=instruction.shape,
            operands=[
                replacement.get(id(op), op) for op in instruction.operands
            ],
            attrs=attrs,
        )
        done = Instruction(
            name=Instruction.fresh_name("collective-permute-done"),
            opcode=Opcode.COLLECTIVE_PERMUTE_DONE,
            shape=instruction.shape,
            operands=[start],
        )
        replacement[id(instruction)] = done
        new_order.extend([start, done])
        pairs.append((start, done))
    root = module.root
    new_root = replacement.get(id(root), root) if root is not None else None
    module.rebuild(new_order, new_root)
    module.verify()
    return pairs
