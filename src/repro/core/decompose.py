"""Looped CollectiveEinsum: the decomposition rewrite (Sections 4, 5.1, 5.4).

Rewrites an ``AllGather -> Einsum`` or ``Einsum -> ReduceScatter`` pair
into an (unrolled) loop of per-shard partial einsums interleaved with ring
CollectivePermutes, semantically equivalent to the original pair. The
partition count is a compile-time constant, so the loop is materialized as
an unrolled SSA sequence — one iteration per shard.

Ring index algebra (device ring position ``r``, ring size ``N``; all
indices mod N — see DESIGN.md for derivations):

* AllGather: iteration ``i`` computes shard ``r + i``; permutes shift the
  looped operand one position "left" (toward lower ring coordinates), so
  N-1 permutes are needed.
* ReduceScatter: iteration ``i`` computes the partial for shard
  ``r + i + 1`` and the accumulator is sent *before* the update; after N
  permutes each device holds exactly its own output shard.
* Unrolled ReduceScatter (degree 2, N even): two independent accumulation
  chains on hop-2 rings. Chain A computes shards ``r + 2(t+1)`` and
  transfers after accumulating (no permute on the last step); chain B
  computes shards ``r + 2t + 3`` and accumulates after the transfer. Chain
  B ends holding shard ``r + 1`` and is aligned by an epilogue permute
  ``{p -> p+1}`` before the final Add (Figure 8).
* Bidirectional AllGather: a prologue permute shifts the local shard
  clockwise; iteration ``t`` then computes shards ``r + t`` (buffer moving
  counterclockwise) and ``r - 1 - t`` (clockwise) as one doubled einsum
  over concatenated operands (Figure 9).
* Bidirectional ReduceScatter: iteration ``t`` computes shards
  ``r + t + 1 + N/2`` (left accumulator) and ``r - t - N/2`` (right); the
  right accumulator ends holding shard ``r + 1`` and takes the epilogue
  clockwise shift before the final Add (Figure 10).

When ``config.unroll`` is off, every loop-carried buffer is reassigned
through an explicit ``Copy`` — the loop-carried-aliasing cost the paper's
unrolling optimization exists to remove (Section 5.4.1).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.collective import (
    CollectiveClassificationError,
    ring_axis_of_groups,
)
from repro.core.config import OverlapConfig
from repro.core.patterns import (
    AG_EINSUM,
    CASE_BATCH,
    CASE_CONTRACTING,
    CASE_FREE,
    Candidate,
)
from repro.hlo.builder import GraphBuilder
from repro.hlo.einsum_spec import EinsumSpec
from repro.hlo.instruction import (
    Instruction,
    ShardIndex,
    collective_permute_pairs,
)
from repro.hlo.module import HloModule
from repro.hlo.shapes import Shape
from repro.perfsim.topology import MINUS, PLUS
from repro.sharding.mesh import DeviceMesh


class DecompositionError(RuntimeError):
    """Raised when a candidate cannot be decomposed."""


@dataclasses.dataclass
class DecomposedLoop:
    """Bookkeeping for one rewritten collective/einsum pair."""

    candidate: Candidate
    result: Instruction
    permutes: List[Instruction]
    partial_einsums: List[Instruction]
    iterations: int
    bidirectional: bool
    unrolled: bool


def find_ring_axis(mesh: DeviceMesh, groups) -> str:
    """The mesh axis whose rings equal the collective's replica groups."""
    try:
        return ring_axis_of_groups(mesh, groups)
    except CollectiveClassificationError as error:
        raise DecompositionError(str(error)) from error


@dataclasses.dataclass
class _RingContext:
    """Shared geometry for one decomposition."""

    mesh: DeviceMesh
    axis: str
    groups: List[Tuple[int, ...]]
    n: int
    div: int  # ShardIndex divisor: (pid // div) mod n == ring position

    @staticmethod
    def create(mesh: DeviceMesh, groups) -> "_RingContext":
        axis = find_ring_axis(mesh, groups)
        return _RingContext(
            mesh=mesh,
            axis=axis,
            groups=[tuple(g) for g in groups],
            n=len(groups[0]),
            div=mesh.axis_stride(axis),
        )

    def shard_index(self, offset: int, shard_size: int) -> ShardIndex:
        """Start of shard ``(ring_pos + offset) mod n``."""
        return ShardIndex.shard(
            coeff=1, offset=offset % self.n, num_shards=self.n,
            shard_size=shard_size, div=self.div,
        )

    def permute_pairs(self, shift: int) -> List[Tuple[int, int]]:
        pairs: List[Tuple[int, int]] = []
        for group in self.groups:
            pairs.extend(collective_permute_pairs(group, shift))
        return pairs


class _LoopEmitter:
    """Emits loop instructions before the consumer and tracks bookkeeping."""

    def __init__(
        self,
        module: HloModule,
        anchor: Instruction,
        copies: bool,
        granularity: int = 1,
    ):
        self.builder = GraphBuilder.into(module, anchor)
        self.copies = copies
        self.granularity = granularity
        self.permutes: List[Instruction] = []
        self.partial_einsums: List[Instruction] = []

    def permute(
        self,
        ring: _RingContext,
        value: Instruction,
        shift: int,
        split_axis: Optional[int] = None,
    ) -> Instruction:
        """Ring-shift ``value``; an identity shift returns it unchanged.

        Positive shifts move data toward lower ring coordinates (the
        "minus" link direction), negative shifts the opposite way; the
        direction is recorded on the instruction so the link model can
        tell the two apart even on two-device rings.

        With ``granularity > 1`` and a ``split_axis`` whose extent it
        divides, the payload travels as ``granularity`` independent
        sub-permutes concatenated back on arrival — same bytes, same
        route, finer link occupancy (the rebalance ladder's
        "shrink the decomposed step" edit). Each sub-permute is a
        per-device pure data movement, so the result is bit-identical
        to the single-transfer form.
        """
        if shift % ring.n == 0:
            return value
        direction = MINUS if shift > 0 else PLUS
        pairs = ring.permute_pairs(shift)
        g = self.granularity
        if (
            g > 1
            and split_axis is not None
            and value.shape.dims[split_axis] >= g
            and value.shape.dims[split_axis] % g == 0
        ):
            size = value.shape.dims[split_axis] // g
            chunks = []
            for k in range(g):
                piece = self.builder.slice(value, split_axis, k * size, size)
                sent = self.builder.collective_permute(
                    piece, pairs, direction=direction
                )
                sent.attrs["axis"] = ring.axis
                self.permutes.append(sent)
                chunks.append(sent)
            permuted = self.builder.concatenate(chunks, split_axis)
        else:
            permuted = self.builder.collective_permute(
                value, pairs, direction=direction
            )
            permuted.attrs["axis"] = ring.axis
            self.permutes.append(permuted)
        if self.copies:
            # Loop-carried aliasing: the rolled loop must copy the received
            # buffer before reuse (removed by unrolling, Section 5.4.1).
            return self.builder.copy(permuted)
        return permuted

    def einsum(
        self,
        equation: str,
        operand_index: int,
        looped: Instruction,
        other: Instruction,
    ) -> Instruction:
        lhs, rhs = (looped, other) if operand_index == 0 else (other, looped)
        partial = self.builder.einsum(equation, lhs, rhs)
        self.partial_einsums.append(partial)
        return partial


def decompose_candidate(
    module: HloModule,
    candidate: Candidate,
    mesh: DeviceMesh,
    config: OverlapConfig,
) -> DecomposedLoop:
    """Rewrite one candidate in place; returns the loop bookkeeping."""
    ring = _RingContext.create(mesh, candidate.collective.groups)
    # Resolve the axis's overrides once: every knob the emitters read
    # below (granularity, direction, unroll/bidirectional choices) is the
    # effective single-axis view for this collective's ring.
    config = config.for_axis(ring.axis)
    if ring.n < config.min_ring_size:
        raise DecompositionError(f"ring of {ring.n} below minimum")
    bidirectional = config.bidirectional and ring.n % 2 == 0 and ring.n >= 2

    if candidate.kind == AG_EINSUM:
        if bidirectional and ring.n == 2:
            loop = _all_gather_pair_split(module, candidate, ring, config)
        elif bidirectional:
            loop = _all_gather_bidirectional(module, candidate, ring, config)
        else:
            loop = _all_gather_unidirectional(module, candidate, ring, config)
    else:
        if bidirectional:
            loop = _reduce_scatter_bidirectional(module, candidate, ring, config)
        elif config.unroll and ring.n % 2 == 0:
            loop = _reduce_scatter_unrolled(module, candidate, ring, config)
        else:
            loop = _reduce_scatter_unidirectional(module, candidate, ring, config)
    module.verify()
    return loop


# --- AllGather -> Einsum ----------------------------------------------------------


@dataclasses.dataclass
class _GatherParts:
    """Dissected AllGather-Einsum candidate."""

    spec: EinsumSpec
    label: str
    operand_index: int
    gather_axis: int          # axis of the gathered dim on the looped operand
    shard_size: int           # looped-operand shard size along gather_axis
    local: Instruction        # the pre-gather local shard
    other: Instruction        # the einsum's other operand
    other_axis: Optional[int]  # axis of the label on the other operand
    other_slice: Optional[int]  # slice size on the other operand
    out_axis: Optional[int]   # axis of the label in the output
    out_shard: Optional[int]  # output shard size along out_axis


def _dissect_gather(candidate: Candidate, ring: _RingContext) -> _GatherParts:
    einsum = candidate.einsum
    gather = candidate.collective
    spec = EinsumSpec.parse(einsum.equation)
    operand_index = candidate.operand_index
    gather_axis = gather.attrs["dim"]
    label = spec.operand_labels(operand_index)[gather_axis]
    local = gather.operands[0]
    other = einsum.operands[1 - operand_index]
    shard_size = local.shape.dims[gather_axis]

    other_axis = other_slice = None
    if candidate.dim_case in (CASE_CONTRACTING, CASE_BATCH):
        other_axis = spec.axis_of(1 - operand_index, label)
        other_slice = shard_size
    out_axis = out_shard = None
    if candidate.dim_case in (CASE_FREE, CASE_BATCH):
        out_axis = spec.out_axis_of(label)
        out_shard = einsum.shape.dims[out_axis] // ring.n
    return _GatherParts(
        spec, label, operand_index, gather_axis, shard_size, local, other,
        other_axis, other_slice, out_axis, out_shard,
    )


def _gather_step(
    emit: _LoopEmitter,
    parts: _GatherParts,
    ring: _RingContext,
    candidate: Candidate,
    looped: Instruction,
    shard_offset: int,
    result: Instruction,
) -> Instruction:
    """One partial computation: consume ``looped`` (shard ``r + offset``)
    and fold it into ``result``. Returns the updated result."""
    builder = emit.builder
    if candidate.dim_case == CASE_FREE:
        partial = emit.einsum(
            candidate.einsum.equation, parts.operand_index, looped, parts.other
        )
        return builder.dynamic_update_slice(
            result, partial, parts.out_axis,
            ring.shard_index(shard_offset, parts.out_shard),
        )
    other_slice = builder.dynamic_slice(
        parts.other, parts.other_axis,
        ring.shard_index(shard_offset, parts.other_slice), parts.other_slice,
    )
    partial = emit.einsum(
        candidate.einsum.equation, parts.operand_index, looped, other_slice
    )
    if candidate.dim_case == CASE_CONTRACTING:
        return builder.add(result, partial)
    # CASE_BATCH: slice the other operand *and* update the output slice.
    return builder.dynamic_update_slice(
        result, partial, parts.out_axis,
        ring.shard_index(shard_offset, parts.out_shard),
    )


def _finish_gather(
    module: HloModule,
    candidate: Candidate,
    emit: _LoopEmitter,
    result: Instruction,
    ring: _RingContext,
    config: OverlapConfig,
    iterations: int,
    bidirectional: bool,
) -> DecomposedLoop:
    emit.builder.flush()
    module.replace_all_uses(candidate.einsum, result)
    module.remove(candidate.einsum)
    module.remove(candidate.collective)
    return DecomposedLoop(
        candidate=candidate,
        result=result,
        permutes=emit.permutes,
        partial_einsums=emit.partial_einsums,
        iterations=iterations,
        bidirectional=bidirectional,
        unrolled=config.unroll,
    )


def _all_gather_unidirectional(
    module: HloModule,
    candidate: Candidate,
    ring: _RingContext,
    config: OverlapConfig,
) -> DecomposedLoop:
    parts = _dissect_gather(candidate, ring)
    emit = _LoopEmitter(
        module, candidate.einsum, copies=not config.unroll,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder
    # The mirrored loop (preferred_direction == "plus") circulates the
    # buffer with -1 shifts, so iteration i holds shard r - i: the minus
    # links stay idle — the degradation ladder's escape from a bad link.
    sign = -1 if config.preferred_direction == PLUS else +1

    result = builder.zeros(candidate.einsum.shape)
    looped = parts.local
    for i in range(ring.n):
        # Send the current shard first so its transfer can overlap the
        # partial einsum of the same iteration (Algorithm 1).
        next_looped = (
            emit.permute(ring, looped, sign, split_axis=parts.gather_axis)
            if i < ring.n - 1 else None
        )
        result = _gather_step(
            emit, parts, ring, candidate, looped, sign * i, result
        )
        looped = next_looped
    return _finish_gather(
        module, candidate, emit, result, ring, config, ring.n, False
    )


def _all_gather_pair_split(
    module: HloModule,
    candidate: Candidate,
    ring: _RingContext,
    config: OverlapConfig,
) -> DecomposedLoop:
    """Two-device bidirectional AllGather: split the shard across links.

    On a two-device ring both ring directions connect the same pair, so
    instead of circulating whole shards the peer shard is fetched as two
    halves travelling on opposite link directions concurrently — the full
    interconnect is used and the transfer takes half a shard-time. This
    is the degenerate bidirectional case behind the paper's 2-way
    inference result (Section 7.1). Requires an even shard size; odd
    shards fall back to the unidirectional loop.

    ``config.pair_split`` re-apportions the shard across the two links:
    ``split = round(shard * pair_split)`` elements travel minus, the
    rest plus — the rebalance policy's answer to one slow direction on a
    two-device ring. The even default keeps the legacy odd-shard
    fallback; a weighted split only needs two or more elements.
    """
    parts = _dissect_gather(candidate, ring)
    shard = parts.shard_size
    if config.pair_split == 0.5:
        if shard % 2:
            return _all_gather_unidirectional(module, candidate, ring, config)
        split = shard // 2
    else:
        if shard < 2:
            return _all_gather_unidirectional(module, candidate, ring, config)
        split = min(max(int(round(shard * config.pair_split)), 1), shard - 1)
    emit = _LoopEmitter(
        module, candidate.einsum, copies=not config.unroll,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder

    low = builder.slice(parts.local, parts.gather_axis, 0, split)
    high = builder.slice(parts.local, parts.gather_axis, split, shard - split)
    sent_low = emit.permute(ring, low, +1, split_axis=parts.gather_axis)
    sent_high = emit.permute(ring, high, -1, split_axis=parts.gather_axis)

    result = builder.zeros(candidate.einsum.shape)
    result = _gather_step(emit, parts, ring, candidate, parts.local, 0, result)
    peer = builder.concatenate([sent_low, sent_high], parts.gather_axis)
    result = _gather_step(emit, parts, ring, candidate, peer, 1, result)
    return _finish_gather(
        module, candidate, emit, result, ring, config, 2, True
    )


def _all_gather_bidirectional(
    module: HloModule,
    candidate: Candidate,
    ring: _RingContext,
    config: OverlapConfig,
) -> DecomposedLoop:
    parts = _dissect_gather(candidate, ring)
    emit = _LoopEmitter(
        module, candidate.einsum, copies=not config.unroll,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder
    half = ring.n // 2
    axis = parts.gather_axis

    result = builder.zeros(candidate.einsum.shape)
    buf_ccw = parts.local                     # shards r, r+1, ... (left)
    buf_cw = emit.permute(ring, parts.local, -1, split_axis=axis)  # prologue
    for t in range(half):
        if t < half - 1:
            next_ccw = emit.permute(ring, buf_ccw, +1, split_axis=axis)
            next_cw = emit.permute(ring, buf_cw, -1, split_axis=axis)
        else:
            next_ccw = next_cw = None
        result = _bidirectional_gather_step(
            emit, parts, ring, candidate, buf_ccw, buf_cw, t, result
        )
        buf_ccw, buf_cw = next_ccw, next_cw
    return _finish_gather(
        module, candidate, emit, result, ring, config, half, True
    )


def _bidirectional_gather_step(
    emit: _LoopEmitter,
    parts: _GatherParts,
    ring: _RingContext,
    candidate: Candidate,
    buf_ccw: Instruction,
    buf_cw: Instruction,
    t: int,
    result: Instruction,
) -> Instruction:
    """One doubled partial: shards ``r + t`` and ``r - 1 - t`` at once.

    The two shard buffers are concatenated so the einsum runs as a single
    operation of twice the size (Section 5.4.2), then the combined partial
    is split back into per-shard updates where the output keeps the
    decomposed dimension.
    """
    builder = emit.builder
    offset_ccw, offset_cw = t, ring.n - 1 - t
    combined = builder.concatenate([buf_ccw, buf_cw], parts.gather_axis)

    if candidate.dim_case == CASE_FREE:
        partial = emit.einsum(
            candidate.einsum.equation, parts.operand_index, combined, parts.other
        )
        return _split_update(
            builder, result, partial, parts.out_axis, parts.out_shard,
            ring, offset_ccw, offset_cw,
        )

    slice_ccw = builder.dynamic_slice(
        parts.other, parts.other_axis,
        ring.shard_index(offset_ccw, parts.other_slice), parts.other_slice,
    )
    slice_cw = builder.dynamic_slice(
        parts.other, parts.other_axis,
        ring.shard_index(offset_cw, parts.other_slice), parts.other_slice,
    )
    combined_other = builder.concatenate([slice_ccw, slice_cw], parts.other_axis)
    partial = emit.einsum(
        candidate.einsum.equation, parts.operand_index, combined, combined_other
    )
    if candidate.dim_case == CASE_CONTRACTING:
        return builder.add(result, partial)
    return _split_update(
        builder, result, partial, parts.out_axis, parts.out_shard,
        ring, offset_ccw, offset_cw,
    )


def _split_update(
    builder: GraphBuilder,
    result: Instruction,
    partial: Instruction,
    out_axis: int,
    out_shard: int,
    ring: _RingContext,
    offset_ccw: int,
    offset_cw: int,
) -> Instruction:
    """Split a doubled partial along the output axis into two shard updates."""
    low = builder.slice(partial, out_axis, 0, out_shard)
    high = builder.slice(partial, out_axis, out_shard, out_shard)
    result = builder.dynamic_update_slice(
        result, low, out_axis, ring.shard_index(offset_ccw, out_shard)
    )
    return builder.dynamic_update_slice(
        result, high, out_axis, ring.shard_index(offset_cw, out_shard)
    )


# --- Einsum -> ReduceScatter -------------------------------------------------------


@dataclasses.dataclass
class _ScatterParts:
    """Dissected Einsum-ReduceScatter candidate."""

    spec: EinsumSpec
    label: str
    operand_index: int        # operand carrying the scattered label
    operand_axis: int         # axis of the label on that operand
    slice_size: int           # per-shard slice of that operand
    sliced_operand: Instruction
    other: Instruction
    out_shape: Shape          # the scatter's (shard-sized) result shape


def _dissect_scatter(candidate: Candidate, ring: _RingContext) -> _ScatterParts:
    einsum = candidate.einsum
    scatter = candidate.collective
    spec = EinsumSpec.parse(einsum.equation)
    out_dim = scatter.attrs["dim"]
    label = spec.out_labels[out_dim]
    operand_index = candidate.operand_index
    operand_axis = spec.axis_of(operand_index, label)
    sliced_operand = einsum.operands[operand_index]
    full = sliced_operand.shape.dims[operand_axis]
    if full % ring.n:
        raise DecompositionError(
            f"scattered dim of size {full} not divisible by ring {ring.n}"
        )
    return _ScatterParts(
        spec, label, operand_index, operand_axis, full // ring.n,
        sliced_operand, einsum.operands[1 - operand_index], scatter.shape,
    )


def _scatter_partial(
    emit: _LoopEmitter,
    parts: _ScatterParts,
    ring: _RingContext,
    candidate: Candidate,
    shard_offset: int,
) -> Instruction:
    """The partial einsum for shard ``r + shard_offset``."""
    operand_slice = emit.builder.dynamic_slice(
        parts.sliced_operand, parts.operand_axis,
        ring.shard_index(shard_offset, parts.slice_size), parts.slice_size,
    )
    return emit.einsum(
        candidate.einsum.equation, parts.operand_index, operand_slice, parts.other
    )


def _finish_scatter(
    module: HloModule,
    candidate: Candidate,
    emit: _LoopEmitter,
    result: Instruction,
    config: OverlapConfig,
    iterations: int,
    bidirectional: bool,
    unrolled: bool,
) -> DecomposedLoop:
    emit.builder.flush()
    module.replace_all_uses(candidate.collective, result)
    module.remove(candidate.collective)
    module.remove(candidate.einsum)
    return DecomposedLoop(
        candidate=candidate,
        result=result,
        permutes=emit.permutes,
        partial_einsums=emit.partial_einsums,
        iterations=iterations,
        bidirectional=bidirectional,
        unrolled=unrolled,
    )


def _reduce_scatter_unidirectional(
    module: HloModule,
    candidate: Candidate,
    ring: _RingContext,
    config: OverlapConfig,
) -> DecomposedLoop:
    parts = _dissect_scatter(candidate, ring)
    emit = _LoopEmitter(
        module, candidate.einsum, copies=not config.unroll,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder
    out_axis = parts.spec.out_axis_of(parts.label)
    # Mirrored loop: the accumulator travels on the plus links and
    # iteration i folds in the partial for shard r - (i + 1); after N
    # hops each device still ends with exactly its own shard's sum.
    sign = -1 if config.preferred_direction == PLUS else +1

    acc = builder.zeros(parts.out_shape)
    for i in range(ring.n):
        # The accumulator travels before this iteration's update
        # (Algorithm 1 performs the CollectivePermute before the Update).
        received = emit.permute(ring, acc, sign, split_axis=out_axis)
        partial = _scatter_partial(
            emit, parts, ring, candidate, sign * (i + 1)
        )
        acc = builder.add(received, partial)
    return _finish_scatter(
        module, candidate, emit, acc, config, ring.n, False, False
    )


def _reduce_scatter_unrolled(
    module: HloModule,
    candidate: Candidate,
    ring: _RingContext,
    config: OverlapConfig,
) -> DecomposedLoop:
    """Degree-2 unrolling: two independent hop-2 accumulation chains.

    Chain A accumulates then transfers (no transfer after the final add);
    chain B transfers then accumulates. Their independence is what lets an
    asynchronous permute of one chain overlap the other chain's einsum
    even when the accumulation is fused with it (Figure 8). The epilogue
    permute aligns chain B's result one position clockwise before the
    final Add.
    """
    parts = _dissect_scatter(candidate, ring)
    emit = _LoopEmitter(
        module, candidate.einsum, copies=False,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder
    half = ring.n // 2
    out_axis = parts.spec.out_axis_of(parts.label)

    acc_a = builder.zeros(parts.out_shape)
    acc_b = builder.zeros(parts.out_shape)
    for t in range(half):
        received_b = emit.permute(ring, acc_b, +2, split_axis=out_axis)
        partial_a = _scatter_partial(emit, parts, ring, candidate, 2 * (t + 1))
        acc_a = builder.add(acc_a, partial_a)
        if t < half - 1:
            acc_a = emit.permute(ring, acc_a, +2, split_axis=out_axis)
        partial_b = _scatter_partial(emit, parts, ring, candidate, 2 * t + 3)
        acc_b = builder.add(received_b, partial_b)
    aligned_b = emit.permute(ring, acc_b, -1, split_axis=out_axis)
    result = builder.add(acc_a, aligned_b)
    return _finish_scatter(
        module, candidate, emit, result, config, half, False, True
    )


def _reduce_scatter_bidirectional(
    module: HloModule,
    candidate: Candidate,
    ring: _RingContext,
    config: OverlapConfig,
) -> DecomposedLoop:
    parts = _dissect_scatter(candidate, ring)
    emit = _LoopEmitter(
        module, candidate.einsum, copies=not config.unroll,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder
    half = ring.n // 2
    acc_axis = parts.spec.out_axis_of(parts.label)

    acc_left = builder.zeros(parts.out_shape)
    acc_right = builder.zeros(parts.out_shape)
    for t in range(half):
        received_left = emit.permute(ring, acc_left, +1, split_axis=acc_axis)
        received_right = emit.permute(ring, acc_right, -1, split_axis=acc_axis)
        offset_left = t + 1 + half
        offset_right = (ring.n - t - half) % ring.n
        slice_left = builder.dynamic_slice(
            parts.sliced_operand, parts.operand_axis,
            ring.shard_index(offset_left, parts.slice_size), parts.slice_size,
        )
        slice_right = builder.dynamic_slice(
            parts.sliced_operand, parts.operand_axis,
            ring.shard_index(offset_right, parts.slice_size), parts.slice_size,
        )
        combined = builder.concatenate(
            [slice_left, slice_right], parts.operand_axis
        )
        partial = emit.einsum(
            candidate.einsum.equation, parts.operand_index, combined, parts.other
        )
        out_axis = parts.spec.out_axis_of(parts.label)
        shard = parts.out_shape.dims[out_axis]
        partial_left = builder.slice(partial, out_axis, 0, shard)
        partial_right = builder.slice(partial, out_axis, shard, shard)
        acc_left = builder.add(received_left, partial_left)
        acc_right = builder.add(received_right, partial_right)
    aligned_right = emit.permute(ring, acc_right, -1, split_axis=acc_axis)
    result = builder.add(acc_left, aligned_right)
    return _finish_scatter(
        module, candidate, emit, result, config, half, True, config.unroll
    )
