"""Bottom-up scheduling (the paper's Algorithm 2).

Instructions are scheduled in *reverse*, starting from the roots of the
dataflow graph (units without consumers). Two queues drive the choice:

* ``ready_queue`` — units whose consumers are all scheduled and whose
  estimated ready time has been reached. CollectivePermuteDones are
  prioritized (scheduling a done early in reverse order places it *late*
  in the final program, maximizing its overlap window), subject to the
  in-flight budget.
* ``pending_queue`` — units whose consumers are all scheduled but whose
  ready time is still in the future. The crucial inhabitants are
  CollectivePermuteStarts: when a done is reverse-scheduled at time ``T``,
  its start only becomes ready at ``T + transfer_time``, which forces at
  least a transfer-time's worth of computation to be scheduled between the
  pair. Picking from the pending queue (earliest ready time first) only
  happens when nothing is ready — the reverse-time jump this implies is an
  exposed transfer the schedule could not cover.

Ties follow reverse program order, preserving the memory-friendly order
produced upstream (footnote 10 of the paper).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.perfsim.costs import CostModel
from repro.perfsim.sched_graph import ScheduleGraph, ScheduleUnit
from repro.sharding.mesh import DeviceMesh


def schedule_bottom_up(
    graph: ScheduleGraph,
    cost_model: CostModel,
    mesh: DeviceMesh,
    max_in_flight: int,
) -> List[ScheduleUnit]:
    """Return a unit order maximizing start->done overlap windows."""
    units = graph.units
    original_position = {unit.index: i for i, unit in enumerate(units)}
    unscheduled_users: Dict[int, int] = {
        unit.index: len(graph.successors[unit.index]) for unit in units
    }

    # Priority queues hold (sort_key, unit_index); ready prefers dones and
    # then later program positions (we are scheduling from the back).
    ready: List[tuple] = []
    pending: List[tuple] = []  # (ready_time, sort_key, unit_index)
    ready_time: Dict[int, float] = {unit.index: 0.0 for unit in units}

    def sort_key(unit: ScheduleUnit) -> tuple:
        priority = 0 if unit.is_permute_done else 1
        return (priority, -original_position[unit.index])

    current_time = 0.0
    in_flight = 0
    scheduled_reverse: List[ScheduleUnit] = []

    def push(unit: ScheduleUnit) -> None:
        if ready_time[unit.index] <= current_time:
            heapq.heappush(ready, (sort_key(unit), unit.index))
        else:
            heapq.heappush(
                pending, (ready_time[unit.index], sort_key(unit), unit.index)
            )

    for unit in units:
        if unscheduled_users[unit.index] == 0:
            push(unit)

    def pop_ready() -> Optional[ScheduleUnit]:
        """Best ready unit, skipping dones that would bust the budget."""
        skipped: List[tuple] = []
        chosen: Optional[ScheduleUnit] = None
        while ready:
            key, index = heapq.heappop(ready)
            unit = units[index]
            if unit.is_permute_done and in_flight >= max_in_flight:
                skipped.append((key, index))
                continue
            chosen = unit
            break
        for item in skipped:
            heapq.heappush(ready, item)
        return chosen

    while len(scheduled_reverse) < len(units):
        # Promote pending units whose time has come.
        while pending and pending[0][0] <= current_time:
            _, key, index = heapq.heappop(pending)
            heapq.heappush(ready, (key, index))

        candidate = pop_ready()
        if candidate is None:
            if not pending:
                raise RuntimeError("scheduler deadlock: no candidates left")
            # Nothing ready: jump time to the earliest pending unit. This
            # is an exposed-transfer gap (SelectNodeFromPendingQ).
            current_time = pending[0][0]
            continue

        scheduled_reverse.append(candidate)

        if candidate.is_permute_done:
            in_flight += 1
            start = candidate.head.operands[0]
            start_unit = graph.unit_of[id(start)]
            transfer = graph.transfer_time(candidate, cost_model, mesh)
            ready_time[start_unit.index] = current_time + transfer
        elif candidate.is_permute_start:
            in_flight -= 1

        current_time += graph.compute_time(candidate, cost_model, mesh)

        for producer in graph.predecessors[candidate.index]:
            unscheduled_users[producer.index] -= 1
            if unscheduled_users[producer.index] == 0:
                push(producer)

    scheduled_reverse.reverse()
    return scheduled_reverse
