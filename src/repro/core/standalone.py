"""Standalone-collective decomposition (the paper's future work).

The Looped CollectiveEinsum needs a *dependent* einsum to interleave
with, so multi-user AllGathers (e.g. the activation re-gather shared by
the q/k/v projections) and other unattached collectives stay synchronous
— the paper counts them among the communication "that cannot be
overlapped with the current technique" and points to overlapping
*independent* communication as future work (Section 6.1).

This pass implements that extension with the machinery already in the
repository: a standalone AllGather or ReduceScatter is rewritten into the
same ring of asynchronous CollectivePermutes the looped form uses — just
without partial einsums between the steps — after which the ordinary
schedulers hoist the permute starts across whatever *surrounding*
computation exists (previous layers, independent branches). Disabled by
default (`OverlapConfig.decompose_standalone=False`) so the paper's
configuration stays the reference.

Ring algebra matches :mod:`repro.core.decompose`: the unidirectional
AllGather writes shard ``(r + i) mod N`` at step ``i`` and shifts the
buffer left; the bidirectional variant runs both directions from a
prologue shift; the ReduceScatter circulates an accumulator and lands
shard ``r`` after N steps.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.config import OverlapConfig
from repro.core.decompose import _LoopEmitter, _RingContext
from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.sharding.mesh import DeviceMesh


@dataclasses.dataclass
class StandaloneLoop:
    """Bookkeeping for one rewritten standalone collective."""

    collective: Instruction
    result: Instruction
    permutes: List[Instruction]
    bidirectional: bool


def decompose_standalone_collectives(
    module: HloModule,
    mesh: DeviceMesh,
    config: OverlapConfig,
) -> List[StandaloneLoop]:
    """Rewrite every remaining AllGather/ReduceScatter into permute rings."""
    loops: List[StandaloneLoop] = []
    for collective in module.find(
        lambda i: i.opcode in (Opcode.ALL_GATHER, Opcode.REDUCE_SCATTER)
    ):
        ring = _RingContext.create(mesh, collective.groups)
        # Per-axis knobs: a DP-axis override tunes the gradient/param
        # rings without touching the TP loops (and vice versa).
        axis_config = config.for_axis(ring.axis)
        if ring.n < max(axis_config.min_ring_size, 2):
            continue
        bidirectional = (
            axis_config.bidirectional and ring.n % 2 == 0 and ring.n > 2
        )
        if collective.opcode is Opcode.ALL_GATHER:
            loops.append(
                _standalone_all_gather(
                    module, collective, ring, bidirectional, axis_config
                )
            )
        else:
            loops.append(
                _standalone_reduce_scatter(
                    module, collective, ring, bidirectional, axis_config
                )
            )
    module.verify()
    return loops


def _standalone_all_gather(
    module: HloModule,
    gather: Instruction,
    ring: _RingContext,
    bidirectional: bool,
    config: OverlapConfig,
) -> StandaloneLoop:
    emit = _LoopEmitter(
        module, gather, copies=False,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder
    local = gather.operands[0]
    dim = gather.attrs["dim"]
    shard = local.shape.dims[dim]

    result = builder.zeros(gather.shape)
    if bidirectional:
        half = ring.n // 2
        result = builder.dynamic_update_slice(
            result, local, dim, ring.shard_index(0, shard)
        )
        buf_ccw = local
        buf_cw = emit.permute(ring, local, -1, split_axis=dim)
        result = builder.dynamic_update_slice(
            result, buf_cw, dim, ring.shard_index(ring.n - 1, shard)
        )
        for step in range(1, half):
            buf_ccw = emit.permute(ring, buf_ccw, +1, split_axis=dim)
            result = builder.dynamic_update_slice(
                result, buf_ccw, dim, ring.shard_index(step, shard)
            )
            buf_cw = emit.permute(ring, buf_cw, -1, split_axis=dim)
            result = builder.dynamic_update_slice(
                result, buf_cw, dim, ring.shard_index(ring.n - 1 - step, shard)
            )
    else:
        buffer = local
        for step in range(ring.n):
            result = builder.dynamic_update_slice(
                result, buffer, dim, ring.shard_index(step, shard)
            )
            if step < ring.n - 1:
                buffer = emit.permute(ring, buffer, +1, split_axis=dim)
    emit.builder.flush()
    module.replace_all_uses(gather, result)
    module.remove(gather)
    return StandaloneLoop(gather, result, emit.permutes, bidirectional)


def _standalone_reduce_scatter(
    module: HloModule,
    scatter: Instruction,
    ring: _RingContext,
    bidirectional: bool,
    config: OverlapConfig,
) -> StandaloneLoop:
    """Accumulator ring: at step ``i`` each device adds the slice for
    shard ``(r + i + 1) mod N`` of its local input to the received
    accumulator and passes it on; after N steps device ``r`` holds shard
    ``r``. (The bidirectional variant is left unidirectional here — the
    standalone scatter carries one accumulator; splitting it is exactly
    the dual-chain unrolling already exercised by the looped form.)"""
    emit = _LoopEmitter(
        module, scatter, copies=False,
        granularity=config.transfer_granularity,
    )
    builder = emit.builder
    operand = scatter.operands[0]
    dim = scatter.attrs["dim"]
    shard = scatter.shape.dims[dim]

    acc = builder.zeros(scatter.shape)
    for step in range(ring.n):
        received = emit.permute(ring, acc, +1, split_axis=dim)
        piece = builder.dynamic_slice(
            operand, dim, ring.shard_index(step + 1, shard), shard
        )
        acc = builder.add(received, piece)
    emit.builder.flush()
    module.replace_all_uses(scatter, acc)
    module.remove(scatter)
    return StandaloneLoop(scatter, acc, emit.permutes, False)