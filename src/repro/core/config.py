"""Configuration of the overlap optimization pipeline."""

from __future__ import annotations

import dataclasses
import warnings
from typing import Mapping, Optional, Sequence, Tuple, Union

BOTTOM_UP = "bottom_up"
TOP_DOWN = "top_down"
IN_ORDER = "in_order"

_SCHEDULERS = (BOTTOM_UP, TOP_DOWN, IN_ORDER)

# Ring directions, mirroring repro.perfsim.topology (string literals to
# keep this module dependency-free).
_DIRECTIONS = (None, "minus", "plus")


@dataclasses.dataclass(frozen=True)
class AxisOverride:
    """Per-mesh-axis overrides of the single-axis overlap knobs.

    Every field is optional; ``None`` defers to the flat
    :class:`OverlapConfig` field of the same name. An override applies
    only to collectives whose ring groups run along the named mesh axis
    — the unit the multi-axis scheduler budgets and the rebalance ladder
    edits independently per axis (TP permutes, DP gradient buckets and
    PP microbatch sends each live on their own axis of the mesh).
    """

    transfer_granularity: Optional[int] = None
    preferred_direction: Optional[str] = None
    max_in_flight: Optional[int] = None
    bidirectional: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.transfer_granularity is not None and not (
            1 <= self.transfer_granularity <= 8
        ):
            raise ValueError(
                f"transfer_granularity must be in [1, 8], got "
                f"{self.transfer_granularity}"
            )
        if self.preferred_direction not in _DIRECTIONS:
            raise ValueError(
                f"preferred_direction must be one of {_DIRECTIONS}, got "
                f"{self.preferred_direction!r}"
            )
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")

    @property
    def is_empty(self) -> bool:
        return all(
            getattr(self, field.name) is None
            for field in dataclasses.fields(self)
        )


AxisOverrides = Union[
    Mapping[str, AxisOverride], Tuple[Tuple[str, AxisOverride], ...]
]

#: The flat fields ``axis_overrides`` can shadow; used by the
#: single-axis-alias deprecation warning below.
_PER_AXIS_FIELDS = (
    "transfer_granularity",
    "preferred_direction",
    "max_in_flight",
    "bidirectional",
)


@dataclasses.dataclass(frozen=True)
class OverlapConfig:
    """Switches for the paper's passes, mirroring its ablations.

    * ``enabled`` — master switch; off reproduces the baseline compiler.
    * ``unroll`` — loop unrolling degree 2 (Section 5.4.1). Off inserts the
      loop-carried-aliasing ``Copy`` per iteration and keeps the single
      ReduceScatter accumulation chain.
    * ``bidirectional`` — bidirectional data transfer (Section 5.4.2).
      Requires an even partition count; odd rings fall back silently.
    * ``scheduler`` — ``bottom_up`` (Algorithm 2), ``top_down``, or
      ``in_order`` (no reordering: decomposition without overlap).
    * ``overlap_aware_fusion`` — the Figure 11 fusion-priority fix.
    * ``use_cost_model`` — gate each candidate on estimated benefit
      (Section 5.5); off decomposes every matched pattern.
    * ``max_in_flight`` — asynchronous-collective budget (the sync-flag
      limit of Section 5.2); ``None`` defers to the chip spec.
    * ``decompose_standalone`` — the paper's *future work*: also rewrite
      collectives without a dependent einsum (multi-user gathers,
      unattached scatters) into asynchronous permute rings so the
      scheduler can hide them under surrounding computation. Off by
      default — the paper's evaluated configuration leaves them
      synchronous.

    Adaptive-rebalancing knobs (consumed by :mod:`repro.adapt`; the
    defaults reproduce the paper's static schedules exactly):

    * ``transfer_granularity`` — split every emitted ring permute into
      this many equal sub-permutes along the shard axis (when the axis
      divides evenly; otherwise the whole shard travels as one
      transfer). Finer transfers shorten the longest single occupancy of
      a degraded link at the cost of per-transfer overhead.
    * ``preferred_direction`` — force *unidirectional* loops to
      circulate in one ring direction: ``"minus"`` (the default loop's
      ``+1`` shifts) or ``"plus"`` (the mirrored ``-1`` loop, which
      avoids the minus links entirely). ``None`` keeps the paper's
      direction.
    * ``pair_split`` — on two-device bidirectional rings, the fraction
      of the shard sent over the *minus* link (the rest travels plus);
      ``0.5`` is the paper's even split, other values re-apportion
      traffic across uneven links.
    """

    enabled: bool = True
    unroll: bool = True
    bidirectional: bool = True
    scheduler: str = BOTTOM_UP
    overlap_aware_fusion: bool = True
    use_cost_model: bool = True
    max_in_flight: int = 8
    min_ring_size: int = 2
    decompose_standalone: bool = False
    transfer_granularity: int = 1
    preferred_direction: Optional[str] = None
    pair_split: float = 0.5
    #: Per-mesh-axis overrides (``{axis_name: AxisOverride}`` or the
    #: normalized sorted-tuple form). The flat fields above act as the
    #: *single-axis aliases*: they keep meaning "every axis" so PR-6
    #: ladder edits and PR-8 TuningDB records load unchanged, and an
    #: override shadows them only for its own axis. Mixing a non-default
    #: flat per-axis field with an override that re-specifies the same
    #: knob is deprecated (the override wins).
    axis_overrides: AxisOverrides = ()

    def __post_init__(self) -> None:
        overrides = self.axis_overrides
        if isinstance(overrides, Mapping):
            overrides = tuple(sorted(overrides.items()))
            object.__setattr__(self, "axis_overrides", overrides)
        else:
            normalized = tuple(
                (axis, override) for axis, override in overrides
            )
            if normalized != overrides or list(normalized) != sorted(
                normalized, key=lambda item: item[0]
            ):
                normalized = tuple(
                    sorted(normalized, key=lambda item: item[0])
                )
            object.__setattr__(self, "axis_overrides", normalized)
        axes = [axis for axis, _ in self.axis_overrides]
        if len(set(axes)) != len(axes):
            raise ValueError(
                f"duplicate axis in axis_overrides: {axes}"
            )
        for axis, override in self.axis_overrides:
            if not isinstance(override, AxisOverride):
                raise ValueError(
                    f"axis_overrides[{axis!r}] must be an AxisOverride, "
                    f"got {override!r}"
                )
        if self.axis_overrides:
            defaults = {
                f.name: f.default for f in dataclasses.fields(OverlapConfig)
            }
            shadowed = [
                field
                for field in _PER_AXIS_FIELDS
                if getattr(self, field) != defaults[field]
                and any(
                    getattr(override, field) is not None
                    for _, override in self.axis_overrides
                )
            ]
            if shadowed:
                warnings.warn(
                    f"flat OverlapConfig field(s) {shadowed} are deprecated "
                    "single-axis aliases; the axis_overrides entries that "
                    "re-specify them take precedence on their axes — move "
                    "per-axis settings into axis_overrides",
                    DeprecationWarning,
                    stacklevel=3,
                )
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if not 1 <= self.transfer_granularity <= 8:
            raise ValueError(
                f"transfer_granularity must be in [1, 8], got "
                f"{self.transfer_granularity}"
            )
        if self.preferred_direction not in _DIRECTIONS:
            raise ValueError(
                f"preferred_direction must be one of {_DIRECTIONS}, got "
                f"{self.preferred_direction!r}"
            )
        if not 0.0 < self.pair_split < 1.0:
            raise ValueError(
                f"pair_split must be in (0, 1), got {self.pair_split}"
            )

    @staticmethod
    def baseline() -> "OverlapConfig":
        """The unoptimized compiler: no decomposition, no overlap."""
        return OverlapConfig(enabled=False)

    def replace(self, **changes) -> "OverlapConfig":
        return dataclasses.replace(self, **changes)

    # --- multi-axis resolution ------------------------------------------------

    def axis_override(self, axis: Optional[str]) -> Optional[AxisOverride]:
        """The override registered for ``axis``, or ``None``."""
        for name, override in self.axis_overrides:
            if name == axis:
                return override
        return None

    def for_axis(self, axis: Optional[str]) -> "OverlapConfig":
        """The effective single-axis config for collectives on ``axis``.

        Resolves :attr:`axis_overrides` into the flat fields the
        decomposition emitters consume, so every pass keeps reading one
        flat config — this is the canonical accessor that replaces
        reading the flat per-axis fields directly on multi-axis meshes.
        The returned config carries no overrides (it is fully resolved).
        """
        override = self.axis_override(axis)
        if override is None or override.is_empty:
            if not self.axis_overrides:
                return self
            return dataclasses.replace(self, axis_overrides=())
        changes: dict = {"axis_overrides": ()}
        for field in _PER_AXIS_FIELDS:
            value = getattr(override, field)
            if value is not None:
                changes[field] = value
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return dataclasses.replace(self, **changes)

    def in_flight_budget(self, axis: Optional[str]) -> int:
        """The async-collective budget for one mesh axis."""
        override = self.axis_override(axis)
        if override is not None and override.max_in_flight is not None:
            return override.max_in_flight
        return self.max_in_flight

    def total_in_flight_budget(self, axes: Sequence[str] = ()) -> int:
        """Whole-module in-flight bound across the given mesh axes.

        With per-axis budgets each axis's transfers are capped
        independently, so the module-wide bound the async-pair linter
        enforces is the *sum* of the per-axis budgets. Without
        overrides this is exactly ``max_in_flight`` (the single-ring
        behaviour).
        """
        if not self.axis_overrides or not axes:
            return self.max_in_flight
        return sum(self.in_flight_budget(axis) for axis in axes)
