"""Configuration of the overlap optimization pipeline."""

from __future__ import annotations

import dataclasses
from typing import Optional

BOTTOM_UP = "bottom_up"
TOP_DOWN = "top_down"
IN_ORDER = "in_order"

_SCHEDULERS = (BOTTOM_UP, TOP_DOWN, IN_ORDER)

# Ring directions, mirroring repro.perfsim.topology (string literals to
# keep this module dependency-free).
_DIRECTIONS = (None, "minus", "plus")


@dataclasses.dataclass(frozen=True)
class OverlapConfig:
    """Switches for the paper's passes, mirroring its ablations.

    * ``enabled`` — master switch; off reproduces the baseline compiler.
    * ``unroll`` — loop unrolling degree 2 (Section 5.4.1). Off inserts the
      loop-carried-aliasing ``Copy`` per iteration and keeps the single
      ReduceScatter accumulation chain.
    * ``bidirectional`` — bidirectional data transfer (Section 5.4.2).
      Requires an even partition count; odd rings fall back silently.
    * ``scheduler`` — ``bottom_up`` (Algorithm 2), ``top_down``, or
      ``in_order`` (no reordering: decomposition without overlap).
    * ``overlap_aware_fusion`` — the Figure 11 fusion-priority fix.
    * ``use_cost_model`` — gate each candidate on estimated benefit
      (Section 5.5); off decomposes every matched pattern.
    * ``max_in_flight`` — asynchronous-collective budget (the sync-flag
      limit of Section 5.2); ``None`` defers to the chip spec.
    * ``decompose_standalone`` — the paper's *future work*: also rewrite
      collectives without a dependent einsum (multi-user gathers,
      unattached scatters) into asynchronous permute rings so the
      scheduler can hide them under surrounding computation. Off by
      default — the paper's evaluated configuration leaves them
      synchronous.

    Adaptive-rebalancing knobs (consumed by :mod:`repro.adapt`; the
    defaults reproduce the paper's static schedules exactly):

    * ``transfer_granularity`` — split every emitted ring permute into
      this many equal sub-permutes along the shard axis (when the axis
      divides evenly; otherwise the whole shard travels as one
      transfer). Finer transfers shorten the longest single occupancy of
      a degraded link at the cost of per-transfer overhead.
    * ``preferred_direction`` — force *unidirectional* loops to
      circulate in one ring direction: ``"minus"`` (the default loop's
      ``+1`` shifts) or ``"plus"`` (the mirrored ``-1`` loop, which
      avoids the minus links entirely). ``None`` keeps the paper's
      direction.
    * ``pair_split`` — on two-device bidirectional rings, the fraction
      of the shard sent over the *minus* link (the rest travels plus);
      ``0.5`` is the paper's even split, other values re-apportion
      traffic across uneven links.
    """

    enabled: bool = True
    unroll: bool = True
    bidirectional: bool = True
    scheduler: str = BOTTOM_UP
    overlap_aware_fusion: bool = True
    use_cost_model: bool = True
    max_in_flight: int = 8
    min_ring_size: int = 2
    decompose_standalone: bool = False
    transfer_granularity: int = 1
    preferred_direction: Optional[str] = None
    pair_split: float = 0.5

    def __post_init__(self) -> None:
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if not 1 <= self.transfer_granularity <= 8:
            raise ValueError(
                f"transfer_granularity must be in [1, 8], got "
                f"{self.transfer_granularity}"
            )
        if self.preferred_direction not in _DIRECTIONS:
            raise ValueError(
                f"preferred_direction must be one of {_DIRECTIONS}, got "
                f"{self.preferred_direction!r}"
            )
        if not 0.0 < self.pair_split < 1.0:
            raise ValueError(
                f"pair_split must be in (0, 1), got {self.pair_split}"
            )

    @staticmethod
    def baseline() -> "OverlapConfig":
        """The unoptimized compiler: no decomposition, no overlap."""
        return OverlapConfig(enabled=False)

    def replace(self, **changes) -> "OverlapConfig":
        return dataclasses.replace(self, **changes)
