"""Configuration of the overlap optimization pipeline."""

from __future__ import annotations

import dataclasses

BOTTOM_UP = "bottom_up"
TOP_DOWN = "top_down"
IN_ORDER = "in_order"

_SCHEDULERS = (BOTTOM_UP, TOP_DOWN, IN_ORDER)


@dataclasses.dataclass(frozen=True)
class OverlapConfig:
    """Switches for the paper's passes, mirroring its ablations.

    * ``enabled`` — master switch; off reproduces the baseline compiler.
    * ``unroll`` — loop unrolling degree 2 (Section 5.4.1). Off inserts the
      loop-carried-aliasing ``Copy`` per iteration and keeps the single
      ReduceScatter accumulation chain.
    * ``bidirectional`` — bidirectional data transfer (Section 5.4.2).
      Requires an even partition count; odd rings fall back silently.
    * ``scheduler`` — ``bottom_up`` (Algorithm 2), ``top_down``, or
      ``in_order`` (no reordering: decomposition without overlap).
    * ``overlap_aware_fusion`` — the Figure 11 fusion-priority fix.
    * ``use_cost_model`` — gate each candidate on estimated benefit
      (Section 5.5); off decomposes every matched pattern.
    * ``max_in_flight`` — asynchronous-collective budget (the sync-flag
      limit of Section 5.2); ``None`` defers to the chip spec.
    * ``decompose_standalone`` — the paper's *future work*: also rewrite
      collectives without a dependent einsum (multi-user gathers,
      unattached scatters) into asynchronous permute rings so the
      scheduler can hide them under surrounding computation. Off by
      default — the paper's evaluated configuration leaves them
      synchronous.
    """

    enabled: bool = True
    unroll: bool = True
    bidirectional: bool = True
    scheduler: str = BOTTOM_UP
    overlap_aware_fusion: bool = True
    use_cost_model: bool = True
    max_in_flight: int = 8
    min_ring_size: int = 2
    decompose_standalone: bool = False

    def __post_init__(self) -> None:
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")

    @staticmethod
    def baseline() -> "OverlapConfig":
        """The unoptimized compiler: no decomposition, no overlap."""
        return OverlapConfig(enabled=False)

    def replace(self, **changes) -> "OverlapConfig":
        return dataclasses.replace(self, **changes)
