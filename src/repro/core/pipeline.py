"""The end-to-end optimization pipeline (Section 5).

``compile_module`` applies the paper's passes to an SPMD module in the
order the XLA implementation uses:

1. candidate discovery and cost-model gating (Section 5.5), including the
   choose-one rule when a single einsum has two candidate collectives;
2. Looped CollectiveEinsum decomposition (Sections 5.1, 5.4.1, 5.4.2);
3. fusion-friendly rewrites and fusion with the overlap-aware priority
   (Section 5.4.3);
4. asynchronous CollectivePermute splitting (Section 5.2);
5. instruction scheduling — bottom-up (Algorithm 2), top-down, or the
   identity order.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis import AnalysisResult, verify_module
from repro.core.async_cp import split_collective_permutes
from repro.core.config import OverlapConfig
from repro.core.cost_model import CostModel, OverlapEstimate, estimate_overlap
from repro.core.decompose import DecomposedLoop, decompose_candidate
from repro.core.fusion import rewrite_concat_as_pad_max, run_fusion
from repro.core.patterns import (
    EINSUM_RS,
    Candidate,
    find_candidates,
    reduce_scatter_blocks_einsum,
)
from repro.perfsim.sched_graph import ScheduleGraph
from repro.core.scheduling import schedule_module
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.perfsim.hardware import TPU_V4, ChipSpec
from repro.runtime.plan_cache import (
    CacheStats,
    PlanCache,
    fingerprint_config,
    fingerprint_mesh,
    fingerprint_module,
)
from repro.sharding.mesh import DeviceMesh


@dataclasses.dataclass
class CompilationResult:
    """What the pipeline did to a module.

    Field naming is normalized across the compile layers: counts of
    pipeline decisions use the ``candidates_*`` family
    (``candidates_found`` / ``candidates_skipped`` /
    ``candidates_decomposed``), and materialized loop lists use the
    ``*_loops`` family (``decomposed_loops`` / ``standalone_loops``) —
    matching the ``*_eliminated`` convention of
    :class:`repro.runtime.plan.PlanStats`. ``loops`` and ``decomposed``
    remain as aliases for pre-redesign callers.
    """

    module: HloModule
    config: OverlapConfig
    decomposed_loops: List[DecomposedLoop]
    candidates_found: int
    candidates_skipped: Dict[str, str]   # candidate description -> reason
    estimates: List[OverlapEstimate]
    fusion_groups: int
    standalone_loops: List = dataclasses.field(default_factory=list)
    #: One clean AnalysisResult per pipeline stage when the module was
    #: compiled with ``verify_after_each_pass=True``; empty otherwise.
    verification: List[AnalysisResult] = dataclasses.field(
        default_factory=list
    )

    @property
    def candidates_decomposed(self) -> int:
        return len(self.decomposed_loops)

    # --- pre-redesign aliases ------------------------------------------------

    @property
    def loops(self) -> List[DecomposedLoop]:
        """Alias of :attr:`decomposed_loops` (pre-redesign name)."""
        return self.decomposed_loops

    @property
    def decomposed(self) -> int:
        """Alias of :attr:`candidates_decomposed` (pre-redesign name)."""
        return self.candidates_decomposed


def compile_module(
    module: HloModule,
    mesh: DeviceMesh,
    config: Optional[OverlapConfig] = None,
    chip: ChipSpec = TPU_V4,
    verify_after_each_pass: bool = False,
) -> CompilationResult:
    """Run the overlap pipeline in place; returns bookkeeping.

    With ``verify_after_each_pass`` the static analyzer
    (:func:`repro.analysis.verify_module`) runs on the module after
    every pipeline pass; the first error finding raises
    :class:`repro.analysis.AnalysisError` with ``stage`` naming the
    pass that introduced it, instead of surfacing as a miscompile at
    execution time.
    """
    config = config or OverlapConfig()
    cost_model = CostModel(chip)
    loops: List[DecomposedLoop] = []
    skipped: Dict[str, str] = {}
    estimates: List[OverlapEstimate] = []
    verification: List[AnalysisResult] = []

    def verify(stage: str) -> None:
        if verify_after_each_pass:
            verification.append(
                verify_module(
                    module,
                    stage=stage,
                    num_devices=mesh.num_devices,
                    # Per-axis budgets cap each axis independently; the
                    # module-wide bound the async-pair linter enforces is
                    # their sum.
                    max_in_flight=config.total_in_flight_budget(
                        mesh.axis_names
                    ),
                )
            )

    verify("input")
    if config.enabled:
        candidates = find_candidates(module)
        chosen = _select_candidates(
            module, candidates, cost_model, config, skipped, estimates
        )
        for candidate in chosen:
            loops.append(
                decompose_candidate(module, candidate, mesh, config)
            )
        candidates_found = len(candidates)
        if config.decompose_standalone:
            from repro.core.standalone import decompose_standalone_collectives

            standalone_loops = decompose_standalone_collectives(
                module, mesh, config
            )
        else:
            standalone_loops = []
    else:
        candidates_found = 0
        standalone_loops = []
    verify("decompose")

    rewrite_concat_as_pad_max(module)
    verify("rewrite_concat_as_pad_max")
    split_collective_permutes(module)
    verify("split_collective_permutes")
    fusion_groups = run_fusion(
        module, overlap_aware=config.overlap_aware_fusion
    )
    verify("run_fusion")

    graph = ScheduleGraph.build(module)
    order = schedule_module(graph, cost_model, mesh, config)
    graph.apply(order)
    verify("schedule")

    return CompilationResult(
        module=module,
        config=config,
        decomposed_loops=loops,
        candidates_found=candidates_found,
        candidates_skipped=skipped,
        estimates=estimates,
        fusion_groups=fusion_groups,
        standalone_loops=standalone_loops,
        verification=verification,
    )


#: Process-wide cache of pipeline compilations, shared by the experiment
#: sweeps, the model-zoo step simulator and the serving catalog. Keyed on
#: the module's *content* fingerprint plus mesh/config/chip, so the
#: repeated (layer graph, config) pairs the sweeps produce compile once.
_COMPILE_CACHE = PlanCache(capacity=256)


def compile_cache_stats() -> CacheStats:
    """Hit/miss statistics of the shared pipeline-compilation cache."""
    return _COMPILE_CACHE.stats


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()


def compile_module_cached(
    module: HloModule,
    mesh: DeviceMesh,
    config: Optional[OverlapConfig] = None,
    chip: ChipSpec = TPU_V4,
    cache: Optional[PlanCache] = None,
) -> CompilationResult:
    """Memoized :func:`compile_module` keyed on module content.

    On a hit the caller's ``module`` is left untouched and the earlier,
    already-compiled :class:`CompilationResult` is returned — use
    ``result.module`` (not the argument) downstream. Content addressing
    means two separately built copies of the same program share one
    compilation, which is exactly what the experiment sweeps do when
    they rebuild a model's layer graph per configuration.

    Not applicable when ``verify_after_each_pass`` diagnostics are
    wanted — use :func:`compile_module` directly for that.
    """
    config = config or OverlapConfig()
    cache = cache if cache is not None else _COMPILE_CACHE
    key = (
        "pipeline",
        fingerprint_module(module),
        fingerprint_mesh(mesh),
        fingerprint_config(config),
        fingerprint_config(chip),
    )
    result, _ = cache.get_or_build(
        key, lambda: compile_module(module, mesh, config, chip=chip)
    )
    return result


def _select_candidates(
    module: HloModule,
    candidates: List[Candidate],
    cost_model: CostModel,
    config: OverlapConfig,
    skipped: Dict[str, str],
    estimates: List[OverlapEstimate],
) -> List[Candidate]:
    """Apply safety checks, the two-candidate rule and the benefit gate."""

    def describe(candidate: Candidate) -> str:
        return f"{candidate.kind}:{candidate.collective.name}"

    safe: List[Candidate] = []
    for candidate in candidates:
        if candidate.ring_size < config.min_ring_size:
            skipped[describe(candidate)] = "ring below minimum size"
        elif candidate.kind == EINSUM_RS and reduce_scatter_blocks_einsum(
            module, candidate
        ):
            skipped[describe(candidate)] = "einsum result has other users"
        else:
            safe.append(candidate)

    by_einsum: Dict[int, List[Candidate]] = {}
    for candidate in safe:
        by_einsum.setdefault(id(candidate.einsum), []).append(candidate)

    chosen: List[Candidate] = []
    for group in by_einsum.values():
        candidate = group[0]
        if len(group) > 1:
            candidate = _pick_between(group, cost_model, config, skipped, describe)
        estimate = estimate_overlap(cost_model, candidate, config.bidirectional)
        estimates.append(estimate)
        if config.use_cost_model and not estimate.beneficial:
            skipped[describe(candidate)] = (
                f"not beneficial: original {estimate.original_time:.3e}s < "
                f"overlapped {estimate.overlapped_time:.3e}s"
            )
            continue
        chosen.append(candidate)
    return chosen


def _pick_between(
    group: List[Candidate],
    cost_model: CostModel,
    config: OverlapConfig,
    skipped: Dict[str, str],
    describe,
) -> Candidate:
    """Section 5.5: pick one of two candidate collectives for an einsum.

    The paper "chooses the one that leads to higher benefits": the saved
    time is the collective's original cost minus the part of the permute
    chain the einsum cannot cover and minus the prologue/epilogue
    overhead. On a tie (both fully covered and equally cheap outside the
    loop) the smaller shard wins — its extra permute outside the loop is
    cheaper in the worst case.
    """
    timed = []
    for candidate in group:
        estimate = estimate_overlap(cost_model, candidate, config.bidirectional)
        if candidate.collective.opcode is Opcode.ALL_GATHER:
            shard_bytes = candidate.collective.operands[0].shape.byte_size
        else:
            shard_bytes = candidate.collective.shape.byte_size
        benefit = estimate.original_time - estimate.overlapped_time
        timed.append((candidate, benefit, shard_bytes))

    # Highest benefit first; smaller shard breaks ties.
    winner = max(timed, key=lambda t: (t[1], -t[2]))[0]
    for candidate, _, _ in timed:
        if candidate is not winner:
            skipped[describe(candidate)] = "lost two-candidate selection"
    return winner
