"""The paper's contribution: decomposition, async scheduling, fusion, gating."""

from repro.core.async_cp import split_collective_permutes
from repro.core.collective import (
    CollectiveClassificationError,
    OverlappableCollective,
    P2PSend,
    RingAllGather,
    RingAllReduce,
    RingPermute,
    RingReduceScatter,
    as_overlappable,
    module_axes,
    ring_axis_of_groups,
)
from repro.core.config import (
    BOTTOM_UP,
    IN_ORDER,
    TOP_DOWN,
    AxisOverride,
    OverlapConfig,
)
from repro.core.cost_model import CostModel, OverlapEstimate, estimate_overlap
from repro.core.decompose import (
    DecomposedLoop,
    DecompositionError,
    decompose_candidate,
    find_ring_axis,
)
from repro.core.fusion import clear_fusion, rewrite_concat_as_pad_max, run_fusion
from repro.core.loop import emit_rolled, unroll_while
from repro.core.standalone import (
    StandaloneLoop,
    decompose_standalone_collectives,
)
from repro.core.patterns import (
    AG_EINSUM,
    CASE_BATCH,
    CASE_CONTRACTING,
    CASE_FREE,
    EINSUM_RS,
    Candidate,
    find_candidates,
)
from repro.core.pipeline import CompilationResult, compile_module
from repro.perfsim.sched_graph import (
    ScheduleGraph,
    ScheduleUnit,
    max_in_flight,
    validate_unit_order,
)
from repro.core.scheduling import (
    schedule_bottom_up,
    schedule_module,
    schedule_top_down,
)

__all__ = [
    "AG_EINSUM",
    "AxisOverride",
    "BOTTOM_UP",
    "CASE_BATCH",
    "CASE_CONTRACTING",
    "CASE_FREE",
    "Candidate",
    "CollectiveClassificationError",
    "CompilationResult",
    "CostModel",
    "DecomposedLoop",
    "DecompositionError",
    "EINSUM_RS",
    "IN_ORDER",
    "OverlapConfig",
    "OverlapEstimate",
    "OverlappableCollective",
    "P2PSend",
    "RingAllGather",
    "RingAllReduce",
    "RingPermute",
    "RingReduceScatter",
    "ScheduleGraph",
    "ScheduleUnit",
    "TOP_DOWN",
    "as_overlappable",
    "clear_fusion",
    "compile_module",
    "StandaloneLoop",
    "decompose_candidate",
    "decompose_standalone_collectives",
    "emit_rolled",
    "estimate_overlap",
    "find_candidates",
    "find_ring_axis",
    "max_in_flight",
    "module_axes",
    "rewrite_concat_as_pad_max",
    "ring_axis_of_groups",
    "run_fusion",
    "schedule_bottom_up",
    "schedule_module",
    "schedule_top_down",
    "split_collective_permutes",
    "unroll_while",
    "validate_unit_order",
]
