"""Candidate discovery: the collective/einsum pairs worth decomposing.

The paper targets two dataflow patterns (Section 4):

* ``AllGather -> Einsum`` — the gather feeds one operand of the einsum.
  Classified into three cases by the kind of the gathered dimension
  (Section 5.1): *free* (non-contracting), *contracting*, *batch*.
* ``Einsum -> ReduceScatter`` — the scatter consumes the einsum result
  along one of its non-contracting dimensions.

A candidate is only safe to rewrite when the intermediate value has no
other users (the gathered tensor / the unreduced einsum result would
otherwise still be needed in full).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.hlo.einsum_spec import EinsumSpec
from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode

AG_EINSUM = "allgather-einsum"
EINSUM_RS = "einsum-reducescatter"

CASE_FREE = "free"            # Case 1: non-contracting gathered dim
CASE_CONTRACTING = "contracting"  # Case 2
CASE_BATCH = "batch"          # Case 3


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One decomposable collective/einsum pair."""

    kind: str                   # AG_EINSUM or EINSUM_RS
    einsum: Instruction
    collective: Instruction
    operand_index: int          # which einsum operand the AG feeds /
                                # which operand carries the scattered label
    dim_case: str               # CASE_* classification (AG) or CASE_FREE (RS)
    ring_size: int

    @property
    def label(self) -> str:
        """The einsum label of the decomposed dimension."""
        spec = EinsumSpec.parse(self.einsum.equation)
        if self.kind == AG_EINSUM:
            axis = self.collective.attrs["dim"]
            return spec.operand_labels(self.operand_index)[axis]
        out_dim = self.collective.attrs["dim"]
        return spec.out_labels[out_dim]


def find_candidates(module: HloModule) -> List[Candidate]:
    """All decomposable pairs in the module, in program order."""
    users = module.user_map()
    candidates: List[Candidate] = []
    for instruction in module:
        if instruction.opcode is Opcode.ALL_GATHER:
            candidate = _match_all_gather(instruction, users)
        elif instruction.opcode is Opcode.REDUCE_SCATTER:
            candidate = _match_reduce_scatter(instruction)
        else:
            candidate = None
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def _match_all_gather(gather: Instruction, users) -> Optional[Candidate]:
    gather_users = users.get(gather, [])
    if len(gather_users) != 1:
        return None
    einsum = gather_users[0]
    if einsum.opcode is not Opcode.EINSUM:
        return None
    # The gather may feed both operands of a self-product; bail out then —
    # decomposition assumes exactly one looped operand.
    feeds = [i for i, op in enumerate(einsum.operands) if op is gather]
    if len(feeds) != 1:
        return None
    operand_index = feeds[0]
    spec = EinsumSpec.parse(einsum.equation)
    case = spec.classify(operand_index, gather.attrs["dim"])
    ring = len(gather.groups[0])
    return Candidate(AG_EINSUM, einsum, gather, operand_index, case, ring)


def _match_reduce_scatter(scatter: Instruction) -> Optional[Candidate]:
    einsum = scatter.operands[0]
    if einsum.opcode is not Opcode.EINSUM:
        return None
    spec = EinsumSpec.parse(einsum.equation)
    out_dim = scatter.attrs["dim"]
    label = spec.out_labels[out_dim]
    # The scattered label must be a non-contracting dim of exactly one
    # operand (Section 5.1: "the result is partitioned along a
    # non-contracting dimension").
    if label in spec.batch_labels:
        return None
    operand_index = 0 if label in spec.lhs_free_labels else 1
    if label not in spec.operand_labels(operand_index):
        return None
    ring = len(scatter.groups[0])
    return Candidate(
        EINSUM_RS, einsum, scatter, operand_index, CASE_FREE, ring
    )


def reduce_scatter_blocks_einsum(module: HloModule, candidate: Candidate) -> bool:
    """True when the einsum result has users besides the reduce-scatter.

    Such an einsum cannot be decomposed: its full (unreduced) result is
    still needed elsewhere.
    """
    if candidate.kind != EINSUM_RS:
        return False
    users = module.user_map()
    return len(users.get(candidate.einsum, [])) != 1
