"""The generic OverlappableCollective protocol (multi-axis redesign).

The paper's passes were written against one hard-coded op: the ring
CollectivePermute on the single tensor-parallel axis. Real training
stacks overlap three *families* of communication on a 2D/3D device
mesh — TP ring permutes, DP gradient reduce-scatter / parameter
all-gather buckets, and PP microbatch point-to-point sends — and every
one of them is, to the decomposition/scheduling pipeline, the same
thing: a typed, axis-attributed, decomposable transfer.

:class:`OverlappableCollective` is that type. It is a structural
protocol — anything exposing the attributes below can be scheduled —
plus a set of concrete views (:class:`RingPermute`, :class:`P2PSend`,
:class:`RingAllGather`, :class:`RingReduceScatter`,
:class:`RingAllReduce`) that classify the instructions the partitioner
and decomposition emit. :func:`as_overlappable` is the single factory
the passes use instead of switching on opcodes.

Axis attribution: emitters stamp ``attrs["axis"]`` on the permutes they
create (see :class:`repro.core.decompose._LoopEmitter`); for foreign
instructions the factory re-derives the axis from the mesh — replica
groups must equal the rings of exactly one axis, permute pairs must
shift along exactly one axis. Point-to-point sends are permutes whose
pair set deliberately does *not* close into a ring; they carry
``attrs["comm_kind"] = "p2p"`` so the collective-legality linter knows
an open chain is intended (rule C007 flags the converse).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.core.config import OverlapConfig
from repro.hlo.instruction import Instruction
from repro.hlo.opcode import Opcode

try:  # Protocol requires 3.8+; runtime_checkable for isinstance tests.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py3.7 fallback, not supported
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


#: Collective kinds, the vocabulary of the protocol.
PERMUTE = "permute"
P2P_SEND = "p2p-send"
ALL_GATHER = "all-gather"
REDUCE_SCATTER = "reduce-scatter"
ALL_REDUCE = "all-reduce"

#: The ``attrs["comm_kind"]`` marker for point-to-point permutes.
P2P_COMM_KIND = "p2p"


class CollectiveClassificationError(ValueError):
    """Raised when an instruction cannot be attributed to one mesh axis."""


@runtime_checkable
class OverlappableCollective(Protocol):
    """A typed description of one overlappable communication op.

    Everything the decomposition/scheduling pipeline needs to know about
    a collective, decoupled from its opcode:

    * ``kind`` — one of :data:`PERMUTE`, :data:`P2P_SEND`,
      :data:`ALL_GATHER`, :data:`REDUCE_SCATTER`, :data:`ALL_REDUCE`;
    * ``axis`` — the mesh axis whose rings (or chains) carry the data;
    * ``ring_size`` — devices per ring group along that axis;
    * ``payload_bytes`` — per-device payload one step injects;
    * ``granularity`` — how many sub-transfers the payload may split
      into (the decomposable granularity, from the axis-resolved
      config);
    * ``direction_preference`` — ``"minus"``/``"plus"``/``None`` ring
      direction preference for unidirectional lowering;
    * ``decomposable`` — whether the decomposition passes can rewrite
      this op into an asynchronous permute chain at all.
    """

    instruction: Instruction
    kind: str
    axis: str
    ring_size: int
    payload_bytes: int
    granularity: int
    direction_preference: Optional[str]

    @property
    def decomposable(self) -> bool: ...


@dataclasses.dataclass(frozen=True)
class _CollectiveView:
    """Shared implementation of the protocol's data surface."""

    instruction: Instruction
    kind: str
    axis: str
    ring_size: int
    payload_bytes: int
    granularity: int = 1
    direction_preference: Optional[str] = None

    @property
    def decomposable(self) -> bool:
        return self.kind in (ALL_GATHER, REDUCE_SCATTER) and self.ring_size >= 2


@dataclasses.dataclass(frozen=True)
class RingPermute(_CollectiveView):
    """A ring-shift CollectivePermute (the paper's decomposed step)."""


@dataclasses.dataclass(frozen=True)
class P2PSend(_CollectiveView):
    """A point-to-point send: an open permute chain along one axis.

    The pipeline-parallel microbatch handoff: stage ``i`` sends to stage
    ``i + 1`` and the last stage sends nowhere. Never decomposed further
    (it is already a single transfer); overlap comes from the async
    start/done split plus scheduling, exactly like a decomposed ring
    step.
    """


@dataclasses.dataclass(frozen=True)
class RingAllGather(_CollectiveView):
    """A subgroup AllGather along one mesh axis."""


@dataclasses.dataclass(frozen=True)
class RingReduceScatter(_CollectiveView):
    """A subgroup ReduceScatter along one mesh axis."""


@dataclasses.dataclass(frozen=True)
class RingAllReduce(_CollectiveView):
    """A subgroup AllReduce along one mesh axis (never decomposed —
    kept for axis attribution and budget accounting)."""


def ring_axis_of_groups(mesh, groups) -> str:
    """The mesh axis whose rings equal the collective's replica groups."""
    wanted = {tuple(g) for g in groups}
    for axis in mesh.axis_names:
        if {tuple(g) for g in mesh.rings(axis)} == wanted:
            return axis
    raise CollectiveClassificationError(
        f"replica groups {groups} match no mesh axis of {mesh}"
    )


def permute_axis(instruction: Instruction, mesh) -> str:
    """The mesh axis a (start/done/sync) permute's pairs travel along.

    Prefers the emitter-stamped ``attrs["axis"]``; otherwise classifies
    the pair set against the mesh topology.
    """
    target = instruction
    if target.opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
        target = target.operands[0]
    axis = target.attrs.get("axis")
    if axis is not None:
        return axis
    from repro.perfsim.topology import TopologyError, classify_permute

    try:
        return classify_permute(
            target.pairs, mesh, target.attrs.get("direction")
        ).axis
    except TopologyError as error:
        raise CollectiveClassificationError(str(error)) from error


def pairs_close_ring(pairs: Sequence[Tuple[int, int]]) -> bool:
    """Whether a permute pair set closes into a union of cycles."""
    sources = {src for src, _ in pairs}
    destinations = {dst for _, dst in pairs}
    return bool(pairs) and sources == destinations


def as_overlappable(
    instruction: Instruction,
    mesh,
    config: Optional[OverlapConfig] = None,
) -> Optional[OverlappableCollective]:
    """Classify one instruction as an overlappable collective.

    Returns ``None`` for non-communication instructions and for
    collectives that cannot be attributed to a single mesh axis (e.g. a
    replica-group set spanning two axes — the cross-mesh resharding
    case the pipeline leaves synchronous).
    """
    config = config or OverlapConfig()
    opcode = instruction.opcode
    if opcode in (
        Opcode.COLLECTIVE_PERMUTE,
        Opcode.COLLECTIVE_PERMUTE_START,
        Opcode.COLLECTIVE_PERMUTE_DONE,
    ):
        target = instruction
        if opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            target = target.operands[0]
        try:
            axis = permute_axis(instruction, mesh)
        except CollectiveClassificationError:
            return None
        effective = config.for_axis(axis)
        is_p2p = (
            target.attrs.get("comm_kind") == P2P_COMM_KIND
            or not pairs_close_ring(target.pairs)
        )
        cls = P2PSend if is_p2p else RingPermute
        return cls(
            instruction=instruction,
            kind=P2P_SEND if is_p2p else PERMUTE,
            axis=axis,
            ring_size=mesh.axis_size(axis),
            payload_bytes=target.operands[0].shape.byte_size,
            granularity=effective.transfer_granularity,
            direction_preference=(
                target.attrs.get("direction")
                or effective.preferred_direction
            ),
        )
    grouped = {
        Opcode.ALL_GATHER: (RingAllGather, ALL_GATHER),
        Opcode.REDUCE_SCATTER: (RingReduceScatter, REDUCE_SCATTER),
        Opcode.ALL_REDUCE: (RingAllReduce, ALL_REDUCE),
    }
    if opcode in grouped:
        try:
            axis = ring_axis_of_groups(mesh, instruction.groups)
        except CollectiveClassificationError:
            return None
        effective = config.for_axis(axis)
        cls, kind = grouped[opcode]
        if opcode is Opcode.ALL_GATHER:
            payload = instruction.operands[0].shape.byte_size
        else:
            payload = instruction.shape.byte_size
        return cls(
            instruction=instruction,
            kind=kind,
            axis=axis,
            ring_size=len(instruction.groups[0]),
            payload_bytes=payload,
            granularity=effective.transfer_granularity,
            direction_preference=effective.preferred_direction,
        )
    return None


def module_axes(module, mesh) -> List[str]:
    """Mesh axes that carry at least one overlappable collective."""
    axes: List[str] = []
    for instruction in module:
        if instruction.opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            continue  # counted at the start
        view = as_overlappable(instruction, mesh)
        if view is not None and view.axis not in axes:
            axes.append(view.axis)
    return axes
