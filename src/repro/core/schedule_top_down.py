"""Deprecated location of the top-down scheduler (Section 5.2).

The permute-specific schedulers were generalized over the
:class:`repro.core.collective.OverlappableCollective` protocol and moved
to :mod:`repro.core.scheduling`; import :func:`schedule_top_down` from
there (or call :func:`repro.core.scheduling.schedule_module`, which also
resolves per-axis in-flight budgets).
"""

from __future__ import annotations

import warnings

_MOVED = ("schedule_top_down",)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.core.schedule_top_down.{name} moved to "
            f"repro.core.scheduling.{name}; this permute-specific module "
            "is a deprecated alias and will be removed — the scheduling "
            "module speaks the OverlappableCollective protocol and "
            "honours OverlapConfig.axis_overrides",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import scheduling

        return getattr(scheduling, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
