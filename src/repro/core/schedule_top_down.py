"""Top-down scheduling (Section 5.2, second approach).

A simple-yet-effective rule applied to the existing (memory-minimizing)
program order: hoist every CollectivePermuteStart as early as its
producers allow, and sink every CollectivePermuteDone as late as its first
consumer allows. Non-permute units keep their original relative order —
after a light "rebalancing" step that hoists the producers feeding a
permute-chain's first start (the paper's pattern-matched instruction
reordering).

Compared to the bottom-up scheduler this is local: computation that the
original order placed *outside* a start/done window is never pulled into
it, so unbalanced programs leave transfers partially exposed — the source
of the ~5% average gap in Figure 16.
"""

from __future__ import annotations

from typing import List, Set

from repro.perfsim.costs import CostModel
from repro.perfsim.sched_graph import ScheduleGraph, ScheduleUnit
from repro.sharding.mesh import DeviceMesh


def schedule_top_down(
    graph: ScheduleGraph,
    cost_model: CostModel,
    mesh: DeviceMesh,
    max_in_flight: int,
) -> List[ScheduleUnit]:
    """ASAP starts, ALAP dones, original order otherwise."""
    order = _hoist_chain_feeders(graph, list(graph.units))

    predecessor_sets = {
        unit.index: {p.index for p in graph.predecessors[unit.index]}
        for unit in graph.units
    }
    successor_sets = {
        unit.index: {s.index for s in graph.successors[unit.index]}
        for unit in graph.units
    }

    # Sink dones first: walk backward, bubbling each done down past every
    # unit that does not depend on it. In a permute chain this stops just
    # before the next start (which consumes the done), leaving that
    # iteration's computation inside the transfer window.
    for index in range(len(order) - 1, -1, -1):
        if order[index].is_permute_done:
            _bubble_down(order, index, successor_sets)

    # Then hoist starts past everything they do not depend on — but no
    # further than the transfer needs: pushing every start maximally early
    # just queues transfers behind each other on the link. Order matters:
    # hoisting first would park each chain's next start directly behind
    # the previous done and the dones could never sink.
    for index in range(len(order)):
        if order[index].is_permute_start:
            budget = 1.5 * graph.transfer_time(order[index], cost_model, mesh)
            _bubble_up(
                order, index, predecessor_sets,
                graph, cost_model, mesh, budget,
            )

    order = _rebalance_windows(graph, order, cost_model, mesh)
    return _enforce_budget(graph, order, max_in_flight)


def _bubble_up(
    order: List[ScheduleUnit],
    index: int,
    predecessor_sets,
    graph: ScheduleGraph,
    cost_model: CostModel,
    mesh: DeviceMesh,
    compute_budget: float,
) -> None:
    unit = order[index]
    wanted: Set[int] = predecessor_sets[unit.index]
    hoisted_past = 0.0
    while index > 0 and order[index - 1].index not in wanted:
        if hoisted_past >= compute_budget:
            break
        hoisted_past += graph.compute_time(order[index - 1], cost_model, mesh)
        order[index], order[index - 1] = order[index - 1], order[index]
        index -= 1


def _bubble_down(
    order: List[ScheduleUnit], index: int, successor_sets
) -> None:
    unit = order[index]
    blocking: Set[int] = successor_sets[unit.index]
    while index + 1 < len(order) and order[index + 1].index not in blocking:
        order[index], order[index + 1] = order[index + 1], order[index]
        index += 1


def _rebalance_windows(
    graph: ScheduleGraph,
    order: List[ScheduleUnit],
    cost_model: CostModel,
    mesh: DeviceMesh,
    lookahead: int = 400,
) -> List[ScheduleUnit]:
    """Redistribute compute into under-filled transfer windows.

    The paper's top-down pass "rebalances the instructions among each
    CollectivePermute interval based on the runtime cost": when the
    computation sitting between a start and its done is shorter than the
    transfer, later units that do not (transitively) depend on the done
    are pulled into the window — bounded by a lookahead so the pass stays
    local (which is also why it remains weaker than the global bottom-up
    scheduler on heavily unbalanced programs).
    """
    order = list(order)
    index = 0
    while index < len(order):
        unit = order[index]
        if not unit.is_permute_done:
            index += 1
            continue
        transfer = graph.transfer_time(unit, cost_model, mesh)
        start_unit = graph.unit_of[id(unit.head.operands[0])]
        window_compute = 0.0
        for other in order[:index]:
            if other is start_unit:
                window_compute = 0.0  # reset at the window's start
            elif not (other.is_permute_start or other.is_permute_done):
                window_compute += graph.compute_time(other, cost_model, mesh)
        deficit = transfer - window_compute

        scan = index + 1
        position = {u.index: i for i, u in enumerate(order)}
        while deficit > 0 and scan < min(len(order), index + 1 + lookahead):
            candidate = order[scan]
            if candidate.is_permute_start or candidate.is_permute_done:
                scan += 1
                continue
            producers_before = all(
                position[p.index] < index
                for p in graph.predecessors[candidate.index]
            )
            if producers_before:
                order.pop(scan)
                order.insert(index, candidate)
                index += 1  # the done moved one slot right
                deficit -= graph.compute_time(candidate, cost_model, mesh)
                position = {u.index: i for i, u in enumerate(order)}
            scan += 1
        index += 1
    return order


def _hoist_chain_feeders(
    graph: ScheduleGraph, order: List[ScheduleUnit]
) -> List[ScheduleUnit]:
    """Move units feeding a permute-chain's first start as early as legal.

    The top-down approach "moves certain instruction that feeds into a
    CollectivePermute chain start to an earlier position" so the first
    transfer can begin sooner. A chain's first start is a permute start
    with no permute-done producer; each of its non-permute producers is
    hoisted to just after its own last producer.
    """
    for unit in graph.units:
        if not unit.is_permute_start:
            continue
        if any(p.is_permute_done for p in graph.predecessors[unit.index]):
            continue
        for producer in graph.predecessors[unit.index]:
            current_slot = order.index(producer)
            own_producer_slots = [
                order.index(p) for p in graph.predecessors[producer.index]
            ]
            earliest = (max(own_producer_slots) + 1) if own_producer_slots else 0
            if earliest < current_slot:
                order.pop(current_slot)
                order.insert(earliest, producer)
    return order


def _enforce_budget(
    graph: ScheduleGraph, order: List[ScheduleUnit], max_in_flight: int
) -> List[ScheduleUnit]:
    """Pull dones earlier when too many transfers are in flight at once.

    Walking the order, when a start would push the outstanding count past
    the budget, the oldest outstanding done is emitted immediately before
    it — shrinking that transfer's window instead of reordering
    computation (footnote 11 of the paper).
    """
    result: List[ScheduleUnit] = []
    outstanding: List[ScheduleUnit] = []  # dones of in-flight transfers
    emitted_early = set()
    for unit in order:
        if unit.is_permute_done:
            if unit.index in emitted_early:
                continue
            outstanding = [d for d in outstanding if d.index != unit.index]
            result.append(unit)
            continue
        if unit.is_permute_start:
            if len(outstanding) >= max_in_flight:
                oldest = outstanding.pop(0)
                result.append(oldest)
                emitted_early.add(oldest.index)
            result.append(unit)
            outstanding.append(graph.successors[unit.index][0])
            continue
        result.append(unit)
    return result
