"""Rolled Looped CollectiveEinsum and the loop-unrolling pass.

:mod:`repro.core.decompose` materializes the loop fully unrolled, which is
what the schedulers and the simulator consume. This module provides the
*rolled* form the paper's Algorithm 1 actually describes — a ``while``
instruction whose body performs one iteration's CollectivePermute,
partial einsum and result update, with the data-shard id "computed based
on the loop index variable" (``ShardIndex.iter_coeff``) — plus the
generic unroller that turns it back into straight-line code:

* :func:`emit_rolled` — rewrite an AllGather-Einsum / Einsum-ReduceScatter
  candidate into a ``while`` loop (unidirectional variants; the
  bidirectional and dual-chain forms are alternative *emissions*, not
  unrollings of this loop).
* :func:`unroll_while` — full unroll (iteration indices folded into the
  slice offsets; the loop-carried aliasing disappears because the SSA
  form gives every iteration its own buffer — the double-buffering effect
  Section 5.4.1 attributes to unrolling) or partial unroll by a factor
  (the body is cloned ``factor`` times, shard indices re-expressed for a
  loop that counts by ``factor``).

Fully unrolling the rolled form is semantically equivalent to the direct
unrolled emission; the equivalence tests execute all three side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.decompose import (
    DecompositionError,
    _dissect_gather,
    _dissect_scatter,
    _RingContext,
)
from repro.core.patterns import (
    AG_EINSUM,
    CASE_CONTRACTING,
    CASE_FREE,
    Candidate,
)
from repro.hlo.builder import GraphBuilder
from repro.hlo.instruction import Instruction, ShardIndex
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.sharding.mesh import DeviceMesh


def emit_rolled(
    module: HloModule, candidate: Candidate, mesh: DeviceMesh
) -> Instruction:
    """Rewrite ``candidate`` as a rolled ``while`` loop (Algorithm 1)."""
    ring = _RingContext.create(mesh, candidate.collective.groups)
    if candidate.kind == AG_EINSUM:
        loop = _rolled_all_gather(module, candidate, ring)
    else:
        loop = _rolled_reduce_scatter(module, candidate, ring)
    module.verify()
    return loop


def _iter_shard(ring: _RingContext, offset: int, shard_size: int) -> ShardIndex:
    """Shard ``(ring_pos + i + offset) mod N`` — Algorithm 1's loop-index
    dependent shard id."""
    return ShardIndex.shard(
        coeff=1, offset=offset % ring.n, num_shards=ring.n,
        shard_size=shard_size, div=ring.div, iter_coeff=1,
    )


def _rolled_all_gather(
    module: HloModule, candidate: Candidate, ring: _RingContext
) -> Instruction:
    parts = _dissect_gather(candidate, ring)
    body = GraphBuilder(f"{candidate.einsum.name}.body")
    looped = body.parameter(parts.local.shape, name="looped")
    other = body.parameter(parts.other.shape, name="other")
    result = body.parameter(candidate.einsum.shape, name="result")

    # Algorithm 1 guards the permute with `i < N-1`; a rolled body is
    # uniform, so the final (unused) transfer is emitted too and the
    # unroller drops it when it has a concrete trip index.
    next_looped = body.collective_permute(
        looped, ring.permute_pairs(+1), name="next_looped"
    )
    if candidate.dim_case == CASE_FREE:
        lhs, rhs = (
            (looped, other) if parts.operand_index == 0 else (other, looped)
        )
        partial = body.einsum(candidate.einsum.equation, lhs, rhs, name="partial")
        updated = body.dynamic_update_slice(
            result, partial, parts.out_axis,
            _iter_shard(ring, 0, parts.out_shard), name="updated",
        )
    else:
        other_slice = body.dynamic_slice(
            other, parts.other_axis, _iter_shard(ring, 0, parts.other_slice),
            parts.other_slice,
        )
        lhs, rhs = (
            (looped, other_slice) if parts.operand_index == 0
            else (other_slice, looped)
        )
        partial = body.einsum(candidate.einsum.equation, lhs, rhs, name="partial")
        if candidate.dim_case == CASE_CONTRACTING:
            updated = body.add(result, partial, name="updated")
        else:
            updated = body.dynamic_update_slice(
                result, partial, parts.out_axis,
                _iter_shard(ring, 0, parts.out_shard), name="updated",
            )

    outer = GraphBuilder.into(module, candidate.einsum)
    zeros = outer.zeros(candidate.einsum.shape)
    loop = outer.while_loop(
        trip_count=ring.n,
        body=body.module,
        body_outputs=["next_looped", "other", "updated"],
        initial_state=[parts.local, parts.other, zeros],
        result_index=2,
        name=f"{candidate.einsum.name}.loop",
    )
    outer.flush()
    module.replace_all_uses(candidate.einsum, loop)
    module.remove(candidate.einsum)
    module.remove(candidate.collective)
    return loop


def _rolled_reduce_scatter(
    module: HloModule, candidate: Candidate, ring: _RingContext
) -> Instruction:
    parts = _dissect_scatter(candidate, ring)
    body = GraphBuilder(f"{candidate.einsum.name}.body")
    operand = body.parameter(parts.sliced_operand.shape, name="operand")
    other = body.parameter(parts.other.shape, name="other")
    acc = body.parameter(parts.out_shape, name="acc")

    received = body.collective_permute(
        acc, ring.permute_pairs(+1), name="received"
    )
    operand_slice = body.dynamic_slice(
        operand, parts.operand_axis,
        _iter_shard(ring, 1, parts.slice_size), parts.slice_size,
    )
    lhs, rhs = (
        (operand_slice, other) if parts.operand_index == 0
        else (other, operand_slice)
    )
    partial = body.einsum(candidate.einsum.equation, lhs, rhs, name="partial")
    body.add(received, partial, name="updated")

    outer = GraphBuilder.into(module, candidate.einsum)
    zeros = outer.zeros(parts.out_shape)
    loop = outer.while_loop(
        trip_count=ring.n,
        body=body.module,
        body_outputs=["operand", "other", "updated"],
        initial_state=[parts.sliced_operand, parts.other, zeros],
        result_index=2,
        name=f"{candidate.einsum.name}.loop",
    )
    outer.flush()
    module.replace_all_uses(candidate.collective, loop)
    module.remove(candidate.collective)
    module.remove(candidate.einsum)
    return loop


# --- unrolling -----------------------------------------------------------------


def unroll_while(
    module: HloModule,
    loop: Instruction,
    factor: Optional[int] = None,
) -> List[Instruction]:
    """Unroll a ``while`` loop in place.

    With ``factor=None`` (or >= the trip count) the loop is fully
    unrolled into straight-line SSA: each iteration's instructions are
    cloned with the iteration index folded into every ShardIndex, and
    permutes whose result feeds nothing (the final guarded transfer of
    Algorithm 1) are dropped. With a smaller ``factor`` (which must
    divide the trip count) the body is cloned ``factor`` times into a new
    body whose shard indices step by ``factor`` — the paper's "loop
    unrolling with degree of 2".

    Returns the newly created instructions (full unroll) or ``[loop']``
    (partial unroll).
    """
    if loop.opcode is not Opcode.WHILE:
        raise DecompositionError(f"{loop.name} is not a while loop")
    trip_count = loop.attrs["trip_count"]
    if factor is None or factor >= trip_count:
        return _unroll_fully(module, loop)
    if trip_count % factor:
        raise DecompositionError(
            f"factor {factor} does not divide trip count {trip_count}"
        )
    return [_unroll_partially(module, loop, factor)]


def _clone_instruction(
    instruction: Instruction,
    mapping: Dict[int, Instruction],
    transform_index,
) -> Instruction:
    attrs = dict(instruction.attrs)
    if isinstance(attrs.get("start"), ShardIndex):
        attrs["start"] = transform_index(attrs["start"])
    return Instruction(
        name=Instruction.fresh_name(instruction.name),
        opcode=instruction.opcode,
        shape=instruction.shape,
        operands=[mapping[id(op)] for op in instruction.operands],
        attrs=attrs,
    )


def _unroll_fully(module: HloModule, loop: Instruction) -> List[Instruction]:
    body: HloModule = loop.attrs["body"]
    body_outputs = loop.attrs["body_outputs"]
    trip_count = loop.attrs["trip_count"]
    parameters = body.parameters()

    state: List[Instruction] = list(loop.operands)
    created: List[Instruction] = []
    for i in range(trip_count):
        mapping: Dict[int, Instruction] = {
            id(parameter): state[index]
            for index, parameter in enumerate(parameters)
        }
        for instruction in body:
            if instruction.opcode is Opcode.PARAMETER:
                continue
            clone = _clone_instruction(
                instruction, mapping, lambda s: s.at_iteration(i)
            )
            mapping[id(instruction)] = clone
            created.append(clone)
        state = [mapping[id(body.get(name))] for name in body_outputs]

    module.splice_before(loop, created)
    result = state[loop.attrs["result_index"]]
    module.replace_all_uses(loop, result)
    module.remove(loop)
    # Drop only the clones that ended up dead (the final iteration's
    # guarded permute of Algorithm 1) — a module-wide DCE here would also
    # delete unrelated dead-end values callers may still request as
    # executor outputs.
    users = module.user_map()
    for clone in reversed(created):
        if clone is not result and not users.get(clone):
            module.remove(clone)
            for operand in clone.operands:
                if operand in users and clone in users[operand]:
                    users[operand].remove(clone)
    module.verify()
    return [i for i in created if i in module]


def _unroll_partially(
    module: HloModule, loop: Instruction, factor: int
) -> Instruction:
    body: HloModule = loop.attrs["body"]
    body_outputs = loop.attrs["body_outputs"]
    parameters = body.parameters()

    unrolled = GraphBuilder(f"{body.name}.x{factor}")
    state: List[Instruction] = [
        unrolled.parameter(parameter.shape, name=parameter.name)
        for parameter in parameters
    ]
    for step in range(factor):
        mapping: Dict[int, Instruction] = {
            id(parameter): state[index]
            for index, parameter in enumerate(parameters)
        }
        for instruction in body:
            if instruction.opcode is Opcode.PARAMETER:
                continue
            clone = _clone_instruction(
                instruction, mapping, lambda s: s.stepped(factor, step)
            )
            mapping[id(instruction)] = clone
            unrolled.module.add(clone)
        state = [mapping[id(body.get(name))] for name in body_outputs]
    outputs = [value.name for value in state]
    unrolled.module.verify()

    outer = GraphBuilder.into(module, loop)
    new_loop = outer.while_loop(
        trip_count=loop.attrs["trip_count"] // factor,
        body=unrolled.module,
        body_outputs=outputs,
        initial_state=list(loop.operands),
        result_index=loop.attrs["result_index"],
        name=Instruction.fresh_name(loop.name),
    )
    outer.flush()
    module.replace_all_uses(loop, new_loop)
    module.remove(loop)
    module.verify()
    return new_loop