"""Text rendering of HloModules, in the spirit of XLA's HLO text dumps.

The format round-trips through :mod:`repro.hlo.parser`: string attributes
are quoted, numeric and structured attributes use their Python literal
forms, and ShardIndex attributes use their affine expression syntax.
"""

from __future__ import annotations

from typing import List

from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule

_ATTR_ORDER = (
    "equation", "dim", "split_dim", "concat_dim", "start", "size",
    "low", "high", "value", "perm", "pairs", "groups", "direction",
)


def _format_attr(value) -> str:
    if hasattr(value, "tolist"):
        # numpy payloads (constants) print as nested lists so the text
        # round-trips through ast.literal_eval in the parser.
        return repr(value.tolist())
    return repr(value)


def format_instruction(instruction: Instruction) -> str:
    operands = ", ".join(op.name for op in instruction.operands)
    parts: List[str] = []
    for key in _ATTR_ORDER:
        if key in instruction.attrs:
            parts.append(f"{key}={_format_attr(instruction.attrs[key])}")
    attrs = (", " + ", ".join(parts)) if parts else ""
    fusion = (
        f"  #fusion_group={instruction.fusion_group}"
        if instruction.fusion_group is not None
        else ""
    )
    return (
        f"  {instruction.name} = {instruction.shape} "
        f"{instruction.opcode.value}({operands}{attrs}){fusion}"
    )


def format_module(module: HloModule) -> str:
    lines = [f"HloModule {module.name} {{"]
    lines.extend(format_instruction(i) for i in module)
    root = module.root.name if module.root is not None else "<none>"
    lines.append(f"}}  // root = {root}")
    return "\n".join(lines)


def summarize_opcodes(module: HloModule) -> str:
    """One line per opcode with its occurrence count, sorted by count."""
    counts = {}
    for instruction in module:
        counts[instruction.opcode] = counts.get(instruction.opcode, 0) + 1
    rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0].value))
    return "\n".join(f"{opcode.value:>28}: {count}" for opcode, count in rows)
