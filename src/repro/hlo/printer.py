"""Text rendering of HloModules, in the spirit of XLA's HLO text dumps.

The format round-trips through :mod:`repro.hlo.parser`: string attributes
are quoted, numeric and structured attributes use their Python literal
forms, and ShardIndex attributes use their affine expression syntax.
*Every* attribute is printed — known keys in a canonical order first,
anything else (``channel_id``, future annotations) after them in sorted
order — so a printed-then-parsed module carries identical metadata and
verifies identically. While bodies print as additional module blocks
after the enclosing module, referenced by name via ``body="..."``.
"""

from __future__ import annotations

from typing import List

from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule

#: Canonical leading order for well-known attribute keys (readability
#: only — the parser accepts any order, and unknown keys follow these).
_ATTR_ORDER = (
    "equation", "dim", "split_dim", "concat_dim", "start", "size",
    "low", "high", "value", "perm", "pairs", "groups", "direction",
    "channel_id", "trip_count", "body", "body_outputs", "result_index",
)


def _format_attr(value) -> str:
    if isinstance(value, HloModule):
        # Nested modules (While bodies) are printed as separate blocks
        # by format_module; the attribute refers to them by name.
        return repr(value.name)
    if hasattr(value, "tolist"):
        # numpy payloads (constants) print as nested lists so the text
        # round-trips through ast.literal_eval in the parser.
        return repr(value.tolist())
    return repr(value)


def format_instruction(instruction: Instruction) -> str:
    operands = ", ".join(op.name for op in instruction.operands)
    parts: List[str] = []
    ordered = [key for key in _ATTR_ORDER if key in instruction.attrs]
    ordered += sorted(set(instruction.attrs) - set(_ATTR_ORDER))
    for key in ordered:
        parts.append(f"{key}={_format_attr(instruction.attrs[key])}")
    attrs = (", " + ", ".join(parts)) if parts else ""
    fusion = (
        f"  #fusion_group={instruction.fusion_group}"
        if instruction.fusion_group is not None
        else ""
    )
    return (
        f"  {instruction.name} = {instruction.shape} "
        f"{instruction.opcode.value}({operands}{attrs}){fusion}"
    )


def _format_block(module: HloModule) -> str:
    lines = [f"HloModule {module.name} {{"]
    lines.extend(format_instruction(i) for i in module)
    root = module.root.name if module.root is not None else "<none>"
    lines.append(f"}}  // root = {root}")
    return "\n".join(lines)


def _nested_modules(module: HloModule, seen: List[HloModule]) -> None:
    for instruction in module:
        body = instruction.attrs.get("body")
        if isinstance(body, HloModule) and body not in seen:
            seen.append(body)
            _nested_modules(body, seen)


def format_module(module: HloModule) -> str:
    """The module's text dump, followed by any nested body modules."""
    blocks = [module]
    _nested_modules(module, blocks)
    return "\n\n".join(_format_block(block) for block in blocks)


def summarize_opcodes(module: HloModule) -> str:
    """One line per opcode with its occurrence count, sorted by count."""
    counts = {}
    for instruction in module:
        counts[instruction.opcode] = counts.get(instruction.opcode, 0) + 1
    rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0].value))
    return "\n".join(f"{opcode.value:>28}: {count}" for opcode, count in rows)
