"""Opcodes for the HLO-like IR and classification helpers."""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """The operation vocabulary needed by the paper's passes.

    This intentionally mirrors the XLA HLO ops the paper manipulates:
    ``Einsum`` (dot-general), the MPI-style collectives of Section 2.1, the
    slice/update ops used by the looped rewrite, and the element-wise and
    data-movement ops used by the fusion-friendly rewrites of Section 5.4.3.
    """

    PARAMETER = "parameter"
    CONSTANT = "constant"
    ZEROS = "zeros"
    IOTA = "iota"

    EINSUM = "einsum"
    ADD = "add"
    MULTIPLY = "multiply"
    MAXIMUM = "maximum"
    NEGATE = "negate"
    COPY = "copy"

    RESHAPE = "reshape"
    TRANSPOSE = "transpose"
    SLICE = "slice"
    PAD = "pad"
    CONCATENATE = "concatenate"
    DYNAMIC_SLICE = "dynamic-slice"
    DYNAMIC_UPDATE_SLICE = "dynamic-update-slice"

    ALL_GATHER = "all-gather"
    REDUCE_SCATTER = "reduce-scatter"
    ALL_REDUCE = "all-reduce"
    ALL_TO_ALL = "all-to-all"
    COLLECTIVE_PERMUTE = "collective-permute"
    COLLECTIVE_PERMUTE_START = "collective-permute-start"
    COLLECTIVE_PERMUTE_DONE = "collective-permute-done"

    FUSION = "fusion"
    WHILE = "while"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Collectives that move data between devices synchronously.
SYNC_COLLECTIVES = frozenset(
    {
        Opcode.ALL_GATHER,
        Opcode.REDUCE_SCATTER,
        Opcode.ALL_REDUCE,
        Opcode.ALL_TO_ALL,
        Opcode.COLLECTIVE_PERMUTE,
    }
)

#: Starts of asynchronous collectives: launch a transfer, cost (almost)
#: nothing on the compute stream. Today the only async-split op is the
#: collective permute every overlappable collective lowers to; new async
#: op kinds join these sets rather than being special-cased in the
#: schedulers.
ASYNC_START_OPS = frozenset({Opcode.COLLECTIVE_PERMUTE_START})

#: Dones of asynchronous collectives: block until the paired transfer
#: has arrived.
ASYNC_DONE_OPS = frozenset({Opcode.COLLECTIVE_PERMUTE_DONE})

#: All opcodes that involve inter-device communication.
COMMUNICATION_OPS = SYNC_COLLECTIVES | ASYNC_START_OPS | ASYNC_DONE_OPS

#: Element-wise ops eligible for fusion.
ELEMENTWISE_OPS = frozenset(
    {Opcode.ADD, Opcode.MULTIPLY, Opcode.MAXIMUM, Opcode.NEGATE, Opcode.COPY}
)

#: Pure data-movement ops (no arithmetic), memory-bandwidth bound.
DATA_MOVEMENT_OPS = frozenset(
    {
        Opcode.RESHAPE,
        Opcode.TRANSPOSE,
        Opcode.SLICE,
        Opcode.PAD,
        Opcode.CONCATENATE,
        Opcode.DYNAMIC_SLICE,
        Opcode.DYNAMIC_UPDATE_SLICE,
        Opcode.COPY,
    }
)

#: Ops that produce values without reading operands.
SOURCE_OPS = frozenset(
    {Opcode.PARAMETER, Opcode.CONSTANT, Opcode.ZEROS, Opcode.IOTA}
)


def is_communication(opcode: Opcode) -> bool:
    return opcode in COMMUNICATION_OPS


def is_async_pair_start(opcode: Opcode) -> bool:
    return opcode in ASYNC_START_OPS


def is_async_pair_done(opcode: Opcode) -> bool:
    return opcode in ASYNC_DONE_OPS
