"""HLO-like intermediate representation.

A small SSA dataflow IR mirroring the XLA ops the paper's compiler passes
manipulate: einsums, MPI-style collectives, dynamic slice/update, and the
element-wise / data-movement vocabulary used by the fusion rewrites.
"""

from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16, F32, F64, S32, DType, dtype_from_name
from repro.hlo.einsum_spec import LHS, RHS, EinsumSpec
from repro.hlo.instruction import Instruction, ShardIndex, collective_permute_pairs
from repro.hlo.module import HloModule, VerificationError
from repro.hlo.opcode import (
    COMMUNICATION_OPS,
    DATA_MOVEMENT_OPS,
    ELEMENTWISE_OPS,
    SOURCE_OPS,
    SYNC_COLLECTIVES,
    Opcode,
)
from repro.hlo.shapes import Shape
from repro.hlo.parser import ParseError, parse_module
from repro.hlo.printer import format_instruction, format_module, summarize_opcodes

__all__ = [
    "BF16",
    "COMMUNICATION_OPS",
    "DATA_MOVEMENT_OPS",
    "DType",
    "ELEMENTWISE_OPS",
    "EinsumSpec",
    "F32",
    "F64",
    "GraphBuilder",
    "HloModule",
    "Instruction",
    "LHS",
    "Opcode",
    "ParseError",
    "RHS",
    "S32",
    "Shape",
    "SOURCE_OPS",
    "SYNC_COLLECTIVES",
    "ShardIndex",
    "VerificationError",
    "collective_permute_pairs",
    "dtype_from_name",
    "format_instruction",
    "format_module",
    "parse_module",
    "summarize_opcodes",
]
