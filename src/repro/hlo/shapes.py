"""Tensor shapes for the HLO-like IR."""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from repro.hlo.dtypes import BF16, DType


@dataclasses.dataclass(frozen=True)
class Shape:
    """A static tensor shape: dimension sizes plus an element type.

    Shapes are immutable and hashable so they can key caches in the cost
    model and be compared structurally during module verification.
    """

    dims: Tuple[int, ...]
    dtype: DType = BF16

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.dims):
            raise ValueError(f"negative dimension in shape {self.dims}")

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        return math.prod(self.dims) if self.dims else 1

    @property
    def byte_size(self) -> int:
        return self.num_elements * self.dtype.byte_width

    def with_dim(self, axis: int, size: int) -> "Shape":
        """Return a copy of this shape with dimension ``axis`` resized."""
        dims = list(self.dims)
        dims[axis] = size
        return Shape(tuple(dims), self.dtype)

    def with_dtype(self, dtype: DType) -> "Shape":
        return Shape(self.dims, dtype)

    def stacked(self, num_devices: int) -> Tuple[int, ...]:
        """Dimensions of the device-stacked layout: ``(n, *dims)``.

        The compiled execution engine stores all shards of an SPMD value
        in one array whose leading axis is the device id.
        """
        return (num_devices,) + self.dims

    def scaled_dim(self, axis: int, factor: int) -> "Shape":
        """Return a copy with dimension ``axis`` multiplied by ``factor``."""
        return self.with_dim(axis, self.dims[axis] * factor)

    def divided_dim(self, axis: int, divisor: int) -> "Shape":
        """Return a copy with dimension ``axis`` divided by ``divisor``.

        Raises ``ValueError`` when the dimension is not divisible, mirroring
        how the SPMD partitioner requires even shardings.
        """
        if self.dims[axis] % divisor != 0:
            raise ValueError(
                f"dimension {axis} of {self.dims} not divisible by {divisor}"
            )
        return self.with_dim(axis, self.dims[axis] // divisor)

    def __repr__(self) -> str:
        dims = ",".join(str(d) for d in self.dims)
        return f"{self.dtype.name}[{dims}]"
