"""Element types supported by the HLO-like IR.

The reproduction only needs the dtypes that matter for the cost model:
``bf16`` (activations/weights on TPU v4), ``f32`` (accumulators and the
functional executor's compute type), and a couple of integer types used by
index arithmetic in tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class DType:
    """An element type: a name, a byte width and a numpy equivalent.

    The functional executor always computes in float64 for numerical
    robustness, but byte widths below drive every memory and bandwidth
    estimate in the cost model and the performance simulator.
    """

    name: str
    byte_width: int
    np_dtype: np.dtype

    def __repr__(self) -> str:
        return self.name


BF16 = DType("bf16", 2, np.dtype(np.float32))  # numpy has no bf16; f32 stands in
F32 = DType("f32", 4, np.dtype(np.float32))
F64 = DType("f64", 8, np.dtype(np.float64))
S32 = DType("s32", 4, np.dtype(np.int32))

_BY_NAME = {dt.name: dt for dt in (BF16, F32, F64, S32)}


def dtype_from_name(name: str) -> DType:
    """Look up a dtype by its short name (e.g. ``"bf16"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown dtype name: {name!r}") from None
