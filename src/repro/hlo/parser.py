"""Parser for the HLO text format emitted by :mod:`repro.hlo.printer`.

``parse_module(format_module(m))`` reconstructs a structurally identical
module: same names, opcodes, shapes, operand links, attributes, fusion
groups and root. Useful for writing programs by hand in tests and for
snapshotting compiled modules.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, List, Optional

from repro.hlo.dtypes import dtype_from_name
from repro.hlo.instruction import Instruction, ShardIndex
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape


class ParseError(ValueError):
    """Raised when HLO text cannot be parsed."""


_HEADER = re.compile(r"^HloModule\s+(?P<name>\S+)\s*\{$")
_FOOTER = re.compile(r"^\}\s*//\s*root\s*=\s*(?P<root>\S+)$")
_INSTRUCTION = re.compile(
    r"^(?P<name>\S+)\s*=\s*(?P<dtype>\w+)\[(?P<dims>[\d,]*)\]\s*"
    r"(?P<opcode>[\w-]+)\((?P<body>.*)\)"
    r"(?:\s*#fusion_group=(?P<fusion>\d+))?$"
)
_SHARD_INDEX = re.compile(
    r"^\(\((?P<coeff>-?\d+)\*(?:pid|\(pid//(?P<div>\d+)\))"
    r"(?:\+(?P<iter>-?\d+)\*i)?"
    r"\+(?P<offset>-?\d+)\)(?:\s+mod\s+(?P<modulus>\d+))?\)"
    r"\*(?P<stride>-?\d+)$"
)

_OPCODES_BY_VALUE = {opcode.value: opcode for opcode in Opcode}


def parse_module(text: str) -> HloModule:
    """Parse an HLO text dump into a fresh :class:`HloModule`.

    The text may contain several module blocks: the first is the result,
    the rest are While bodies referenced by name through ``body="..."``
    attributes (the layout :func:`repro.hlo.printer.format_module`
    emits). Body references are resolved after all blocks are parsed, so
    bodies may appear in any order after the main module.
    """
    blocks = _split_blocks(text)
    if not blocks:
        raise ParseError("empty module text")
    modules: List[HloModule] = [_parse_block(block) for block in blocks]
    by_module_name: Dict[str, HloModule] = {}
    for module in modules:
        if module.name in by_module_name:
            raise ParseError(f"duplicate module name {module.name!r}")
        by_module_name[module.name] = module
    for module in modules:
        _resolve_bodies(module, by_module_name)
    return modules[0]


def _split_blocks(text: str) -> List[List[str]]:
    """Group non-empty lines into ``HloModule ... { ... }`` blocks."""
    blocks: List[List[str]] = []
    current: Optional[List[str]] = None
    for raw in text.strip().splitlines():
        line = raw.strip()
        if not line or line.startswith("//"):
            # Comment lines are legal anywhere, as in XLA dumps — the
            # ``repro dump`` banner and opcode summary use them.
            continue
        if _HEADER.match(line):
            if current is not None:
                raise ParseError("module block not closed before the next")
            current = [line]
        elif current is None:
            raise ParseError(f"bad module header: {line!r}")
        else:
            current.append(line)
            if _FOOTER.match(line):
                blocks.append(current)
                current = None
    if current is not None:
        raise ParseError("bad module footer: block never closed")
    return blocks


def _parse_block(lines: List[str]) -> HloModule:
    header = _HEADER.match(lines[0])
    if not header:
        raise ParseError(f"bad module header: {lines[0]!r}")
    footer = _FOOTER.match(lines[-1])
    if not footer:
        raise ParseError(f"bad module footer: {lines[-1]!r}")

    module = HloModule(header.group("name"))
    by_name: Dict[str, Instruction] = {}
    for line in lines[1:-1]:
        instruction = _parse_instruction(line, by_name)
        by_name[instruction.name] = instruction
        module.add(instruction)

    root_name = footer.group("root")
    if root_name != "<none>":
        try:
            module.root = by_name[root_name]
        except KeyError:
            raise ParseError(f"root {root_name!r} not defined") from None
    module.verify()
    return module


def _resolve_bodies(
    module: HloModule, by_module_name: Dict[str, HloModule]
) -> None:
    """Replace ``body="name"`` string references with the parsed modules."""
    for instruction in module:
        body = instruction.attrs.get("body")
        if isinstance(body, str):
            try:
                instruction.attrs["body"] = by_module_name[body]
            except KeyError:
                raise ParseError(
                    f"{instruction.name} references body module {body!r}, "
                    "which is not defined in the text"
                ) from None


def _parse_instruction(
    line: str, by_name: Dict[str, Instruction]
) -> Instruction:
    match = _INSTRUCTION.match(line)
    if not match:
        raise ParseError(f"bad instruction line: {line!r}")
    opcode = _OPCODES_BY_VALUE.get(match.group("opcode"))
    if opcode is None:
        raise ParseError(f"unknown opcode {match.group('opcode')!r}")
    dims = tuple(
        int(d) for d in match.group("dims").split(",") if d
    )
    shape = Shape(dims, dtype_from_name(match.group("dtype")))

    operands: List[Instruction] = []
    attrs: Dict[str, Any] = {}
    for item in _split_top_level(match.group("body")):
        if not item:
            continue
        key, equals, value = item.partition("=")
        if equals and _looks_like_attr_key(key):
            attrs[key.strip()] = _parse_value(value.strip())
        else:
            name = item.strip()
            try:
                operands.append(by_name[name])
            except KeyError:
                raise ParseError(
                    f"operand {name!r} used before definition"
                ) from None

    fusion = match.group("fusion")
    return Instruction(
        name=match.group("name"),
        opcode=opcode,
        shape=shape,
        operands=operands,
        attrs=attrs,
        fusion_group=int(fusion) if fusion is not None else None,
    )


def _looks_like_attr_key(key: str) -> bool:
    return bool(re.fullmatch(r"\s*[a-z_]+\s*", key))


def _split_top_level(body: str) -> List[str]:
    """Split on commas at bracket/quote depth zero."""
    items: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current: List[str] = []
    for char in body:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char in "([{":
            depth += 1
            current.append(char)
        elif char in ")]}":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            items.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current).strip())
    return items


def _parse_value(text: str) -> Any:
    shard = _SHARD_INDEX.match(text)
    if shard:
        return ShardIndex(
            coeff=int(shard.group("coeff")),
            offset=int(shard.group("offset")),
            modulus=int(shard.group("modulus") or 0),
            stride=int(shard.group("stride")),
            div=int(shard.group("div") or 1),
            iter_coeff=int(shard.group("iter") or 0),
        )
    if text == "-inf":
        return float("-inf")
    if text == "inf":
        return float("inf")
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise ParseError(f"cannot parse attribute value {text!r}") from None
