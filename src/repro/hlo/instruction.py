"""Instructions of the HLO-like IR.

An :class:`Instruction` is an SSA value: it names an operation, its operand
instructions and its result shape. Instructions are hashable by identity and
live inside an :class:`repro.hlo.module.HloModule`, which owns program
order.

:class:`ShardIndex` captures the partition-id-dependent slice starts the
paper's looped rewrite needs (DynamicSlice/DynamicUpdateSlice whose offsets
are affine functions of the device's partition id — footnotes 5 and 6 of
the paper).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape

_instruction_counter = itertools.count()


@dataclasses.dataclass(frozen=True)
class ShardIndex:
    """A partition-id- (and loop-iteration-) dependent slice start.

    Evaluates to
    ``((coeff * (pid // div) + iter_coeff * i + offset) mod modulus) *
    stride`` where ``i`` is the enclosing loop's iteration index (zero
    outside any loop). A ``modulus`` of zero disables the wrap-around.
    ``stride`` is normally the shard size along the sliced dimension, so
    the expression selects the start element of shard
    ``(coeff * ring_pos + iter_coeff * i + offset) mod modulus``.

    The ``div`` field exists because on a multi-dimensional row-major mesh
    a device's coordinate along one axis is ``(pid // div) mod size`` where
    ``div`` is the product of the sizes of the later axes; with ``div=1``
    this degenerates to the plain affine form used on 1D rings. The
    ``iter_coeff`` term is what the *rolled* Looped CollectiveEinsum uses
    (Algorithm 1's "data shard ID computed based on the loop index
    variable"); unrolling folds it into ``offset``.
    """

    coeff: int
    offset: int
    modulus: int
    stride: int
    div: int = 1
    iter_coeff: int = 0

    @staticmethod
    def constant(value: int) -> "ShardIndex":
        """An index that ignores the partition id."""
        return ShardIndex(coeff=0, offset=value, modulus=0, stride=1)

    @staticmethod
    def shard(
        coeff: int, offset: int, num_shards: int, shard_size: int,
        div: int = 1, iter_coeff: int = 0,
    ) -> "ShardIndex":
        """Start of shard
        ``(coeff * (pid // div) + iter_coeff * i + offset) mod num_shards``.
        """
        return ShardIndex(coeff, offset, num_shards, shard_size, div, iter_coeff)

    def shard_id(self, partition_id: int, iteration: int = 0) -> int:
        """The shard number this index selects on ``partition_id``."""
        base = (
            self.coeff * (partition_id // self.div)
            + self.iter_coeff * iteration
            + self.offset
        )
        if self.modulus:
            base %= self.modulus
        return base

    def evaluate(self, partition_id: int, iteration: int = 0) -> int:
        return self.shard_id(partition_id, iteration) * self.stride

    @property
    def device_dependent(self) -> bool:
        """True when the index varies with the partition id."""
        return self.coeff != 0

    @property
    def iteration_dependent(self) -> bool:
        """True when the index varies with the enclosing loop iteration."""
        return self.iter_coeff != 0

    def offsets(self, num_devices: int, iteration: int = 0) -> np.ndarray:
        """All devices' element offsets at once, as an int64 vector.

        This is the vectorized form of :meth:`evaluate` the compiled
        execution engine hoists out of its run loop (or, for
        iteration-dependent indices, evaluates once per call instead of
        once per device).
        """
        base = (
            self.coeff * (np.arange(num_devices, dtype=np.int64) // self.div)
            + self.iter_coeff * iteration
            + self.offset
        )
        if self.modulus:
            base %= self.modulus
        return base * self.stride

    def at_iteration(self, iteration: int) -> "ShardIndex":
        """Fold a concrete iteration index into the offset (unrolling)."""
        return dataclasses.replace(
            self,
            offset=self.iter_coeff * iteration + self.offset,
            iter_coeff=0,
        )

    def stepped(self, factor: int, step_offset: int) -> "ShardIndex":
        """Re-express for a loop counting by ``factor``: iteration
        ``i = factor * t + step_offset`` (partial unrolling)."""
        return dataclasses.replace(
            self,
            offset=self.iter_coeff * step_offset + self.offset,
            iter_coeff=self.iter_coeff * factor,
        )

    def __repr__(self) -> str:
        mod = f" mod {self.modulus}" if self.modulus else ""
        pid = "pid" if self.div == 1 else f"(pid//{self.div})"
        iteration = f"+{self.iter_coeff}*i" if self.iter_coeff else ""
        return (
            f"(({self.coeff}*{pid}{iteration}+{self.offset}){mod})"
            f"*{self.stride}"
        )


@dataclasses.dataclass(eq=False)
class Instruction:
    """A single SSA operation.

    ``attrs`` holds opcode-specific attributes; the keys in use are:

    * ``EINSUM``: ``equation`` (str).
    * ``SLICE``: ``dim``, ``start`` (int), ``size``.
    * ``DYNAMIC_SLICE``: ``dim``, ``size``, ``start`` (:class:`ShardIndex`).
    * ``DYNAMIC_UPDATE_SLICE``: ``dim``, ``start`` (:class:`ShardIndex`);
      operand 0 is the target, operand 1 the update.
    * ``PAD``: ``dim``, ``low``, ``high``, ``value``.
    * ``CONCATENATE``: ``dim``.
    * ``TRANSPOSE``: ``perm``.
    * ``ALL_GATHER`` / ``REDUCE_SCATTER``: ``dim``, ``groups``.
    * ``ALL_REDUCE``: ``groups``.
    * ``ALL_TO_ALL``: ``split_dim``, ``concat_dim``, ``groups``.
    * ``COLLECTIVE_PERMUTE`` / ``..._START``: ``pairs`` — list of
      ``(source, destination)`` device-id tuples.

    ``fusion_group`` is an overlay assigned by the fusion pass: instructions
    sharing a group id are costed as a single fused kernel by the
    performance simulator. The functional executor ignores it.
    """

    name: str
    opcode: Opcode
    shape: Shape
    operands: List["Instruction"] = dataclasses.field(default_factory=list)
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    fusion_group: Optional[int] = None

    @staticmethod
    def fresh_name(prefix: str) -> str:
        return f"{prefix}.{next(_instruction_counter)}"

    # --- convenience accessors -----------------------------------------------

    @property
    def equation(self) -> str:
        return self.attrs["equation"]

    @property
    def pairs(self) -> List[Tuple[int, int]]:
        return self.attrs["pairs"]

    @property
    def groups(self) -> List[Tuple[int, ...]]:
        return self.attrs["groups"]

    def operand(self, index: int) -> "Instruction":
        return self.operands[index]

    def replace_operand(self, old: "Instruction", new: "Instruction") -> None:
        """Swap every occurrence of ``old`` in the operand list for ``new``."""
        self.operands = [new if op is old else op for op in self.operands]

    def is_communication(self) -> bool:
        from repro.hlo.opcode import COMMUNICATION_OPS

        return self.opcode in COMMUNICATION_OPS

    def __repr__(self) -> str:
        ops = ", ".join(op.name for op in self.operands)
        return f"{self.name} = {self.shape} {self.opcode.value}({ops})"


def collective_permute_pairs(
    group: Sequence[int], shift: int
) -> List[Tuple[int, int]]:
    """Ring-shift source/destination pairs within a device group.

    ``shift=+1`` sends each device's data to its *lower*-indexed neighbour
    (the paper's ``{0, N-1}, {1, 0}, ... {N-1, N-2}`` pattern — data shards
    circular-shift left). ``shift=-1`` sends clockwise (to the
    higher-indexed neighbour), and ``shift=+2`` produces the hop-2 rings
    used by the unrolled ReduceScatter accumulation chains.
    """
    n = len(group)
    return [(group[i], group[(i - shift) % n]) for i in range(n)]
