"""Einsum equation parsing and dimension classification.

The decomposition pass (Section 5.1 of the paper) distinguishes three kinds
of operand dimensions:

* **batch** — appears in the LHS, the RHS and the output;
* **contracting** — appears in the LHS and the RHS but not the output;
* **non-contracting (free)** — appears in exactly one operand and in the
  output.

This module parses two-operand einsum equations of the explicit form
``"bf,fh->bh"`` and exposes the classification, output shape inference and
the FLOP count used by the cost model.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Dict, Tuple

from repro.hlo.shapes import Shape

LHS = 0
RHS = 1


@dataclasses.dataclass(frozen=True)
class EinsumSpec:
    """A parsed two-operand einsum equation."""

    equation: str
    lhs_labels: str
    rhs_labels: str
    out_labels: str

    @staticmethod
    @functools.lru_cache(maxsize=4096)
    def parse(equation: str) -> "EinsumSpec":
        """Parse ``"<lhs>,<rhs>-><out>"`` with single-letter labels.

        Only explicit equations with exactly two operands are supported —
        that is all intra-layer model parallelism in the paper requires.
        The parse is cached: specs are immutable and the cost model parses
        the same few equations millions of times during simulation.
        """
        equation = equation.replace(" ", "")
        if "->" not in equation:
            raise ValueError(f"einsum equation must be explicit: {equation!r}")
        inputs, out = equation.split("->")
        parts = inputs.split(",")
        if len(parts) != 2:
            raise ValueError(f"exactly two operands required: {equation!r}")
        lhs, rhs = parts
        for labels, side in ((lhs, "lhs"), (rhs, "rhs"), (out, "output")):
            if len(set(labels)) != len(labels):
                raise ValueError(f"repeated label in {side} of {equation!r}")
        lhs_set, rhs_set = set(lhs), set(rhs)
        for label in out:
            if label not in lhs_set and label not in rhs_set:
                raise ValueError(
                    f"output label {label!r} missing from operands: {equation!r}"
                )
        return EinsumSpec(equation, lhs, rhs, out)

    # --- label classification -------------------------------------------------

    @property
    def batch_labels(self) -> str:
        out = set(self.out_labels)
        return "".join(
            l for l in self.lhs_labels if l in self.rhs_labels and l in out
        )

    @property
    def contracting_labels(self) -> str:
        out = set(self.out_labels)
        return "".join(
            l for l in self.lhs_labels if l in self.rhs_labels and l not in out
        )

    @property
    def lhs_free_labels(self) -> str:
        rhs = set(self.rhs_labels)
        return "".join(l for l in self.lhs_labels if l not in rhs)

    @property
    def rhs_free_labels(self) -> str:
        lhs = set(self.lhs_labels)
        return "".join(l for l in self.rhs_labels if l not in lhs)

    def classify(self, operand: int, axis: int) -> str:
        """Classify dimension ``axis`` of ``operand`` (LHS=0, RHS=1).

        Returns one of ``"batch"``, ``"contracting"``, ``"free"``.
        """
        label = self.operand_labels(operand)[axis]
        if label in self.batch_labels:
            return "batch"
        if label in self.contracting_labels:
            return "contracting"
        return "free"

    def operand_labels(self, operand: int) -> str:
        if operand == LHS:
            return self.lhs_labels
        if operand == RHS:
            return self.rhs_labels
        raise ValueError(f"operand must be 0 or 1, got {operand}")

    def axis_of(self, operand: int, label: str) -> int:
        """Axis index of ``label`` in the given operand."""
        return self.operand_labels(operand).index(label)

    def out_axis_of(self, label: str) -> int:
        return self.out_labels.index(label)

    def label_in_operand(self, operand: int, label: str) -> bool:
        return label in self.operand_labels(operand)

    # --- shape inference ------------------------------------------------------

    def label_sizes(self, lhs: Shape, rhs: Shape) -> Dict[str, int]:
        """Map each label to its dimension size, checking consistency."""
        if lhs.rank != len(self.lhs_labels) or rhs.rank != len(self.rhs_labels):
            raise ValueError(
                f"operand ranks {lhs.rank},{rhs.rank} do not match "
                f"equation {self.equation!r}"
            )
        sizes: Dict[str, int] = {}
        for labels, shape in ((self.lhs_labels, lhs), (self.rhs_labels, rhs)):
            for label, size in zip(labels, shape.dims):
                if sizes.setdefault(label, size) != size:
                    raise ValueError(
                        f"label {label!r} has inconsistent sizes "
                        f"{sizes[label]} vs {size} in {self.equation!r}"
                    )
        return sizes

    def output_shape(self, lhs: Shape, rhs: Shape) -> Shape:
        sizes = self.label_sizes(lhs, rhs)
        return Shape(tuple(sizes[l] for l in self.out_labels), lhs.dtype)

    def flop_count(self, lhs: Shape, rhs: Shape) -> int:
        """Multiply-add count: 2 * prod(all label sizes)."""
        sizes = self.label_sizes(lhs, rhs)
        return 2 * math.prod(sizes.values())

    def matmul_dims(self, lhs: Shape, rhs: Shape) -> Tuple[int, int, int]:
        """Collapse to (m, k, n): LHS-free, contracting, RHS-free products.

        Batch dims multiply into ``m`` — on TPUs batched matmuls tile the
        batch over the MXU the same way as rows. Used by the efficiency
        model in :mod:`repro.perfsim.efficiency`.
        """
        sizes = self.label_sizes(lhs, rhs)
        m = math.prod([sizes[l] for l in self.lhs_free_labels] or [1])
        m *= math.prod([sizes[l] for l in self.batch_labels] or [1])
        k = math.prod([sizes[l] for l in self.contracting_labels] or [1])
        n = math.prod([sizes[l] for l in self.rhs_free_labels] or [1])
        return m, k, n
