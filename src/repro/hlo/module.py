"""HloModule: an ordered SSA program over :class:`Instruction`.

Program order doubles as the instruction schedule: the functional executor
and the performance simulator both walk the list front to back. The
scheduling passes therefore work by producing a new order and calling
:meth:`HloModule.reorder`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.hlo.instruction import Instruction
from repro.hlo.opcode import Opcode, SOURCE_OPS


class VerificationError(RuntimeError):
    """Raised when an HloModule violates an SSA or shape invariant."""


class HloModule:
    """An ordered list of instructions with SSA def-before-use order."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._by_name: Dict[str, Instruction] = {}
        self.root: Optional[Instruction] = None

    # --- construction ----------------------------------------------------------

    def add(self, instruction: Instruction) -> Instruction:
        """Append an instruction; it becomes the module root."""
        if instruction.name in self._by_name:
            raise VerificationError(f"duplicate instruction name {instruction.name}")
        self._instructions.append(instruction)
        self._by_name[instruction.name] = instruction
        self.root = instruction
        return instruction

    def insert_before(self, anchor: Instruction, instruction: Instruction) -> Instruction:
        """Insert ``instruction`` immediately before ``anchor``."""
        if instruction.name in self._by_name:
            raise VerificationError(f"duplicate instruction name {instruction.name}")
        index = self._instructions.index(anchor)
        self._instructions.insert(index, instruction)
        self._by_name[instruction.name] = instruction
        return instruction

    def splice_before(
        self, anchor: Instruction, instructions: Iterable[Instruction]
    ) -> None:
        """Insert many instructions before ``anchor`` in one pass.

        Equivalent to repeated :meth:`insert_before` but O(n + k) instead of
        O(n * k) — the rewrite passes splice whole decomposed loops.
        """
        instructions = list(instructions)
        for instruction in instructions:
            if instruction.name in self._by_name:
                raise VerificationError(
                    f"duplicate instruction name {instruction.name}"
                )
            self._by_name[instruction.name] = instruction
        index = self._instructions.index(anchor)
        self._instructions[index:index] = instructions

    def remove(self, instruction: Instruction) -> None:
        """Remove an instruction that has no remaining users."""
        for other in self._instructions:
            if instruction in other.operands:
                raise VerificationError(
                    f"cannot remove {instruction.name}: used by {other.name}"
                )
        self._instructions.remove(instruction)
        del self._by_name[instruction.name]
        if self.root is instruction:
            self.root = self._instructions[-1] if self._instructions else None

    def replace_all_uses(self, old: Instruction, new: Instruction) -> None:
        """Redirect every user of ``old`` to ``new`` (and the root)."""
        for instruction in self._instructions:
            if instruction is not new:
                instruction.replace_operand(old, new)
        if self.root is old:
            self.root = new

    # --- queries ---------------------------------------------------------------

    @property
    def instructions(self) -> List[Instruction]:
        return list(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def get(self, name: str) -> Instruction:
        return self._by_name[name]

    def __contains__(self, instruction: Instruction) -> bool:
        return self._by_name.get(instruction.name) is instruction

    def parameters(self) -> List[Instruction]:
        return [i for i in self._instructions if i.opcode is Opcode.PARAMETER]

    def users_of(self, instruction: Instruction) -> List[Instruction]:
        return [i for i in self._instructions if instruction in i.operands]

    def user_map(self) -> Dict[Instruction, List[Instruction]]:
        """All users of every instruction, computed in one pass."""
        users: Dict[Instruction, List[Instruction]] = {
            i: [] for i in self._instructions
        }
        for instruction in self._instructions:
            seen: Set[int] = set()
            for operand in instruction.operands:
                if id(operand) not in seen:
                    seen.add(id(operand))
                    users[operand].append(instruction)
        return users

    def find(self, predicate: Callable[[Instruction], bool]) -> List[Instruction]:
        return [i for i in self._instructions if predicate(i)]

    def count(self, opcode: Opcode) -> int:
        return sum(1 for i in self._instructions if i.opcode is opcode)

    # --- transformation --------------------------------------------------------

    def reorder(self, sequence: Iterable[Instruction]) -> None:
        """Replace program order with ``sequence`` (a permutation)."""
        sequence = list(sequence)
        if len(sequence) != len(self._instructions) or set(
            id(i) for i in sequence
        ) != set(id(i) for i in self._instructions):
            raise VerificationError("reorder sequence is not a permutation")
        self._instructions = sequence
        self.verify()

    def rebuild(
        self,
        instructions: List[Instruction],
        root: Optional[Instruction] = None,
    ) -> None:
        """Replace contents wholesale (one-pass rewrites use this).

        Unlike :meth:`reorder`, the new list may add or drop instructions;
        the caller is responsible for having rewritten all operand links.
        """
        self._instructions = list(instructions)
        self._by_name = {}
        for instruction in self._instructions:
            if instruction.name in self._by_name:
                raise VerificationError(
                    f"duplicate instruction name {instruction.name}"
                )
            self._by_name[instruction.name] = instruction
        if root is not None:
            self.root = root
        elif self.root is not None and self.root.name not in self._by_name:
            self.root = self._instructions[-1] if self._instructions else None

    def dead_code_eliminate(self) -> int:
        """Drop instructions unreachable from the root. Returns the count."""
        if self.root is None:
            return 0
        live: Set[int] = set()
        stack = [self.root]
        while stack:
            instruction = stack.pop()
            if id(instruction) in live:
                continue
            live.add(id(instruction))
            stack.extend(instruction.operands)
        removed = [i for i in self._instructions if id(i) not in live]
        self._instructions = [i for i in self._instructions if id(i) in live]
        for instruction in removed:
            del self._by_name[instruction.name]
        return len(removed)

    # --- verification ----------------------------------------------------------

    def verify(self) -> None:
        """Check SSA def-before-use, operand membership and async pairing."""
        defined: Set[int] = set()
        starts_seen: Set[int] = set()
        for instruction in self._instructions:
            for operand in instruction.operands:
                if id(operand) not in defined:
                    raise VerificationError(
                        f"{instruction.name} uses {operand.name} before its "
                        "definition (or operand not in module)"
                    )
            if instruction.opcode not in SOURCE_OPS and not instruction.operands:
                if instruction.opcode is not Opcode.ZEROS:
                    raise VerificationError(
                        f"{instruction.name} ({instruction.opcode.value}) has no operands"
                    )
            if instruction.opcode is Opcode.COLLECTIVE_PERMUTE_START:
                starts_seen.add(id(instruction))
            if instruction.opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
                start = instruction.operands[0]
                if start.opcode is not Opcode.COLLECTIVE_PERMUTE_START:
                    raise VerificationError(
                        f"{instruction.name} must consume a collective-permute-start"
                    )
            defined.add(id(instruction))
        if self.root is not None and id(self.root) not in defined:
            raise VerificationError("root is not part of the module")

    def __repr__(self) -> str:
        return f"HloModule({self.name!r}, {len(self._instructions)} instructions)"
