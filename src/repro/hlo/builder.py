"""GraphBuilder: a convenience API for constructing HloModules.

All shape inference lives here so passes and model builders never hand-
compute result shapes. Collective result shapes follow the XLA semantics:
``AllGather`` multiplies the gathered dimension by the group size,
``ReduceScatter`` divides the scattered dimension, ``AllReduce``,
``AllToAll`` and ``CollectivePermute`` preserve shape.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hlo.dtypes import DType
from repro.hlo.einsum_spec import EinsumSpec
from repro.hlo.instruction import Instruction, ShardIndex
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.hlo.shapes import Shape

Groups = List[Tuple[int, ...]]


def _check_groups(groups: Groups) -> None:
    if not groups:
        raise ValueError("collective needs at least one replica group")
    size = len(groups[0])
    for group in groups:
        if len(group) != size:
            raise ValueError("replica groups must have uniform size")


class GraphBuilder:
    """Builds instructions into an :class:`HloModule`.

    Two modes: a fresh builder appends to a new module; :meth:`into`
    returns a builder that *inserts* each emitted instruction immediately
    before an anchor instruction of an existing module — the mode the
    rewrite passes use to splice decomposed loops into place.
    """

    def __init__(self, name: str = "module") -> None:
        self.module = HloModule(name)
        self._anchor: Optional[Instruction] = None
        self._pending: List[Instruction] = []

    @classmethod
    def into(cls, module: HloModule, anchor: Instruction) -> "GraphBuilder":
        """A builder whose emissions are buffered and spliced before
        ``anchor`` on :meth:`flush` (or implicitly when the rewrite pass
        finishes through a ``with``-less convention of calling flush)."""
        builder = cls.__new__(cls)
        builder.module = module
        builder._anchor = anchor
        builder._pending = []
        return builder

    def flush(self) -> None:
        """Splice buffered instructions into the module before the anchor."""
        if self._anchor is not None and self._pending:
            self.module.splice_before(self._anchor, self._pending)
            self._pending = []

    def _emit(
        self,
        opcode: Opcode,
        shape: Shape,
        operands: Sequence[Instruction] = (),
        name: Optional[str] = None,
        **attrs,
    ) -> Instruction:
        instruction = Instruction(
            name=name or Instruction.fresh_name(opcode.value),
            opcode=opcode,
            shape=shape,
            operands=list(operands),
            attrs=attrs,
        )
        if self._anchor is not None:
            self._pending.append(instruction)
            return instruction
        return self.module.add(instruction)

    # --- sources ---------------------------------------------------------------

    def parameter(self, shape: Shape, name: Optional[str] = None) -> Instruction:
        return self._emit(Opcode.PARAMETER, shape, name=name)

    def constant(self, value: np.ndarray, dtype: DType) -> Instruction:
        array = np.asarray(value)
        return self._emit(
            Opcode.CONSTANT, Shape(array.shape, dtype), value=array
        )

    def zeros(self, shape: Shape, name: Optional[str] = None) -> Instruction:
        return self._emit(Opcode.ZEROS, shape, name=name)

    # --- element-wise ----------------------------------------------------------

    def _binary(
        self, opcode: Opcode, a: Instruction, b: Instruction,
        name: Optional[str] = None,
    ) -> Instruction:
        if a.shape.dims != b.shape.dims:
            raise ValueError(
                f"{opcode.value} operand shapes differ: {a.shape} vs {b.shape}"
            )
        return self._emit(opcode, a.shape, [a, b], name=name)

    def add(
        self, a: Instruction, b: Instruction, name: Optional[str] = None
    ) -> Instruction:
        return self._binary(Opcode.ADD, a, b, name=name)

    def multiply(self, a: Instruction, b: Instruction) -> Instruction:
        return self._binary(Opcode.MULTIPLY, a, b)

    def maximum(self, a: Instruction, b: Instruction) -> Instruction:
        return self._binary(Opcode.MAXIMUM, a, b)

    def negate(self, a: Instruction) -> Instruction:
        return self._emit(Opcode.NEGATE, a.shape, [a])

    def copy(self, a: Instruction) -> Instruction:
        return self._emit(Opcode.COPY, a.shape, [a])

    # --- einsum ------------------------------------------------------------------

    def einsum(
        self, equation: str, lhs: Instruction, rhs: Instruction,
        name: Optional[str] = None,
    ) -> Instruction:
        spec = EinsumSpec.parse(equation)
        out = spec.output_shape(lhs.shape, rhs.shape)
        return self._emit(
            Opcode.EINSUM, out, [lhs, rhs], name=name, equation=equation
        )

    # --- data movement -----------------------------------------------------------

    def reshape(
        self, a: Instruction, dims: Tuple[int, ...],
        name: Optional[str] = None,
    ) -> Instruction:
        new_shape = Shape(dims, a.shape.dtype)
        if new_shape.num_elements != a.shape.num_elements:
            raise ValueError(f"reshape {a.shape} -> {new_shape} changes element count")
        return self._emit(Opcode.RESHAPE, new_shape, [a], name=name)

    def transpose(self, a: Instruction, perm: Tuple[int, ...]) -> Instruction:
        if sorted(perm) != list(range(a.shape.rank)):
            raise ValueError(f"bad permutation {perm} for rank {a.shape.rank}")
        dims = tuple(a.shape.dims[p] for p in perm)
        return self._emit(
            Opcode.TRANSPOSE, Shape(dims, a.shape.dtype), [a], perm=tuple(perm)
        )

    def slice(self, a: Instruction, dim: int, start: int, size: int) -> Instruction:
        if start < 0 or start + size > a.shape.dims[dim]:
            raise ValueError(
                f"slice [{start}, {start + size}) out of bounds for "
                f"dim {dim} of {a.shape}"
            )
        return self._emit(
            Opcode.SLICE, a.shape.with_dim(dim, size), [a],
            dim=dim, start=start, size=size,
        )

    def pad(
        self, a: Instruction, dim: int, low: int, high: int, value: float = 0.0
    ) -> Instruction:
        new = a.shape.with_dim(dim, a.shape.dims[dim] + low + high)
        return self._emit(
            Opcode.PAD, new, [a], dim=dim, low=low, high=high, value=value
        )

    def concatenate(self, operands: Sequence[Instruction], dim: int) -> Instruction:
        operands = list(operands)
        if not operands:
            raise ValueError("concatenate needs at least one operand")
        total = sum(op.shape.dims[dim] for op in operands)
        shape = operands[0].shape.with_dim(dim, total)
        return self._emit(Opcode.CONCATENATE, shape, operands, dim=dim)

    def dynamic_slice(
        self, a: Instruction, dim: int, start: ShardIndex, size: int,
        name: Optional[str] = None,
    ) -> Instruction:
        return self._emit(
            Opcode.DYNAMIC_SLICE, a.shape.with_dim(dim, size), [a],
            name=name, dim=dim, start=start, size=size,
        )

    def dynamic_update_slice(
        self, target: Instruction, update: Instruction, dim: int,
        start: ShardIndex, name: Optional[str] = None,
    ) -> Instruction:
        if update.shape.dims[dim] > target.shape.dims[dim]:
            raise ValueError("update larger than target along the sliced dim")
        return self._emit(
            Opcode.DYNAMIC_UPDATE_SLICE, target.shape, [target, update],
            name=name, dim=dim, start=start,
        )

    # --- collectives ---------------------------------------------------------------

    def all_gather(
        self, a: Instruction, dim: int, groups: Groups, name: Optional[str] = None
    ) -> Instruction:
        _check_groups(groups)
        shape = a.shape.scaled_dim(dim, len(groups[0]))
        return self._emit(
            Opcode.ALL_GATHER, shape, [a], name=name, dim=dim, groups=groups
        )

    def reduce_scatter(
        self, a: Instruction, dim: int, groups: Groups, name: Optional[str] = None
    ) -> Instruction:
        _check_groups(groups)
        shape = a.shape.divided_dim(dim, len(groups[0]))
        return self._emit(
            Opcode.REDUCE_SCATTER, shape, [a], name=name, dim=dim, groups=groups
        )

    def all_reduce(
        self, a: Instruction, groups: Groups, name: Optional[str] = None
    ) -> Instruction:
        _check_groups(groups)
        return self._emit(Opcode.ALL_REDUCE, a.shape, [a], name=name, groups=groups)

    def all_to_all(
        self, a: Instruction, split_dim: int, concat_dim: int, groups: Groups,
        name: Optional[str] = None,
    ) -> Instruction:
        _check_groups(groups)
        n = len(groups[0])
        shape = a.shape.divided_dim(split_dim, n).scaled_dim(concat_dim, n)
        return self._emit(
            Opcode.ALL_TO_ALL, shape, [a], name=name,
            split_dim=split_dim, concat_dim=concat_dim, groups=groups,
        )

    def collective_permute(
        self, a: Instruction, pairs: Sequence[Tuple[int, int]],
        name: Optional[str] = None, direction: Optional[str] = None,
    ) -> Instruction:
        """Point-to-point permute. ``direction`` (``"plus"``/``"minus"``)
        disambiguates the ring direction when the pairs alone cannot
        (two-device rings) — see :mod:`repro.perfsim.topology`."""
        attrs = {"pairs": list(pairs)}
        if direction is not None:
            attrs["direction"] = direction
        return self._emit(
            Opcode.COLLECTIVE_PERMUTE, a.shape, [a], name=name, **attrs
        )

    def collective_permute_start(
        self, a: Instruction, pairs: Sequence[Tuple[int, int]],
        name: Optional[str] = None, direction: Optional[str] = None,
        channel_id: Optional[int] = None,
    ) -> Instruction:
        attrs: dict = {"pairs": list(pairs)}
        if direction is not None:
            attrs["direction"] = direction
        if channel_id is not None:
            attrs["channel_id"] = channel_id
        return self._emit(
            Opcode.COLLECTIVE_PERMUTE_START, a.shape, [a], name=name, **attrs
        )

    def collective_permute_done(
        self, start: Instruction, name: Optional[str] = None
    ) -> Instruction:
        if start.opcode is not Opcode.COLLECTIVE_PERMUTE_START:
            raise ValueError("collective_permute_done needs a start operand")
        return self._emit(
            Opcode.COLLECTIVE_PERMUTE_DONE, start.shape, [start], name=name
        )

    # --- control flow ---------------------------------------------------------------

    def while_loop(
        self,
        trip_count: int,
        body: HloModule,
        body_outputs: Sequence[str],
        initial_state: Sequence[Instruction],
        result_index: int,
        name: Optional[str] = None,
    ) -> Instruction:
        """A counted loop (the rolled Looped CollectiveEinsum form).

        ``body`` is a separate module whose parameters are the loop-carried
        state (one per element of ``initial_state``, in order); the
        iteration index is implicit — body instructions reference it
        through ``ShardIndex.iter_coeff``. ``body_outputs`` names the body
        instruction producing each element of the next state. The loop's
        value is state element ``result_index`` after ``trip_count``
        iterations.
        """
        if trip_count < 1:
            raise ValueError("trip_count must be at least 1")
        parameters = body.parameters()
        if len(parameters) != len(initial_state):
            raise ValueError(
                f"body has {len(parameters)} parameters but "
                f"{len(initial_state)} initial state values were given"
            )
        if len(body_outputs) != len(initial_state):
            raise ValueError(
                "body_outputs must name one next-state value per state element"
            )
        for output, parameter in zip(body_outputs, parameters):
            if body.get(output).shape.dims != parameter.shape.dims:
                raise ValueError(
                    f"body output {output!r} shape does not match the "
                    f"loop-carried parameter {parameter.name!r}"
                )
        for parameter, state in zip(parameters, initial_state):
            if parameter.shape.dims != state.shape.dims:
                raise ValueError(
                    f"state shape {state.shape} does not match body "
                    f"parameter {parameter.name} ({parameter.shape})"
                )
        if not 0 <= result_index < len(initial_state):
            raise ValueError(f"result_index {result_index} out of range")
        return self._emit(
            Opcode.WHILE,
            initial_state[result_index].shape,
            list(initial_state),
            name=name,
            trip_count=trip_count,
            body=body,
            body_outputs=list(body_outputs),
            result_index=result_index,
        )
