"""Ladder execution: descend the degradation ladder under live faults.

:func:`run_with_ladder` is the graceful-degradation generalization of
:func:`repro.runtime.resilient.run_with_fallback`. Instead of one
decomposed→undecomposed cliff, a typed link fault steps the program one
rung down the :class:`~repro.adapt.policy.LadderState` ladder: the
health monitor absorbs the fault (localizing the dead channel), the
rebalance policy materializes the next rung's
:class:`~repro.core.config.OverlapConfig`, and the module is recompiled
through the content-addressed plan cache — so a revisited rung is a
cache hit, not a recompile.

Every descent is recorded as a typed
:class:`~repro.adapt.policy.LadderTransition` carrying the injector's
replay seed, and mirrored onto an attached tracer as an ``ADAPT`` event
whose name embeds the seed — the chaos harness audits both.

Rung invariants:

* the same injector runs on every decomposed rung, so a persistent
  fault (a downed direction) keeps firing until a rung stops using the
  broken channel;
* SYNC_FALLBACK runs on the plain executor (no injection — bulk
  collectives do not use the point-to-point route), matching
  ``run_with_fallback``'s contract; faults it raises are stamped with
  the original seed;
* every rung is bit-identical to the oracle, so a ladder recovery is a
  *recovery*, not an approximation.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.adapt.health import LinkHealthMonitor
from repro.adapt.policy import (
    LadderState,
    LadderTransition,
    RebalancePolicy,
)
from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module_cached
from repro.faults.errors import LINK_FAULTS, FaultError
from repro.faults.injector import FaultInjector
from repro.hlo.module import HloModule
from repro.obs.events import ADAPT
from repro.obs.tracer import Tracer
from repro.perfsim.hardware import TPU_V4, ChipSpec
from repro.runtime._compat import internal_construction
from repro.runtime.executor import Executor, PerDevice
from repro.runtime.resilient import (
    ResilienceStats,
    ResilientExecutor,
    RetryPolicy,
)
from repro.sharding.mesh import DeviceMesh


@dataclasses.dataclass
class LadderResult:
    """Outcome of :func:`run_with_ladder`."""

    values: Dict[str, PerDevice]
    state: LadderState
    transitions: Tuple[LadderTransition, ...]
    stats: ResilienceStats
    failure: Optional[FaultError]  # last link fault absorbed, if any

    @property
    def root(self) -> PerDevice:
        """The per-device values of the (single) requested output."""
        (shards,) = self.values.values()
        return shards

    @property
    def used_fallback(self) -> bool:
        """True when the run ended on the undecomposed rung."""
        return self.state is LadderState.SYNC_FALLBACK

    @property
    def adapted(self) -> bool:
        """True when the run recovered on an intermediate rung."""
        return bool(self.transitions) and not self.used_fallback


def run_with_ladder(
    build: Callable[[], HloModule],
    mesh: DeviceMesh,
    arguments: Dict[str, Sequence[np.ndarray]],
    *,
    base_config: Optional[OverlapConfig] = None,
    injector: Optional[FaultInjector] = None,
    policy: Optional[RetryPolicy] = None,
    rebalance: Optional[RebalancePolicy] = None,
    monitor: Optional[LinkHealthMonitor] = None,
    outputs: Optional[Sequence[str]] = None,
    tracer: Optional[Tracer] = None,
    chip: ChipSpec = TPU_V4,
) -> LadderResult:
    """Execute ``build()``'s program, descending the ladder on link faults.

    ``build`` must return a *fresh* uncompiled module on every call (the
    pipeline rewrites in place); each rung compiles its own copy through
    the plan cache with that rung's config. Non-link faults (device
    failure, unrepairable corruption) propagate immediately — no
    schedule edit survives a dead device — after being stamped with the
    injector's replay seed.
    """
    base = base_config if base_config is not None else OverlapConfig()
    rebalance = rebalance or RebalancePolicy()
    monitor = monitor or LinkHealthMonitor()
    seed = injector.seed if injector is not None else None
    transitions = []
    last_stats = ResilienceStats()
    last_failure: Optional[FaultError] = None
    state = LadderState.FULL

    while True:
        config, _ = rebalance.config_for(state, base, monitor.verdicts())
        compiled = compile_module_cached(build(), mesh, config, chip=chip)
        program = compiled.module

        if state is LadderState.SYNC_FALLBACK:
            if tracer is not None:
                tracer.count("fallbacks")
            with internal_construction():
                executor = Executor(mesh.num_devices, tracer=tracer)
            try:
                values = executor.run(program, arguments, outputs=outputs)
            except FaultError as error:
                raise error.attach_seed(seed)
            return LadderResult(
                values=values,
                state=state,
                transitions=tuple(transitions),
                stats=last_stats,
                failure=last_failure,
            )

        with internal_construction():
            executor = ResilientExecutor(
                mesh.num_devices,
                injector=injector,
                policy=policy,
                tracer=tracer,
            )
        try:
            values = executor.run(program, arguments, outputs=outputs)
            return LadderResult(
                values=values,
                state=state,
                transitions=tuple(transitions),
                stats=executor.stats,
                failure=last_failure,
            )
        except LINK_FAULTS as failure:
            last_stats = executor.stats
            last_failure = failure
            monitor.observe_fault(failure, mesh)
            next_state = rebalance.next_state(state)
            edit = rebalance.edit_for(next_state, base, monitor.verdicts())
            transition = LadderTransition(
                from_state=state,
                to_state=next_state,
                edit=edit,
                seed=seed,
                error_type=type(failure).__name__,
            )
            transitions.append(transition)
            if tracer is not None:
                now = tracer.now()
                tracer.add(transition.describe(), ADAPT, "ladder", now, now)
                tracer.count(f"ladder.{next_state.name.lower()}")
            state = next_state
        except FaultError as error:
            raise error.attach_seed(seed)
