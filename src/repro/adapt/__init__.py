"""Straggler-aware adaptation: close the loop from timings to schedule.

The paper gates overlap with a one-shot analytic cost model and assumes
a homogeneous fabric. This package turns the repo's existing
observability into a *feedback* path:

* :class:`LinkHealthMonitor` (:mod:`repro.adapt.health`) consumes
  per-step :class:`~repro.obs.events.TraceEvent` timings — measured or
  simulated — and maintains per-channel EWMA latency/loss scores,
  emitting typed :class:`HealthVerdict`\\ s.
* :class:`RebalancePolicy` (:mod:`repro.adapt.policy`) maps verdicts to
  typed schedule edits along a graceful-degradation ladder
  (:class:`LadderState`): shrink the decomposed transfer step,
  re-apportion ring chunks across uneven links, drop to a
  unidirectional loop on the healthy direction, and only as a last
  resort fall back to the undecomposed program. Edits are plain
  :class:`~repro.core.config.OverlapConfig` replacements, applied by
  recompiling through the content-addressed plan cache — switching
  rungs mid-workload costs one cache lookup once warm.
* :func:`run_with_ladder` (:mod:`repro.adapt.ladder`) executes a
  program down the ladder under fault injection, recording every
  transition as a typed, seeded trace event.
* :mod:`repro.adapt.scenarios` / :mod:`repro.adapt.tail` score the
  closed loop on heterogeneous-fabric perfsim scenarios at p50/p99 and
  gate ``decomposed+rebalanced <= undecomposed`` at p99 (the
  ``CHAOS_p99.json`` CI artifact).
"""

from repro.adapt.health import (
    CRITICAL,
    DEAD,
    DEGRADED,
    HEALTHY,
    HealthVerdict,
    LinkHealthMonitor,
    direction_of_channel,
)
from repro.adapt.ladder import LadderResult, run_with_ladder
from repro.adapt.policy import (
    LadderState,
    LadderTransition,
    RebalancePolicy,
    ScheduleEdit,
)
from repro.adapt.scenarios import SCENARIOS, HeteroScenario
from repro.adapt.tail import (
    ScenarioTail,
    TailReport,
    VariantTail,
    compare_tail_reports,
    format_tail_report,
    run_tail,
    write_tail_report,
)

__all__ = [
    "CRITICAL",
    "DEAD",
    "DEGRADED",
    "HEALTHY",
    "HealthVerdict",
    "HeteroScenario",
    "LadderResult",
    "LadderState",
    "LadderTransition",
    "LinkHealthMonitor",
    "RebalancePolicy",
    "SCENARIOS",
    "ScenarioTail",
    "ScheduleEdit",
    "TailReport",
    "VariantTail",
    "compare_tail_reports",
    "direction_of_channel",
    "format_tail_report",
    "run_tail",
    "run_with_ladder",
    "write_tail_report",
]
