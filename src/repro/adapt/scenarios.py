"""Heterogeneous-fabric scenarios for the tail harness.

Each scenario is a seeded generator of :class:`ChannelConditions`
modelling one real-world way a fabric stops being the homogeneous torus
the paper assumes. They deliberately target the multi-device walk
(:func:`repro.perfsim.multidevice.simulate_per_device`): per-device
scales are invisible to the symmetric single-device simulator.

The scenarios are where the adaptation loop earns its keep:

* ``mixed-generation`` — half the ring is a slower chip generation;
  compute stretches, so overlap has *more* room to hide transfers.
* ``oversubscribed-host`` — two devices share a congested host NIC;
  their outgoing links slow down, gating the undecomposed collective by
  the slowest participant.
* ``asymmetric-ring`` — one ring direction runs at a fraction of
  nominal (a flapping optical link); the unidirectional rung simply
  routes around it.
* ``flaky-straggler`` — one random device computes slowly *and* jitters
  run to run; the classic p99 tail.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Tuple

import numpy as np

from repro.faults.conditions import ChannelConditions
from repro.perfsim.topology import MINUS


@dataclasses.dataclass(frozen=True)
class HeteroScenario:
    """One named, seeded fault-plan family for the tail harness."""

    name: str
    description: str
    draw: Callable[[np.random.Generator, int], ChannelConditions]

    def conditions(
        self, rng: np.random.Generator, ring: int
    ) -> ChannelConditions:
        """Draw one run's conditions for a ring of ``ring`` devices."""
        return self.draw(rng, ring)


def _mixed_generation(
    rng: np.random.Generator, ring: int
) -> ChannelConditions:
    older = max(1, ring // 2)
    scale = float(rng.uniform(0.5, 0.7))
    return ChannelConditions(
        per_device_compute_scale={d: scale for d in range(older)}
    )


def _oversubscribed_host(
    rng: np.random.Generator, ring: int
) -> ChannelConditions:
    scale = float(rng.uniform(0.3, 0.5))
    shared = {0: scale}
    if ring > 1:
        shared[1] = scale
    return ChannelConditions(per_device_link_scale=shared)


def _asymmetric_ring(
    rng: np.random.Generator, ring: int
) -> ChannelConditions:
    scale = float(rng.uniform(0.15, 0.35))
    return ChannelConditions(link_scale={("x", MINUS): scale})


def _flaky_straggler(
    rng: np.random.Generator, ring: int
) -> ChannelConditions:
    device = int(rng.integers(ring))
    slowdown = float(rng.uniform(1.5, 4.0))
    return ChannelConditions(
        per_device_compute_scale={device: 1.0 / slowdown}
    )


SCENARIOS: Tuple[HeteroScenario, ...] = (
    HeteroScenario(
        name="mixed-generation",
        description="half the ring is a slower chip generation",
        draw=_mixed_generation,
    ),
    HeteroScenario(
        name="oversubscribed-host",
        description="two devices share a congested host uplink",
        draw=_oversubscribed_host,
    ),
    HeteroScenario(
        name="asymmetric-ring",
        description="one ring direction at a fraction of nominal bandwidth",
        draw=_asymmetric_ring,
    ),
    HeteroScenario(
        name="flaky-straggler",
        description="one random device computes slowly, jittering per run",
        draw=_flaky_straggler,
    ),
)
