"""Tail harness: p50/p99 step time of the closed adaptation loop.

For every heterogeneous scenario in :mod:`repro.adapt.scenarios` this
harness runs many seeded draws of degraded conditions through the
multi-device simulator and scores three variants:

* ``undecomposed`` — the baseline program; its bulk collective is gated
  by the slowest link in the ring.
* ``decomposed`` — the paper's static overlapped schedule.
* ``rebalanced`` — the closed loop: calibrate the
  :class:`~repro.adapt.health.LinkHealthMonitor` on a healthy step,
  observe the degraded step's per-device trace, let the
  :class:`~repro.adapt.policy.RebalancePolicy` choose a ladder rung,
  recompile through the plan cache, re-simulate.

Step time is the *max* over per-device timelines — the straggler's
finish is the step's finish. The harness gates
``rebalanced.p99 <= undecomposed.p99`` per scenario (the resilience
contract: adapting must never be worse at the tail than giving up on
decomposition) and emits the ``CHAOS_p99.json`` artifact CI uploads and
diffs against the committed baseline.

Everything is seeded — same seed, same report, bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.adapt.health import LinkHealthMonitor
from repro.adapt.policy import LadderState, RebalancePolicy
from repro.adapt.scenarios import SCENARIOS, HeteroScenario
from repro.core.config import OverlapConfig
from repro.core.pipeline import compile_module_cached
from repro.faults.conditions import ChannelConditions
from repro.hlo.builder import GraphBuilder
from repro.hlo.dtypes import BF16
from repro.hlo.module import HloModule
from repro.hlo.shapes import Shape
from repro.obs.comm_volume import comm_volume_summary
from repro.perfsim.hardware import TPU_V4, ChipSpec
from repro.perfsim.multidevice import simulate_per_device
from repro.perfsim.trace import Trace
from repro.sharding.mesh import DeviceMesh

RING = 8
RUNS = 24
SEED = 20230325


def _layer(mesh: DeviceMesh) -> HloModule:
    """The degraded-tail workload: one AllGather→Einsum layer (the same
    shape family as :mod:`repro.experiments.degraded`)."""
    builder = GraphBuilder("tail_layer")
    x = builder.parameter(Shape((8192, 4096), BF16), name="x")
    w = builder.parameter(Shape((4096, 1024), BF16), name="w")
    gathered = builder.all_gather(w, 1, mesh.rings("x"))
    builder.einsum("bf,fh->bh", x, gathered)
    return builder.module


def _compile(
    mesh: DeviceMesh, config: OverlapConfig, chip: ChipSpec
) -> HloModule:
    return compile_module_cached(_layer(mesh), mesh, config, chip=chip).module


def _step_time(
    module: HloModule,
    mesh: DeviceMesh,
    chip: ChipSpec,
    conditions: ChannelConditions,
    trace: Optional[Trace] = None,
) -> float:
    timelines = simulate_per_device(
        module, mesh, chip=chip, conditions=conditions, trace=trace
    )
    return max(t.total_time for t in timelines)


@dataclasses.dataclass(frozen=True)
class VariantTail:
    """Tail statistics of one variant over one scenario's runs."""

    p50: float
    p99: float
    mean: float

    @staticmethod
    def of(samples: Sequence[float]) -> "VariantTail":
        data = np.asarray(samples, dtype=np.float64)
        return VariantTail(
            p50=float(np.percentile(data, 50)),
            p99=float(np.percentile(data, 99)),
            mean=float(data.mean()),
        )

    def to_json(self) -> Dict[str, float]:
        return {"p50": self.p50, "p99": self.p99, "mean": self.mean}


@dataclasses.dataclass(frozen=True)
class ScenarioTail:
    """One scenario's scored tail, with the p99 gate verdict."""

    scenario: str
    description: str
    runs: int
    undecomposed: VariantTail
    decomposed: VariantTail
    rebalanced: VariantTail
    ladder_states: Mapping[str, int]  # rung name -> runs that chose it
    bytes_on_wire: Mapping[str, int]  # variant -> comm-volume bytes

    @property
    def gate_ok(self) -> bool:
        """The resilience gate: adapting beats giving up, at the tail."""
        return self.rebalanced.p99 <= self.undecomposed.p99

    @property
    def p99_win(self) -> float:
        """Undecomposed p99 over rebalanced p99 (>1 means we win)."""
        if self.rebalanced.p99 <= 0:
            return float("inf")
        return self.undecomposed.p99 / self.rebalanced.p99

    def to_json(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "description": self.description,
            "runs": self.runs,
            "undecomposed": self.undecomposed.to_json(),
            "decomposed": self.decomposed.to_json(),
            "rebalanced": self.rebalanced.to_json(),
            "ladder_states": dict(self.ladder_states),
            "bytes_on_wire": dict(self.bytes_on_wire),
            "gate_ok": self.gate_ok,
            "p99_win": self.p99_win,
        }


@dataclasses.dataclass(frozen=True)
class TailReport:
    """The full CHAOS_p99 artifact."""

    seed: int
    runs: int
    ring: int
    scenarios: Tuple[ScenarioTail, ...]

    @property
    def ok(self) -> bool:
        return all(s.gate_ok for s in self.scenarios)

    @property
    def wins(self) -> int:
        """Scenarios where rebalanced strictly beats undecomposed p99."""
        return sum(1 for s in self.scenarios if s.p99_win > 1.0)

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "runs": self.runs,
            "ring": self.ring,
            "ok": self.ok,
            "scenarios": [s.to_json() for s in self.scenarios],
        }


def run_tail(
    seed: int = SEED,
    runs: int = RUNS,
    ring: int = RING,
    chip: ChipSpec = TPU_V4,
    scenarios: Sequence[HeteroScenario] = SCENARIOS,
    rebalance: Optional[RebalancePolicy] = None,
) -> TailReport:
    """Score the closed loop on every scenario; fully deterministic."""
    mesh = DeviceMesh.ring(ring)
    rebalance = rebalance or RebalancePolicy()
    base = OverlapConfig(use_cost_model=False)
    undecomposed = _compile(mesh, OverlapConfig.baseline(), chip)
    decomposed = _compile(mesh, base, chip)

    # Calibrate once on the healthy fabric: the monitor's notion of
    # nominal is what the decomposed schedule costs when nothing is wrong.
    healthy_trace = Trace()
    _step_time(
        decomposed, mesh, chip, ChannelConditions.healthy(), healthy_trace
    )

    tails: List[ScenarioTail] = []
    for index, scenario in enumerate(scenarios):
        undecomposed_times: List[float] = []
        decomposed_times: List[float] = []
        rebalanced_times: List[float] = []
        states: Dict[str, int] = {}
        bytes_on_wire: Dict[str, int] = {}
        for run in range(runs):
            rng = np.random.default_rng([seed, index, run])
            conditions = scenario.conditions(rng, ring)
            undecomposed_times.append(
                _step_time(undecomposed, mesh, chip, conditions)
            )
            observed = Trace()
            decomposed_times.append(
                _step_time(decomposed, mesh, chip, conditions, observed)
            )
            # Close the loop: observe the degraded step, pick a rung,
            # recompile through the plan cache, re-simulate.
            monitor = LinkHealthMonitor()
            monitor.calibrate(healthy_trace.events)
            monitor.observe(observed.events)
            state = rebalance.choose_state(monitor.verdicts())
            config, _ = rebalance.config_for(
                state, base, monitor.verdicts()
            )
            rebalanced = _compile(mesh, config, chip)
            states[state.name.lower()] = states.get(state.name.lower(), 0) + 1
            rebalanced_trace: Optional[Trace] = Trace() if run == 0 else None
            rebalanced_times.append(
                _step_time(rebalanced, mesh, chip, conditions, rebalanced_trace)
            )
            if run == 0:
                bytes_on_wire["decomposed"] = comm_volume_summary(
                    observed.events
                ).total_bytes
                bytes_on_wire["rebalanced"] = comm_volume_summary(
                    rebalanced_trace.events
                ).total_bytes
        tails.append(
            ScenarioTail(
                scenario=scenario.name,
                description=scenario.description,
                runs=runs,
                undecomposed=VariantTail.of(undecomposed_times),
                decomposed=VariantTail.of(decomposed_times),
                rebalanced=VariantTail.of(rebalanced_times),
                ladder_states=states,
                bytes_on_wire=bytes_on_wire,
            )
        )
    return TailReport(seed=seed, runs=runs, ring=ring, scenarios=tuple(tails))


def write_tail_report(report: TailReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_tail_reports(
    report: TailReport,
    baseline: Mapping[str, object],
    max_regression: float = 0.25,
) -> List[str]:
    """Diff a fresh report against the committed baseline JSON.

    Returns human-readable problems: a scenario whose rebalanced p99
    regressed more than ``max_regression`` past the baseline, or a gate
    that held in the baseline but fails now. An empty list means CI may
    proceed.
    """
    problems: List[str] = []
    by_name = {s.scenario: s for s in report.scenarios}
    for entry in baseline.get("scenarios", ()):
        name = entry.get("scenario")
        current = by_name.get(name)
        if current is None:
            problems.append(f"scenario {name!r} missing from current report")
            continue
        old_p99 = float(entry["rebalanced"]["p99"])
        budget = old_p99 * (1.0 + max_regression)
        if current.rebalanced.p99 > budget:
            problems.append(
                f"{name}: rebalanced p99 {current.rebalanced.p99:.6f}s "
                f"regressed past baseline {old_p99:.6f}s "
                f"(+{max_regression:.0%} budget {budget:.6f}s)"
            )
        if entry.get("gate_ok", True) and not current.gate_ok:
            problems.append(
                f"{name}: p99 gate newly failing — rebalanced "
                f"{current.rebalanced.p99:.6f}s > undecomposed "
                f"{current.undecomposed.p99:.6f}s"
            )
    return problems


def format_tail_report(report: TailReport) -> str:
    """Render the report as the table ``repro chaos --tail`` prints."""
    header = (
        f"{'scenario':<22} {'undecomp p99':>13} {'decomp p99':>12} "
        f"{'rebal p99':>12} {'win':>7}  gate  rungs"
    )
    lines = [
        f"Tail latency (ring of {report.ring}, {report.runs} seeded runs "
        f"per scenario, seed {report.seed})",
        header,
    ]
    for s in report.scenarios:
        rungs = ", ".join(
            f"{name} x{count}" for name, count in sorted(s.ladder_states.items())
        )
        lines.append(
            f"{s.scenario:<22} {s.undecomposed.p99 * 1e3:>10.3f} ms "
            f"{s.decomposed.p99 * 1e3:>9.3f} ms "
            f"{s.rebalanced.p99 * 1e3:>9.3f} ms "
            f"{s.p99_win:>6.2f}x  {'PASS' if s.gate_ok else 'FAIL'}  {rungs}"
        )
    lines.append(
        f"gate: decomposed+rebalanced <= undecomposed at p99 — "
        f"{'PASS' if report.ok else 'FAIL'} "
        f"({report.wins}/{len(report.scenarios)} scenarios strictly faster)"
    )
    return "\n".join(lines)
