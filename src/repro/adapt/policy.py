"""Rebalance policy: map health verdicts to typed schedule edits.

The acting half of the adaptation loop. Given the monitor's verdicts the
policy picks a rung on the graceful-degradation ladder and materializes
it as an :class:`~repro.core.config.OverlapConfig` replacement — the
edit is *compiled in*, not patched at runtime, so every rung goes
through the full pass pipeline (and the content-addressed plan cache
makes revisiting a rung a cache hit).

The ladder, in order of increasing degradation::

    FULL            paper-exact decomposed schedule
    REBALANCED      shrink the transfer step (finer granularity) and/or
                    re-apportion ring chunks across uneven links
    UNIDIRECTIONAL  drop bidirectional transfer; circulate on the
                    healthy ring direction only
    SYNC_FALLBACK   undecomposed synchronous collectives (last resort)

Every rung is bit-identical to the oracle — the ladder trades
*performance*, never numerics.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping, Optional, Sequence, Tuple

from repro.adapt.health import (
    CRITICAL,
    DEAD,
    HealthVerdict,
    direction_of_channel,
    healthy_direction,
)
from repro.core.config import OverlapConfig
from repro.perfsim.topology import MINUS

#: Schedule-edit kinds, one per ladder mechanism.
SHRINK_STEP = "shrink-step"
REBALANCE_CHUNKS = "rebalance-chunks"
DROP_BIDIRECTIONAL = "drop-bidirectional"
SYNC_FALLBACK_EDIT = "sync-fallback"
NO_CHANGE = "no-change"

_EDIT_KINDS = frozenset(
    {SHRINK_STEP, REBALANCE_CHUNKS, DROP_BIDIRECTIONAL, SYNC_FALLBACK_EDIT,
     NO_CHANGE}
)


class LadderState(enum.IntEnum):
    """Rungs of the graceful-degradation ladder, mildest first."""

    FULL = 0
    REBALANCED = 1
    UNIDIRECTIONAL = 2
    SYNC_FALLBACK = 3


@dataclasses.dataclass(frozen=True)
class ScheduleEdit:
    """One typed edit to the overlap schedule.

    ``changes`` are the exact :class:`OverlapConfig` field replacements
    the edit compiles to — an empty mapping is the identity edit.
    """

    kind: str
    reason: str
    changes: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _EDIT_KINDS:
            raise ValueError(
                f"ScheduleEdit.kind must be one of {sorted(_EDIT_KINDS)}, "
                f"got {self.kind!r}"
            )

    def apply(self, config: OverlapConfig) -> OverlapConfig:
        if not self.changes:
            return config
        return config.replace(**dict(self.changes))

    def describe(self) -> str:
        if not self.changes:
            return f"{self.kind}: {self.reason}"
        fields = ", ".join(
            f"{name}={value!r}" for name, value in sorted(self.changes.items())
        )
        return f"{self.kind} ({fields}): {self.reason}"


@dataclasses.dataclass(frozen=True)
class LadderTransition:
    """One typed, seeded descent of the ladder."""

    from_state: LadderState
    to_state: LadderState
    edit: ScheduleEdit
    seed: Optional[int]
    error_type: Optional[str] = None

    def describe(self) -> str:
        text = (
            f"ladder:{self.from_state.name.lower()}->"
            f"{self.to_state.name.lower()} {self.edit.kind}"
        )
        if self.error_type:
            text += f" after {self.error_type}"
        if self.seed is not None:
            text += f" [replay with seed={self.seed}]"
        return text


def _worst(verdicts: Sequence[HealthVerdict]) -> Optional[HealthVerdict]:
    if not verdicts:
        return None
    return max(verdicts, key=lambda v: (v.severity, v.latency_score))


def _slow_direction(
    verdicts: Sequence[HealthVerdict],
) -> Optional[str]:
    """The single implicated ring direction, if exactly one is."""
    healthy = healthy_direction(verdicts)
    if healthy is None:
        return None
    return "plus" if healthy == MINUS else "minus"


class RebalancePolicy:
    """Choose ladder rungs and materialize their schedule edits.

    ``max_granularity`` caps the shrink-step rung's transfer splitting
    (the config itself caps at 8); ``pair_bias`` is how far the
    two-device chunk split leans away from a slow link (0.5 - bias to
    the slow side).
    """

    def __init__(
        self, max_granularity: int = 4, pair_bias: float = 0.25
    ) -> None:
        if not 1 <= max_granularity <= 8:
            raise ValueError(
                f"RebalancePolicy.max_granularity must be in [1, 8], got "
                f"{max_granularity}"
            )
        if not 0.0 < pair_bias < 0.5:
            raise ValueError(
                f"RebalancePolicy.pair_bias must be in (0, 0.5), got "
                f"{pair_bias}"
            )
        self.max_granularity = max_granularity
        self.pair_bias = pair_bias

    def next_state(self, state: LadderState) -> LadderState:
        """The rung below ``state`` (SYNC_FALLBACK is terminal)."""
        return LadderState(min(int(state) + 1, int(LadderState.SYNC_FALLBACK)))

    def choose_state(
        self, verdicts: Sequence[HealthVerdict]
    ) -> LadderState:
        """Closed-loop rung selection from health verdicts alone.

        Only *channel* degradation warrants a schedule edit — a compute
        straggler doesn't change what the schedule should be (overlap
        already hides what it can under the stretched compute), so
        compute-lane verdicts leave the paper schedule in place.
        DEAD/CRITICAL on exactly one ring direction drops straight to
        the unidirectional rung on the mirror; other link degradation
        rebalances. The policy never *chooses* SYNC_FALLBACK from
        timings — that rung is reserved for repeated typed faults (see
        :func:`repro.adapt.ladder.run_with_ladder`).
        """
        links = [
            v
            for v in verdicts
            if not v.is_healthy
            and (v.channel.startswith("link") or v.channel == "fabric")
        ]
        worst = _worst(links)
        if worst is None:
            return LadderState.FULL
        if worst.status in (CRITICAL, DEAD):
            if (
                direction_of_channel(worst.channel) is not None
                and healthy_direction(verdicts) is not None
            ):
                return LadderState.UNIDIRECTIONAL
        return LadderState.REBALANCED

    def config_for(
        self,
        state: LadderState,
        base: OverlapConfig,
        verdicts: Sequence[HealthVerdict] = (),
    ) -> Tuple[OverlapConfig, ScheduleEdit]:
        """The config and typed edit realizing ``state`` over ``base``."""
        edit = self.edit_for(state, base, verdicts)
        return edit.apply(base), edit

    def edit_for(
        self,
        state: LadderState,
        base: OverlapConfig,
        verdicts: Sequence[HealthVerdict] = (),
    ) -> ScheduleEdit:
        worst = _worst(verdicts)
        culprit = worst.describe() if worst and not worst.is_healthy else None
        if state is LadderState.FULL:
            return ScheduleEdit(
                kind=NO_CHANGE, reason="all channels healthy"
            )
        if state is LadderState.REBALANCED:
            changes = {
                "transfer_granularity": min(
                    self.max_granularity,
                    max(2, base.transfer_granularity * 2),
                )
            }
            kind = SHRINK_STEP
            slow = _slow_direction(verdicts)
            if slow is not None:
                # Lean the two-device chunk split away from the slow
                # link; harmless on rings > 2 (split only exists there).
                changes["pair_split"] = (
                    0.5 - self.pair_bias
                    if slow == MINUS
                    else 0.5 + self.pair_bias
                )
                kind = REBALANCE_CHUNKS
            return ScheduleEdit(
                kind=kind,
                reason=culprit or "degraded channel",
                changes=changes,
            )
        if state is LadderState.UNIDIRECTIONAL:
            direction = healthy_direction(verdicts)
            changes = {"bidirectional": False, "unroll": False}
            if direction is not None:
                changes["preferred_direction"] = direction
            return ScheduleEdit(
                kind=DROP_BIDIRECTIONAL,
                reason=culprit or "ring direction unusable",
                changes=changes,
            )
        return ScheduleEdit(
            kind=SYNC_FALLBACK_EDIT,
            reason=culprit or "decomposed schedules exhausted",
            changes={"enabled": False},
        )
