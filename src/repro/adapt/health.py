"""Link health monitor: EWMA channel scores from observed step timings.

The monitor is the sensing half of the adaptation loop. Feed it one
timeline per step — a measured :class:`~repro.obs.tracer.Tracer` log or
a simulated :class:`~repro.perfsim.trace.Trace` — and it folds each into
per-lane normalized costs via :func:`repro.obs.health_feed.lane_costs`,
then tracks an exponentially weighted moving average of each lane's cost
*ratio* against a calibrated nominal::

    ewma = alpha * sample + (1 - alpha) * ewma

A ratio of 1.0 means the lane behaves as calibrated; 3.0 means bytes
take three times as long per unit as they should. Loss is tracked the
same way from the retry fraction. Typed link faults
(:class:`~repro.faults.errors.LinkDownError`,
:class:`~repro.faults.errors.TransferTimeoutError`) mark their channel
``DEAD`` outright via :meth:`LinkHealthMonitor.observe_fault`.

The monitor emits :class:`HealthVerdict` values only; what to *do* about
a verdict is :class:`repro.adapt.policy.RebalancePolicy`'s job.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.faults.errors import FaultError
from repro.obs.events import TraceEvent
from repro.obs.health_feed import lane_costs, retry_fraction
from repro.perfsim.topology import MINUS, PLUS, TopologyError, classify_permute
from repro.sharding.mesh import DeviceMesh

#: Verdict statuses, in increasing severity.
HEALTHY = "healthy"
DEGRADED = "degraded"
CRITICAL = "critical"
DEAD = "dead"

_SEVERITY = {HEALTHY: 0, DEGRADED: 1, CRITICAL: 2, DEAD: 3}


def direction_of_channel(channel: str) -> Optional[str]:
    """Ring direction encoded in a link lane name, if any.

    Lane names follow ``link:<axis>:<direction>[...suffix]`` — the
    symmetric simulator emits ``link:x:minus``, the per-device walk
    ``link:x:minus:dev3``, and fault-derived channels reuse the same
    shape. Non-link lanes (``compute:dev0``, ``device:0``) have no
    direction.
    """
    parts = channel.split(":")
    if len(parts) >= 3 and parts[0] == "link" and parts[2] in (MINUS, PLUS):
        return parts[2]
    return None


@dataclasses.dataclass(frozen=True)
class HealthVerdict:
    """Typed health assessment of one channel.

    ``latency_score`` is the EWMA cost ratio against the calibrated
    nominal (1.0 = as calibrated); ``loss_score`` the EWMA retry
    fraction. ``samples`` counts observations folded into the scores.
    """

    channel: str
    status: str
    latency_score: float
    loss_score: float
    samples: int

    def __post_init__(self) -> None:
        if self.status not in _SEVERITY:
            raise ValueError(
                f"HealthVerdict.status must be one of {sorted(_SEVERITY)}, "
                f"got {self.status!r}"
            )

    @property
    def severity(self) -> int:
        return _SEVERITY[self.status]

    @property
    def is_healthy(self) -> bool:
        return self.status == HEALTHY

    def describe(self) -> str:
        return (
            f"{self.channel}: {self.status} "
            f"(latency x{self.latency_score:.2f}, "
            f"loss {self.loss_score:.3f}, {self.samples} samples)"
        )


class LinkHealthMonitor:
    """Per-channel EWMA health scores from per-step trace timings.

    ``alpha`` weights the newest sample (0 < alpha <= 1); higher reacts
    faster but is noisier. A lane is DEGRADED once its EWMA cost ratio
    crosses ``degraded_threshold`` or its loss crosses ``loss_degraded``,
    CRITICAL past ``critical_threshold`` / ``loss_critical``, and DEAD
    once a typed link fault names it.
    """

    def __init__(
        self,
        alpha: float = 0.4,
        degraded_threshold: float = 1.5,
        critical_threshold: float = 3.0,
        loss_degraded: float = 0.1,
        loss_critical: float = 0.5,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(
                f"LinkHealthMonitor.alpha must be in (0, 1], got {alpha}"
            )
        if not 1.0 < degraded_threshold < critical_threshold:
            raise ValueError(
                "LinkHealthMonitor thresholds must satisfy "
                "1.0 < degraded_threshold < critical_threshold, got "
                f"{degraded_threshold} / {critical_threshold}"
            )
        if not 0.0 < loss_degraded < loss_critical <= 1.0:
            raise ValueError(
                "LinkHealthMonitor loss thresholds must satisfy "
                "0 < loss_degraded < loss_critical <= 1, got "
                f"{loss_degraded} / {loss_critical}"
            )
        self.alpha = alpha
        self.degraded_threshold = degraded_threshold
        self.critical_threshold = critical_threshold
        self.loss_degraded = loss_degraded
        self.loss_critical = loss_critical
        self._nominal: Dict[str, float] = {}
        self._ewma: Dict[str, float] = {}
        self._samples: Dict[str, int] = {}
        self._loss_ewma = 0.0
        self._dead: Set[str] = set()

    def calibrate(self, events: Iterable[TraceEvent]) -> None:
        """Record a healthy step's per-lane costs as the nominal.

        Without calibration the first observed sample of each lane
        becomes its nominal — calibration just makes "healthy" explicit
        instead of "whatever we saw first".
        """
        for resource, lane in lane_costs(events).items():
            if lane.cost > 0.0:
                self._nominal[resource] = lane.cost

    def observe(self, events: Iterable[TraceEvent]) -> None:
        """Fold one step's timeline into the EWMA scores."""
        events = list(events)
        for resource, lane in lane_costs(events).items():
            if lane.cost <= 0.0:
                continue
            nominal = self._nominal.setdefault(resource, lane.cost)
            ratio = lane.cost / nominal if nominal > 0.0 else 1.0
            previous = self._ewma.get(resource)
            if previous is None:
                self._ewma[resource] = ratio
            else:
                self._ewma[resource] = (
                    self.alpha * ratio + (1.0 - self.alpha) * previous
                )
            self._samples[resource] = self._samples.get(resource, 0) + 1
        loss = retry_fraction(events)
        self._loss_ewma = (
            self.alpha * loss + (1.0 - self.alpha) * self._loss_ewma
        )

    def observe_fault(
        self, error: FaultError, mesh: Optional[DeviceMesh] = None
    ) -> str:
        """Mark the channel a typed link fault names as DEAD.

        Localizes the channel from the error's context: with ``pairs``
        and a mesh the permute is classified to ``link:<axis>:<dir>``;
        with only a direction the axis is wildcarded; otherwise the
        whole fabric is marked. Returns the channel marked.
        """
        context = getattr(error, "context", {}) or {}
        direction = context.get("direction")
        pairs = context.get("pairs")
        channel = "fabric"
        if pairs and mesh is not None:
            try:
                route = classify_permute(
                    [tuple(pair) for pair in pairs], mesh, direction
                )
                channel = f"link:{route.axis}:{route.direction}"
            except (TopologyError, ValueError):
                channel = (
                    f"link:*:{direction}" if direction else "fabric"
                )
        elif direction:
            channel = f"link:*:{direction}"
        self._dead.add(channel)
        self._samples[channel] = self._samples.get(channel, 0) + 1
        return channel

    def _status_of(self, latency: float, dead: bool) -> str:
        if dead:
            return DEAD
        if latency >= self.critical_threshold or (
            self._loss_ewma >= self.loss_critical
        ):
            return CRITICAL
        if latency >= self.degraded_threshold or (
            self._loss_ewma >= self.loss_degraded
        ):
            return DEGRADED
        return HEALTHY

    def verdicts(self) -> Tuple[HealthVerdict, ...]:
        """Current typed verdict per observed channel, sorted by name."""
        channels = sorted(set(self._ewma) | self._dead)
        out: List[HealthVerdict] = []
        for channel in channels:
            dead = self._matches_dead(channel)
            latency = self._ewma.get(channel, math.inf if dead else 1.0)
            out.append(
                HealthVerdict(
                    channel=channel,
                    status=self._status_of(latency, dead),
                    latency_score=latency,
                    loss_score=self._loss_ewma,
                    samples=self._samples.get(channel, 0),
                )
            )
        return tuple(out)

    def _matches_dead(self, channel: str) -> bool:
        if channel in self._dead:
            return True
        direction = direction_of_channel(channel)
        return direction is not None and f"link:*:{direction}" in self._dead

    def worst(self) -> Optional[HealthVerdict]:
        """Most severe verdict (ties broken by latency score)."""
        verdicts = self.verdicts()
        if not verdicts:
            return None
        return max(
            verdicts, key=lambda v: (v.severity, v.latency_score)
        )

    def healthy_direction(self) -> Optional[str]:
        """The ring direction still healthy when exactly one is not.

        Used to pick the loop direction for the unidirectional ladder
        rung: if every unhealthy link lane points one way and the
        mirrored direction has no unhealthy lane, the mirror is the safe
        side. Returns ``None`` when both (or neither) direction is
        implicated.
        """
        return healthy_direction(self.verdicts())


def healthy_direction(
    verdicts: Sequence[HealthVerdict],
) -> Optional[str]:
    """Module-level form of :meth:`LinkHealthMonitor.healthy_direction`
    so policies can work from a verdict list alone."""
    unhealthy: Set[str] = set()
    for verdict in verdicts:
        if verdict.is_healthy:
            continue
        direction = direction_of_channel(verdict.channel)
        if direction is not None:
            unhealthy.add(direction)
    if len(unhealthy) != 1:
        return None
    (bad,) = unhealthy
    return PLUS if bad == MINUS else MINUS
