"""repro — reproduction of the ASPLOS '23 paper "Overlap Communication with
Dependent Computation via Decomposition in Large Deep Learning Models".

Subpackages:

* :mod:`repro.hlo` — HLO-like SSA IR (einsums, collectives, slices).
* :mod:`repro.sharding` — device meshes, sharding specs, SPMD partitioner.
* :mod:`repro.runtime` — functional multi-device executors behind the
  unified :func:`create_engine` API, plus the content-addressed
  :class:`PlanCache` the compiled engine lowers through.
* :mod:`repro.core` — the paper's contribution: Looped CollectiveEinsum
  decomposition, async CollectivePermute scheduling, unrolling,
  bidirectional transfer, fusion rewrites, and the cost-model gate —
  generalized over the :class:`OverlappableCollective` protocol so TP
  permutes, DP reduce-scatter/all-gather buckets and PP p2p sends all
  schedule through one code path on 2D/3D meshes.
* :mod:`repro.perfsim` — discrete-event performance simulator standing in
  for TPU v4 pods.
* :mod:`repro.obs` — structured observability: one trace-event schema
  shared by both executors and the simulator, Chrome/Perfetto export,
  counters, and the hidden-communication overlap summary.
* :mod:`repro.models` — model zoo reproducing Tables 1 and 2, plus the
  serving catalog.
* :mod:`repro.experiments` — per-figure/table harnesses for the paper's
  evaluation (Figures 1, 12-16; Tables 1-2; Sections 6.4 and 7.1).
* :mod:`repro.serve` — serving subsystem: plan-cached continuous
  batching with typed admission control and a gated load generator.
* :mod:`repro.tune` — overlap autotuner: budgeted per-program search
  over decomposition/scheduling knobs, persisted in a content-addressed
  :class:`TuningDB` the engines, server and bench harness pick up by
  fingerprint (``create_engine(..., tuned=True)``).

The names below are the supported public surface; everything else is
reachable through its subpackage but may move between releases.
"""

from repro.core.collective import (
    OverlappableCollective,
    P2PSend,
    RingAllGather,
    RingAllReduce,
    RingPermute,
    RingReduceScatter,
    as_overlappable,
)
from repro.core.config import AxisOverride, OverlapConfig
from repro.core.pipeline import (
    CompilationResult,
    compile_module,
    compile_module_cached,
)
from repro.experiments.mesh_step import MeshStepCase, MeshStepResult
from repro.experiments.mesh_step import run as run_mesh_step
from repro.models.trainstep import train_step_graph, train_step_mesh
from repro.obs.overlap import per_axis_overlap_summary
from repro.obs.tracer import Tracer
from repro.runtime.engine import Engine, create_engine
from repro.runtime.plan_cache import PlanCache
from repro.serve.loadgen import run_loadgen
from repro.serve.server import ServeConfig, Server
from repro.sharding.mesh import DeviceMesh
from repro.sharding.partitioner import LogicalGraph, partition
from repro.sharding.sharder import shard_array
from repro.sharding.spec import ShardingSpec, entry_axes
from repro.tune.db import TuningDB, TuningDBError, TuningRecord
from repro.tune.search import tune_golden, tune_module

__all__ = [
    "AxisOverride",
    "CompilationResult",
    "DeviceMesh",
    "Engine",
    "LogicalGraph",
    "MeshStepCase",
    "MeshStepResult",
    "OverlapConfig",
    "OverlappableCollective",
    "P2PSend",
    "PlanCache",
    "RingAllGather",
    "RingAllReduce",
    "RingPermute",
    "RingReduceScatter",
    "ServeConfig",
    "Server",
    "ShardingSpec",
    "Tracer",
    "TuningDB",
    "TuningDBError",
    "TuningRecord",
    "as_overlappable",
    "compile_module",
    "compile_module_cached",
    "create_engine",
    "entry_axes",
    "partition",
    "per_axis_overlap_summary",
    "run_loadgen",
    "run_mesh_step",
    "shard_array",
    "train_step_graph",
    "train_step_mesh",
    "tune_golden",
    "tune_module",
    "__version__",
]

__version__ = "1.3.0"
