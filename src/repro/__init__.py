"""repro — reproduction of the ASPLOS '23 paper "Overlap Communication with
Dependent Computation via Decomposition in Large Deep Learning Models".

Subpackages:

* :mod:`repro.hlo` — HLO-like SSA IR (einsums, collectives, slices).
* :mod:`repro.sharding` — device meshes, sharding specs, SPMD partitioner.
* :mod:`repro.runtime` — functional multi-device executor (numpy), used to
  validate that graph transformations are semantically equivalent.
* :mod:`repro.core` — the paper's contribution: Looped CollectiveEinsum
  decomposition, async CollectivePermute scheduling, unrolling,
  bidirectional transfer, fusion rewrites, and the cost-model gate.
* :mod:`repro.perfsim` — discrete-event performance simulator standing in
  for TPU v4 pods.
* :mod:`repro.obs` — structured observability: one trace-event schema
  shared by both executors and the simulator, Chrome/Perfetto export,
  counters, and the hidden-communication overlap summary.
* :mod:`repro.models` — model zoo reproducing Tables 1 and 2.
* :mod:`repro.experiments` — per-figure/table harnesses for the paper's
  evaluation (Figures 1, 12-16; Tables 1-2; Sections 6.4 and 7.1).
"""

__version__ = "1.0.0"
