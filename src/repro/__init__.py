"""repro — reproduction of the ASPLOS '23 paper "Overlap Communication with
Dependent Computation via Decomposition in Large Deep Learning Models".

Subpackages:

* :mod:`repro.hlo` — HLO-like SSA IR (einsums, collectives, slices).
* :mod:`repro.sharding` — device meshes, sharding specs, SPMD partitioner.
* :mod:`repro.runtime` — functional multi-device executors behind the
  unified :func:`create_engine` API, plus the content-addressed
  :class:`PlanCache` the compiled engine lowers through.
* :mod:`repro.core` — the paper's contribution: Looped CollectiveEinsum
  decomposition, async CollectivePermute scheduling, unrolling,
  bidirectional transfer, fusion rewrites, and the cost-model gate.
* :mod:`repro.perfsim` — discrete-event performance simulator standing in
  for TPU v4 pods.
* :mod:`repro.obs` — structured observability: one trace-event schema
  shared by both executors and the simulator, Chrome/Perfetto export,
  counters, and the hidden-communication overlap summary.
* :mod:`repro.models` — model zoo reproducing Tables 1 and 2, plus the
  serving catalog.
* :mod:`repro.experiments` — per-figure/table harnesses for the paper's
  evaluation (Figures 1, 12-16; Tables 1-2; Sections 6.4 and 7.1).
* :mod:`repro.serve` — serving subsystem: plan-cached continuous
  batching with typed admission control and a gated load generator.
* :mod:`repro.tune` — overlap autotuner: budgeted per-program search
  over decomposition/scheduling knobs, persisted in a content-addressed
  :class:`TuningDB` the engines, server and bench harness pick up by
  fingerprint (``create_engine(..., tuned=True)``).

The names below are the supported public surface; everything else is
reachable through its subpackage but may move between releases.
"""

from repro.core.config import OverlapConfig
from repro.core.pipeline import (
    CompilationResult,
    compile_module,
    compile_module_cached,
)
from repro.obs.tracer import Tracer
from repro.runtime.engine import Engine, create_engine
from repro.runtime.plan_cache import PlanCache
from repro.serve.loadgen import run_loadgen
from repro.serve.server import ServeConfig, Server
from repro.sharding.mesh import DeviceMesh
from repro.tune.db import TuningDB, TuningDBError, TuningRecord
from repro.tune.search import tune_golden, tune_module

__all__ = [
    "CompilationResult",
    "DeviceMesh",
    "Engine",
    "OverlapConfig",
    "PlanCache",
    "ServeConfig",
    "Server",
    "Tracer",
    "TuningDB",
    "TuningDBError",
    "TuningRecord",
    "compile_module",
    "compile_module_cached",
    "create_engine",
    "run_loadgen",
    "tune_golden",
    "tune_module",
    "__version__",
]

__version__ = "1.2.0"
