"""Functional multi-device executor for SPMD HLO programs.

Runs every device of the mesh in lock step, instruction by instruction, on
numpy arrays. Asynchronous CollectivePermutes follow their real semantics:
``collective-permute-start`` snapshots the operand at *issue* time, and the
matching ``done`` delivers the transferred value — so a schedule that
mutated the buffer between start and done would be caught as a numerical
mismatch, exactly the class of bug the paper's double-buffering unroll
exists to avoid.

This executor is the reproduction's correctness oracle: tests run the
original and the decomposed/overlapped modules side by side and assert the
outputs agree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.obs.events import (
    ASYNC_DONE,
    ASYNC_START,
    TRANSFER,
    instruction_bytes,
    phase_of,
)
from repro.obs.tracer import Tracer
from repro.runtime import collectives
from repro.runtime._compat import internal_construction, warn_legacy_constructor

PerDevice = List[np.ndarray]


class ExecutionError(RuntimeError):
    """Raised when a module cannot be executed."""


def unknown_output_error(name: str, module: HloModule) -> ExecutionError:
    """The typed error both executors raise for a bad ``outputs`` name."""
    candidates = ", ".join(i.name for i in module)
    return ExecutionError(
        f"unknown output {name!r}: no instruction of that name in module "
        f"{module.name!r}; candidates: {candidates}"
    )


def _replicated_readonly(value: np.ndarray, n: int) -> PerDevice:
    """One read-only array shared by every device.

    Safe for device-uniform sources because no opcode mutates its
    operands (DynamicUpdateSlice copies its target first); freezing the
    buffer turns any accidental in-place write into an explicit error
    instead of cross-device corruption.
    """
    value.flags.writeable = False
    return [value] * n


class Executor:
    """Executes an SPMD module on ``num_devices`` simulated devices.

    An optional :class:`~repro.obs.Tracer` records one wall-clock span
    per executed instruction (phase-classified, with fabric payload
    bytes on communication ops) plus a synthesized TRANSFER window per
    async permute pair covering issue → delivery. Without a tracer the
    run loop is untouched apart from one ``is None`` test.
    """

    def __init__(
        self, num_devices: int, tracer: Optional[Tracer] = None
    ) -> None:
        if type(self) is Executor:
            warn_legacy_constructor("Executor")
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.num_devices = num_devices
        self.tracer = tracer
        self._iteration = 0

    def run(
        self,
        module: HloModule,
        arguments: Dict[str, Sequence[np.ndarray]],
        outputs: Optional[Sequence[str]] = None,
        iteration: int = 0,
    ) -> Dict[str, PerDevice]:
        """Execute ``module``; return per-device values of selected results.

        ``arguments`` maps parameter names to per-device shard lists.
        ``outputs`` defaults to just the module root. ``iteration`` is the
        enclosing loop index (used by iteration-dependent ShardIndex
        expressions inside While bodies).
        """
        self._iteration = iteration
        module.verify()
        values: Dict[str, PerDevice] = {}
        in_flight: Dict[str, PerDevice] = {}

        for parameter in module.parameters():
            try:
                shards = arguments[parameter.name]
            except KeyError:
                raise ExecutionError(
                    f"missing argument for parameter {parameter.name!r}"
                ) from None
            if len(shards) != self.num_devices:
                raise ExecutionError(
                    f"parameter {parameter.name!r}: expected "
                    f"{self.num_devices} shards, got {len(shards)}"
                )
            for shard in shards:
                if tuple(shard.shape) != parameter.shape.dims:
                    raise ExecutionError(
                        f"parameter {parameter.name!r}: shard shape "
                        f"{shard.shape} != declared {parameter.shape.dims}"
                    )
            if all(
                isinstance(s, np.ndarray)
                and s.dtype == np.float64
                and s.flags.c_contiguous
                for s in shards
            ):
                # Already in execution form — binding is free.
                values[parameter.name] = list(shards)
            else:
                values[parameter.name] = [
                    np.asarray(s, dtype=np.float64) for s in shards
                ]

        tracer = self.tracer
        for instruction in module:
            if instruction.opcode is Opcode.PARAMETER:
                continue
            if tracer is None:
                values[instruction.name] = self._execute(
                    instruction, values, in_flight
                )
            else:
                values[instruction.name] = self._execute_traced(
                    instruction, values, in_flight, tracer
                )

        wanted = list(outputs) if outputs is not None else [module.root.name]
        for name in wanted:
            if name not in values:
                raise unknown_output_error(name, module)
        return {name: values[name] for name in wanted}

    # --- tracing ----------------------------------------------------------------

    def _execute_traced(
        self,
        instruction: Instruction,
        values: Dict[str, PerDevice],
        in_flight: Dict[str, PerDevice],
        tracer: Tracer,
    ) -> PerDevice:
        """Execute one instruction under the tracer: a span per op, a
        byte counter per collective, and a synthesized in-flight
        TRANSFER window per async permute pair. Nested execution (While
        bodies, resilient retries) records one level deeper."""
        start = tracer.now()
        depth = tracer.push()
        try:
            result = self._execute(instruction, values, in_flight)
        finally:
            tracer.pop()
        end = tracer.now()
        opcode = instruction.opcode
        kind = phase_of(opcode)
        nbytes = instruction_bytes(instruction)
        tracer.add(
            instruction.name, kind, "compute", start, end,
            bytes=nbytes, depth=depth,
        )
        if kind is ASYNC_START:
            tracer.count(f"bytes.{opcode.value}", nbytes)
            tracer.mark_issue(instruction.name, start)
        elif kind is ASYNC_DONE:
            origin = instruction.operands[0]
            tracer.add(
                origin.name, TRANSFER, f"link:{origin.name}",
                tracer.pop_issue(origin.name, default=start), end,
                bytes=nbytes, depth=0,
            )
        elif nbytes:
            tracer.count(f"bytes.{opcode.value}", nbytes)
        return result

    # --- per-opcode dispatch ----------------------------------------------------

    def _execute(
        self,
        instruction: Instruction,
        values: Dict[str, PerDevice],
        in_flight: Dict[str, PerDevice],
    ) -> PerDevice:
        opcode = instruction.opcode
        operands = [values[op.name] for op in instruction.operands]
        n = self.num_devices

        if opcode is Opcode.CONSTANT:
            # np.array (not asarray): freezing must not reach into attrs.
            value = np.array(instruction.attrs["value"], dtype=np.float64)
            return _replicated_readonly(value, n)
        if opcode is Opcode.ZEROS:
            return _replicated_readonly(
                np.zeros(instruction.shape.dims, dtype=np.float64), n
            )
        if opcode is Opcode.IOTA:
            flat = np.arange(instruction.shape.num_elements, dtype=np.float64)
            return _replicated_readonly(flat.reshape(instruction.shape.dims), n)

        if opcode is Opcode.EINSUM:
            equation = instruction.attrs["equation"]
            return [
                np.einsum(equation, operands[0][d], operands[1][d])
                for d in range(n)
            ]
        if opcode is Opcode.ADD:
            return [operands[0][d] + operands[1][d] for d in range(n)]
        if opcode is Opcode.MULTIPLY:
            return [operands[0][d] * operands[1][d] for d in range(n)]
        if opcode is Opcode.MAXIMUM:
            return [np.maximum(operands[0][d], operands[1][d]) for d in range(n)]
        if opcode is Opcode.NEGATE:
            return [-operands[0][d] for d in range(n)]
        if opcode is Opcode.COPY:
            return [operands[0][d].copy() for d in range(n)]

        if opcode is Opcode.RESHAPE:
            return [
                operands[0][d].reshape(instruction.shape.dims) for d in range(n)
            ]
        if opcode is Opcode.TRANSPOSE:
            perm = instruction.attrs["perm"]
            return [np.transpose(operands[0][d], perm) for d in range(n)]
        if opcode is Opcode.SLICE:
            dim = instruction.attrs["dim"]
            start = instruction.attrs["start"]
            size = instruction.attrs["size"]
            index = [slice(None)] * instruction.operands[0].shape.rank
            index[dim] = slice(start, start + size)
            return [operands[0][d][tuple(index)].copy() for d in range(n)]
        if opcode is Opcode.PAD:
            dim = instruction.attrs["dim"]
            pad_width = [(0, 0)] * instruction.operands[0].shape.rank
            pad_width[dim] = (instruction.attrs["low"], instruction.attrs["high"])
            value = instruction.attrs["value"]
            return [
                np.pad(operands[0][d], pad_width, constant_values=value)
                for d in range(n)
            ]
        if opcode is Opcode.CONCATENATE:
            dim = instruction.attrs["dim"]
            return [
                np.concatenate([operand[d] for operand in operands], axis=dim)
                for d in range(n)
            ]
        if opcode is Opcode.DYNAMIC_SLICE:
            dim = instruction.attrs["dim"]
            size = instruction.attrs["size"]
            start = instruction.attrs["start"]
            results = []
            for d in range(n):
                offset = start.evaluate(d, self._iteration)
                index = [slice(None)] * instruction.operands[0].shape.rank
                index[dim] = slice(offset, offset + size)
                results.append(operands[0][d][tuple(index)].copy())
            return results
        if opcode is Opcode.DYNAMIC_UPDATE_SLICE:
            dim = instruction.attrs["dim"]
            start = instruction.attrs["start"]
            update_size = instruction.operands[1].shape.dims[dim]
            results = []
            for d in range(n):
                target = operands[0][d].copy()
                offset = start.evaluate(d, self._iteration)
                index = [slice(None)] * instruction.operands[0].shape.rank
                index[dim] = slice(offset, offset + update_size)
                target[tuple(index)] = operands[1][d]
                results.append(target)
            return results
        if opcode is Opcode.WHILE:
            return self._execute_while(instruction, operands)

        if opcode is Opcode.ALL_GATHER:
            return collectives.all_gather(
                operands[0], instruction.attrs["dim"], instruction.groups
            )
        if opcode is Opcode.REDUCE_SCATTER:
            return collectives.reduce_scatter(
                operands[0], instruction.attrs["dim"], instruction.groups
            )
        if opcode is Opcode.ALL_REDUCE:
            return collectives.all_reduce(operands[0], instruction.groups)
        if opcode is Opcode.ALL_TO_ALL:
            return collectives.all_to_all(
                operands[0],
                instruction.attrs["split_dim"],
                instruction.attrs["concat_dim"],
                instruction.groups,
            )
        if opcode is Opcode.COLLECTIVE_PERMUTE:
            return collectives.collective_permute(operands[0], instruction.pairs)
        if opcode is Opcode.COLLECTIVE_PERMUTE_START:
            # Snapshot at issue time: later writes to the operand must not
            # affect the transfer (true async semantics).
            in_flight[instruction.name] = [v.copy() for v in operands[0]]
            return operands[0]
        if opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            start = instruction.operands[0]
            snapshot = in_flight.pop(start.name)
            return collectives.collective_permute(snapshot, start.pairs)

        raise ExecutionError(f"unsupported opcode {opcode.value}")

    def _execute_while(self, instruction: Instruction, operands) -> PerDevice:
        """Run a counted loop: feed the state through the body
        ``trip_count`` times, exposing the iteration index to the body's
        ShardIndex expressions."""
        body: HloModule = instruction.attrs["body"]
        body_outputs = instruction.attrs["body_outputs"]
        trip_count = instruction.attrs["trip_count"]
        result_index = instruction.attrs["result_index"]
        parameters = body.parameters()

        saved_iteration = self._iteration
        state = list(operands)
        try:
            for i in range(trip_count):
                arguments = {
                    parameter.name: state[index]
                    for index, parameter in enumerate(parameters)
                }
                results = self.run(
                    body, arguments, outputs=body_outputs, iteration=i
                )
                state = [results[name] for name in body_outputs]
        finally:
            self._iteration = saved_iteration
        return state[result_index]


def run_spmd(
    module: HloModule,
    arguments: Dict[str, Sequence[np.ndarray]],
    num_devices: int,
    outputs: Optional[Sequence[str]] = None,
) -> Dict[str, PerDevice]:
    """Convenience wrapper around :class:`Executor`."""
    with internal_construction():
        executor = Executor(num_devices)
    return executor.run(module, arguments, outputs)
