"""Liveness and peak-memory analysis of a scheduled module.

The paper's schedulers start from an order "that tries to minimize the
memory usage" and must not dramatically change variable liveness
(Section 5.2). This analysis gives tests and the schedulers a way to
measure exactly that: the per-device high-water mark in bytes implied by a
program order.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode


@dataclasses.dataclass(frozen=True)
class MemoryProfile:
    """Result of a liveness walk over one schedule."""

    peak_bytes: int
    live_bytes_trace: List[int]

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024 * 1024)


def profile_memory(module: HloModule) -> MemoryProfile:
    """Peak live bytes over the module's program order.

    A value becomes live when defined and dies after its last use (the
    module root stays live to the end). ``collective-permute-start`` keeps
    its operand alive until the matching ``done`` retires, modelling the
    in-flight transfer buffer.
    """
    instructions = module.instructions
    last_use: Dict[int, int] = {}
    for index, instruction in enumerate(instructions):
        for operand in instruction.operands:
            last_use[id(operand)] = index
        if instruction.opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            start = instruction.operands[0]
            for operand in start.operands:
                last_use[id(operand)] = max(last_use.get(id(operand), 0), index)
    if module.root is not None:
        last_use[id(module.root)] = len(instructions)

    live = 0
    trace: List[int] = []
    peak = 0
    dying_at: Dict[int, List[Instruction]] = {}
    for index, instruction in enumerate(instructions):
        death = last_use.get(id(instruction), index)
        dying_at.setdefault(death, []).append(instruction)

    for index, instruction in enumerate(instructions):
        live += instruction.shape.byte_size
        peak = max(peak, live)
        trace.append(live)
        for dead in dying_at.get(index, ()):
            live -= dead.shape.byte_size
    return MemoryProfile(peak_bytes=peak, live_bytes_trace=trace)
