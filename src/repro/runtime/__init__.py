"""Functional multi-device runtime: the correctness oracle."""

from repro.runtime.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    collective_permute,
    reduce_scatter,
)
from repro.runtime.executor import ExecutionError, Executor, run_spmd
from repro.runtime.memory import MemoryProfile, profile_memory

__all__ = [
    "ExecutionError",
    "Executor",
    "MemoryProfile",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "collective_permute",
    "profile_memory",
    "reduce_scatter",
    "run_spmd",
]
