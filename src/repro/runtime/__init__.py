"""Functional multi-device runtime: the correctness oracle."""

from repro.runtime.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    collective_permute,
    payload_bytes,
    reduce_scatter,
    validate_permute_pairs,
)
from repro.runtime.compile import CompiledExecutor, lower, run_compiled
from repro.runtime.executor import ExecutionError, Executor, run_spmd
from repro.runtime.memory import MemoryProfile, profile_memory
from repro.runtime.plan import CompiledPlan, PlanStats
from repro.runtime.resilient import (
    ResilienceStats,
    ResilientExecutor,
    ResilientResult,
    RetryPolicy,
    run_with_fallback,
)

__all__ = [
    "CompiledExecutor",
    "CompiledPlan",
    "ExecutionError",
    "Executor",
    "MemoryProfile",
    "PlanStats",
    "ResilienceStats",
    "ResilientExecutor",
    "ResilientResult",
    "RetryPolicy",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "collective_permute",
    "lower",
    "payload_bytes",
    "profile_memory",
    "reduce_scatter",
    "run_compiled",
    "run_spmd",
    "run_with_fallback",
    "validate_permute_pairs",
]
