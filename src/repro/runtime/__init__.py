"""Functional multi-device runtime: the correctness oracle.

The unified entry point is :func:`create_engine` — it returns one of the
four back ends (interpreted oracle, compiled vectorized engine behind a
content-addressed :class:`PlanCache`, the multi-worker parallel backend,
resilient fault-tolerant interpreter) behind a single
``run(module, inputs, mesh=...)`` signature. The legacy executor classes
remain importable and functional but warn on direct construction.
"""

from repro.runtime.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    collective_permute,
    payload_bytes,
    reduce_scatter,
    validate_permute_pairs,
)
from repro.runtime.compile import CompiledExecutor, lower, run_compiled
from repro.runtime.engine import (
    ENGINE_KINDS,
    CompiledEngine,
    Engine,
    InterpretedEngine,
    ResilientEngine,
    create_engine,
)
from repro.runtime.executor import ExecutionError, Executor, run_spmd
from repro.runtime.memory import MemoryProfile, profile_memory
from repro.runtime.plan import CompiledPlan, PlanStats
from repro.runtime.plan_cache import (
    CacheStats,
    PlanCache,
    fingerprint_config,
    fingerprint_mesh,
    fingerprint_module,
    plan_key,
)
from repro.runtime.resilient import (
    ResilienceStats,
    ResilientExecutor,
    ResilientResult,
    RetryPolicy,
    run_with_fallback,
)

# Imported last: the parallel package registers its engine kind with the
# ENGINE_KINDS registry above (and imports repro.runtime.* itself).
from repro.runtime.parallel import (  # noqa: E402
    ParallelEngine,
    ParallelPlan,
    lower_parallel,
)

__all__ = [
    "CacheStats",
    "CompiledEngine",
    "CompiledExecutor",
    "CompiledPlan",
    "ENGINE_KINDS",
    "Engine",
    "ExecutionError",
    "Executor",
    "InterpretedEngine",
    "MemoryProfile",
    "ParallelEngine",
    "ParallelPlan",
    "PlanCache",
    "PlanStats",
    "ResilienceStats",
    "ResilientEngine",
    "ResilientExecutor",
    "ResilientResult",
    "RetryPolicy",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "collective_permute",
    "create_engine",
    "fingerprint_config",
    "fingerprint_mesh",
    "fingerprint_module",
    "lower",
    "lower_parallel",
    "payload_bytes",
    "plan_key",
    "profile_memory",
    "reduce_scatter",
    "run_compiled",
    "run_spmd",
    "run_with_fallback",
    "validate_permute_pairs",
]
