"""Reference numpy implementations of the MPI-style collectives.

Each function maps *per-device* input arrays (indexed by device id) to
per-device outputs, following the XLA operational semantics the paper's
Section 2.1 summarizes. These are the ground truth the functional executor
uses; the decomposed CollectivePermute sequences produced by the overlap
passes must reproduce them exactly.

Since the compiled-engine work, the uniform case (equal-size replica
groups, equal shard shapes — everything the SPMD partitioner emits) is
executed as a single vectorized operation over the device-stacked layout
of :mod:`repro.runtime.vectorized` instead of a Python loop over devices;
ragged replica groups (uneven sizes produce per-device output shapes that
cannot be stacked) fall back to the original per-group path. Both paths
are bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import collective_check
from repro.faults.errors import InvalidPermuteError, ReplicaGroupError

Groups = Sequence[Tuple[int, ...]]
PerDevice = List[np.ndarray]


def payload_bytes(
    byte_size: int,
    groups: Optional[Groups] = None,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> int:
    """Logical payload bytes one collective injects into the fabric.

    The model is routing-independent — what the observability counters
    track is *payload*, not link occupancy: every member of a replica
    group contributes its ``byte_size`` shard once, and every permute
    pair carries one ``byte_size`` shard. (Link-level bytes, including
    multi-hop routing, are the perfsim's job.)
    """
    total = 0
    if groups is not None:
        total += byte_size * sum(len(group) for group in groups)
    if pairs is not None:
        total += byte_size * len(pairs)
    return total


def _group_of(device: int, groups: Groups) -> Tuple[int, ...]:
    try:
        return tuple(collective_check.group_of(device, groups))
    except KeyError:
        raise ReplicaGroupError(
            f"device {device} missing from replica groups "
            f"{[tuple(g) for g in groups]}",
            device=device,
        ) from None


def _check_coverage(inputs: PerDevice, groups: Groups) -> None:
    """Every device must belong to a replica group, or its output would
    silently stay empty."""
    for device in range(len(inputs)):
        _group_of(device, groups)


def _stackable(inputs: PerDevice, groups: Groups) -> bool:
    """Whether the vectorized device-stacked fast path applies."""
    from repro.runtime.vectorized import GroupIndex

    return (
        GroupIndex.uniform(groups)
        and len({a.shape for a in inputs}) == 1
    )


def validate_permute_pairs(
    pairs: Sequence[Tuple[int, int]], num_devices: Optional[int] = None
) -> None:
    """Reject malformed CollectivePermute pairs with a typed error.

    A device may be the source of at most one pair and the destination
    of at most one pair, and (when ``num_devices`` is known) every id
    must name an existing device. The legality logic itself lives in the
    static analyzer's collective pass; this thin wrapper re-raises its
    first hard finding (duplicate endpoint C004, out-of-range C005) as
    the runtime's typed error. Self-sends and non-ring pair sets stay
    executable — the analyzer lints them, the runtime runs them.
    """
    for problem in collective_check.permute_pair_problems(
        pairs, num_devices
    ):
        if problem.rule in ("C004", "C005"):
            raise InvalidPermuteError(problem.message, pair=problem.pair)


def all_gather(inputs: PerDevice, dim: int, groups: Groups) -> PerDevice:
    """Concatenate the group's shards along ``dim`` on every member."""
    from repro.runtime import vectorized

    if _stackable(inputs, groups):
        index = vectorized.GroupIndex.build(len(inputs), groups)
        return vectorized.unstack(
            vectorized.all_gather(np.stack(inputs), dim, index)
        )
    _check_coverage(inputs, groups)
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        gathered = np.concatenate([inputs[d] for d in group], axis=dim)
        for device in group:
            outputs[device] = gathered.copy()
    return outputs


def reduce_scatter(inputs: PerDevice, dim: int, groups: Groups) -> PerDevice:
    """Element-wise sum over the group, then shard along ``dim``."""
    from repro.runtime import vectorized

    if _stackable(inputs, groups):
        index = vectorized.GroupIndex.build(len(inputs), groups)
        return vectorized.unstack(
            vectorized.reduce_scatter(np.stack(inputs), dim, index)
        )
    _check_coverage(inputs, groups)
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        total = np.sum([inputs[d] for d in group], axis=0)
        shards = np.split(total, len(group), axis=dim)
        for position, device in enumerate(group):
            outputs[device] = shards[position].copy()
    return outputs


def all_reduce(inputs: PerDevice, groups: Groups) -> PerDevice:
    """Element-wise sum over the group, replicated on every member."""
    from repro.runtime import vectorized

    if _stackable(inputs, groups):
        index = vectorized.GroupIndex.build(len(inputs), groups)
        return vectorized.unstack(
            vectorized.all_reduce(np.stack(inputs), index)
        )
    _check_coverage(inputs, groups)
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        total = np.sum([inputs[d] for d in group], axis=0)
        for device in group:
            outputs[device] = total.copy()
    return outputs


def all_to_all(
    inputs: PerDevice, split_dim: int, concat_dim: int, groups: Groups
) -> PerDevice:
    """Device ``i`` of a group sends its ``j``-th split to device ``j``."""
    from repro.runtime import vectorized

    if _stackable(inputs, groups):
        index = vectorized.GroupIndex.build(len(inputs), groups)
        return vectorized.unstack(
            vectorized.all_to_all(np.stack(inputs), split_dim, concat_dim, index)
        )
    _check_coverage(inputs, groups)
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        splits = {d: np.split(inputs[d], len(group), axis=split_dim) for d in group}
        for position, device in enumerate(group):
            received = [splits[peer][position] for peer in group]
            outputs[device] = np.concatenate(received, axis=concat_dim)
    return outputs


def collective_permute(
    inputs: PerDevice, pairs: Sequence[Tuple[int, int]]
) -> PerDevice:
    """Point-to-point sends; devices receiving nothing get zeros.

    This matches XLA: a device that is not the destination of any pair
    produces a zero-filled result, and a device may appear as source and
    destination of different pairs simultaneously (the ring shifts the
    decomposition emits rely on this).
    """
    from repro.runtime import vectorized

    validate_permute_pairs(pairs, len(inputs))
    if len({a.shape for a in inputs}) == 1:
        sources, destinations = vectorized.permute_index(pairs)
        return vectorized.unstack(
            vectorized.collective_permute(
                np.stack(inputs), sources, destinations
            )
        )
    destinations: Dict[int, int] = {dst: src for src, dst in pairs}
    outputs: List[np.ndarray] = []
    for device, value in enumerate(inputs):
        if device in destinations:
            outputs.append(inputs[destinations[device]].copy())
        else:
            outputs.append(np.zeros_like(value))
    return outputs
