"""Reference numpy implementations of the MPI-style collectives.

Each function maps *per-device* input arrays (indexed by device id) to
per-device outputs, following the XLA operational semantics the paper's
Section 2.1 summarizes. These are the ground truth the functional executor
uses; the decomposed CollectivePermute sequences produced by the overlap
passes must reproduce them exactly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

Groups = Sequence[Tuple[int, ...]]
PerDevice = List[np.ndarray]


def _group_of(device: int, groups: Groups) -> Tuple[int, ...]:
    for group in groups:
        if device in group:
            return group
    raise ValueError(f"device {device} missing from replica groups {groups}")


def all_gather(inputs: PerDevice, dim: int, groups: Groups) -> PerDevice:
    """Concatenate the group's shards along ``dim`` on every member."""
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        gathered = np.concatenate([inputs[d] for d in group], axis=dim)
        for device in group:
            outputs[device] = gathered.copy()
    return outputs


def reduce_scatter(inputs: PerDevice, dim: int, groups: Groups) -> PerDevice:
    """Element-wise sum over the group, then shard along ``dim``."""
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        total = np.sum([inputs[d] for d in group], axis=0)
        shards = np.split(total, len(group), axis=dim)
        for position, device in enumerate(group):
            outputs[device] = shards[position].copy()
    return outputs


def all_reduce(inputs: PerDevice, groups: Groups) -> PerDevice:
    """Element-wise sum over the group, replicated on every member."""
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        total = np.sum([inputs[d] for d in group], axis=0)
        for device in group:
            outputs[device] = total.copy()
    return outputs


def all_to_all(
    inputs: PerDevice, split_dim: int, concat_dim: int, groups: Groups
) -> PerDevice:
    """Device ``i`` of a group sends its ``j``-th split to device ``j``."""
    outputs: List[np.ndarray] = [None] * len(inputs)  # type: ignore[list-item]
    for group in groups:
        splits = {d: np.split(inputs[d], len(group), axis=split_dim) for d in group}
        for position, device in enumerate(group):
            received = [splits[peer][position] for peer in group]
            outputs[device] = np.concatenate(received, axis=concat_dim)
    return outputs


def collective_permute(
    inputs: PerDevice, pairs: Sequence[Tuple[int, int]]
) -> PerDevice:
    """Point-to-point sends; devices receiving nothing get zeros.

    This matches XLA: a device that is not the destination of any pair
    produces a zero-filled result, and a device may appear as source and
    destination of different pairs simultaneously (the ring shifts the
    decomposition emits rely on this).
    """
    destinations: Dict[int, int] = {}
    sources_seen = set()
    for src, dst in pairs:
        if dst in destinations:
            raise ValueError(f"device {dst} is the destination of two pairs")
        if src in sources_seen:
            raise ValueError(f"device {src} is the source of two pairs")
        sources_seen.add(src)
        destinations[dst] = src
    outputs: List[np.ndarray] = []
    for device, value in enumerate(inputs):
        if device in destinations:
            outputs.append(inputs[destinations[device]].copy())
        else:
            outputs.append(np.zeros_like(value))
    return outputs
