"""Content-addressed compiled-plan cache shared by engines and serving.

Lowering an :class:`~repro.hlo.module.HloModule` (and, one layer up,
running the whole overlap pipeline on it) is pure: the result depends
only on the module's *content*, the mesh, the
:class:`~repro.core.config.OverlapConfig` and the engine options. This
module provides the two pieces every caller shares:

* :func:`fingerprint_module` — a canonical, *name-independent* content
  fingerprint. Instruction names embed a process-global counter, so two
  builds of the same program never print identically; the fingerprint
  instead renames every value to its program-order index (While bodies
  recurse, ``body_outputs`` map into the body's index space). Two
  structurally identical programs therefore share one fingerprint — and
  one cache entry — no matter when or where they were built.
* :class:`PlanCache` — a bounded, thread-safe LRU keyed by such
  fingerprints (plus mesh/config/options), with hit/miss/eviction
  statistics the serving layer and the CI gates report.

The fingerprint is memoized on the module object and revalidated
against the identity of its instruction list, so the hot path of a
cache hit costs one tuple comparison plus one dict lookup — not a
re-print of the program. The same caveat as
:class:`~repro.runtime.compile.CompiledExecutor` applies: mutating an
instruction's ``attrs`` in place without touching the instruction list
is not detected.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, TypeVar

from repro.hlo.module import HloModule

T = TypeVar("T")

_MEMO_ATTR = "_repro_content_fingerprint"


def _canonical_text(module: HloModule) -> str:
    """Render ``module`` with every value renamed to its program-order
    index. Deterministic across processes and rebuilds."""
    index: Dict[str, int] = {}
    lines = []
    for position, instr in enumerate(module):
        index[instr.name] = position
        parts = [
            instr.opcode.value,
            str(instr.shape),
            "(" + ",".join(str(index[op.name]) for op in instr.operands) + ")",
        ]
        for key in sorted(instr.attrs):
            value = instr.attrs[key]
            if isinstance(value, HloModule):
                rendered = "{" + _canonical_text(value) + "}"
            elif key == "body_outputs" and isinstance(
                instr.attrs.get("body"), HloModule
            ):
                body_index = {
                    inner.name: j
                    for j, inner in enumerate(instr.attrs["body"])
                }
                rendered = repr([body_index.get(n, n) for n in value])
            elif hasattr(value, "tolist"):  # numpy constant payloads
                rendered = repr(value.tolist())
            else:
                rendered = repr(value)
            parts.append(f"{key}={rendered}")
        if instr.fusion_group is not None:
            parts.append(f"fusion={instr.fusion_group}")
        lines.append(f"{position}: " + " ".join(parts))
    root = index[module.root.name] if module.root is not None else -1
    lines.append(f"root={root}")
    return "\n".join(lines)


def _identity(module: HloModule) -> Tuple[int, ...]:
    return tuple(id(instr) for instr in module)


def fingerprint_module(module: HloModule) -> str:
    """Stable hex digest of the module's content (names excluded)."""
    memo = getattr(module, _MEMO_ATTR, None)
    identity = _identity(module)
    if memo is not None and memo[0] == identity:
        return memo[1]
    digest = hashlib.sha256(_canonical_text(module).encode()).hexdigest()
    setattr(module, _MEMO_ATTR, (identity, digest))
    return digest


def fingerprint_mesh(mesh: Any) -> str:
    """Fingerprint of a :class:`~repro.sharding.mesh.DeviceMesh` (or a
    bare device count, for ring-only callers)."""
    if isinstance(mesh, int):
        return f"ring:{mesh}"
    return f"{mesh.axis_names}:{mesh.axis_sizes}"


def fingerprint_config(config: Any) -> str:
    """Fingerprint of an OverlapConfig / ChipSpec / any frozen dataclass
    (or ``None``)."""
    if config is None:
        return "none"
    if dataclasses.is_dataclass(config):
        return repr(config)
    return repr(config)


def plan_key(
    module: HloModule,
    *,
    num_devices: int,
    outputs: Optional[Sequence[str]] = None,
    config: Any = None,
    options: Tuple = (),
) -> Tuple:
    """The cache key for one lowered plan: content fingerprint of the
    module plus everything else lowering depends on."""
    return (
        "plan",
        fingerprint_module(module),
        num_devices,
        tuple(outputs) if outputs is not None else None,
        fingerprint_config(config),
        options,
    )


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Bounded, thread-safe LRU cache for compiled artifacts.

    Values are opaque: the compiled engine stores
    :class:`~repro.runtime.plan.CompiledPlan` objects, the experiment
    pipeline stores :class:`~repro.core.pipeline.CompilationResult`
    objects. Keys must be hashable; build them with :func:`plan_key`
    (or any tuple that captures everything the value depends on).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def get_or_build(
        self, key: Tuple, build: Callable[[], T]
    ) -> Tuple[T, bool]:
        """Return ``(value, hit)``; builds and inserts on a miss.

        ``build`` runs outside the lock — two threads racing on the
        same cold key may both build; the second insert wins, which is
        harmless because builds are pure.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key], True
            self.stats.misses += 1
        value = build()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return value, False
