"""Resilient execution: timeouts, retries and graceful degradation.

:class:`ResilientExecutor` wraps the functional :class:`Executor` with
real delivery semantics for the asynchronous CollectivePermute pairs the
decomposed programs rely on:

* every ``collective-permute-done`` is a bounded retry loop with a
  per-attempt timeout and exponential backoff (timing is *virtual* —
  accumulated in :class:`ResilienceStats` — since the functional
  executor has no wall clock);
* every delivery passes an end-to-end checksum guardrail (the receiver
  verifies the payload against the sender's snapshot — the functional
  analogue of a link CRC), a shape guardrail, and a NaN/Inf guardrail;
  detected corruption triggers retransmission, never silent propagation;
* exhausted retries and downed links raise typed, seeded
  :class:`FaultError`\\ s.

:func:`run_with_fallback` adds graceful degradation on top: when a link
is flagged bad mid-run the decomposed looped-CollectiveEinsum program is
abandoned and the equivalent undecomposed ``AllGather``/``ReduceScatter``
program is re-executed from the last consistent boundary (the step's
immutable input arguments — the executor never mutates caller arrays).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from repro.faults.errors import (
    LINK_FAULTS,
    DeviceFailureError,
    FaultError,
    LinkDownError,
    PayloadCorruptionError,
    ShapeFaultError,
    TransferTimeoutError,
)
from repro.faults.injector import CLEAN, FaultInjector
from repro.hlo.instruction import Instruction
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.obs.events import RETRY
from repro.obs.tracer import Tracer
from repro.runtime import collectives
from repro.runtime._compat import internal_construction, warn_legacy_constructor
from repro.runtime.executor import Executor, PerDevice


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs for asynchronous permute delivery."""

    max_attempts: int = 4
    timeout: float = 1e-3          # seconds a done waits per attempt
    backoff_base: float = 1e-4     # first retry's extra wait
    backoff_factor: float = 2.0    # exponential growth per retry

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be non-negative, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be at least 1.0, got "
                f"{self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Extra wait before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor ** attempt


@dataclasses.dataclass
class ResilienceStats:
    """What the resilient executor absorbed during one run."""

    transfers: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    corrupt_deliveries: int = 0
    duplicate_deliveries: int = 0
    virtual_delay: float = 0.0     # seconds of simulated waiting
    compute_slowdown: float = 0.0  # straggler-inflated virtual seconds


class ResilientExecutor(Executor):
    """An :class:`Executor` whose async permutes can fail — and recover.

    Without an ``injector`` it behaves exactly like the base executor
    (the guardrails still run, so NaN/Inf and shape violations surface
    as typed errors instead of silent garbage).
    """

    def __init__(
        self,
        num_devices: int,
        injector: Optional[FaultInjector] = None,
        policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if type(self) is ResilientExecutor:
            warn_legacy_constructor("ResilientExecutor")
        super().__init__(num_devices, tracer=tracer)
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.stats = ResilienceStats()
        self._transfer_ids: Dict[str, int] = {}

    @property
    def _seed(self) -> Optional[int]:
        return self.injector.seed if self.injector is not None else None

    # --- dispatch ---------------------------------------------------------------

    def _execute(
        self,
        instruction: Instruction,
        values: Dict[str, PerDevice],
        in_flight: Dict[str, PerDevice],
    ) -> PerDevice:
        if self.injector is not None:
            failure = self.injector.on_instruction()
            if failure is not None:
                raise DeviceFailureError(
                    f"device {failure.device} failed at instruction "
                    f"{failure.step} ({instruction.name})",
                    seed=self._seed,
                    device=failure.device,
                    step=failure.step,
                )
        if instruction.opcode is Opcode.COLLECTIVE_PERMUTE_START:
            result = super()._execute(instruction, values, in_flight)
            if self.injector is not None:
                self._transfer_ids[instruction.name] = (
                    self.injector.next_transfer_index()
                )
            return result
        if instruction.opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            return self._deliver(instruction, in_flight)
        result = super()._execute(instruction, values, in_flight)
        if self.injector is not None:
            for device in range(self.num_devices):
                factor = self.injector.compute_factor(device)
                if factor > 1.0:
                    self.stats.compute_slowdown += factor - 1.0
        return result

    # --- delivery with retry/timeout --------------------------------------------

    def _deliver(
        self,
        instruction: Instruction,
        in_flight: Dict[str, PerDevice],
    ) -> PerDevice:
        start = instruction.operands[0]
        snapshot = in_flight.pop(start.name)
        pairs = start.pairs
        direction = start.attrs.get("direction")
        index = self._transfer_ids.pop(start.name, 0)
        policy = self.policy
        tracer = self.tracer
        self.stats.transfers += 1
        if tracer is not None:
            tracer.count("transfers")

        def note_failed_attempt(attempt: int, why: str, begin: float) -> None:
            """Record one failed delivery attempt on the transfer's
            retry lane (wall-clock; the virtual backoff lives in stats)."""
            if tracer is not None:
                tracer.add(
                    f"{start.name}#attempt{attempt}:{why}", RETRY,
                    f"retry:{start.name}", begin, tracer.now(),
                )
                tracer.count(why)

        # Source-side NaN/Inf guard: a payload that is already corrupt at
        # the sender cannot be repaired by retransmission.
        for src, _ in pairs:
            if not np.all(np.isfinite(snapshot[src])):
                raise PayloadCorruptionError(
                    f"transfer {start.name}: non-finite payload at source "
                    f"device {src} before transmission",
                    seed=self._seed,
                    transfer=start.name,
                    device=src,
                )

        for attempt in range(policy.max_attempts):
            self.stats.attempts += 1
            attempt_begin = 0.0 if tracer is None else tracer.now()
            if attempt:
                self.stats.retries += 1
                self.stats.virtual_delay += policy.backoff(attempt - 1)
                if tracer is not None:
                    tracer.count("retries")
            outcome = (
                self.injector.transfer_outcome(index, attempt, direction)
                if self.injector is not None
                else CLEAN
            )
            if outcome.link_down:
                context = dict(transfer=start.name, pairs=list(pairs))
                if direction is not None:
                    context["direction"] = direction
                raise LinkDownError(
                    f"link carrying transfer {start.name} is down",
                    seed=self._seed,
                    **context,
                )
            if outcome.dropped or outcome.delay > policy.timeout:
                self.stats.timeouts += 1
                self.stats.virtual_delay += policy.timeout
                note_failed_attempt(attempt, "timeouts", attempt_begin)
                continue
            self.stats.virtual_delay += outcome.delay
            delivered = collectives.collective_permute(snapshot, pairs)
            if outcome.duplicated:
                # Idempotent delivery: the duplicate is byte-identical, so
                # the receiver keeps one copy and drops the other.
                self.stats.duplicate_deliveries += 1
            if outcome.corrupt is not None:
                victim = pairs[
                    int(self.injector.pick(len(pairs)))
                ][1]
                delivered[victim] = self.injector.corrupt_payload(
                    delivered[victim], outcome.corrupt
                )
                self.stats.corrupt_deliveries += 1
            self._check_shapes(instruction, delivered)
            if self._checksum_ok(snapshot, delivered, pairs):
                return delivered
            # Checksum mismatch: corrupted in flight — retransmit.
            note_failed_attempt(attempt, "checksum_failures", attempt_begin)
        context = dict(
            transfer=start.name, pairs=list(pairs), timeout=policy.timeout
        )
        if direction is not None:
            context["direction"] = direction
        raise TransferTimeoutError(
            f"transfer {start.name} failed after {policy.max_attempts} "
            f"attempts",
            seed=self._seed,
            **context,
        )

    # --- guardrails -------------------------------------------------------------

    def _check_shapes(
        self, instruction: Instruction, delivered: PerDevice
    ) -> None:
        expected = instruction.shape.dims
        for device, value in enumerate(delivered):
            if tuple(value.shape) != expected:
                raise ShapeFaultError(
                    f"transfer {instruction.name}: device {device} received "
                    f"shape {tuple(value.shape)}, expected {expected}",
                    seed=self._seed,
                    device=device,
                )

    @staticmethod
    def _checksum_ok(
        snapshot: PerDevice,
        delivered: PerDevice,
        pairs: Sequence,
    ) -> bool:
        """End-to-end integrity: each destination's payload must equal the
        sender's snapshot bit for bit (the functional stand-in for a link
        CRC — it also catches bit-flips that stay finite)."""
        for src, dst in pairs:
            if not np.array_equal(delivered[dst], snapshot[src]):
                return False
        return True

    def run(self, module, arguments, outputs=None, iteration=0):
        values = super().run(module, arguments, outputs, iteration)
        for name, shards in values.items():
            for device, shard in enumerate(shards):
                if not np.all(np.isfinite(shard)):
                    raise PayloadCorruptionError(
                        f"non-finite value in output {name!r} on device "
                        f"{device}",
                        seed=self._seed,
                        output=name,
                        device=device,
                    )
        return values


@dataclasses.dataclass
class ResilientResult:
    """Outcome of :func:`run_with_fallback`."""

    values: Dict[str, PerDevice]
    used_fallback: bool
    stats: ResilienceStats
    failure: Optional[FaultError]  # the link fault that forced fallback

    @property
    def root(self) -> PerDevice:
        """The per-device values of the (single) requested output."""
        (shards,) = self.values.values()
        return shards


def run_with_fallback(
    primary: HloModule,
    fallback: HloModule,
    arguments: Dict[str, Sequence[np.ndarray]],
    num_devices: int,
    *,
    injector: Optional[FaultInjector] = None,
    policy: Optional[RetryPolicy] = None,
    outputs: Optional[Sequence[str]] = None,
    tracer: Optional[Tracer] = None,
) -> ResilientResult:
    """Execute ``primary`` resiliently; degrade to ``fallback`` on link
    faults.

    ``primary`` is the compiled (decomposed, permute-based) program;
    ``fallback`` the equivalent undecomposed program whose bulk
    collectives do not use the failed point-to-point route. When the
    resilient executor flags a link bad (retry budget exhausted or a
    persistent link-down), execution restarts from the last consistent
    boundary — the immutable step inputs — on the fallback program.
    Non-link faults (device failure, unrepairable corruption) propagate:
    no program rewrite survives a dead device.
    """
    with internal_construction():
        executor = ResilientExecutor(
            num_devices, injector=injector, policy=policy, tracer=tracer
        )
    try:
        values = executor.run(primary, arguments, outputs=outputs)
        return ResilientResult(
            values=values,
            used_fallback=False,
            stats=executor.stats,
            failure=None,
        )
    except LINK_FAULTS as failure:
        if tracer is not None:
            tracer.count("fallbacks")
        with internal_construction():
            fallback_executor = Executor(num_devices, tracer=tracer)
        try:
            values = fallback_executor.run(
                fallback, arguments, outputs=outputs
            )
        except FaultError as second:
            # The fallback executor has no injector, so a fault raised
            # here (malformed permute, replica-group violation, ...)
            # carries no seed of its own — but it still happened under
            # the original seeded schedule. Stamp that seed on so the
            # chaos harness classifies it typed-and-replayable.
            raise second.attach_seed(
                injector.seed if injector is not None else None
            )
        return ResilientResult(
            values=values,
            used_fallback=True,
            stats=executor.stats,
            failure=failure,
        )
