"""Lowering HLO modules to :class:`ParallelPlan`s.

This reuses the whole single-pass analysis machinery of
:mod:`repro.runtime.compile` — DCE, constant folding, CSE, view-chain
buffer tracking, liveness and donation — via :class:`_Lowering`, and
swaps only the closure emission:

* ``workers == 1``: every step is the compiled engine's own closure,
  except async collective permutes, which become *deferred*: the start
  is a pure passthrough (the operand buffer's liveness is pinned to the
  matching done, so nothing can mutate or release it while the
  transfer is in flight — snapshot-at-issue by immutability instead of
  by copying) and the done materializes the permute with
  :func:`~repro.runtime.parallel.shard_ops.deferred_permute`, skipping
  the eager kernel's zero-fill pass.

* ``workers > 1``: each worker gets its own step list writing only the
  device rows it owns. Elementwise/window ops slice the shared stacked
  arrays by row range; synchronous collectives run worker-restricted
  kernels between the run barrier's entry and exit waits; async permute
  starts post snapshot row-copies into the mailbox and dones consume
  them. While bodies are lowered recursively with the same worker
  split and execute out of parity-double-buffered arenas.

Donation carries over to both modes unchanged: decisions are made once
per node (on the shared analysis), in-place writes touch only the
owner's rows, and the barrier bracketing orders every foreign-row read
before any later overwrite.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hlo.instruction import ShardIndex
from repro.hlo.module import HloModule
from repro.hlo.opcode import Opcode
from repro.obs.events import instruction_bytes, phase_of
from repro.runtime import vectorized
from repro.runtime.collectives import validate_permute_pairs
from repro.runtime.compile import (
    _UFUNCS,
    _Lowering,
    _Node,
    _live_set,
    _resolve_outputs,
    _with_releases,
)
from repro.runtime.executor import ExecutionError
from repro.runtime.parallel import shard_ops
from repro.runtime.parallel.model import (
    build_inline_model,
    build_sliced_model,
)
from repro.runtime.parallel.plan import (
    ParallelPlan,
    WorkerStep,
    run_worker_steps,
)
from repro.runtime.plan import PlanStats, StepMeta


class _Counters:
    """Identifiers shared across one lowering tree (outer plan plus all
    nested While bodies): arena uids and mailbox transfer ids."""

    def __init__(self) -> None:
        self.uids = itertools.count()
        self.tids = itertools.count()


def lower_parallel(
    module: HloModule,
    num_devices: int,
    outputs: Optional[Sequence[str]] = None,
    *,
    workers: int = 1,
    donate_params: bool = True,
) -> ParallelPlan:
    """Lower ``module`` once into a :class:`ParallelPlan`.

    ``workers`` is clamped to ``[1, num_devices]``; a single worker
    yields the inline (compiled-equivalent) mode.
    """
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    workers = max(1, min(int(workers), num_devices))
    return _lower(
        module, num_devices, outputs, workers, donate_params, _Counters()
    )


def _worker_bounds(num_devices: int, workers: int) -> Tuple[int, ...]:
    """Contiguous row split: worker ``w`` owns ``[bounds[w], bounds[w+1])``."""
    return tuple(num_devices * w // workers for w in range(workers + 1))


def _node_meta(node: _Node) -> StepMeta:
    instr = node.instr
    return StepMeta(
        name=instr.name,
        opcode=instr.opcode.value,
        kind=phase_of(instr.opcode),
        bytes=instruction_bytes(instr),
        transfer_of=(
            instr.operands[0].name
            if instr.opcode is Opcode.COLLECTIVE_PERMUTE_DONE
            else None
        ),
    )


def _node_label(node: _Node, releases: Tuple[int, ...]) -> str:
    return (
        f"[{node.out.slot:3d}] {node.instr.name} = "
        f"{node.instr.opcode.value}"
        + (f" (free {list(releases)})" if releases else "")
    )


def _lower(
    module: HloModule,
    num_devices: int,
    outputs: Optional[Sequence[str]],
    workers: int,
    donate_params: bool,
    counters: _Counters,
) -> ParallelPlan:
    module.verify()
    wanted = _resolve_outputs(module, outputs)
    live = _live_set(module, wanted)
    instructions = [
        i for i in module
        if id(i) in live or i.opcode is Opcode.PARAMETER
    ]
    starts_with_live_done = frozenset(
        id(i.operands[0]) for i in instructions
        if i.opcode is Opcode.COLLECTIVE_PERMUTE_DONE
    )
    low = _Lowering(
        module, num_devices, donate_params, starts_with_live_done
    )
    for instr in instructions:
        low.add_instruction(instr)
    output_values = [
        low.values[id(module.get(name))] for name in wanted
    ]
    low.compute_liveness(output_values)
    uid = next(counters.uids)
    bounds = _worker_bounds(num_devices, workers)

    output_buffers = tuple(v.buffer for v in output_values)
    if workers == 1:
        _pin_deferred_operands(low)
        steps, labels, metas, body_plans = _emit_inline(low, counters)
        worker_steps: Sequence[Sequence[WorkerStep]] = ()
        arena_spec: Dict[int, Tuple[int, ...]] = {}
        model = build_inline_model(low, uid, module.name, output_buffers)
    else:
        emitter = _SlicedEmitter(low, workers, bounds, counters)
        worker_steps, labels, metas = emitter.emit_all()
        steps = ()
        body_plans = emitter.body_plans
        arena_spec = emitter.arena_spec
        model = build_sliced_model(
            low, emitter.routes, workers, bounds, uid, module.name,
            output_buffers,
        )

    stats = PlanStats(
        instructions=len(instructions),
        steps=len(low.nodes),
        dce_eliminated=len(module) - len(instructions),
        folded=low.folded,
        cse_eliminated=low.cse_eliminated,
        copies_elided=low.copies_elided,
        donations=low.donations,
    )
    for nested in low.nested_stats:
        stats = stats.merge(nested)

    return ParallelPlan(
        module_name=module.name,
        num_devices=num_devices,
        workers=workers,
        bounds=bounds,
        steps=steps,
        worker_steps=worker_steps,
        labels=labels,
        initial_env=low.initial_env,
        params=low.params,
        output_slots={
            name: value.slot for name, value in zip(wanted, output_values)
        },
        output_order=wanted,
        stats=stats,
        meta=metas,
        tracer_box=low.tracer_box,
        donations=tuple(low.donation_records),
        uid=uid,
        arena_spec=arena_spec,
        body_plans=body_plans,
        model=model,
    )


# --- single-worker (inline) emission ----------------------------------------


def _pin_deferred_operands(low: _Lowering) -> None:
    """Extend each deferred permute operand's liveness to its done step.

    The single-worker start is a pure passthrough; the done reads the
    operand *then* — so the operand buffer must stay unreleased and
    undonated for the whole in-flight window. (This can only reduce
    donation relative to the compiled plan, never unsoundly add one.)
    """
    for t, node in enumerate(low.nodes):
        if node.instr.opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            start_node = low._start_node_of(node.instr)
            buffer = low.buffers[start_node.operands[0].buffer]
            if buffer.last_use < t:
                buffer.last_use = t


def _emit_inline(low: _Lowering, counters: _Counters):
    steps, labels, metas = [], [], []
    body_plans: List[ParallelPlan] = []
    for t, node in enumerate(low.nodes):
        opcode = node.instr.opcode
        if opcode is Opcode.WHILE:
            step, body_plan = _emit_inline_while(low, node, counters)
            body_plans.append(body_plan)
        elif (
            opcode is Opcode.COLLECTIVE_PERMUTE_START
            and node.payload is not None
        ):
            step = _emit_inline_start(low, node)
        elif opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            step = _emit_inline_done(low, node)
        else:
            step = low.emit(t, node)
        releases = tuple(
            s for s in low.releases_at(t)
            if s != node.out.slot
            and (node.payload is None or s != node.payload.slot)
        )
        if releases:
            step = _with_releases(step, releases)
        steps.append(step)
        labels.append(_node_label(node, releases))
        metas.append(_node_meta(node))
    return steps, labels, metas, body_plans


def _emit_inline_start(low: _Lowering, node: _Node):
    """Deferred start: validate once, pass the operand through untouched.

    The permute itself happens at the done (see
    :func:`_pin_deferred_operands` for why that is still
    snapshot-at-issue)."""
    validate_permute_pairs(node.instr.pairs, low.n)
    (s0,) = [v.slot for v in node.operands]
    so = node.out.slot

    def step(env, it):
        env[so] = env[s0]

    return step


def _emit_inline_done(low: _Lowering, node: _Node):
    start_node = low._start_node_of(node.instr)
    s_operand = start_node.operands[0].slot
    sp = node.operands[0].slot  # the hidden payload slot
    so = node.out.slot
    sources, destinations = vectorized.permute_index(start_node.instr.pairs)
    shape = start_node.instr.shape.stacked(low.n)
    kernel = shard_ops.deferred_permute(sources, destinations, shape)

    def step(env, it):
        out = kernel(env[s_operand])
        env[sp] = out
        env[so] = out

    return step


def _emit_inline_while(low: _Lowering, node: _Node, counters: _Counters):
    attrs = node.instr.attrs
    body_plan = _lower(
        attrs["body"],
        low.n,
        attrs["body_outputs"],
        workers=1,
        donate_params=False,
        counters=counters,
    )
    low.nested_stats.append(body_plan.stats)
    low.donation_records.extend(body_plan.donations)
    trip_count = attrs["trip_count"]
    result_index = attrs["result_index"]
    state_slots = tuple(v.slot for v in node.operands)
    so = node.out.slot
    tracer_box = low.tracer_box

    def step(env, it):
        state = [env[s] for s in state_slots]
        tracer = tracer_box[0]
        if tracer is None:
            for i in range(trip_count):
                state = body_plan.execute(state, iteration=i)
        else:
            for i in range(trip_count):
                state = body_plan.execute_traced(state, i, tracer)
        env[so] = state[result_index]

    return step, body_plan


# --- multi-worker (sliced) emission -----------------------------------------


class _SlicedEmitter:
    """Emits one step closure per (node, worker) writing only the rows
    that worker owns. Donation decisions are made once per node on the
    shared analysis, then baked into every worker's closure."""

    def __init__(
        self,
        low: _Lowering,
        workers: int,
        bounds: Tuple[int, ...],
        counters: _Counters,
    ) -> None:
        self.low = low
        self.workers = workers
        self.bounds = bounds
        self.counters = counters
        self.arena_spec: Dict[int, Tuple[int, ...]] = {}
        self.body_plans: List[ParallelPlan] = []
        # id(start instruction) -> (tid, incoming routes, destinations)
        self.routes: Dict[int, Tuple[int, dict, np.ndarray]] = {}

    def emit_all(self):
        worker_steps: List[List[WorkerStep]] = [
            [] for _ in range(self.workers)
        ]
        labels, metas = [], []
        for t, node in enumerate(self.low.nodes):
            for w, step in enumerate(self.emit(t, node)):
                worker_steps[w].append(step)
            labels.append(_node_label(node, ()))
            metas.append(_node_meta(node))
        return worker_steps, labels, metas

    # -- helpers -------------------------------------------------------

    def _ranges(self):
        return [
            (w, self.bounds[w], self.bounds[w + 1])
            for w in range(self.workers)
        ]

    def _arena(self, node: _Node, slot: Optional[int] = None) -> None:
        target = node.out.slot if slot is None else slot
        self.arena_spec[target] = node.instr.shape.stacked(self.low.n)

    def _alias(self, s0: int, so: int) -> List[WorkerStep]:
        def step(wctx, env, it):
            env[so] = env[s0]

        return [step] * self.workers

    # -- dispatch ------------------------------------------------------

    def emit(self, t: int, node: _Node) -> List[WorkerStep]:
        instr = node.instr
        opcode = instr.opcode
        attrs = instr.attrs
        n = self.low.n
        slots = [v.slot for v in node.operands]
        so = node.out.slot

        if opcode in _UFUNCS:
            return self._emit_ufunc(t, node, _UFUNCS[opcode])

        if opcode is Opcode.NEGATE:
            return self._emit_negate(t, node)

        if opcode is Opcode.COPY:
            return self._alias(slots[0], so)

        if opcode is Opcode.RESHAPE:
            # ``.reshape`` on a non-contiguous view would silently copy,
            # giving each worker a private array whose foreign rows are
            # unsynchronized garbage — materialize rows into a shared
            # arena instead.
            (s0,) = slots
            shard_shape = tuple(instr.shape.dims)
            self._arena(node)
            steps = []
            for _, lo, hi in self._ranges():
                sl = slice(lo, hi)
                rows = (hi - lo,) + shard_shape

                def step(wctx, env, it, s0=s0, so=so, sl=sl, rows=rows):
                    out = wctx.arena[so]
                    out[sl] = env[s0][sl].reshape(rows)
                    env[so] = out

                steps.append(step)
            return steps

        if opcode is Opcode.TRANSPOSE:
            (s0,) = slots
            axes = (0,) + tuple(p + 1 for p in attrs["perm"])

            def step(wctx, env, it):
                env[so] = np.transpose(env[s0], axes)

            return [step] * self.workers

        if opcode is Opcode.SLICE:
            (s0,) = slots
            index = [slice(None)] * (instr.operands[0].shape.rank + 1)
            index[attrs["dim"] + 1] = slice(
                attrs["start"], attrs["start"] + attrs["size"]
            )
            index_t = tuple(index)

            def step(wctx, env, it):
                env[so] = env[s0][index_t]

            return [step] * self.workers

        if opcode is Opcode.PAD:
            (s0,) = slots
            pad_width = [(0, 0)] * (instr.operands[0].shape.rank + 1)
            pad_width[attrs["dim"] + 1] = (attrs["low"], attrs["high"])
            pad_t = tuple(pad_width)
            value = attrs["value"]
            self._arena(node)
            steps = []
            for _, lo, hi in self._ranges():
                sl = slice(lo, hi)

                def step(wctx, env, it, s0=s0, so=so, sl=sl):
                    out = wctx.arena[so]
                    out[sl] = np.pad(
                        env[s0][sl], pad_t, constant_values=value
                    )
                    env[so] = out

                steps.append(step)
            return steps

        if opcode is Opcode.CONCATENATE:
            axis = attrs["dim"] + 1
            operand_slots = tuple(slots)
            self._arena(node)
            steps = []
            for _, lo, hi in self._ranges():
                sl = slice(lo, hi)

                def step(wctx, env, it, sl=sl):
                    out = wctx.arena[so]
                    np.concatenate(
                        [env[s][sl] for s in operand_slots],
                        axis=axis,
                        out=out[sl],
                    )
                    env[so] = out

                steps.append(step)
            return steps

        if opcode is Opcode.EINSUM:
            equation = vectorized.batched_equation(attrs["equation"])
            s0, s1 = slots
            self._arena(node)
            steps = []
            for _, lo, hi in self._ranges():
                sl = slice(lo, hi)

                def step(wctx, env, it, sl=sl):
                    out = wctx.arena[so]
                    np.einsum(equation, env[s0][sl], env[s1][sl],
                              out=out[sl])
                    env[so] = out

                steps.append(step)
            return steps

        if opcode is Opcode.DYNAMIC_SLICE:
            return self._emit_dynamic_slice(node)

        if opcode is Opcode.DYNAMIC_UPDATE_SLICE:
            return self._emit_dynamic_update_slice(t, node)

        if opcode is Opcode.WHILE:
            return self._emit_while(node)

        if opcode is Opcode.ALL_GATHER:
            index = vectorized.GroupIndex.build(n, instr.groups)
            return self._emit_sync_collective(
                node,
                lambda lo, hi: shard_ops.make_all_gather(
                    index, attrs["dim"], lo, hi
                ),
            )

        if opcode is Opcode.REDUCE_SCATTER:
            index = vectorized.GroupIndex.build(n, instr.groups)
            # Divisibility check once at lowering, like the full kernel.
            if instr.operands[0].shape.dims[attrs["dim"]] % index.group_size:
                raise ExecutionError(
                    f"{instr.name}: dimension {attrs['dim']} not divisible "
                    f"by group size {index.group_size}"
                )
            return self._emit_sync_collective(
                node,
                lambda lo, hi: shard_ops.make_reduce_scatter(
                    index, attrs["dim"], lo, hi
                ),
            )

        if opcode is Opcode.ALL_REDUCE:
            index = vectorized.GroupIndex.build(n, instr.groups)
            return self._emit_sync_collective(
                node,
                lambda lo, hi: shard_ops.make_all_reduce(index, lo, hi),
            )

        if opcode is Opcode.ALL_TO_ALL:
            index = vectorized.GroupIndex.build(n, instr.groups)
            return self._emit_sync_collective(
                node,
                lambda lo, hi: shard_ops.make_all_to_all(
                    index, attrs["split_dim"], attrs["concat_dim"], lo, hi
                ),
            )

        if opcode is Opcode.COLLECTIVE_PERMUTE:
            validate_permute_pairs(instr.pairs, n)
            sources, destinations = vectorized.permute_index(instr.pairs)
            return self._emit_sync_collective(
                node,
                lambda lo, hi: shard_ops.make_collective_permute(
                    sources, destinations, lo, hi
                ),
            )

        if opcode is Opcode.COLLECTIVE_PERMUTE_START:
            return self._emit_permute_start(node)

        if opcode is Opcode.COLLECTIVE_PERMUTE_DONE:
            return self._emit_permute_done(node)

        raise ExecutionError(f"unsupported opcode {opcode.value}")

    # -- per-opcode emitters -------------------------------------------

    def _emit_ufunc(self, t: int, node: _Node, ufunc) -> List[WorkerStep]:
        s0, s1 = [v.slot for v in node.operands]
        so = node.out.slot
        self._arena(node)
        donate = None
        for candidate, other in ((0, 1), (1, 0)):
            if self.low.may_donate(
                t, node.operands[candidate], [node.operands[other]]
            ):
                donate = node.operands[candidate].slot
                self.low._record_donation(
                    node.instr, node.operands[candidate]
                )
                break
        steps = []
        for _, lo, hi in self._ranges():
            sl = slice(lo, hi)
            if donate is None:
                def step(wctx, env, it, sl=sl):
                    out = wctx.arena[so]
                    ufunc(env[s0][sl], env[s1][sl], out=out[sl])
                    env[so] = out
            else:
                def step(wctx, env, it, sl=sl, sd=donate):
                    target = env[sd]
                    if target.flags.writeable:
                        ufunc(env[s0][sl], env[s1][sl], out=target[sl])
                        env[so] = target
                    else:
                        out = wctx.arena[so]
                        ufunc(env[s0][sl], env[s1][sl], out=out[sl])
                        env[so] = out
            steps.append(step)
        return steps

    def _emit_negate(self, t: int, node: _Node) -> List[WorkerStep]:
        (s0,) = [v.slot for v in node.operands]
        so = node.out.slot
        self._arena(node)
        donate = self.low.may_donate(t, node.operands[0], [])
        if donate:
            self.low._record_donation(node.instr, node.operands[0])
        steps = []
        for _, lo, hi in self._ranges():
            sl = slice(lo, hi)
            if donate:
                def step(wctx, env, it, sl=sl):
                    target = env[s0]
                    if target.flags.writeable:
                        np.negative(target[sl], out=target[sl])
                        env[so] = target
                    else:
                        out = wctx.arena[so]
                        np.negative(target[sl], out=out[sl])
                        env[so] = out
            else:
                def step(wctx, env, it, sl=sl):
                    out = wctx.arena[so]
                    np.negative(env[s0][sl], out=out[sl])
                    env[so] = out
            steps.append(step)
        return steps

    def _emit_dynamic_slice(self, node: _Node) -> List[WorkerStep]:
        instr = node.instr
        attrs = instr.attrs
        (s0,) = [v.slot for v in node.operands]
        so = node.out.slot
        dim = attrs["dim"]
        size = attrs["size"]
        start: ShardIndex = attrs["start"]
        rank = instr.operands[0].shape.rank
        axis = dim + 1
        n = self.low.n
        self._arena(node)
        steps = []
        for _, lo, hi in self._ranges():
            sl = slice(lo, hi)
            if start.iteration_dependent:
                def step(wctx, env, it, sl=sl, lo=lo, hi=hi):
                    index = vectorized.along_axis_index(
                        start.offsets(n, it)[lo:hi], size, rank, dim
                    )
                    out = wctx.arena[so]
                    out[sl] = np.take_along_axis(
                        env[s0][sl], index, axis=axis
                    )
                    env[so] = out
            else:
                index_w = vectorized.along_axis_index(
                    start.offsets(n)[lo:hi], size, rank, dim
                )

                def step(wctx, env, it, sl=sl, index_w=index_w):
                    out = wctx.arena[so]
                    out[sl] = np.take_along_axis(
                        env[s0][sl], index_w, axis=axis
                    )
                    env[so] = out
            steps.append(step)
        return steps

    def _emit_dynamic_update_slice(
        self, t: int, node: _Node
    ) -> List[WorkerStep]:
        instr = node.instr
        attrs = instr.attrs
        s0, s1 = [v.slot for v in node.operands]
        so = node.out.slot
        dim = attrs["dim"]
        start: ShardIndex = attrs["start"]
        size = instr.operands[1].shape.dims[dim]
        rank = instr.operands[0].shape.rank
        axis = dim + 1
        n = self.low.n
        self._arena(node)
        donate = self.low.may_donate(t, node.operands[0], [node.operands[1]])
        if donate:
            self.low._record_donation(instr, node.operands[0])
        steps = []
        for _, lo, hi in self._ranges():
            sl = slice(lo, hi)
            if start.iteration_dependent:
                def step(wctx, env, it, sl=sl, lo=lo, hi=hi,
                         donate=donate):
                    target = env[s0]
                    if donate and target.flags.writeable:
                        dst = target
                    else:
                        dst = wctx.arena[so]
                        dst[sl] = target[sl]
                    index = vectorized.along_axis_index(
                        start.offsets(n, it)[lo:hi], size, rank, dim
                    )
                    np.put_along_axis(dst[sl], index, env[s1][sl],
                                      axis=axis)
                    env[so] = dst
            else:
                index_w = vectorized.along_axis_index(
                    start.offsets(n)[lo:hi], size, rank, dim
                )

                def step(wctx, env, it, sl=sl, index_w=index_w,
                         donate=donate):
                    target = env[s0]
                    if donate and target.flags.writeable:
                        dst = target
                    else:
                        dst = wctx.arena[so]
                        dst[sl] = target[sl]
                    np.put_along_axis(dst[sl], index_w, env[s1][sl],
                                      axis=axis)
                    env[so] = dst
            steps.append(step)
        return steps

    def _emit_while(self, node: _Node) -> List[WorkerStep]:
        attrs = node.instr.attrs
        body_plan = _lower(
            attrs["body"],
            self.low.n,
            attrs["body_outputs"],
            workers=self.workers,
            donate_params=False,
            counters=self.counters,
        )
        self.low.nested_stats.append(body_plan.stats)
        self.low.donation_records.extend(body_plan.donations)
        self.body_plans.append(body_plan)
        self._arena(node)
        trip_count = attrs["trip_count"]
        result_index = attrs["result_index"]
        state_slots = tuple(v.slot for v in node.operands)
        so = node.out.slot
        body_uid = body_plan.uid
        steps = []
        for _, lo, hi in self._ranges():
            sl = slice(lo, hi)

            def step(wctx, env, it, sl=sl):
                state = [env[s] for s in state_slots]
                arenas = wctx.ctx.arenas[body_uid]
                outer_arena = wctx.arena
                try:
                    for i in range(trip_count):
                        wctx.arena = arenas[i & 1]
                        benv = body_plan.initial_env.copy()
                        for binding, value in zip(body_plan.params, state):
                            benv[binding.slot] = value
                        run_worker_steps(
                            body_plan, wctx.worker, wctx, benv, i
                        )
                        state = [
                            benv[body_plan.output_slots[name]]
                            for name in body_plan.output_order
                        ]
                finally:
                    wctx.arena = outer_arena
                # The loop result must outlive the body arenas (which the
                # next outer iteration would overwrite): copy this
                # worker's rows into the While node's own arena array.
                out = outer_arena[so]
                out[sl] = state[result_index][sl]
                env[so] = out

            steps.append(step)
        return steps

    def _emit_sync_collective(self, node: _Node, make) -> List[WorkerStep]:
        """Entry barrier (operand rows all written), restricted kernel,
        exit barrier (foreign reads finished before anyone moves on)."""
        (s0,) = [v.slot for v in node.operands]
        so = node.out.slot
        self._arena(node)
        steps = []
        for _, lo, hi in self._ranges():
            kernel = make(lo, hi)

            def step(wctx, env, it, kernel=kernel):
                out = wctx.arena[so]
                wctx.barrier()
                kernel(env[s0], out)
                wctx.barrier()
                env[so] = out

            steps.append(step)
        return steps

    def _emit_permute_start(self, node: _Node) -> List[WorkerStep]:
        instr = node.instr
        (s0,) = [v.slot for v in node.operands]
        so = node.out.slot
        if node.payload is None:
            # The matching done was DCE'd: nothing ever consumes the
            # transfer, so nothing is posted.
            return self._alias(s0, so)
        validate_permute_pairs(instr.pairs, self.low.n)
        _, destinations = vectorized.permute_index(instr.pairs)
        outgoing, incoming = shard_ops.route_pairs(instr.pairs, self.bounds)
        tid = next(self.counters.tids)
        sp = node.payload.slot
        self._arena(node, slot=sp)
        self.routes[id(instr)] = (tid, incoming, destinations)
        steps = []
        for w, lo, hi in self._ranges():
            posts = tuple(outgoing.get(w, ()))

            def step(wctx, env, it, posts=posts):
                operand = env[s0]
                parity = it & 1
                for v, src_rows in posts:
                    # Advanced indexing copies: the payload is a snapshot
                    # of the source rows at issue time.
                    wctx.mailbox.post(
                        (tid, wctx.worker, v, parity), operand[src_rows]
                    )
                env[so] = operand

            steps.append(step)
        return steps

    def _emit_permute_done(self, node: _Node) -> List[WorkerStep]:
        start_node = self.low._start_node_of(node.instr)
        tid, incoming, destinations = self.routes[id(start_node.instr)]
        sp = node.operands[0].slot
        so = node.out.slot
        origin = start_node.instr.name
        steps = []
        for w, lo, hi in self._ranges():
            inbound = tuple(incoming.get(w, ()))
            zero_rows = shard_ops.missing_rows(destinations, lo, hi)

            def step(wctx, env, it, inbound=inbound, zero_rows=zero_rows):
                out = wctx.arena[sp]
                if zero_rows.size:
                    out[zero_rows] = 0.0
                parity = it & 1
                recorder = wctx.recorder
                for u, dst_rows in inbound:
                    payload, posted_at = wctx.mailbox.consume(
                        (tid, u, wctx.worker, parity)
                    )
                    out[dst_rows] = payload
                    if recorder is not None:
                        recorder.transfer(
                            origin,
                            f"link:{origin}:w{u}->w{wctx.worker}@{parity}",
                            posted_at,
                            recorder.now(),
                            payload.nbytes,
                        )
                env[sp] = out
                env[so] = out

            steps.append(step)
        return steps
