"""The runtime concurrency sanitizer (TSan-style, opt-in).

``create_engine("parallel", sanitize=True)`` (or ``repro chaos
--sanitize``) arms this instrumentation for every run:

* **Bounds preflight** — the plan's declared row-ownership partition is
  validated before any worker starts; overlap or gaps raise
  :class:`RaceError` (CC001).
* **Barrier site tracking** — each worker publishes ``(site, seq)``
  (the plan step it is arriving from and its arrival ordinal) before
  every barrier wait; a barrier action compares all workers' latest
  arrivals and raises :class:`BarrierDivergenceError` (CC003) the
  instant two workers meet at one global barrier from different plan
  sites. A bounded barrier wait turns a worker that never arrives into
  the same typed error instead of a hang.
* **Mailbox routing and epochs** — each worker registers its thread, so
  a post whose key names a different source worker, or a consume whose
  key names a different destination worker, raises
  :class:`MailboxRoutingError` (CC004) at the call site; the mailbox
  timeout is tightened from the 60s production default to seconds so
  orphaned posts/consumes (CC004) and parity-window overflows (CC002)
  surface fast.
* **Pin-window checksums** (single-worker plans) — a deferred permute's
  operand is checksummed when the transfer is issued and verified when
  the done materializes it; any mutation of the window raises
  :class:`DonationRaceError` (CC005).

Overhead when armed is a few dict/tuple operations per barrier and
mailbox call — far below the kernels they bracket — and exactly one
attribute check per call when disarmed.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.parallel.errors import (
    BarrierDivergenceError,
    DonationRaceError,
    MailboxRoutingError,
    RaceError,
)

Key = Tuple[int, int, int, int]

#: Sanitized runs bound every wait tightly: a healthy plan clears a
#: barrier or mailbox cell in microseconds, so seconds of silence is a
#: verdict, not noise.
SANITIZE_MAILBOX_TIMEOUT = 2.0
SANITIZE_BARRIER_TIMEOUT = 5.0

#: Sample stride of the pin-window checksum: cheap on big operands,
#: exact on small ones.
_CHECKSUM_STRIDE = 64


def checksum(array: np.ndarray) -> float:
    """A strided sample checksum of ``array`` (order-stable, exact on
    an unmutated buffer)."""
    flat = array.reshape(-1)
    sample = flat[::_CHECKSUM_STRIDE]
    return float(sample.sum()) + 0.5 * float(flat[0]) + float(flat[-1])


def verify_pin_window(
    module_name: str,
    step_name: str,
    armed: Tuple[str, float],
    array: Optional[np.ndarray],
) -> None:
    """Raise CC005 if a pinned operand changed since its start step."""
    origin, expected = armed
    if array is None or checksum(array) != expected:
        raise DonationRaceError(
            f"{module_name}:{step_name}: deferred-permute operand pinned "
            f"at {origin} was mutated before the done consumed it"
        )


class Sanitizer:
    """Per-run instrumentation state, installed on the RunContext."""

    def __init__(self, plan) -> None:
        self.plan = plan
        self.mailbox_timeout = SANITIZE_MAILBOX_TIMEOUT
        self.barrier_timeout = SANITIZE_BARRIER_TIMEOUT
        workers = plan.workers
        self._sites: List[Tuple[str, int]] = [("", -1)] * workers
        self._seq: List[int] = [0] * workers
        self._tls = threading.local()
        self._lock = threading.Lock()
        self.barriers_checked = 0
        self.posts = 0
        self.consumes = 0

    # -- installation --------------------------------------------------

    def install(self, ctx) -> None:
        ctx.sanitizer = self
        ctx.mailbox_timeout = self.mailbox_timeout
        ctx.barrier_timeout = self.barrier_timeout
        # Rebuild the barrier with the divergence check as its action:
        # it runs once per cycle, in the last-arriving thread, with
        # every worker's published site visible.
        ctx.barrier = threading.Barrier(
            ctx.workers, action=self._check_sites
        )

    def register_thread(self, worker: int) -> None:
        self._tls.worker = worker

    def current_worker(self) -> Optional[int]:
        return getattr(self._tls, "worker", None)

    # -- barrier instrumentation ---------------------------------------

    def arrive(self, worker: int, site: str) -> None:
        seq = self._seq[worker]
        self._seq[worker] = seq + 1
        self._sites[worker] = (site, seq)

    def _check_sites(self) -> None:
        self.barriers_checked += 1
        first = self._sites[0]
        for worker, arrival in enumerate(self._sites):
            if arrival != first:
                pairs = ", ".join(
                    f"w{w}@{site!r}#{seq}"
                    for w, (site, seq) in enumerate(self._sites)
                )
                raise BarrierDivergenceError(
                    "workers met at one barrier from different plan "
                    f"sites: {pairs}", worker=worker,
                )

    # -- mailbox instrumentation ---------------------------------------

    def on_post(self, key: Key) -> None:
        with self._lock:
            self.posts += 1
        worker = self.current_worker()
        if worker is not None and key[1] != worker:
            raise MailboxRoutingError(
                f"worker {worker} posted a cell keyed for source worker "
                f"{key[1]}", key, worker=worker,
            )

    def on_consume(self, key: Key) -> None:
        with self._lock:
            self.consumes += 1
        worker = self.current_worker()
        if worker is not None and key[2] != worker:
            raise MailboxRoutingError(
                f"worker {worker} consumed a cell keyed for destination "
                f"worker {key[2]}", key, worker=worker,
            )

    # -- preflight and reporting ---------------------------------------

    def check_bounds(self) -> None:
        """CC001 preflight: the declared row ownership must partition
        ``[0, num_devices)`` into strictly increasing contiguous
        ranges."""
        plan = self.plan
        bounds = tuple(plan.bounds)
        ok = (
            len(bounds) == plan.workers + 1
            and bounds[0] == 0
            and bounds[-1] == plan.num_devices
            and all(a < b for a, b in zip(bounds, bounds[1:]))
        )
        if not ok:
            raise RaceError(
                f"{plan.module_name}: declared worker bounds "
                f"{list(bounds)} do not partition the "
                f"{plan.num_devices} device rows — overlapping or "
                "missing ownership means unordered writes"
            )

    def emit_summary(self, tracer) -> None:
        """One SANITIZE counter set per traced run."""
        tracer.count("sanitize.barriers", self.barriers_checked)
        tracer.count("sanitize.posts", self.posts)
        tracer.count("sanitize.consumes", self.consumes)


__all__ = [
    "SANITIZE_BARRIER_TIMEOUT",
    "SANITIZE_MAILBOX_TIMEOUT",
    "Sanitizer",
    "checksum",
    "verify_pin_window",
]
