"""Worker-restricted collective kernels.

Each builder precomputes, at lowering time, the index arrays one worker
needs to produce *its* rows ``[lo, hi)`` of a collective's stacked
output, and returns a closure ``fn(stacked, out)`` writing exactly
those rows of ``out``.

Bit-exactness contract: every kernel restricts the corresponding full
kernel in :mod:`repro.runtime.vectorized` to the replica groups that
own rows in ``[lo, hi)`` *without* changing the per-group arithmetic —
the member axis keeps its group order, so axis-sums see the same
addends in the same order and produce the same bytes as the
single-threaded engine (and hence the interpreter).

Synchronous kernels read foreign rows of ``stacked``; their callers
bracket them between the run barrier's entry and exit waits.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.runtime.vectorized import GroupIndex

Kernel = Callable[[np.ndarray, np.ndarray], None]


def _group_restriction(
    index: GroupIndex, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(members_w, inverse, position) for the groups owning [lo, hi).

    ``members_w[k]`` lists group ``unique[k]``'s devices; ``inverse[r]``
    maps local row ``lo + r`` to its position ``k`` in ``unique``;
    ``position`` is ``position_of[lo:hi]``.
    """
    unique, inverse = np.unique(index.group_of[lo:hi], return_inverse=True)
    return index.members[unique], inverse, index.position_of[lo:hi]


def make_all_gather(index: GroupIndex, dim: int, lo: int, hi: int) -> Kernel:
    members_w, inverse, _ = _group_restriction(index, lo, hi)
    g = index.group_size

    def fn(stacked: np.ndarray, out: np.ndarray) -> None:
        picked = stacked[members_w]            # (Gw, g, *shard)
        moved = np.moveaxis(picked, 1, dim + 1)
        shape = list(picked.shape[:1]) + list(picked.shape[2:])
        shape[dim + 1] *= g
        out[lo:hi] = moved.reshape(shape)[inverse]

    return fn


def make_reduce_scatter(
    index: GroupIndex, dim: int, lo: int, hi: int
) -> Kernel:
    members_w, inverse, position = _group_restriction(index, lo, hi)
    g = index.group_size

    def fn(stacked: np.ndarray, out: np.ndarray) -> None:
        total = stacked[members_w].sum(axis=1)  # (Gw, *shard)
        shape = list(total.shape)
        shape[dim + 1] //= g
        shape.insert(dim + 1, g)
        parts = np.moveaxis(total.reshape(shape), dim + 1, 1)
        out[lo:hi] = parts[inverse, position]

    return fn


def make_all_reduce(index: GroupIndex, lo: int, hi: int) -> Kernel:
    members_w, inverse, _ = _group_restriction(index, lo, hi)

    def fn(stacked: np.ndarray, out: np.ndarray) -> None:
        out[lo:hi] = stacked[members_w].sum(axis=1)[inverse]

    return fn


def make_all_to_all(
    index: GroupIndex, split_dim: int, concat_dim: int, lo: int, hi: int
) -> Kernel:
    members_w, inverse, position = _group_restriction(index, lo, hi)
    g = index.group_size

    def fn(stacked: np.ndarray, out: np.ndarray) -> None:
        picked = stacked[members_w]            # (Gw, src, *shard)
        shape = list(picked.shape)
        shape[split_dim + 2] //= g
        shape.insert(split_dim + 2, g)
        split = picked.reshape(shape)
        swapped = np.swapaxes(split, 1, split_dim + 2)
        moved = np.moveaxis(swapped, split_dim + 2, concat_dim + 2)
        shape = list(moved.shape)
        del shape[concat_dim + 2]
        shape[concat_dim + 2] *= g
        out[lo:hi] = moved.reshape(shape)[inverse, position]

    return fn


def make_collective_permute(
    sources: np.ndarray, destinations: np.ndarray, lo: int, hi: int
) -> Kernel:
    """Synchronous permute: scatter into the destination rows this
    worker owns, zero the rest of its range."""
    mask = (destinations >= lo) & (destinations < hi)
    dst_w = destinations[mask]
    src_w = sources[mask]
    zero_w = missing_rows(destinations, lo, hi)

    def fn(stacked: np.ndarray, out: np.ndarray) -> None:
        if zero_w.size:
            out[zero_w] = 0.0
        if dst_w.size:
            out[dst_w] = stacked[src_w]

    return fn


def missing_rows(destinations: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Rows in ``[lo, hi)`` that receive no transfer (zeroed outputs)."""
    return np.setdiff1d(np.arange(lo, hi, dtype=np.int64), destinations)


def route_pairs(
    pairs: Sequence[Tuple[int, int]], bounds: Sequence[int]
) -> Tuple[dict, dict]:
    """Split permute pairs by the workers owning source and destination.

    Returns ``(outgoing, incoming)``:

    * ``outgoing[u]`` — list of ``(v, src_rows)``: worker ``u`` posts
      ``operand[src_rows]`` (rows it owns) to worker ``v``;
    * ``incoming[v]`` — list of ``(u, dst_rows)``: worker ``v`` receives
      a payload from ``u`` and scatters it to ``dst_rows`` (rows it
      owns), in the same pair order the producer packed.
    """
    def owner(row: int) -> int:
        for w in range(len(bounds) - 1):
            if bounds[w] <= row < bounds[w + 1]:
                return w
        raise ValueError(f"row {row} outside device range")

    routes: dict = {}
    for src, dst in pairs:
        routes.setdefault((owner(src), owner(dst)), []).append((src, dst))
    outgoing: dict = {}
    incoming: dict = {}
    for (u, v), route in sorted(routes.items()):
        src_rows = np.asarray([s for s, _ in route], dtype=np.int64)
        dst_rows = np.asarray([d for _, d in route], dtype=np.int64)
        outgoing.setdefault(u, []).append((v, src_rows))
        incoming.setdefault(v, []).append((u, dst_rows))
    return outgoing, incoming


def deferred_permute(
    sources: np.ndarray,
    destinations: np.ndarray,
    stacked_shape: Tuple[int, ...],
) -> Callable[[np.ndarray], np.ndarray]:
    """Single-worker done-step kernel: materialize a permute that was
    deferred at its start step.

    Cheaper than the eager compiled kernel (``zeros_like`` + scatter):
    it allocates without zero-filling and only zeroes the rows that
    receive nothing — for a full ring, no zero pass at all.
    """
    n = stacked_shape[0]
    missing = missing_rows(destinations, 0, n)

    def fn(operand: np.ndarray) -> np.ndarray:
        out = np.empty(stacked_shape, dtype=np.float64)
        if destinations.size:
            out[destinations] = operand[sources]
        if missing.size:
            out[missing] = 0.0
        return out

    return fn


__all__ = [
    "Kernel",
    "deferred_permute",
    "make_all_gather",
    "make_all_reduce",
    "make_all_to_all",
    "make_collective_permute",
    "make_reduce_scatter",
    "missing_rows",
    "route_pairs",
]
