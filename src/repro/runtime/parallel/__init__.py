"""True parallel execution backend.

The package partitions a compiled plan's device-stacked execution by
rows across a pool of worker threads (numpy releases the GIL on the hot
kernels, so the workers genuinely overlap), with zero-copy shared
stacked arrays, barrier-bracketed synchronous collectives and a
double-buffered mailbox carrying async ring-permute payloads — making
the communication/computation overlap the paper decomposes for
*measured wall-clock*, not simulated.

Importing this package registers the ``"parallel"`` kind with
:data:`repro.runtime.engine.ENGINE_KINDS`; the registry also autoloads
it on first lookup, so ``create_engine("parallel")`` works without an
explicit import.
"""

from repro.runtime.engine import register_engine
from repro.runtime.parallel.engine import ParallelEngine
from repro.runtime.parallel.errors import (
    BarrierDivergenceError,
    ConcurrencyError,
    DonationRaceError,
    MailboxOverflowError,
    MailboxRoutingError,
    MailboxTimeoutError,
    RaceError,
)
from repro.runtime.parallel.lowering import lower_parallel
from repro.runtime.parallel.mailbox import TransferMailbox
from repro.runtime.parallel.plan import ParallelPlan
from repro.runtime.parallel.sync import RunContext, WorkerContext

register_engine(
    "parallel",
    ParallelEngine,
    options=(
        "plan_cache", "donate_params", "workers", "tuned", "sanitize"
    ),
)

__all__ = [
    "BarrierDivergenceError",
    "ConcurrencyError",
    "DonationRaceError",
    "MailboxOverflowError",
    "MailboxRoutingError",
    "MailboxTimeoutError",
    "ParallelEngine",
    "ParallelPlan",
    "RaceError",
    "RunContext",
    "TransferMailbox",
    "WorkerContext",
    "lower_parallel",
    "register_engine",
]
