"""The double-buffered transfer mailbox behind async ring permutes.

A ``CollectivePermuteStart`` step *posts* one cell per destination
worker: the producer copies the source rows it owns out of its operand
(the snapshot-at-issue contract — later in-place writes to the operand
cannot leak into the transfer) and publishes the copy. The matching
``CollectivePermuteDone`` step *consumes* the cell, scattering the
payload into the destination rows it owns.

Cells are keyed ``(transfer_id, src_worker, dst_worker, parity)`` where
``parity = iteration & 1``: a While body may have the same permute in
flight for two consecutive iterations (that is exactly the overlap the
paper decomposes for), so each direction of each worker pair gets two
independent cells. Posting into a cell whose previous payload has not
been consumed yet blocks — double-buffered backpressure — which bounds
worker skew around a transfer and guarantees the same-parity window of
a transfer never overlaps its successor (the property the per-transfer
trace lanes rely on).

Visibility: ``post`` fills the cell *then* sets its ``full`` event;
``consume`` waits on ``full`` *then* reads — the event's internal lock
orders the payload write before the read (see the memory-ordering note
in :mod:`repro.runtime.parallel.sync`).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.runtime.parallel.errors import (
    MailboxOverflowError,
    MailboxTimeoutError,
)
from repro.runtime.parallel.sync import RunContext

Key = Tuple[int, int, int, int]  # (transfer_id, src, dst, parity)


class _Cell:
    __slots__ = ("full", "free", "payload", "posted_at")

    def __init__(self) -> None:
        self.full = threading.Event()
        self.free = threading.Event()
        self.free.set()
        self.payload: Optional[np.ndarray] = None
        self.posted_at = 0.0


class TransferMailbox:
    """All in-flight permute payloads of one run."""

    def __init__(self, ctx: RunContext) -> None:
        self._ctx = ctx
        self._cells: Dict[Key, _Cell] = {}
        self._lock = threading.Lock()

    def _cell(self, key: Key) -> _Cell:
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _Cell()
            return cell

    def post(self, key: Key, payload: np.ndarray) -> None:
        """Publish ``payload`` (already a snapshot copy) into ``key``.

        A post into a cell whose previous payload is still unconsumed
        blocks (double-buffered backpressure); if the consumer never
        drains it within the run's mailbox timeout, that is a
        parity-window overflow — a third in-flight transfer on one
        ``(tid, src, dst, parity)`` cell — and raises the typed
        :class:`MailboxOverflowError` instead of hanging.
        """
        ctx = self._ctx
        sanitizer = ctx.sanitizer
        if sanitizer is not None:
            sanitizer.on_post(key)
        cell = self._cell(key)
        if not ctx.wait_event(cell.free, ctx.mailbox_timeout):
            raise MailboxOverflowError(
                "post would overwrite a live cell that was never "
                "consumed", key, worker=key[1],
            )
        cell.free.clear()
        cell.payload = payload
        clock = ctx.clock
        if clock is not None:
            cell.posted_at = clock()
        cell.full.set()

    def consume(self, key: Key) -> Tuple[np.ndarray, float]:
        """Take the payload posted into ``key`` (blocks until posted).

        A consume whose producer never posts within the run's mailbox
        timeout raises the typed :class:`MailboxTimeoutError` carrying
        the cell key, so orphaned transfers are reported rather than
        deadlocking the pool.
        """
        ctx = self._ctx
        sanitizer = ctx.sanitizer
        if sanitizer is not None:
            sanitizer.on_consume(key)
        cell = self._cell(key)
        if not ctx.wait_event(cell.full, ctx.mailbox_timeout):
            raise MailboxTimeoutError(
                "consume timed out: the matching post never happened",
                key, worker=key[2],
            )
        cell.full.clear()
        payload = cell.payload
        posted_at = cell.posted_at
        cell.payload = None
        cell.free.set()
        assert payload is not None
        return payload, posted_at
